package main

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
	"time"

	"mobiledl/internal/metrics"
)

// clusterState mirrors the /v1/cluster/state payload shape this test needs.
type clusterState struct {
	NodeID  string `json:"node_id"`
	Status  string `json:"status"`
	Members []struct {
		ID    string `json:"id"`
		Alive bool   `json:"alive"`
	} `json:"members"`
	Routes map[string][]string `json:"routes"`
}

func postPredict(t *testing.T, p *proc, model string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"model":%q,"features":[%s]}`, model, sampleFeatures())
	resp, err := http.Post(p.url("/v1/predict"), "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("predict %s: %v", model, err)
	}
	return resp
}

// TestClusterThreeNodeEndToEnd boots three full mobiledlserve instances —
// two model holders and one model-less router — through the production
// wiring, waits for gossip convergence, and asserts transparent forwarding:
// a predict against the router lands on the owner and comes back with the
// owner's node header. Then it kills one holder and checks the cluster
// degrades honestly: the survivor's models keep serving, the dead node's
// model 404s, and status stays ok for the remaining pair.
func TestClusterThreeNodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots three instances and trains demo models")
	}
	n1 := startServer(t, "-demo-models=true", "-serve-models", "mlp",
		"-node-id", "n1", "-gossip-interval", "50ms")
	n2 := startServer(t, "-demo-models=true", "-serve-models", "forest",
		"-node-id", "n2", "-peers", n1.addr, "-gossip-interval", "50ms")
	n3 := startServer(t, "-node-id", "n3", "-peers", n1.addr, "-gossip-interval", "50ms")
	stopped := map[*proc]bool{}
	stop := func(p *proc) {
		if !stopped[p] {
			stopped[p] = true
			p.stop(t)
		}
	}
	defer stop(n3)
	defer stop(n2)
	defer stop(n1)

	// Convergence: the router learns both holders and their models.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st clusterState
		getJSON(t, n3.url("/v1/cluster/state"), &st)
		if st.Status == "ok" && len(st.Members) == 3 &&
			len(st.Routes["mlp"]) > 0 && len(st.Routes["forest"]) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged on n3: %+v", st)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// /healthz surfaces the cluster state on every node.
	for _, p := range []*proc{n1, n2, n3} {
		var hz map[string]string
		getJSON(t, p.url("/healthz"), &hz)
		if hz["cluster"] != "ok" {
			t.Fatalf("healthz cluster on %s = %q, want ok", p.addr, hz["cluster"])
		}
	}

	// Transparent forwarding: the router holds nothing, yet serves both
	// models by proxying to their owners.
	for model, owner := range map[string]string{"mlp": "n1", "forest": "n2"} {
		resp := postPredict(t, n3, model)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s via router = %d, want 200", model, resp.StatusCode)
		}
		if got := resp.Header.Get("X-MobileDL-Node"); got != owner {
			t.Fatalf("predict %s served by %q, want %s", model, got, owner)
		}
		if got := resp.Header.Get("X-MobileDL-Origin"); got != "n3" {
			t.Fatalf("predict %s origin %q, want n3", model, got)
		}
		resp.Body.Close()
	}
	// Entry at a holder that owns the model serves locally.
	resp := postPredict(t, n1, "mlp")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-MobileDL-Node") != "n1" {
		t.Fatalf("predict mlp on its owner: status %d served by %q", resp.StatusCode, resp.Header.Get("X-MobileDL-Node"))
	}
	resp.Body.Close()

	// The router's /metrics shows cluster families with forward traffic.
	scrape, err := metrics.ScrapeURL(n3.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scrape.Value("mobiledl_cluster_peers"); !ok {
		t.Fatal("router /metrics missing mobiledl_cluster_peers")
	}
	if fwd := scrape.Sum("mobiledl_cluster_forwards_total"); fwd < 1 {
		t.Fatalf("router /metrics counts %v forwards, want >= 1", fwd)
	}

	// Kill the mlp holder. The survivors keep forest servable; mlp (whose
	// only holder died) answers 404 via the local registry, not a hang or 502
	// storm; the remaining pair stays status ok.
	stop(n1)
	deadline = time.Now().Add(10 * time.Second)
	for {
		var st clusterState
		getJSON(t, n3.url("/v1/cluster/state"), &st)
		if len(st.Routes["mlp"]) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n3 never dropped the dead holder from mlp routes: %+v", st.Routes)
		}
		time.Sleep(25 * time.Millisecond)
	}
	resp = postPredict(t, n3, "forest")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-MobileDL-Node") != "n2" {
		t.Fatalf("post-kill predict forest: status %d served by %q", resp.StatusCode, resp.Header.Get("X-MobileDL-Node"))
	}
	resp.Body.Close()
	resp = postPredict(t, n3, "mlp")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-kill predict mlp = %d, want 404 (only holder is gone)", resp.StatusCode)
	}
	resp.Body.Close()
	var hz map[string]string
	getJSON(t, n3.url("/healthz"), &hz)
	if hz["cluster"] != "ok" {
		t.Fatalf("post-kill healthz cluster on n3 = %q, want ok (n2 still alive)", hz["cluster"])
	}
}

// TestServeModelsFlag: -serve-models restricts the demo install to the named
// subset and rejects unknown names.
func TestServeModelsFlag(t *testing.T) {
	p := startServer(t, "-demo-models=true", "-serve-models", "forest")
	defer p.stop(t)
	var models []struct {
		Name string `json:"name"`
	}
	getJSON(t, p.url("/v1/models"), &models)
	if len(models) != 1 || models[0].Name != "forest" {
		t.Fatalf("models = %+v, want exactly forest", models)
	}

	if _, err := parseServeModels("mlp, forest"); err != nil {
		t.Fatalf("parseServeModels rejected a valid list: %v", err)
	}
	if _, err := parseServeModels("bogus"); err == nil {
		t.Fatal("parseServeModels accepted an unknown model name")
	}
}
