package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// proc is one in-process mobiledlserve instance driven through runCtx — the
// full production wiring (flags, store, recovery, coordinator, HTTP server,
// shutdown path) minus only the OS process boundary and signal delivery.
type proc struct {
	cancel context.CancelFunc
	done   chan error
	events chan string
	addr   string
}

// startServer boots the server with the given extra flags on an ephemeral
// port and waits for it to listen. Tests share the package-level testEvent
// hook, so instances must not overlap within a test binary (they don't:
// tests run sequentially and every test stops its servers).
func startServer(t *testing.T, extra ...string) *proc {
	t.Helper()
	events := make(chan string, 64)
	testEvent = func(e, d string) { events <- e + "|" + d }
	t.Cleanup(func() { testEvent = nil })

	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-demo-models=false",
		"-drain-grace", "10ms",
		"-trace-sample", "0",
		"-log-level", "error",
	}, extra...)
	ctx, cancel := context.WithCancel(context.Background())
	p := &proc{cancel: cancel, done: make(chan error, 1), events: events}
	go func() { p.done <- runCtx(ctx, args, nil) }()
	select {
	case ev := <-events:
		if !strings.HasPrefix(ev, "listen|") {
			t.Fatalf("first lifecycle event = %q, want listen", ev)
		}
		p.addr = strings.TrimPrefix(ev, "listen|")
	case err := <-p.done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never listened")
	}
	return p
}

// stop cancels the run context (the in-process SIGTERM) and returns the
// lifecycle events emitted after "listen", in order.
func (p *proc) stop(t *testing.T) []string {
	t.Helper()
	p.cancel()
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("runCtx returned %v on graceful shutdown", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not shut down")
	}
	var evs []string
	for {
		select {
		case ev := <-p.events:
			evs = append(evs, strings.SplitN(ev, "|", 2)[0])
		default:
			return evs
		}
	}
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postOK(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

// TestGracefulShutdownOrdering boots the full process with persistence and
// training enabled, then cancels it and asserts the teardown sequence:
// drain (healthz 503) -> HTTP shutdown -> coordinator stop -> server close
// (batcher drain + registry close) -> store close, strictly in that order.
func TestGracefulShutdownOrdering(t *testing.T) {
	dir := t.TempDir()
	p := startServer(t, "-data-dir", dir, "-train", "-train-clients", "4", "-train-interval", "5ms")

	var hz map[string]string
	if code := getJSON(t, p.url("/healthz"), &hz); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if hz["store"] != "ok" {
		t.Fatalf(`healthz store = %q, want "ok"`, hz["store"])
	}

	evs := p.stop(t)
	want := []string{"drain", "http-shutdown", "coord-stop", "server-close", "store-close"}
	if len(evs) != len(want) {
		t.Fatalf("lifecycle events = %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("lifecycle order = %v, want %v", evs, want)
		}
	}
}

// TestHealthzReportsStoreDisabled: without -data-dir the health payload says
// so instead of pretending persistence exists, and /v1/backup 404s.
func TestHealthzReportsStoreDisabled(t *testing.T) {
	p := startServer(t, "-train", "-train-clients", "4")
	defer p.stop(t)

	var hz map[string]string
	getJSON(t, p.url("/healthz"), &hz)
	if hz["store"] != "disabled" {
		t.Fatalf(`healthz store = %q without -data-dir, want "disabled"`, hz["store"])
	}
	if code := getJSON(t, p.url("/v1/backup"), nil); code != http.StatusNotFound {
		t.Fatalf("/v1/backup without a store = %d, want 404", code)
	}
}

// TestRestartResumesFromDataDir is the end-to-end crash-safety acceptance
// path at process scope: run training rounds against a data dir, shut down,
// boot a second instance on the same dir, and observe (a) the federated
// model serving again from its recovered version and (b) the coordinator
// resuming from the checkpointed round — never round 0.
func TestRestartResumesFromDataDir(t *testing.T) {
	if testing.Short() {
		t.Skip("trains federated rounds")
	}
	dir := t.TempDir()

	p1 := startServer(t, "-data-dir", dir, "-train", "-train-clients", "4", "-train-interval", "1ms")
	postOK(t, p1.url("/v1/train/start"))
	var round1 int
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st struct {
			Round     int `json:"round"`
			Published []struct {
				Version int `json:"version"`
			} `json:"published"`
		}
		getJSON(t, p1.url("/v1/train/status"), &st)
		if st.Round >= 2 && len(st.Published) >= 1 {
			round1 = st.Round
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("training never reached round 2 (at %d)", st.Round)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p1.stop(t)

	p2 := startServer(t, "-data-dir", dir, "-train", "-train-clients", "4", "-train-interval", "5ms")
	defer p2.stop(t)

	// The recovered registry serves fedmlp before any new training happens.
	var models []struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
	}
	getJSON(t, p2.url("/v1/models"), &models)
	found := false
	for _, m := range models {
		if m.Name == "fedmlp" {
			found = true
			if m.Version < 1 {
				t.Fatalf("recovered fedmlp at version %d", m.Version)
			}
		}
	}
	if !found {
		t.Fatalf("fedmlp not serving after restart: %+v", models)
	}
	pr, err := http.Post(p2.url("/v1/predict"), "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"model":"fedmlp","features":[%s]}`, sampleFeatures()))))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("predict against recovered model = %d, want 200", pr.StatusCode)
	}

	// The coordinator resumed from the checkpoint: its start round is the
	// first run's progress, not zero.
	var st struct {
		StartRound int `json:"start_round"`
	}
	getJSON(t, p2.url("/v1/train/status"), &st)
	if st.StartRound < 1 {
		t.Fatalf("coordinator resumed at start_round %d after %d trained rounds, want >= 1", st.StartRound, round1)
	}
}

// TestVersionFlag: -version prints the build stamp and exits cleanly
// without booting anything.
func TestVersionFlag(t *testing.T) {
	if err := runCtx(context.Background(), []string{"-version"}, nil); err != nil {
		t.Fatalf("-version returned %v", err)
	}
}

func sampleFeatures() string {
	var b strings.Builder
	b.WriteString("[")
	for i := 0; i < inputDim; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("0.1")
	}
	b.WriteString("]")
	return b.String()
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
