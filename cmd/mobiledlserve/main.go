// Command mobiledlserve runs the model-serving runtime as an HTTP server:
// it trains demonstration models on synthetic data — a plain MLP (optionally
// Deep-Compressed), a split/early-exit cascade, and a random-forest baseline
// — installs them as serving backends in one registry, and serves
// predictions with adaptive batching.
//
//	mobiledlserve -addr :8080 -batch 32 -window 2ms
//
// Endpoints:
//
//	POST /v1/predict  {"model":"mlp","features":[[...64 floats...]],
//	                   "options":{"top_k":3,"version":1,"no_perturb":false}}
//	GET  /v1/stats    p50/p99 latency, throughput, batch occupancy
//	GET  /v1/models   registry listing (kind, versions, compression ratio)
//	GET  /healthz
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"mobiledl/internal/baselines"
	"mobiledl/internal/compress"
	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/serve"
	"mobiledl/internal/split"
)

const (
	inputDim = 64
	classes  = 10
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiledlserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiledlserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	maxBatch := fs.Int("batch", 32, "max coalesced batch size")
	window := fs.Duration("window", 2*time.Millisecond, "batch latency budget")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	sparsity := fs.Float64("sparsity", 0.9, "pruning sparsity for the compressed model")
	bits := fs.Int("bits", 4, "quantization bits for the compressed model")
	seed := fs.Int64("seed", 1, "random seed")
	network := fs.String("network", "wifi", "simulated device link: wifi|lte|offline")
	sleepNet := fs.Bool("sleepnet", false, "sleep the simulated network latency for wall-clock realism")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := parseNetwork(*network)
	if err != nil {
		return err
	}

	fmt.Println("training demonstration models on synthetic data...")
	reg := serve.NewRegistry()
	if err := installModels(reg, *sparsity, *bits, *seed); err != nil {
		return err
	}

	srv := serve.NewServer(reg)
	defer srv.Close()
	batch := serve.BatcherConfig{MaxBatch: *maxBatch, MaxDelay: *window, Workers: *workers}
	for _, name := range []string{"mlp", "mlp-compressed", "cascade", "forest"} {
		rt, err := serve.NewRuntime(serve.RuntimeConfig{
			Registry: reg, Model: name, Batch: batch,
			Net: net, Seed: *seed, SleepNet: *sleepNet,
		})
		if err != nil {
			return err
		}
		srv.Add(rt)
	}

	for _, info := range reg.Snapshot() {
		line := fmt.Sprintf("serving %-15s v%d  %-8s %-15s %d params",
			info.Name, info.Version, info.Kind, info.Algorithm, info.Params)
		if info.Compressed {
			line += fmt.Sprintf("  (%.1fx compressed)", info.Ratio)
		}
		fmt.Println(line)
	}
	fmt.Printf("listening on %s (batch<=%d, window %s, network %s)\n", *addr, *maxBatch, *window, net.Kind)
	return http.ListenAndServe(*addr, srv.Handler())
}

func parseNetwork(s string) (mobile.Network, error) {
	switch s {
	case "wifi":
		return mobile.WiFiNetwork(), nil
	case "lte":
		return mobile.LTENetwork(), nil
	case "offline":
		return mobile.OfflineNetwork(), nil
	default:
		return mobile.Network{}, fmt.Errorf("unknown network %q (wifi|lte|offline)", s)
	}
}

// installModels trains four servables on one synthetic task, one per
// backend family: a plain MLP (DenseBackend), a Deep-Compressed copy of it
// (loaded through the registry's compression path), a split/early-exit
// cascade (CascadeBackend), and a random forest (BaselineBackend).
func installModels(reg *serve.Registry, sparsity float64, bits int, seed int64) error {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 800, Classes: classes, Dim: inputDim, Seed: seed})
	if err != nil {
		return err
	}

	// Plain MLP.
	model, _, err := core.NewMLP(core.MLPSpec{In: inputDim, Hidden: []int{64, 32}, Classes: classes, Seed: seed})
	if err != nil {
		return err
	}
	if err := core.TrainCentralized(model, fb.X, fb.Labels, classes, 4, seed); err != nil {
		return err
	}
	mlp, err := serve.NewDenseBackend(model)
	if err != nil {
		return err
	}
	if _, err := reg.Install("mlp", mlp); err != nil {
		return err
	}

	// Compressed copy, loaded through the registry's factory + pipeline path.
	blob, err := nn.EncodeWeights(model)
	if err != nil {
		return err
	}
	err = reg.Register("mlp-compressed", func() (serve.Backend, error) {
		m, _, err := core.NewMLP(core.MLPSpec{In: inputDim, Hidden: []int{64, 32}, Classes: classes, Seed: seed})
		if err != nil {
			return nil, err
		}
		return serve.NewDenseBackend(m)
	})
	if err != nil {
		return err
	}
	if _, err := reg.LoadCompressed("mlp-compressed", bytes.NewReader(blob),
		compress.PipelineConfig{Sparsity: sparsity, Bits: bits, Seed: seed}); err != nil {
		return err
	}

	// Split/early-exit cascade.
	rng := rand.New(rand.NewSource(seed))
	local := nn.NewSequential(nn.NewDense(rng, inputDim, 32), nn.NewTanh())
	cloud := nn.NewSequential(nn.NewDense(rng, 32, 64), nn.NewReLU(), nn.NewDense(rng, 64, classes))
	exit := nn.NewSequential(nn.NewDense(rng, 32, classes))
	pipe, err := split.New(split.Config{Local: local, Cloud: cloud, NullRate: 0.1, NoiseSigma: 0.5, Bound: 4})
	if err != nil {
		return err
	}
	tc := split.TrainConfig{
		Epochs: 4, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Rng: rng, NoisyFraction: 1,
	}
	if _, err := pipe.TrainCloud(fb.X, fb.Labels, classes, tc); err != nil {
		return err
	}
	cascade, err := split.NewEarlyExit(pipe, exit, 0.8)
	if err != nil {
		return err
	}
	exitCfg := tc
	exitCfg.NoisyFraction = 0
	if err := cascade.TrainExit(fb.X, fb.Labels, classes, exitCfg); err != nil {
		return err
	}
	cb, err := serve.NewCascadeBackend(cascade)
	if err != nil {
		return err
	}
	if _, err := reg.Install("cascade", cb); err != nil {
		return err
	}

	// Random-forest baseline behind the same batcher.
	forest := baselines.NewRandomForest()
	forest.NumTrees = 25
	forest.Seed = seed
	if err := forest.Fit(fb.X, fb.Labels, classes); err != nil {
		return err
	}
	fbk, err := serve.NewBaselineBackend(forest, inputDim)
	if err != nil {
		return err
	}
	if _, err := reg.Install("forest", fbk); err != nil {
		return err
	}
	return nil
}
