// Command mobiledlserve runs the model-serving runtime as an HTTP server:
// it trains demonstration models on synthetic data — a plain MLP (optionally
// Deep-Compressed), a split/early-exit cascade, and a random-forest baseline
// — installs them as serving backends in one registry, and serves
// predictions with adaptive batching.
//
//	mobiledlserve -addr :8080 -batch 32 -window 2ms
//
// Endpoints:
//
//	POST /v1/predict  {"model":"mlp","features":[[...64 floats...]],
//	                   "options":{"top_k":3,"version":1,"no_perturb":false},
//	                   "timeout_ms":250}
//	GET  /v1/stats    p50/p99 latency, windowed throughput, shed/expired
//	GET  /v1/models   registry listing (kind, versions, compression ratio,
//	                  training provenance)
//	GET  /v1/trace/recent  retained trace summaries (tail-based retention)
//	GET  /v1/trace/{id}    one trace's span tree
//	GET  /v1/backup   online store snapshot (with -data-dir; restorable)
//	GET  /metrics     Prometheus text exposition (serving + training + build)
//	GET  /healthz     readiness: 200 while serving, 503 while draining;
//	                  the "store" field reports ok|degraded|disabled
//
// With -data-dir the process is crash-safe: every published model version is
// appended to a WAL-backed store (fsync per publish, periodic snapshot
// compaction) and training round state is checkpointed between rounds. On
// boot the store replays — truncating any torn tail a crash left — the
// registry reinstalls recovered versions, and the federated coordinator
// resumes from its last checkpoint instead of round 0. Store failures at
// runtime degrade gracefully: publishes continue in RAM, /healthz reports
// "store":"degraded", and the predict path never touches disk.
//
// Predict requests are traced at the -trace-sample rate (an inbound W3C
// traceparent header with the sampled flag always traces and joins the
// caller's trace); finished traces are queryable from /v1/trace. Logs are
// structured (log/slog, -log-level text to stderr) and carry trace ids for
// correlation. -pprof mounts net/http/pprof under /debug/pprof/.
//
// Every predict request runs under a deadline (the -budget default or the
// request's timeout_ms); requests that outlive it are answered 504 and
// pruned before they cost a backend execution. Admission is bounded
// (-queue, -inflight): overload sheds with 429 + Retry-After instead of
// queueing doomed work. SIGINT/SIGTERM shut down gracefully — intake stops,
// in-flight batches drain, the registry closes.
//
// Several mobiledlserve processes become one logical service with the
// cluster flags: -peers seeds gossip membership (liveness, model/version
// inventory, load), a consistent-hash ring shards model ownership, and a
// /v1/predict for a model owned elsewhere is transparently forwarded to the
// owner — traceparent propagated, hops capped via X-MobileDL-Hops, slow or
// failed peers routed around by a per-peer score with bounded retries.
// -node-rps caps locally served predicts (shed 429 beyond) so per-node
// capacity is explicit; /healthz gains a "cluster" field
// (solo|joining|ok|partitioned) and /metrics the mobiledl_cluster_* family:
//
//	mobiledlserve -addr :8080 -node-id a -peers host2:8080,host3:8080
//	POST /v1/cluster/gossip   peer state exchange (internal)
//	GET  /v1/cluster/state    membership, liveness, routes per model
//
// With -train the server additionally runs the federated train-to-serve
// loop (internal/fedserve): a "fedmlp" model trains continuously on
// simulated non-IID mobile clients and every accepted round hot-publishes a
// new version that predict traffic migrates to mid-flight. The training
// control plane mounts next to the serving API:
//
//	POST /v1/train/start   start (or resume) federated rounds
//	POST /v1/train/pause   pause at the next round boundary
//	GET  /v1/train/status  round, accuracies, published versions, bytes
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobiledl/internal/baselines"
	"mobiledl/internal/cluster"
	"mobiledl/internal/compress"
	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/fedserve"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/serve"
	"mobiledl/internal/split"
	"mobiledl/internal/store"
	"mobiledl/internal/trace"
	"mobiledl/internal/version"
)

const (
	inputDim = 64
	classes  = 10
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "mobiledlserve:", err)
		os.Exit(1)
	}
}

// testEvent, when non-nil, observes process lifecycle milestones ("listen",
// "drain", "http-shutdown", "coord-stop", "server-close", "store-close") —
// the seam the full-process shutdown-ordering test hooks. Production never
// sets it.
var testEvent func(event, detail string)

func emitEvent(event, detail string) {
	if testEvent != nil {
		testEvent(event, detail)
	}
}

// runCtx is the whole process under a cancellable context: ctx cancellation
// is the graceful-shutdown trigger (what a SIGINT/SIGTERM delivers in
// production, what tests drive directly). restoreSignals, when non-nil, runs
// once shutdown begins so a second signal kills immediately.
func runCtx(ctx context.Context, args []string, restoreSignals func()) error {
	fs := flag.NewFlagSet("mobiledlserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	maxBatch := fs.Int("batch", 32, "max coalesced batch size")
	window := fs.Duration("window", 2*time.Millisecond, "batch latency budget")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	budget := fs.Duration("budget", time.Second, "default per-request deadline budget (0 = none; clients override with timeout_ms)")
	queueCap := fs.Int("queue", 0, "admission queue cap per model (0 = default)")
	inflight := fs.Int("inflight", 0, "max inflight requests per model (0 = default, negative = unlimited)")
	sparsity := fs.Float64("sparsity", 0.9, "pruning sparsity for the compressed model")
	bits := fs.Int("bits", 4, "quantization bits for the compressed model")
	seed := fs.Int64("seed", 1, "random seed")
	network := fs.String("network", "wifi", "simulated device link: wifi|lte|offline")
	sleepNet := fs.Bool("sleepnet", false, "sleep the simulated network latency for wall-clock realism")
	train := fs.Bool("train", false, "serve a federated train-to-serve loop (fedmlp) with the /v1/train control plane")
	trainClients := fs.Int("train-clients", 16, "simulated federated clients for -train")
	trainInterval := fs.Duration("train-interval", 250*time.Millisecond, "pacing between federated rounds for -train")
	drainGrace := fs.Duration("drain-grace", 500*time.Millisecond, "on shutdown, keep answering (with /healthz 503) this long before closing the listener, so load balancers observe the drain")
	logLevel := fs.String("log-level", "info", "structured log level: debug|info|warn|error")
	traceSample := fs.Float64("trace-sample", 0.1, "fraction of predict requests (and federated rounds) traced into /v1/trace (0 disables)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	dataDir := fs.String("data-dir", "", "durable model store directory: published versions and training checkpoints survive restarts (empty = in-RAM only)")
	demoModels := fs.Bool("demo-models", true, "train and serve the demonstration models (mlp, mlp-compressed, cascade, forest) at startup")
	serveModels := fs.String("serve-models", "", "comma-separated subset of the demo models to train and serve (empty = all four); the knob cluster deployments shard models across nodes with")
	nodeID := fs.String("node-id", "", "cluster node id (enables the cluster layer; defaults to the advertise address when -peers or -node-rps is set)")
	peers := fs.String("peers", "", "comma-separated seed peer addresses (host:port) to gossip cluster membership with")
	advertiseFlag := fs.String("advertise", "", "host:port peers use to reach this node (default: the bound listen address, with unspecified hosts rewritten to 127.0.0.1)")
	gossipInterval := fs.Duration("gossip-interval", time.Second, "cluster gossip exchange interval")
	nodeRPS := fs.Float64("node-rps", 0, "node serving capacity: locally served predicts/sec beyond which this node sheds 429 (0 = uncapped); forwarded requests are exempt")
	showVersion := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Printf("mobiledlserve %s\n", version.Version)
		return nil
	}
	netw, err := parseNetwork(*network)
	if err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{Sample: *traceSample})
	}

	reg := serve.NewRegistry()

	// The persistence layer opens (and recovers) before anything publishes,
	// and closes after the registry: the store's defer is registered first so
	// it runs last, giving the shutdown order drain -> batcher drain ->
	// registry close -> store close.
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(store.Options{Dir: *dataDir, Tracer: tracer, Logger: logger})
		if err != nil {
			return fmt.Errorf("open model store: %w", err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				logger.Error("store close failed", "err", err)
			}
			emitEvent("store-close", *dataDir)
		}()
		reg.SetStore(st)
	}

	// Register the federated model's factory before boot recovery so its
	// persisted versions can be rebuilt; the demo models are retrained fresh
	// each boot and recover nothing (their records are skipped).
	var fedFactory federated.ModelFactory
	if *train {
		_, fedFactory, err = core.NewMLP(core.MLPSpec{In: inputDim, Hidden: []int{64, 32}, Classes: classes, Seed: *seed + 102})
		if err != nil {
			return err
		}
		err = reg.Register("fedmlp", func() (serve.Backend, error) {
			m, err := fedFactory()
			if err != nil {
				return nil, err
			}
			return serve.NewDenseBackend(m)
		})
		if err != nil {
			return err
		}
	}
	if st != nil {
		restored, skipped, err := reg.RecoverFrom(st)
		if err != nil {
			return fmt.Errorf("recover model store: %w", err)
		}
		if restored > 0 || skipped > 0 {
			fmt.Printf("recovered %d model version(s) from %s (%d skipped: no registered factory)\n",
				restored, *dataDir, skipped)
		}
	}

	var served []string
	if *demoModels {
		want, err := parseServeModels(*serveModels)
		if err != nil {
			return err
		}
		fmt.Println("training demonstration models on synthetic data...")
		if err := installModels(reg, *sparsity, *bits, *seed, want); err != nil {
			return err
		}
		for _, name := range demoModelNames {
			if want[name] {
				served = append(served, name)
			}
		}
	}

	// The listener opens before the cluster/server wiring so the cluster
	// layer can advertise the actually-bound address (":0" in tests and the
	// multi-process harness resolves here). http.Server.Serve takes
	// ownership later; the deferred Close only matters on early error paths.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer func() { _ = ln.Close() }()

	// The cluster layer turns N processes into one logical service. It is on
	// when any of its knobs is set; -node-rps alone yields a capacity-gated
	// solo node (the single-node baseline of the cluster harness).
	var cl *cluster.Node
	if *peers != "" || *nodeID != "" || *nodeRPS > 0 {
		adv := *advertiseFlag
		if adv == "" {
			adv = advertiseAddr(ln.Addr())
		}
		id := *nodeID
		if id == "" {
			id = adv
		}
		cl, err = cluster.New(cluster.Config{
			NodeID: id, AdvertiseAddr: adv, Peers: splitPeers(*peers),
			GossipInterval: *gossipInterval, LocalRPS: *nodeRPS,
			Inventory: reg.Inventory, Tracer: tracer, Logger: logger,
		})
		if err != nil {
			return err
		}
	}

	scfg := serve.ServerConfig{DefaultTimeout: *budget, Tracer: tracer, Logger: logger}
	if cl != nil {
		scfg.ClusterStatus = cl.Status
	}
	srv := serve.NewServerWith(reg, scfg)
	defer func() {
		srv.Close()
		emitEvent("server-close", "")
	}()
	if st != nil {
		srv.AddMetricsSource(st.WriteMetrics)
	}
	batch := serve.BatcherConfig{
		MaxBatch: *maxBatch, MaxDelay: *window, Workers: *workers,
		QueueCap: *queueCap, MaxInflight: *inflight,
	}

	mux := http.NewServeMux()
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("pprof mounted at /debug/pprof/")
	}
	if *train {
		var ck fedserve.CheckpointStore
		if st != nil {
			ck = st
		}
		coord, err := setupTraining(reg, fedFactory, ck, *trainClients, *trainInterval, *seed, tracer, logger)
		if err != nil {
			return err
		}
		defer func() {
			coord.Stop()
			emitEvent("coord-stop", "")
		}()
		fedserve.NewControl(coord).Mount(mux)
		srv.AddMetricsSource(coord.WriteMetrics)
		served = append(served, "fedmlp")
		fmt.Println("federated train-to-serve loop ready: POST /v1/train/start to begin rounds")
	}

	for _, name := range served {
		rt, err := serve.NewRuntime(serve.RuntimeConfig{
			Registry: reg, Model: name, Batch: batch,
			Net: netw, Seed: *seed, SleepNet: *sleepNet,
			Logger: logger,
		})
		if err != nil {
			return err
		}
		srv.Add(rt)
	}
	mux.Handle("/", srv.Handler())

	// The cluster handler wraps the whole mux: it owns /v1/cluster/* and
	// intercepts /v1/predict for routing; everything else passes through.
	var handler http.Handler = mux
	if cl != nil {
		handler = cl.Handler(mux)
		srv.AddMetricsSource(cl.WriteMetrics)
		cl.Start()
		defer cl.Stop()
		fmt.Printf("cluster node %q gossiping every %s (peers: %q, node-rps %g)\n",
			*nodeID, *gossipInterval, *peers, *nodeRPS)
	}

	for _, info := range reg.Snapshot() {
		line := fmt.Sprintf("serving %-15s v%d  %-8s %-15s %d params",
			info.Name, info.Version, info.Kind, info.Algorithm, info.Params)
		if info.Compressed {
			line += fmt.Sprintf("  (%.1fx compressed)", info.Ratio)
		}
		fmt.Println(line)
	}
	// A configured http.Server over the listener opened above: header and
	// idle timeouts bound slow-loris and dead keep-alive connections,
	// Shutdown gives ctx cancellation (SIGTERM/SIGINT in production) a
	// graceful path — stop intake, let in-flight handlers finish, then (via
	// the deferred closes above) drain the batchers, release the registry,
	// and close the store — and announcing only here lets :0 tests discover
	// the bound port once serving is actually imminent.
	fmt.Printf("mobiledlserve %s listening on %s (batch<=%d, window %s, budget %s, network %s, trace-sample %g)\n",
		version.Version, ln.Addr(), *maxBatch, *window, *budget, netw.Kind, *traceSample)
	emitEvent("listen", ln.Addr().String())
	hsrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down: stopping intake, draining in-flight requests...")
	// Flip /healthz to 503 first and keep the listener open for the grace
	// window so load balancers actually observe the drain and stop routing
	// here; only then stop intake and let in-flight handlers finish.
	srv.StartDrain()
	emitEvent("drain", "")
	if restoreSignals != nil {
		restoreSignals() // restore default signal disposition: a second signal kills now
	}
	time.Sleep(*drainGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hsrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	emitEvent("http-shutdown", "")
	return nil
}

// buildLogger builds the process logger: slog text to stderr at the
// requested level.
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// setupTraining builds the federated train-to-serve coordinator: non-IID
// client shards over a fresh synthetic task (same 64-dim/10-class interface
// as the other served models), the idle/charging/WiFi eligibility scheduler,
// and publication into the shared registry as "fedmlp". The coordinator
// publishes the untrained model immediately so the runtime can attach; the
// round loop starts via POST /v1/train/start. With a checkpoint store it
// resumes from the last persisted round instead of round 0.
func setupTraining(reg *serve.Registry, factory federated.ModelFactory, ck fedserve.CheckpointStore, clients int, interval time.Duration, seed int64, tracer *trace.Tracer, logger *slog.Logger) (*fedserve.Coordinator, error) {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 2000, Classes: classes, Dim: inputDim, Spread: 1.3, Seed: seed + 100,
	})
	if err != nil {
		return nil, err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 101))
	shards, err := data.ShardNonIID(rng, trX, trY, clients)
	if err != nil {
		return nil, err
	}
	sched, err := federated.NewScheduler(rng, clients, 0.9, 0.9, 0.9)
	if err != nil {
		return nil, err
	}
	return fedserve.NewCoordinator(fedserve.Config{
		Factory: factory, Shards: shards, Classes: classes,
		EvalX: teX, EvalY: teY,
		ClientFraction: 0.5, LocalEpochs: 2, LocalBatch: 32, LocalLR: 0.08,
		Seed: seed + 103, Scheduler: sched,
		RoundInterval: interval,
		Registry:      reg, Model: "fedmlp",
		Checkpoint: ck,
		Tracer:     tracer, Logger: logger,
	})
}

// demoModelNames is the full demonstration-model set, in serving order.
var demoModelNames = []string{"mlp", "mlp-compressed", "cascade", "forest"}

// parseServeModels resolves -serve-models: empty selects every demo model,
// otherwise a comma-separated subset of demoModelNames.
func parseServeModels(s string) (map[string]bool, error) {
	want := make(map[string]bool, len(demoModelNames))
	if strings.TrimSpace(s) == "" {
		for _, n := range demoModelNames {
			want[n] = true
		}
		return want, nil
	}
	valid := make(map[string]bool, len(demoModelNames))
	for _, n := range demoModelNames {
		valid[n] = true
	}
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !valid[n] {
			return nil, fmt.Errorf("unknown model %q in -serve-models (valid: %s)", n, strings.Join(demoModelNames, ","))
		}
		want[n] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-serve-models %q selects no models", s)
	}
	return want, nil
}

// splitPeers parses the -peers flag into dial addresses.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// advertiseAddr turns the bound listener address into something peers can
// dial: an unspecified host (":8080" binds the wildcard address) becomes
// 127.0.0.1, so same-machine clusters work out of the box; multi-machine
// deployments set -advertise explicitly.
func advertiseAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func parseNetwork(s string) (mobile.Network, error) {
	switch s {
	case "wifi":
		return mobile.WiFiNetwork(), nil
	case "lte":
		return mobile.LTENetwork(), nil
	case "offline":
		return mobile.OfflineNetwork(), nil
	default:
		return mobile.Network{}, fmt.Errorf("unknown network %q (wifi|lte|offline)", s)
	}
}

// installModels trains the selected servables on one synthetic task, one
// per backend family: a plain MLP (DenseBackend), a Deep-Compressed copy of
// it (loaded through the registry's compression path), a split/early-exit
// cascade (CascadeBackend), and a random forest (BaselineBackend). want
// filters which to train — cluster deployments shard the set across nodes —
// and training mlp-compressed trains the MLP it compresses even when the
// plain model is not selected.
func installModels(reg *serve.Registry, sparsity float64, bits int, seed int64, want map[string]bool) error {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 800, Classes: classes, Dim: inputDim, Seed: seed})
	if err != nil {
		return err
	}

	if want["mlp"] || want["mlp-compressed"] {
		// Plain MLP (also the source weights for the compressed copy).
		model, _, err := core.NewMLP(core.MLPSpec{In: inputDim, Hidden: []int{64, 32}, Classes: classes, Seed: seed})
		if err != nil {
			return err
		}
		if err := core.TrainCentralized(model, fb.X, fb.Labels, classes, 4, seed); err != nil {
			return err
		}
		if want["mlp"] {
			mlp, err := serve.NewDenseBackend(model)
			if err != nil {
				return err
			}
			if _, err := reg.Install("mlp", mlp); err != nil {
				return err
			}
		}
		if want["mlp-compressed"] {
			// Compressed copy, loaded through the registry's factory +
			// pipeline path.
			blob, err := nn.EncodeWeights(model)
			if err != nil {
				return err
			}
			err = reg.Register("mlp-compressed", func() (serve.Backend, error) {
				m, _, err := core.NewMLP(core.MLPSpec{In: inputDim, Hidden: []int{64, 32}, Classes: classes, Seed: seed})
				if err != nil {
					return nil, err
				}
				return serve.NewDenseBackend(m)
			})
			if err != nil {
				return err
			}
			if _, err := reg.LoadCompressed("mlp-compressed", bytes.NewReader(blob),
				compress.PipelineConfig{Sparsity: sparsity, Bits: bits, Seed: seed}); err != nil {
				return err
			}
		}
	}

	if want["cascade"] {
		// Split/early-exit cascade.
		rng := rand.New(rand.NewSource(seed))
		local := nn.NewSequential(nn.NewDense(rng, inputDim, 32), nn.NewTanh())
		cloud := nn.NewSequential(nn.NewDense(rng, 32, 64), nn.NewReLU(), nn.NewDense(rng, 64, classes))
		exit := nn.NewSequential(nn.NewDense(rng, 32, classes))
		pipe, err := split.New(split.Config{Local: local, Cloud: cloud, NullRate: 0.1, NoiseSigma: 0.5, Bound: 4})
		if err != nil {
			return err
		}
		tc := split.TrainConfig{
			Epochs: 4, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
			Rng: rng, NoisyFraction: 1,
		}
		if _, err := pipe.TrainCloud(fb.X, fb.Labels, classes, tc); err != nil {
			return err
		}
		cascade, err := split.NewEarlyExit(pipe, exit, 0.8)
		if err != nil {
			return err
		}
		exitCfg := tc
		exitCfg.NoisyFraction = 0
		if err := cascade.TrainExit(fb.X, fb.Labels, classes, exitCfg); err != nil {
			return err
		}
		cb, err := serve.NewCascadeBackend(cascade)
		if err != nil {
			return err
		}
		if _, err := reg.Install("cascade", cb); err != nil {
			return err
		}
	}

	if want["forest"] {
		// Random-forest baseline behind the same batcher.
		forest := baselines.NewRandomForest()
		forest.NumTrees = 25
		forest.Seed = seed
		if err := forest.Fit(fb.X, fb.Labels, classes); err != nil {
			return err
		}
		fbk, err := serve.NewBaselineBackend(forest, inputDim)
		if err != nil {
			return err
		}
		if _, err := reg.Install("forest", fbk); err != nil {
			return err
		}
	}
	return nil
}
