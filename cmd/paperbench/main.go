// Command paperbench regenerates every table and figure of the paper's
// evaluation (DESIGN.md experiments E1-E13). Run with no flags to execute
// the full suite, or select one experiment with -exp.
//
//	paperbench                 # everything, full scale
//	paperbench -exp table1     # just Table I
//	paperbench -scale quick    # reduced workloads (seconds, CI-friendly)
//	paperbench -list           # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"mobiledl/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "", "experiment id to run (default: all)")
		scale = flag.String("scale", "full", `workload scale: "quick" or "full"`)
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Printf("%-12s %s\n", name, experiments.Describe(name))
		}
		return nil
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.Quick
	case "full":
		s = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}

	if *exp == "" {
		return experiments.RunAll(os.Stdout, s)
	}
	fmt.Printf("===== %s — %s =====\n", *exp, experiments.Describe(*exp))
	return experiments.Run(os.Stdout, *exp, s)
}
