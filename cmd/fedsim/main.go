// Command fedsim runs million-client federated serving scenarios: a
// simulated heterogeneous population (churn, stragglers, clock skew,
// adversaries) trains through a real coordinator while a diurnal traffic
// generator replays load against the live serving stack and judges SLOs
// from /metrics.
//
//	fedsim                          # every named scenario, default scale
//	fedsim -scenario poisoned10     # one scenario
//	fedsim -full                    # full-scale benchmark (500k clients)
//	fedsim -clients 1000000         # explicit population size
//	fedsim -out SIMBENCH.md         # write the markdown report to a file
//	fedsim -replay-targets http://n1:8080,http://n2:8080 \
//	       -replay-model fedmlp -replay-dim 64             # cluster mode
//	fedsim -list                    # scenario ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mobiledl/internal/sim"
)

// fullClients is the population the -full benchmark runs (the committed
// SIMBENCH report's scale).
const fullClients = 500_000

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "", "scenario id to run (default: all)")
		clients  = flag.Int("clients", 0, "population size override (0 = scenario default)")
		rounds   = flag.Int("rounds", 0, "round-count override")
		seed     = flag.Int64("seed", 0, "scenario seed override")
		workers  = flag.Int("workers", 0, "coordinator worker pool (0 = GOMAXPROCS)")
		full     = flag.Bool("full", false, fmt.Sprintf("full-scale benchmark (%d clients)", fullClients))
		targets  = flag.String("replay-targets", "", "comma-separated base URLs to replay against (cluster mode)")
		rmodel   = flag.String("replay-model", "", "model name the cluster-mode replay posts (default: sim)")
		rdim     = flag.Int("replay-dim", 0, "feature width for the cluster-mode replay (default: the sim model's)")
		out      = flag.String("out", "", "write the markdown report here (default stdout)")
		date     = flag.String("date", "", "date stamp for the report header (default today)")
		list     = flag.Bool("list", false, "list scenario ids and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range sim.Scenarios() {
			fmt.Printf("%-14s clients=%d rounds=%d replay=%v\n",
				sc.Name, defaulted(sc.Clients, 20000), defaulted(sc.Rounds, 8), sc.Replay != nil)
		}
		return nil
	}

	var scenarios []sim.Scenario
	if *scenario == "" {
		scenarios = sim.Scenarios()
	} else {
		sc, err := sim.ByName(*scenario)
		if err != nil {
			return err
		}
		scenarios = []sim.Scenario{sc}
	}

	opts := sim.Options{Workers: *workers, ReplayModel: *rmodel, ReplayDim: *rdim}
	if *targets != "" {
		for _, tgt := range strings.Split(*targets, ",") {
			if tgt = strings.TrimSpace(tgt); tgt != "" {
				opts.ReplayTargets = append(opts.ReplayTargets, tgt)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []*sim.Result
	for _, sc := range scenarios {
		if *full {
			sc.Clients = fullClients
		}
		if *clients > 0 {
			sc.Clients = *clients
		}
		if *rounds > 0 {
			sc.Rounds = *rounds
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		fmt.Fprintf(os.Stderr, "fedsim: running %s (%d clients)...\n", sc.Name, defaulted(sc.Clients, 20000))
		began := time.Now()
		r, err := sim.Run(ctx, sc, opts)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		fmt.Fprintf(os.Stderr, "fedsim: %s done in %s (%d rounds, best acc %.4f)\n",
			sc.Name, time.Since(began).Round(time.Millisecond), r.Rounds, r.BestAccuracy)
		results = append(results, r)
	}

	meta := sim.RunMeta{Date: *date, Full: *full, Workers: *workers}
	if meta.Date == "" {
		meta.Date = time.Now().Format("2006-01-02")
	}
	if meta.Workers == 0 {
		meta.Workers = runtime.GOMAXPROCS(0)
	}
	if host, err := os.Hostname(); err == nil {
		meta.Host = host
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	sim.WriteReport(w, meta, results)

	// A full-scale run is also a gate: exit nonzero if any SLO failed or a
	// scenario fell apart, so CI can call fedsim directly.
	for _, r := range results {
		for _, rep := range r.Replay {
			if rep != nil && !rep.SLOPass {
				return fmt.Errorf("scenario %s violated its SLO: %v", r.Scenario.Name, rep.Violations)
			}
		}
	}
	return nil
}

// defaulted renders a zero "use the default" knob as its effective value.
func defaulted(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
