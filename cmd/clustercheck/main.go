// Command clustercheck drives mobiledlserve's multi-node serving mode as an
// acceptance harness, exercised two ways:
//
//	clustercheck -bin ./mobiledlserve -mode check
//	    Measures a capacity-gated solo baseline, then boots a 3-node cluster
//	    sharding three demo models at replication factor 2, asserts the
//	    aggregate /v1/predict throughput is at least 2x the single node,
//	    SIGKILLs one node mid-load, and asserts every model stays servable
//	    through the survivors with consistent model versions. Exits non-zero
//	    on any violated invariant. 429s are counted as backpressure (the
//	    capacity gate doing its job), never as failures.
//
//	clustercheck -bin ./mobiledlserve -mode up
//	    Boots the same 3-node topology on local ports and leaves it running
//	    for interactive poking until interrupted.
//
// Per-node capacity is modeled with mobiledlserve's -node-rps token bucket,
// so the 2x scaling claim is about admission capacity — what a cluster of
// fixed-size nodes can serve — and holds even when all three processes share
// one machine (as in CI).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

const featureDim = 64

type node struct {
	id   string
	addr string
	cmd  *exec.Cmd
}

// reservePorts grabs n distinct loopback ports by binding and releasing
// them, so peer flags can reference addresses before the processes exist.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

func startNode(bin, id, addr, models string, peers []string, rps float64) (*node, error) {
	args := []string{
		"-addr", addr,
		"-node-id", id,
		"-serve-models", models,
		"-node-rps", fmt.Sprintf("%g", rps),
		"-gossip-interval", "100ms",
		"-trace-sample", "0",
		"-log-level", "error",
	}
	if models == "" {
		args = append(args, "-demo-models=false")
	}
	if len(peers) > 0 {
		args = append(args, "-peers", strings.Join(peers, ","))
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", id, err)
	}
	n := &node{id: id, addr: addr, cmd: cmd}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return n, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	n.kill()
	return nil, fmt.Errorf("node %s never became healthy on %s", id, addr)
}

func (n *node) kill() {
	if n == nil || n.cmd == nil || n.cmd.Process == nil {
		return
	}
	_ = n.cmd.Process.Kill() // SIGKILL: the crash case, not a graceful drain
	_, _ = n.cmd.Process.Wait()
}

func (n *node) terminate() {
	if n == nil || n.cmd == nil || n.cmd.Process == nil {
		return
	}
	_ = n.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = n.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = n.cmd.Process.Kill()
	}
}

// waitConverged polls /v1/cluster/state on every node until each sees the
// full membership with status ok and a route for every model.
func waitConverged(nodes []*node, models []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		converged := true
		for _, n := range nodes {
			var st struct {
				Status  string              `json:"status"`
				Members []json.RawMessage   `json:"members"`
				Routes  map[string][]string `json:"routes"`
			}
			resp, err := http.Get("http://" + n.addr + "/v1/cluster/state")
			if err != nil {
				converged = false
				break
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil || st.Status != "ok" || len(st.Members) != len(nodes) {
				converged = false
				break
			}
			for _, m := range models {
				if len(st.Routes[m]) == 0 {
					converged = false
					break
				}
			}
			if !converged {
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster did not converge within %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// loadStats aggregates one load phase. Versions maps model -> set of
// model_version values observed in 200 responses — the wrong-version check.
type loadStats struct {
	mu       sync.Mutex
	OK       int
	Shed     int
	Fail     int
	Elapsed  time.Duration
	Versions map[string]map[int]int
	FailMsgs map[string]int
}

func (s *loadStats) rate() float64 { return float64(s.OK) / s.Elapsed.Seconds() }

func (s *loadStats) record(model string, status int, version int, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case status == http.StatusOK:
		s.OK++
		if s.Versions[model] == nil {
			s.Versions[model] = make(map[int]int)
		}
		s.Versions[model][version]++
	case status == http.StatusTooManyRequests:
		s.Shed++ // backpressure, not failure
	default:
		s.Fail++
		if errMsg != "" && len(s.FailMsgs) < 8 {
			s.FailMsgs[fmt.Sprintf("%d: %s", status, errMsg)]++
		}
	}
}

func predictBody(model string) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"model":%q,"features":[[`, model)
	for i := 0; i < featureDim; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("0.1")
	}
	b.WriteString("]]}")
	return b.Bytes()
}

// runLoad sprays single-row predicts for d, round-robining workers over
// (entry address x model), and returns the aggregate stats. midLoad, when
// non-nil, runs once at roughly d/3 — the kill-one-node hook.
func runLoad(addrs, models []string, workers int, d time.Duration, midLoad func()) *loadStats {
	stats := &loadStats{Versions: make(map[string]map[int]int), FailMsgs: make(map[string]int)}
	bodies := make(map[string][]byte, len(models))
	for _, m := range models {
		bodies[m] = predictBody(m)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	start := time.Now()
	var once sync.Once
	if midLoad != nil {
		go func() {
			select {
			case <-time.After(d / 3):
				once.Do(midLoad)
			case <-ctx.Done():
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				model := models[(w+i)%len(models)]
				addr := addrs[(w+i)%len(addrs)]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					"http://"+addr+"/v1/predict", bytes.NewReader(bodies[model]))
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() == nil {
						stats.record(model, 0, 0, err.Error())
					}
					time.Sleep(5 * time.Millisecond)
					continue
				}
				var out struct {
					Rows []struct {
						ModelVersion int `json:"model_version"`
					} `json:"rows"`
					Error string `json:"error"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				version := 0
				if len(out.Rows) > 0 {
					version = out.Rows[0].ModelVersion
				}
				stats.record(model, resp.StatusCode, version, out.Error)
				// Pace slightly so the loopback client does not monopolize the
				// CPU the servers need; demand still far exceeds capacity.
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return stats
}

func describeVersions(v map[string]map[int]int) string {
	models := make([]string, 0, len(v))
	for m := range v {
		models = append(models, m)
	}
	sort.Strings(models)
	parts := make([]string, 0, len(models))
	for _, m := range models {
		vers := make([]string, 0, len(v[m]))
		for ver, cnt := range v[m] {
			vers = append(vers, fmt.Sprintf("v%d x%d", ver, cnt))
		}
		sort.Strings(vers)
		parts = append(parts, fmt.Sprintf("%s{%s}", m, strings.Join(vers, ", ")))
	}
	return strings.Join(parts, "  ")
}

// singleVersionPerModel is the no-wrong-version invariant: every 200 for a
// model reported the same model_version no matter which node answered.
func singleVersionPerModel(v map[string]map[int]int) error {
	for m, vers := range v {
		if len(vers) > 1 {
			return fmt.Errorf("model %s served mixed versions: %v", m, vers)
		}
	}
	return nil
}

func checkServable(addrs, models []string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	for _, addr := range addrs {
		for _, m := range models {
			var lastErr error
			served := false
			// The survivor may still be timing out the dead peer; allow a few
			// retries across the suspicion window.
			for attempt := 0; attempt < 20 && !served; attempt++ {
				resp, err := client.Post("http://"+addr+"/v1/predict", "application/json",
					bytes.NewReader(predictBody(m)))
				if err != nil {
					lastErr = err
				} else {
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						served = true
						break
					}
					lastErr = fmt.Errorf("status %d", code)
				}
				time.Sleep(250 * time.Millisecond)
			}
			if !served {
				return fmt.Errorf("model %s not servable via %s after node kill: %v", m, addr, lastErr)
			}
		}
	}
	return nil
}

// topology is the fixed 3-node shard map: every model on exactly two nodes,
// so any single node failure leaves every model servable.
var topology = []struct{ id, models string }{
	{"n1", "mlp,cascade"},
	{"n2", "cascade,forest"},
	{"n3", "forest,mlp"},
}

var clusterModels = []string{"mlp", "cascade", "forest"}

func bootCluster(bin string, rps float64) ([]*node, error) {
	addrs, err := reservePorts(len(topology))
	if err != nil {
		return nil, err
	}
	nodes := make([]*node, 0, len(topology))
	for i, spec := range topology {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		n, err := startNode(bin, spec.id, addrs[i], spec.models, peers, rps)
		if err != nil {
			for _, booted := range nodes {
				booted.kill()
			}
			return nil, err
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

func runCheck(bin string, rps float64, workers int, d time.Duration) error {
	fmt.Printf("## clustercheck (node capacity %g rps, %d workers, %s per phase)\n\n", rps, workers, d)

	// Phase 1: solo baseline — one node holding all three models.
	soloAddrs, err := reservePorts(1)
	if err != nil {
		return err
	}
	solo, err := startNode(bin, "solo", soloAddrs[0], strings.Join(clusterModels, ","), nil, rps)
	if err != nil {
		return err
	}
	baseline := runLoad([]string{solo.addr}, clusterModels, workers, d, nil)
	solo.terminate()
	fmt.Printf("solo baseline:      %7.1f ok/s  (%d ok, %d shed, %d failed)  versions: %s\n",
		baseline.rate(), baseline.OK, baseline.Shed, baseline.Fail, describeVersions(baseline.Versions))
	if baseline.Fail > 0 {
		return fmt.Errorf("solo phase had %d hard failures: %v", baseline.Fail, baseline.FailMsgs)
	}
	if err := singleVersionPerModel(baseline.Versions); err != nil {
		return err
	}

	// Phase 2: 3-node cluster, same per-node capacity, models sharded at
	// replication factor 2.
	nodes, err := bootCluster(bin, rps)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	if err := waitConverged(nodes, clusterModels, 30*time.Second); err != nil {
		return err
	}
	entries := make([]string, len(nodes))
	for i, n := range nodes {
		entries[i] = n.addr
	}
	cluster := runLoad(entries, clusterModels, workers, d, nil)
	fmt.Printf("3-node cluster:     %7.1f ok/s  (%d ok, %d shed, %d failed)  versions: %s\n",
		cluster.rate(), cluster.OK, cluster.Shed, cluster.Fail, describeVersions(cluster.Versions))
	if cluster.Fail > 0 {
		return fmt.Errorf("cluster phase had %d hard failures: %v", cluster.Fail, cluster.FailMsgs)
	}
	if err := singleVersionPerModel(cluster.Versions); err != nil {
		return err
	}
	ratio := cluster.rate() / baseline.rate()
	fmt.Printf("scaling:            %7.2fx aggregate throughput vs solo (requirement: >= 2x)\n\n", ratio)
	if ratio < 2 {
		return fmt.Errorf("3-node throughput only %.2fx the solo baseline, want >= 2x", ratio)
	}

	// Phase 3: SIGKILL one node mid-load; every model must remain servable
	// through the survivors (each has a replica), versions stay consistent.
	victim := nodes[1] // holds cascade+forest; both survive on n1/n3
	survivors := []string{nodes[0].addr, nodes[2].addr}
	killed := false
	chaos := runLoad(entries, clusterModels, workers, d, func() {
		fmt.Printf("killing %s (SIGKILL) mid-load...\n", victim.id)
		victim.kill()
		killed = true
	})
	if !killed {
		return fmt.Errorf("kill hook never fired")
	}
	if err := checkServable(survivors, clusterModels); err != nil {
		return err
	}
	if err := singleVersionPerModel(chaos.Versions); err != nil {
		return err
	}
	fmt.Printf("kill-one-node:      %7.1f ok/s during chaos (%d ok, %d shed, %d transient errors)  versions: %s\n",
		chaos.rate(), chaos.OK, chaos.Shed, chaos.Fail, describeVersions(chaos.Versions))
	fmt.Printf("post-kill:          every model servable via both survivors (replication factor 2)\n")
	fmt.Printf("\nPASS: >= 2x scaling, failover keeps all models servable, no mixed versions\n")
	return nil
}

func runUp(bin string, rps float64) error {
	nodes, err := bootCluster(bin, rps)
	if err != nil {
		return err
	}
	if err := waitConverged(nodes, clusterModels, 30*time.Second); err != nil {
		for _, n := range nodes {
			n.kill()
		}
		return err
	}
	fmt.Println("cluster up:")
	for i, n := range nodes {
		fmt.Printf("  %s  http://%s  (%s)\n", n.id, n.addr, topology[i].models)
	}
	fmt.Println("predict against any node; Ctrl-C to tear down")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	for _, n := range nodes {
		n.terminate()
	}
	return nil
}

func main() {
	bin := flag.String("bin", "./mobiledlserve", "path to the mobiledlserve binary")
	mode := flag.String("mode", "check", `"check" runs the acceptance suite, "up" leaves a 3-node cluster running`)
	rps := flag.Float64("rps", 150, "per-node admission capacity (-node-rps) for every node")
	workers := flag.Int("workers", 8, "concurrent load workers")
	duration := flag.Duration("duration", 6*time.Second, "length of each load phase")
	flag.Parse()

	var err error
	switch *mode {
	case "check":
		err = runCheck(*bin, *rps, *workers, *duration)
	case "up":
		err = runUp(*bin, *rps)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustercheck:", err)
		os.Exit(1)
	}
}
