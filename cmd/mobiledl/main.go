// Command mobiledl is the umbrella CLI over the library: it demonstrates the
// main workflows end to end on synthetic data.
//
//	mobiledl mood       # train DeepMood, report held-out mood accuracy
//	mobiledl identify   # train DEEPSERVICE, report identification accuracy
//	mobiledl federate   # run FedAvg over simulated clients
//	mobiledl compress   # run the Deep Compression pipeline on an MLP
//	mobiledl plan       # compare local/cloud/split inference placement
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/federated"
	"mobiledl/internal/mobile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiledl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiledl", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	users := fs.Int("users", 5, "synthetic users")
	sessions := fs.Int("sessions", 30, "sessions per user")
	epochs := fs.Int("epochs", 6, "training epochs")
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("usage: mobiledl <mood|identify|federate|compress|plan> [flags]")
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	switch cmd {
	case "mood":
		return runMood(*users, *sessions, *epochs, *seed)
	case "identify":
		return runIdentify(*users, *sessions, *epochs, *seed)
	case "federate":
		return runFederate(*seed)
	case "compress":
		return runCompress(*seed)
	case "plan":
		return runPlan()
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func corpusSplit(users, sessions int, moodEffect float64, seed int64) (train, test []*data.Session, err error) {
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      moodEffect,
		Seed:            seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return data.SplitSessions(rand.New(rand.NewSource(seed)), corpus.Sessions, 0.8)
}

func runMood(users, sessions, epochs int, seed int64) error {
	train, test, err := corpusSplit(users, sessions, 1.0, seed)
	if err != nil {
		return err
	}
	fmt.Printf("training DeepMood on %d sessions...\n", len(train))
	model, err := core.TrainMoodModel(train, deepmood.FusionFC, epochs, seed)
	if err != nil {
		return err
	}
	rep, err := model.Evaluate(test)
	if err != nil {
		return err
	}
	fmt.Printf("held-out mood accuracy: %.2f%%  weighted F1: %.2f%%\n", rep.Accuracy*100, rep.F1*100)
	return nil
}

func runIdentify(users, sessions, epochs int, seed int64) error {
	train, test, err := corpusSplit(users, sessions, 0.3, seed)
	if err != nil {
		return err
	}
	fmt.Printf("training DEEPSERVICE (%d users) on %d sessions...\n", users, len(train))
	id, err := core.TrainIdentifier(train, users, epochs, seed)
	if err != nil {
		return err
	}
	rep, err := id.Evaluate(deepmood.NormalizeAll(test))
	if err != nil {
		return err
	}
	fmt.Printf("held-out identification accuracy: %.2f%%  weighted F1: %.2f%%\n",
		rep.Accuracy*100, rep.F1*100)
	return nil
}

func runFederate(seed int64) error {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 1000, Classes: 5, Dim: 10, Seed: seed})
	if err != nil {
		return err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return err
	}
	shards, err := data.ShardNonIID(rand.New(rand.NewSource(seed)), trX, trY, 10)
	if err != nil {
		return err
	}
	_, factory, err := core.NewMLP(core.MLPSpec{In: 10, Hidden: []int{24}, Classes: 5, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("running FedAvg over 10 non-IID clients...")
	_, stats, err := core.Federate(factory, shards, 5, federated.FedAvgConfig{
		Rounds: 30, ClientFraction: 0.5, LocalEpochs: 5, LocalBatch: 16,
		LocalLR: 0.08, Seed: seed, Workers: 4,
		Eval: federated.AccuracyEval(teX, teY), EvalEvery: 5,
	})
	if err != nil {
		return err
	}
	for _, s := range stats {
		if s.Accuracy < 0 {
			continue
		}
		fmt.Printf("round %3d  loss %.4f  accuracy %.2f%%  traffic %.2f MB\n",
			s.Round, s.TrainLoss, s.Accuracy*100,
			float64(s.CumulativeUpBytes+s.CumulativeDownBytes)/1e6)
	}
	return nil
}

func runCompress(seed int64) error {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 800, Classes: 5, Dim: 16, Seed: seed})
	if err != nil {
		return err
	}
	model, _, err := core.NewMLP(core.MLPSpec{In: 16, Hidden: []int{64, 32}, Classes: 5, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("training the reference MLP...")
	if err := core.TrainCentralized(model, fb.X, fb.Labels, 5, 25, seed); err != nil {
		return err
	}
	res, err := core.CompressForMobile(model, 0.9, 4)
	if err != nil {
		return err
	}
	fmt.Printf("dense:     %8d B\npruned:    %8d B\nquantized: %8d B\nhuffman:   %8d B\nratio:     %.1fx\n",
		res.Sizes.DenseBytes, res.Sizes.PrunedBytes, res.Sizes.QuantizedBytes,
		res.Sizes.HuffmanBytes, res.Sizes.Ratio())
	return nil
}

func runPlan() error {
	model, _, err := core.NewMLP(core.MLPSpec{In: 256, Hidden: []int{512, 512, 256}, Classes: 10, Seed: 1})
	if err != nil {
		return err
	}
	for _, net := range []mobile.Network{mobile.WiFiNetwork(), mobile.LTENetwork(), mobile.OfflineNetwork()} {
		fmt.Printf("\nnetwork: %s\n", net.Kind)
		for _, p := range core.PlanInference(mobile.MidrangePhone(), net, model, 64<<10, 4<<10) {
			if !p.Feasible {
				fmt.Printf("  %-6s infeasible (%s)\n", p.Placement, p.Reason)
				continue
			}
			fmt.Printf("  %-6s latency %8.2f ms  battery %8.4f mJ\n",
				p.Placement, p.LatencyMs, p.EnergyJ*1000)
		}
	}
	return nil
}
