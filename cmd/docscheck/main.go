// Command docscheck is the repository's markdown link checker: it walks
// every .md file, extracts inline [text](target) links, and verifies that
// relative targets exist on disk. External (http/https/mailto) links and
// pure in-page anchors are skipped — CI must not depend on network
// reachability — and reference-style [text][ref] links are not parsed.
// Exit status 1 lists every broken link.
//
//	go run ./cmd/docscheck        # check the repository root
//	go run ./cmd/docscheck dir    # check another tree
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); the target is group 1.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, checked, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, b := range broken {
		fmt.Println(b)
	}
	if len(broken) > 0 {
		fmt.Printf("docscheck: %d broken of %d relative links\n", len(broken), checked)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d relative links ok\n", checked)
}

func check(root string) (broken []string, checked int, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			checked++
			// Strip an in-page anchor from a file target.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, serr := os.Stat(resolved); serr != nil {
				broken = append(broken, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	return broken, checked, err
}

// skip reports link targets the checker does not verify: absolute URLs,
// mail links, and pure in-page anchors.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
