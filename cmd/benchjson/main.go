// Command benchjson converts `go test -bench` output on stdin into a JSON
// snapshot, so the perf trajectory of the substrate is tracked as a
// committed artifact across PRs (`make bench-json` writes BENCH_<date>.json).
//
// It parses standard benchmark result lines, e.g.
//
//	BenchmarkMatMul-8   7141   328643 ns/op   32816 B/op   2 allocs/op
//	BenchmarkServeThroughput/batch32-8   165510   6442 ns/op   155225 req/s
//
// keeping the canonical ns/op, B/op, and allocs/op columns as top-level
// fields and any custom testing.B metrics (req/s, rows/batch) in a metrics
// map. When the same benchmark appears more than once on stdin (the Makefile
// runs the quick sweep first and the longer substrate pass second), the last
// occurrence wins.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file layout: run metadata plus every parsed result.
type Snapshot struct {
	Date    string   `json:"date"`
	Go      string   `json:"go,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func parseLine(fields []string) (Result, bool) {
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	// Strip the -GOMAXPROCS suffix so names stay stable across hosts.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	snap := Snapshot{Date: time.Now().UTC().Format("2006-01-02")}
	byName := map[string]Result{}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:"):
			continue
		case strings.HasPrefix(line, "pkg:"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r, ok := parseLine(fields)
		if !ok {
			continue
		}
		byName[r.Name] = r // last run of a benchmark wins
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap.Results = append(snap.Results, byName[n])
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
