// Split inference: the Section III-A workflow (ARDEN [30]) — a frozen local
// network on the device, DP perturbation of the transmitted representation,
// noisy training of the cloud network, and the placement cost comparison of
// Figs. 2-3.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/split"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 800, Classes: 3, Dim: 12, Seed: 55})
	if err != nil {
		return err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return err
	}

	// Frozen local feature extractor + trainable cloud classifier.
	lr := rand.New(rand.NewSource(56))
	local := nn.NewSequential(nn.NewDense(lr, 12, 6), nn.NewTanh())
	cr := rand.New(rand.NewSource(57))
	cloud := nn.NewSequential(nn.NewDense(cr, 6, 20), nn.NewReLU(), nn.NewDense(cr, 20, 3))

	pipeline, err := split.New(split.Config{
		Local: local, Cloud: cloud,
		NullRate: 0.25, NoiseSigma: 0.6, Bound: 2.0,
	})
	if err != nil {
		return err
	}

	// Noisy training makes the cloud network robust to the perturbation.
	if _, err := pipeline.TrainCloud(trX, trY, 3, split.TrainConfig{
		Epochs: 30, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Rng: rand.New(rand.NewSource(58)), NoisyFraction: 2,
	}); err != nil {
		return err
	}
	acc, err := pipeline.Accuracy(rand.New(rand.NewSource(59)), teX, teY)
	if err != nil {
		return err
	}
	eps, err := pipeline.Epsilon(1e-5)
	if err != nil {
		return err
	}
	raw, transformed := pipeline.PayloadBytes(12)
	fmt.Printf("private split inference: accuracy %.2f%% at per-query epsilon %.2f\n", acc*100, eps)
	fmt.Printf("payload: %d B raw input -> %d B perturbed representation\n", raw, transformed)

	// Where should inference run? Compare placements on LTE.
	w := mobile.Workload{
		TotalMACs:    5e9,
		LocalMACs:    2e8,
		ModelBytes:   120 << 20,
		InputBytes:   int64(raw) * 1000, // batch of 1000 samples
		PayloadBytes: int64(transformed) * 1000,
		OutputBytes:  4 << 10,
	}
	fmt.Println("\nplacement comparison on LTE (5 GMAC model):")
	for _, p := range mobile.ComparePlacements(mobile.MidrangePhone(), mobile.CloudServer(), mobile.LTENetwork(), w) {
		if !p.Feasible {
			fmt.Printf("  %-6s infeasible (%s)\n", p.Placement, p.Reason)
			continue
		}
		fmt.Printf("  %-6s latency %9.2f ms  battery %8.3f mJ  upload %6.1f KB\n",
			p.Placement, p.LatencyMs, p.EnergyJ*1000, float64(p.UpBytes)/1024)
	}
	return nil
}
