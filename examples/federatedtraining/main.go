// Federated training: the Section II workflow — federated averaging over
// simulated mobile clients with the idle/charging/WiFi eligibility
// scheduler, followed by a user-level differentially private run with the
// moments accountant reporting the privacy spend.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/privacy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 1000, Classes: 5, Dim: 10, Seed: 33})
	if err != nil {
		return err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(33))
	shards, err := data.ShardNonIID(rng, trX, trY, 12)
	if err != nil {
		return err
	}
	_, factory, err := core.NewMLP(core.MLPSpec{In: 10, Hidden: []int{24}, Classes: 5, Seed: 33})
	if err != nil {
		return err
	}
	eval := federated.AccuracyEval(teX, teY)

	// Non-private FedAvg with the device-eligibility scheduler.
	sched, err := federated.NewScheduler(rng, len(shards), 0.9, 0.8, 0.9)
	if err != nil {
		return err
	}
	_, stats, err := core.Federate(factory, shards, 5, federated.FedAvgConfig{
		Rounds: 25, ClientFraction: 0.5, LocalEpochs: 5, LocalBatch: 16,
		LocalLR: 0.08, Seed: 34, Workers: 4, Eval: eval, EvalEvery: 5,
		Scheduler: sched,
	})
	if err != nil {
		return err
	}
	final := stats[len(stats)-1]
	fmt.Printf("FedAvg: final accuracy %.2f%% after %d rounds, %.2f MB total traffic\n",
		final.Accuracy*100, len(stats),
		float64(final.CumulativeUpBytes+final.CumulativeDownBytes)/1e6)

	// User-level DP federated averaging.
	res, err := core.FederatePrivately(factory, shards, 5, privacy.DPFedAvgConfig{
		Rounds: 25, P: 0.5, LocalEpochs: 5, LocalBatch: 16, LocalLR: 0.1,
		Clip: 5, Sigma: 0.8, Seed: 35, Eval: eval, EvalEvery: 25,
	})
	if err != nil {
		return err
	}
	eps, err := res.Accountant.Epsilon(1e-5)
	if err != nil {
		return err
	}
	var dpAcc float64
	for i := len(res.Stats) - 1; i >= 0; i-- {
		if res.Stats[i].Accuracy >= 0 {
			dpAcc = res.Stats[i].Accuracy
			break
		}
	}
	fmt.Printf("DP-FedAvg: accuracy %.2f%% at (epsilon=%.2f, delta=1e-5) user-level DP\n",
		dpAcc*100, eps)
	return nil
}
