// Serving quickstart: install a trained model in the serve registry, stand
// up the concurrent runtime (adaptive batcher + split-aware executor), fire
// concurrent requests at the HTTP API, hot-swap the model mid-flight, and
// read the stats endpoint — the registry -> batcher -> executor flow in ~100
// lines.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train a model (any nn.Sequential works; compressed models too).
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 12, Seed: 42,
	})
	if err != nil {
		return err
	}
	model, _, err := core.NewMLP(core.MLPSpec{In: 12, Hidden: []int{32, 16}, Classes: 4, Seed: 42})
	if err != nil {
		return err
	}
	if err := core.TrainCentralized(model, fb.X, fb.Labels, 4, 10, 42); err != nil {
		return err
	}

	// 2. Install it in a registry and start a serving runtime: requests
	// coalesce into tensor batches (here up to 16 rows or 1ms, whichever
	// comes first) executed by a worker pool.
	reg := serve.NewRegistry()
	if _, err := reg.Install("demo", &serve.Servable{Net: model}); err != nil {
		return err
	}
	rt, err := serve.NewRuntime(serve.RuntimeConfig{
		Registry: reg, Model: "demo",
		Batch: serve.BatcherConfig{MaxBatch: 16, MaxDelay: time.Millisecond},
	})
	if err != nil {
		return err
	}
	srv := serve.NewServer(reg)
	srv.Add(rt)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 3. Fire concurrent clients at POST /v1/predict.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				row := fb.X.Row((c*25 + k) % fb.X.Rows())
				body, _ := json.Marshal(serve.PredictRequest{Model: "demo", Features: [][]float64{row}})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Println(err)
					return
				}
				resp.Body.Close()
			}
		}(c)
	}

	// 4. Hot-swap the model mid-flight (in-flight batches finish on the old
	// version, the next batch sees the new one). Models trained out of
	// process arrive as nn.SaveWeights blobs via Register+Load instead.
	retrained, _, err := core.NewMLP(core.MLPSpec{In: 12, Hidden: []int{32, 16}, Classes: 4, Seed: 7})
	if err != nil {
		return err
	}
	v, err := reg.Install("demo", &serve.Servable{Net: retrained})
	if err != nil {
		return err
	}
	wg.Wait()
	fmt.Printf("hot-swapped to version %d while serving\n", v)

	// 5. One more request through the Go API, then read the stats.
	res, err := rt.Predict(context.Background(), fb.X.Row(0))
	if err != nil {
		return err
	}
	fmt.Printf("row 0 -> class %d (model v%d, %s placement, batch of %d)\n",
		res.Class, res.ModelVersion, res.Placement, res.BatchSize)

	st := rt.Stats()
	fmt.Printf("served %d requests  p50 %.3fms  p99 %.3fms  mean batch occupancy %.1f\n",
		st.Requests, st.LatencyMs.P50, st.LatencyMs.P99, st.BatchOccupancy)
	return nil
}
