// Serving quickstart: wrap three model families — a trained MLP, a
// split/early-exit cascade, and a random-forest baseline — as serving
// backends in one registry, stand up the concurrent runtime (adaptive
// batcher + backend executor), fire concurrent requests at the HTTP API,
// hot-swap the MLP mid-flight, pin a request to the old version, and read
// the stats endpoint — the registry -> batcher -> Backend flow end to end.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"mobiledl/internal/baselines"
	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/serve"
	"mobiledl/internal/split"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train one model per backend family on a shared synthetic task.
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 12, Seed: 42,
	})
	if err != nil {
		return err
	}
	model, _, err := core.NewMLP(core.MLPSpec{In: 12, Hidden: []int{32, 16}, Classes: 4, Seed: 42})
	if err != nil {
		return err
	}
	if err := core.TrainCentralized(model, fb.X, fb.Labels, 4, 10, 42); err != nil {
		return err
	}
	cascade, err := trainCascade(fb)
	if err != nil {
		return err
	}
	forest := baselines.NewRandomForest()
	forest.NumTrees = 15
	if err := forest.Fit(fb.X, fb.Labels, 4); err != nil {
		return err
	}

	// 2. Wrap each as a Backend and install all three in one registry: the
	// same seam serves a dense network, a split cascade, and a tree
	// ensemble. Requests coalesce into tensor batches (here up to 16 rows
	// or 1ms, whichever comes first) executed by a worker pool.
	reg := serve.NewRegistry()
	demo, err := serve.NewDenseBackend(model)
	if err != nil {
		return err
	}
	cb, err := serve.NewCascadeBackend(cascade)
	if err != nil {
		return err
	}
	bb, err := serve.NewBaselineBackend(forest, 12)
	if err != nil {
		return err
	}
	srv := serve.NewServer(reg)
	defer srv.Close()
	var demoRT *serve.Runtime
	for name, b := range map[string]serve.Backend{"demo": demo, "cascade": cb, "forest": bb} {
		if _, err := reg.Install(name, b); err != nil {
			return err
		}
		rt, err := serve.NewRuntime(serve.RuntimeConfig{
			Registry: reg, Model: name,
			Batch: serve.BatcherConfig{MaxBatch: 16, MaxDelay: time.Millisecond},
		})
		if err != nil {
			return err
		}
		srv.Add(rt)
		if name == "demo" {
			demoRT = rt
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 3. Fire concurrent clients at POST /v1/predict, spread across models,
	// asking for the top-2 class probabilities.
	var wg sync.WaitGroup
	models := []string{"demo", "cascade", "forest"}
	for c := 0; c < 9; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				row := fb.X.Row((c*25 + k) % fb.X.Rows())
				body, _ := json.Marshal(serve.PredictRequest{
					Model:    models[c%len(models)],
					Features: [][]float64{row},
					Options:  serve.RequestOptions{TopK: 2},
				})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Println(err)
					return
				}
				resp.Body.Close()
			}
		}(c)
	}

	// 4. Hot-swap the MLP mid-flight (in-flight batches finish on the old
	// version, the next batch sees the new one). Models trained out of
	// process arrive as nn.SaveWeights blobs via Register+Load instead.
	retrained, _, err := core.NewMLP(core.MLPSpec{In: 12, Hidden: []int{32, 16}, Classes: 4, Seed: 7})
	if err != nil {
		return err
	}
	nb, err := serve.NewDenseBackend(retrained)
	if err != nil {
		return err
	}
	v, err := reg.Install("demo", nb)
	if err != nil {
		return err
	}
	wg.Wait()
	fmt.Printf("hot-swapped demo to version %d while serving\n", v)

	// 5. The registry retains recent versions, so a pinned request still
	// reaches the pre-swap model.
	res, err := demoRT.PredictWith(context.Background(), fb.X.Row(0),
		serve.RequestOptions{Version: 1, TopK: 2})
	if err != nil {
		return err
	}
	fmt.Printf("pinned row 0 -> class %d on model v%d (top-2: %v)\n",
		res.Class, res.ModelVersion, res.Probs)

	st := demoRT.Stats()
	fmt.Printf("demo served %d requests  p50 %.3fms  p99 %.3fms  mean batch occupancy %.1f\n",
		st.Requests, st.LatencyMs.P50, st.LatencyMs.P99, st.BatchOccupancy)

	// 6. The same counters export as Prometheus text on /metrics — the
	// scrape surface for dashboards and alerting (shed/expired counts,
	// latency histograms, queue depth).
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	defer mresp.Body.Close()
	sc := bufio.NewScanner(mresp.Body)
	printed := 0
	for sc.Scan() && printed < 4 {
		line := sc.Text()
		if strings.HasPrefix(line, "mobiledl_requests_total") ||
			strings.HasPrefix(line, "mobiledl_requests_shed_total") {
			fmt.Println("metrics:", line)
			printed++
		}
	}
	return sc.Err()
}

// trainCascade builds and trains a small split/early-exit cascade on the
// shared task.
func trainCascade(fb *data.FedBench) (*split.EarlyExit, error) {
	rng := rand.New(rand.NewSource(42))
	local := nn.NewSequential(nn.NewDense(rng, 12, 8), nn.NewTanh())
	cloud := nn.NewSequential(nn.NewDense(rng, 8, 16), nn.NewReLU(), nn.NewDense(rng, 16, 4))
	exit := nn.NewSequential(nn.NewDense(rng, 8, 4))
	pipe, err := split.New(split.Config{Local: local, Cloud: cloud, NullRate: 0.1, NoiseSigma: 0.3, Bound: 3})
	if err != nil {
		return nil, err
	}
	tc := split.TrainConfig{
		Epochs: 4, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Rng: rng, NoisyFraction: 1,
	}
	if _, err := pipe.TrainCloud(fb.X, fb.Labels, 4, tc); err != nil {
		return nil, err
	}
	cascade, err := split.NewEarlyExit(pipe, exit, 0.8)
	if err != nil {
		return nil, err
	}
	exitCfg := tc
	exitCfg.NoisyFraction = 0
	if err := cascade.TrainExit(fb.X, fb.Labels, 4, exitCfg); err != nil {
		return nil, err
	}
	return cascade, nil
}
