// Mood inference: reproduce the DeepMood workflow of Section IV-A on the
// synthetic typing-dynamics corpus — per-view GRU encoders fused with a
// Multi-view Machine head predicting session-level mood state.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Sessions from 8 study participants, half recorded in a depressed mood
	// state (the generator mirrors the BiAffect schema; see DESIGN.md).
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        8,
		SessionsPerUser: 40,
		MoodEffect:      1.0,
		Seed:            7,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := data.SplitSessions(rng, corpus.Sessions, 0.8)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d train / %d test sessions\n", len(train), len(test))

	for _, fusion := range []deepmood.FusionKind{deepmood.FusionFC, deepmood.FusionFM, deepmood.FusionMVM} {
		model, err := core.TrainMoodModel(train, fusion, 6, 7)
		if err != nil {
			return err
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Printf("DeepMood-%-4s  accuracy %.2f%%  weighted F1 %.2f%%\n",
			fusion, rep.Accuracy*100, rep.F1*100)
	}
	return nil
}
