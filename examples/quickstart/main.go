// Quickstart: train a small classifier with the nn substrate, evaluate it,
// and shrink it with the Deep Compression pipeline — the minimal end-to-end
// tour of the library.
package main

import (
	"fmt"
	"log"

	"mobiledl/internal/compress"
	"mobiledl/internal/core"
	"mobiledl/internal/data"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A synthetic classification task (stand-in for any mobile workload).
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 12, Seed: 42,
	})
	if err != nil {
		return err
	}
	trainX, trainY, testX, testY, err := fb.Split(0.8)
	if err != nil {
		return err
	}

	// 2. Build and train an MLP.
	model, _, err := core.NewMLP(core.MLPSpec{In: 12, Hidden: []int{32, 16}, Classes: 4, Seed: 42})
	if err != nil {
		return err
	}
	if err := core.TrainCentralized(model, trainX, trainY, 4, 20, 42); err != nil {
		return err
	}
	acc, err := compress.EvalAccuracy(model, testX, testY)
	if err != nil {
		return err
	}
	fmt.Printf("test accuracy: %.2f%%\n", acc*100)

	// 3. Compress it for on-device deployment.
	res, err := core.CompressForMobile(model, 0.7, 5)
	if err != nil {
		return err
	}
	compAcc, err := compress.EvalAccuracy(res.Model, testX, testY)
	if err != nil {
		return err
	}
	fmt.Printf("compressed %.1fx (%d B -> %d B), accuracy now %.2f%%\n",
		res.Sizes.Ratio(), res.Sizes.DenseBytes, res.Sizes.HuffmanBytes, compAcc*100)
	return nil
}
