// User identification: the DEEPSERVICE workflow of Section IV-B — N-way
// identification from keystroke + accelerometer dynamics, plus the pairwise
// ("shared phone") protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobiledl/internal/core"
	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/deepservice"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const users = 5
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: 30,
		MoodEffect:      0.3,
		Seed:            21,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(21))
	train, test, err := data.SplitSessions(rng, corpus.Sessions, 0.8)
	if err != nil {
		return err
	}

	// N-way identification.
	id, err := core.TrainIdentifier(train, users, 6, 21)
	if err != nil {
		return err
	}
	rep, err := id.Evaluate(deepmood.NormalizeAll(test))
	if err != nil {
		return err
	}
	fmt.Printf("%d-way identification: accuracy %.2f%%, weighted F1 %.2f%%\n",
		users, rep.Accuracy*100, rep.F1*100)

	// Pairwise identification over the first three users.
	results, err := deepservice.EvaluatePairs(corpus.Sessions, []int{0, 1, 2},
		deepservice.PairwiseConfig{
			Hidden: 8, Fusion: deepmood.FusionFC, Epochs: 6, BatchSize: 8, Seed: 22,
		},
		func() nn.Optimizer { return opt.NewAdam(0.01) })
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("pair (%d,%d): accuracy %.2f%%, F1 %.2f%%\n",
			r.UserA, r.UserB, r.Accuracy*100, r.F1*100)
	}
	acc, f1 := deepservice.MeanPairMetrics(results)
	fmt.Printf("mean pairwise: accuracy %.2f%%, F1 %.2f%%\n", acc*100, f1*100)
	return nil
}
