// Train-to-serve quickstart: the closed loop of internal/fedserve. A
// federated coordinator trains an MLP over non-IID client shards —
// device-eligibility scheduling, parallel client fan-out, eval-gated
// acceptance — and hot-publishes every accepted round into a serving
// registry, while a concurrent client keeps predict traffic flowing through
// the runtime and measures the accuracy of the answers it gets back. The
// served accuracy climbs across auto-published versions with zero restarts:
// each request simply lands on whichever version is current at its batch
// boundary.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mobiledl/internal/data"
	"mobiledl/internal/fedserve"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A synthetic mobile task, sharded pathologically non-IID across 8
	// simulated devices (most clients see only 1-2 of the 5 classes).
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 1200, Classes: 5, Dim: 10, Spread: 1.1, Seed: 33,
	})
	if err != nil {
		return err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return err
	}
	shards, err := data.ShardNonIID(rand.New(rand.NewSource(33)), trX, trY, 8)
	if err != nil {
		return err
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(7))
		return nn.NewSequential(
			nn.NewDense(r, 10, 24), nn.NewReLU(), nn.NewDense(r, 24, 5),
		), nil
	}

	// 2. The coordinator publishes the untrained model as version 1 at
	// construction, so serving starts before training does.
	reg := serve.NewRegistry()
	coord, err := fedserve.NewCoordinator(fedserve.Config{
		Factory: factory, Shards: shards, Classes: 5,
		EvalX: teX, EvalY: teY,
		Rounds: 12, LocalEpochs: 1, LocalBatch: 16, LocalLR: 0.05,
		Seed:          34,
		RoundInterval: 25 * time.Millisecond,
		Registry:      reg, Model: "fedmlp",
	})
	if err != nil {
		return err
	}

	rt, err := serve.NewRuntime(serve.RuntimeConfig{
		Registry: reg, Model: "fedmlp",
		Batch: serve.BatcherConfig{MaxBatch: 16, MaxDelay: 500 * time.Microsecond},
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	// 3. A concurrent client scores the *served* answers per model version
	// while rounds run: for each held-out row it asks the runtime and tallies
	// whether the answer was right, bucketed by the version that answered.
	type tally struct{ correct, total int }
	var (
		mu          sync.Mutex
		byVer       = map[int]*tally{}
		ctx, cancel = context.WithCancel(context.Background())
	)
	defer cancel()
	var observer sync.WaitGroup
	for c := 0; c < 4; c++ {
		observer.Add(1)
		go func(offset int) {
			defer observer.Done()
			for i := offset; ctx.Err() == nil; i = (i + 4) % teX.Rows() {
				res, err := rt.Predict(ctx, teX.Row(i))
				if err != nil {
					return
				}
				mu.Lock()
				tl := byVer[res.ModelVersion]
				if tl == nil {
					tl = &tally{}
					byVer[res.ModelVersion] = tl
				}
				tl.total++
				if res.Class == teY[i] {
					tl.correct++
				}
				mu.Unlock()
			}
		}(c)
	}

	// 4. Train. Every accepted round hot-swaps a new version under the
	// observer's feet.
	start := time.Now()
	if err := coord.Start(); err != nil {
		return err
	}
	coord.Wait()
	cancel()
	observer.Wait()

	// 5. Report: held-out accuracy at publish time vs accuracy the observer
	// measured on live served predictions, per version.
	st := coord.Status()
	fmt.Printf("ran %d rounds in %v, published %d versions (%d updates merged)\n\n",
		st.Round, time.Since(start).Round(time.Millisecond), len(st.Published), st.MergedUpdates)
	fmt.Println("version  round  held-out acc   served acc (observed)")
	versions := make([]int, 0, len(byVer))
	for v := range byVer {
		versions = append(versions, v)
	}
	sort.Ints(versions)
	published := map[int]fedserve.PublishedVersion{}
	for _, p := range st.Published {
		published[p.Version] = p
	}
	for _, v := range versions {
		tl := byVer[v]
		line := fmt.Sprintf("v%-7d", v)
		if p, ok := published[v]; ok {
			line += fmt.Sprintf(" %-6d %-14.3f", p.Round, p.Accuracy)
		} else {
			line += fmt.Sprintf(" %-6s %-14s", "-", "-")
		}
		line += fmt.Sprintf(" %.3f  (%d requests)", float64(tl.correct)/float64(tl.total), tl.total)
		fmt.Println(line)
	}

	first, last := st.Published[0], st.Published[len(st.Published)-1]
	fmt.Printf("\nserved accuracy improved %.3f -> %.3f across %d hot swaps, no restarts\n",
		first.Accuracy, last.Accuracy, len(st.Published)-1)
	return nil
}
