// Train-to-serve restart-resume quickstart: the closed loop of
// internal/fedserve plus the crash-safe persistence of internal/store.
//
// The demo runs the same "process" twice over one data directory. Life 1
// trains a federated MLP over non-IID client shards, hot-publishing every
// accepted round into a serving registry whose publishes append to a
// WAL-backed store, and checkpointing round state between rounds — then
// stops, as a deploy or crash would. Life 2 boots from the same directory:
// the store replays, the registry reinstalls the last durably-published
// versions (serving resumes before any training), and the coordinator picks
// up at the checkpointed round instead of round 0. A concurrent client
// measures the accuracy of *served* answers in both lives; accuracy carries
// across the restart instead of collapsing back to an untrained model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"mobiledl/internal/data"
	"mobiledl/internal/fedserve"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
	"mobiledl/internal/store"
)

const modelName = "fedmlp"

func main() {
	dir := flag.String("data-dir", "", "persistent store directory (default: a fresh temp dir)")
	flag.Parse()
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "trainserve-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	if err := run(*dir); err != nil {
		log.Fatal(err)
	}
}

func run(dir string) error {
	// A synthetic mobile task, sharded pathologically non-IID across 8
	// simulated devices (most clients see only 1-2 of the 5 classes).
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 1200, Classes: 5, Dim: 10, Spread: 1.1, Seed: 33,
	})
	if err != nil {
		return err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return err
	}
	shards, err := data.ShardNonIID(rand.New(rand.NewSource(33)), trX, trY, 8)
	if err != nil {
		return err
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(7))
		return nn.NewSequential(
			nn.NewDense(r, 10, 24), nn.NewReLU(), nn.NewDense(r, 24, 5),
		), nil
	}

	// life boots "the process": open the store, recover the registry,
	// build a resuming coordinator, serve while training `rounds` rounds,
	// and measure the accuracy of live served answers. Everything a restart
	// must reconstruct comes only from dir.
	life := func(name string, rounds int) error {
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			return err
		}
		defer st.Close()
		reg := serve.NewRegistry()
		err = reg.Register(modelName, func() (serve.Backend, error) {
			m, err := factory()
			if err != nil {
				return nil, err
			}
			return serve.NewDenseBackend(m)
		})
		if err != nil {
			return err
		}
		reg.SetStore(st)
		restored, _, err := reg.RecoverFrom(st)
		if err != nil {
			return err
		}
		if restored > 0 {
			cur, err := reg.Get(modelName)
			if err != nil {
				return err
			}
			fmt.Printf("%s: recovered %d version(s) from %s; serving v%d (round %d) before any training\n",
				name, restored, dir, cur.Version, cur.Meta.Round)
		} else {
			fmt.Printf("%s: empty data dir, fresh start\n", name)
		}

		coord, err := fedserve.NewCoordinator(fedserve.Config{
			Factory: factory, Shards: shards, Classes: 5,
			EvalX: teX, EvalY: teY,
			Rounds: rounds, LocalEpochs: 1, LocalBatch: 16, LocalLR: 0.05,
			Seed:          34,
			RoundInterval: 10 * time.Millisecond,
			Registry:      reg, Model: modelName,
			Checkpoint: st,
		})
		if err != nil {
			return err
		}
		defer coord.Stop()

		rt, err := serve.NewRuntime(serve.RuntimeConfig{
			Registry: reg, Model: modelName,
			Batch: serve.BatcherConfig{MaxBatch: 16, MaxDelay: 500 * time.Microsecond},
		})
		if err != nil {
			return err
		}
		defer rt.Close()

		// Live traffic while rounds run: tally the accuracy of the answers
		// the runtime actually serves across this life.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		scored := make(chan [2]int, 1)
		go func() {
			var correct, total int
			for i := 0; ctx.Err() == nil; i = (i + 1) % teX.Rows() {
				res, err := rt.Predict(ctx, teX.Row(i))
				if err != nil {
					break
				}
				total++
				if res.Class == teY[i] {
					correct++
				}
			}
			scored <- [2]int{correct, total}
		}()

		if err := coord.Start(); err != nil {
			return err
		}
		coord.Wait()
		cancel()
		tl := <-scored

		fin := coord.Status()
		cur, err := reg.Get(modelName)
		if err != nil {
			return err
		}
		fmt.Printf("%s: rounds %d..%d trained, %d version(s) published, serving v%d, served accuracy %.3f (%d requests)\n\n",
			name, fin.StartRound+1, fin.Round, len(fin.Published), cur.Version,
			float64(tl[0])/float64(max(tl[1], 1)), tl[1])
		return nil
	}

	fmt.Printf("== life 1: fresh process ==\n")
	if err := life("life 1", 6); err != nil {
		return err
	}
	fmt.Printf("== process stops (deploy, crash, reboot) ==\n\n== life 2: restart from %s ==\n", dir)
	if err := life("life 2", 6); err != nil {
		return err
	}
	fmt.Println("the restart was a non-event: serving resumed from the last durable version,")
	fmt.Println("and training continued from the checkpointed round instead of round 0")
	return nil
}
