package mobiledl_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mobiledl/internal/compress"
	"mobiledl/internal/experiments"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
	"mobiledl/internal/tensor"
)

// benchExperiment runs a full table/figure regeneration per iteration at
// Quick scale. One bench per paper artifact (DESIGN.md E1-E13); run
// cmd/paperbench -scale full for the EXPERIMENTS.md numbers.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(io.Discard, name, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (E1): DEEPSERVICE vs five baselines.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig5 regenerates Fig. 5 (E2): per-participant accuracy vs sessions.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (E3): multi-view user pattern analysis.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkSelectiveSGD regenerates E4: accuracy vs upload fraction theta.
func BenchmarkSelectiveSGD(b *testing.B) { benchExperiment(b, "selsgd") }

// BenchmarkFedAvg regenerates E5: FedAvg vs FedSGD rounds/bytes to target.
func BenchmarkFedAvg(b *testing.B) { benchExperiment(b, "fedavg") }

// BenchmarkDPFedAvg regenerates E6: DP-FedAvg accuracy/epsilon vs noise.
func BenchmarkDPFedAvg(b *testing.B) { benchExperiment(b, "dpfed") }

// BenchmarkPlacement regenerates E7 (Figs. 2-3): inference placement costs.
func BenchmarkPlacement(b *testing.B) { benchExperiment(b, "placement") }

// BenchmarkArden regenerates E8: noisy training under private split inference.
func BenchmarkArden(b *testing.B) { benchExperiment(b, "arden") }

// BenchmarkCompression regenerates E9: Deep Compression ratio vs accuracy.
func BenchmarkCompression(b *testing.B) { benchExperiment(b, "compress") }

// BenchmarkLowRank regenerates E10: SVD factorization params vs accuracy.
func BenchmarkLowRank(b *testing.B) { benchExperiment(b, "lowrank") }

// BenchmarkDistillation regenerates E11: distilled vs plain students.
func BenchmarkDistillation(b *testing.B) { benchExperiment(b, "distill") }

// BenchmarkDeepMood regenerates E12: fusion variants vs shallow baselines.
func BenchmarkDeepMood(b *testing.B) { benchExperiment(b, "deepmood") }

// BenchmarkPairID regenerates E13: mean pairwise identification metrics.
func BenchmarkPairID(b *testing.B) { benchExperiment(b, "pairid") }

// BenchmarkServeThroughput measures requests/sec through the serving
// runtime (registry -> adaptive batcher -> executor) at max batch sizes
// 1/8/32 with 64 concurrent clients: the adaptive-batching win is batched
// throughput (batch32) beating unbatched (batch1) on the same model.
func BenchmarkServeThroughput(b *testing.B) {
	// A mobile-scale MLP (the paper serves compressed models, so per-row
	// compute is small and per-request dispatch overhead matters).
	rng := rand.New(rand.NewSource(1))
	model := nn.NewSequential(
		nn.NewDense(rng, 64, 64), nn.NewReLU(),
		nn.NewDense(rng, 64, 64), nn.NewReLU(),
		nn.NewDense(rng, 64, 10),
	)
	backend, err := serve.NewDenseBackend(model)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			reg := serve.NewRegistry()
			if _, err := reg.Install("bench", backend); err != nil {
				b.Fatal(err)
			}
			rt, err := serve.NewRuntime(serve.RuntimeConfig{
				Registry: reg, Model: "bench",
				Batch: serve.BatcherConfig{MaxBatch: size, MaxDelay: 500 * time.Microsecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			// Keep >= 64 submitters in flight so full batches can form.
			procs := runtime.GOMAXPROCS(0)
			b.SetParallelism((64 + procs - 1) / procs)
			feats := make([]float64, 64)
			for i := range feats {
				feats[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := rt.Predict(context.Background(), feats); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(rt.Stats().BatchOccupancy, "rows/batch")
		})
	}
}

// --- Micro-benchmarks of the hot substrate paths ---

// BenchmarkMatMul measures the dense kernel every model rides on.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 64, 128, 0, 1)
	w := tensor.RandNormal(rng, 128, 64, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulInto measures the destination-passing kernel at the same
// mobile-scale shape as BenchmarkMatMul: the delta is pure allocation/GC
// overhead, and allocs/op here must stay 0.
func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 64, 128, 0, 1)
	w := tensor.RandNormal(rng, 128, 64, 0, 1)
	dst := tensor.New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(dst, x, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulParallel measures the kernel at shapes above the
// parallelism work threshold (2^20 MACs), where the row blocks fan out
// across GOMAXPROCS. On a single-core host this still shows the
// register-blocked kernel's win over the seed's naive ikj loop.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{128, 256, 512} {
		x := tensor.RandNormal(rng, n, n, 0, 1)
		w := tensor.RandNormal(rng, n, n, 0, 1)
		dst := tensor.New(n, n)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tensor.MatMulInto(dst, x, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparseMatMul measures the pruned-model inference kernel (90%
// sparsity) against the dense baseline above.
func BenchmarkSparseMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.RandNormal(rng, 128, 64, 0, 1)
	if _, err := compress.PruneMatrix(w, 0.9); err != nil {
		b.Fatal(err)
	}
	csr := compress.ToCSR(w)
	x := tensor.RandNormal(rng, 64, 128, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := csr.MatMul(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRUForward measures one sequence pass of the recurrent encoder.
func BenchmarkGRUForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gru := nn.NewGRU(rng, 8, 32)
	seq := tensor.RandNormal(rng, 50, 8, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gru.ForwardSeq(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRUForwardPooled measures the steady-state (warm step cache)
// sequence pass: after the first call the GRU rewrites its cached per-step
// matrices through the Into kernels, so allocs/op collapses to the returned
// hidden state — the serving-loop profile, where one recurrent encoder
// instance runs sequence after sequence.
func BenchmarkGRUForwardPooled(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gru := nn.NewGRU(rng, 8, 32)
	seq := tensor.RandNormal(rng, 50, 8, 0, 1)
	if _, err := gru.ForwardSeq(seq); err != nil { // warm the step cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gru.ForwardSeq(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRUBackward measures full backpropagation through time.
func BenchmarkGRUBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gru := nn.NewGRU(rng, 8, 32)
	seq := tensor.RandNormal(rng, 50, 8, 0, 1)
	dLast := tensor.New(1, 32)
	dLast.Fill(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gru.ForwardSeq(seq); err != nil {
			b.Fatal(err)
		}
		if _, err := gru.BackwardLast(dLast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuffmanEncode measures the Deep Compression entropy-coding stage.
func BenchmarkHuffmanEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	symbols := make([]uint16, 4096)
	freqs := map[uint16]int{}
	for i := range symbols {
		s := uint16(rng.Intn(16))
		if rng.Float64() < 0.6 {
			s = 0
		}
		symbols[i] = s
		freqs[s]++
	}
	hc, err := compress.NewHuffmanCode(freqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hc.Encode(symbols); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCirculantForward measures the FFT-based block-circulant layer
// (structural-matrix compression, CirCNN [14]) against the dense layer of
// the same shape in BenchmarkDenseForward — the ablation for the DESIGN.md
// "structural matrix" design choice.
func BenchmarkCirculantForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := nn.NewDense(rng, 128, 128)
	bc, err := compress.NewBlockCirculantFromDense(d, 64)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.RandNormal(rng, 16, 128, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseForward is the dense counterpart to BenchmarkCirculantForward.
func BenchmarkDenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := nn.NewDense(rng, 128, 128)
	x := tensor.RandNormal(rng, 16, 128, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVD measures the one-sided Jacobi decomposition used by the
// low-rank factorization experiments.
func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandNormal(rng, 48, 24, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.SVD(m); err != nil {
			b.Fatal(err)
		}
	}
}
