GO ?= go

.PHONY: all build test race vet fmt bench serve-bench

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent subsystems (the serving runtime and its
# instrumentation are the hot spots).
race:
	$(GO) test -race ./internal/serve/... ./internal/metrics/... ./internal/federated/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Full benchmark sweep (paper artifacts + substrate micro-benches).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Serving throughput at max batch sizes 1/8/32 (requests/sec).
serve-bench:
	$(GO) test -run '^$$' -bench BenchmarkServeThroughput -benchtime 2s .
