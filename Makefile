GO ?= go

# Build stamp surfaced by the mobiledl_build_info metric and the server
# banner. Defaults to the tag/commit when building from a git checkout.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X mobiledl/internal/version.Version=$(VERSION)"

.PHONY: all build test race vet lint analyze loadcheck tracecheck crashcheck simcheck sim-full cluster-up cluster-check fmt docs-check cover bench serve-bench bench-json

all: build test vet

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

# Race-check the concurrent subsystems: the serving runtime and its
# instrumentation, the fedserve train-to-serve coordinator, parallel
# federated training (plain and DP), and the shared tensor substrate
# (buffer pool + GOMAXPROCS-parallel matmul kernels) with the nn and split
# consumers that pool scratch.
race:
	$(GO) test -race ./internal/serve/... ./internal/fedserve/... ./internal/metrics/... \
		./internal/store/... ./internal/cluster/... ./cmd/mobiledlserve/... \
		./internal/federated/... ./internal/privacy/... ./internal/sim/... \
		./internal/tensor/... ./internal/nn/... ./internal/split/...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs staticcheck (pinned) and runs with
# STRICT_LINT=1 so a missing binary fails the job; locally the target
# degrades to a notice instead of failing.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ "$(STRICT_LINT)" = "1" ]; then \
		echo "STRICT_LINT=1 but staticcheck is not installed" >&2; exit 1; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Project-specific invariant suite (tools/analyzers): pool balance,
# determinism (no wall clock / global rand in sim+federated+fedserve),
# context propagation on the serving hot path, and /metrics naming. The
# tools module is separate so the main module stays zero-dependency; its
# own tests run via `go -C tools/analyzers test ./...`.
analyze:
	$(GO) -C tools/analyzers run ./cmd/analyze \
		-dir $(CURDIR) -nowallclock.allowlist $(CURDIR)/.nowallclock-allow ./...

# Overload/deadline drill: the admission-control, cancellation, and drain
# tests under the race detector — the serving runtime's survival story.
loadcheck:
	$(GO) test -race -run 'Overload|Shed|Expired|Abandoned|Drain|QueueFull|RateWindow|Timeout|QuantileEdges|Prom' \
		./internal/serve/... ./internal/metrics/...

# Tracing drill: the tracer package and every instrumented layer under the
# race detector (64-way concurrent trace integrity through sub-batch splits,
# traceparent propagation, tail retention churn, round traces), then the
# overhead gate — serving with a sampled-out tracer must stay within 5% of
# serving with no tracer at all.
tracecheck:
	$(GO) test -race ./internal/trace/...
	$(GO) test -race -run 'Trace|Healthz|BuildInfo|BatchErrorLogged' \
		./internal/serve/... ./internal/fedserve/...
	MOBILEDL_TRACECHECK=1 $(GO) test -run TestTraceOverhead -v .

# Crash-safety drill: the WAL store's full suite (framing, torn-tail
# recovery, fault injection, compaction crash ordering), the kill-recover
# matrix against a real registry, coordinator checkpoint/resume, the
# registry/server degradation seam, and the process-scope restart and
# shutdown-ordering tests — all under the race detector.
crashcheck:
	$(GO) test -race ./internal/store/...
	$(GO) test -race -run 'Crash|KillRecover|Failpoint|Torn|Degrad|Recover|Resume|Backup|Checkpoint|Restart|Shutdown' \
		./internal/serve/... ./internal/fedserve/... ./cmd/mobiledlserve/...

# Scenario-simulation drill: the full named-scenario matrix (baseline,
# 30% dropout, 10% poisoned, clock skew, diurnal burst) at 100k virtual
# clients under the race detector, plus the selector and scrape-helper
# suites the harness leans on. The committed SIMBENCH_*.md files come from
# the heavier sim-full target below.
simcheck:
	MOBILEDL_SIMCHECK=1 $(GO) test -race ./internal/sim/...
	$(GO) test -race -run 'Selector|Scrape|ParseProm|Quantile' \
		./internal/fedserve/... ./internal/metrics/...

# Full-scale scenario benchmark: every named scenario at 500k virtual
# clients through cmd/fedsim, writing the dated SIMBENCH report that gets
# committed alongside the PR.
sim-full:
	$(GO) run ./cmd/fedsim -full -out SIMBENCH_$$(date -u +%Y-%m-%d).md
	@ls -l SIMBENCH_*.md

# Boot a local 3-node cluster (consistent-hash sharded demo models, gossip
# membership, transparent forwarding) and leave it running for interactive
# poking; Ctrl-C tears it down.
cluster-up:
	$(GO) build $(LDFLAGS) -o mobiledlserve ./cmd/mobiledlserve
	$(GO) run ./cmd/clustercheck -bin ./mobiledlserve -mode up

# Cluster acceptance drill: solo-baseline vs 3-node aggregate throughput
# (>= 2x required), SIGKILL one node mid-load with every model staying
# servable through the survivors, and no mixed model versions anywhere.
# The committed CLUSTERBENCH_*.md files are this target's output.
cluster-check:
	$(GO) build $(LDFLAGS) -o mobiledlserve ./cmd/mobiledlserve
	$(GO) run ./cmd/clustercheck -bin ./mobiledlserve -mode check

# Coverage summary: per-function table plus the total, written from a
# throwaway profile (cover.out is gitignored by convention, not committed).
# CI runs this as a non-blocking report step.
cover:
	$(GO) test -covermode=atomic -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 25
	@echo "full per-function table: go tool cover -func=cover.out"

fmt:
	gofmt -l -w .

# Docs gate (CI docs job): every inline relative markdown link must resolve
# and the tree must be gofmt-clean — including the tools/analyzers module,
# which gofmt -l . reaches by path and vet needs a -C for. gofmt -l prints
# offenders without rewriting; the shell check turns a non-empty listing
# into a failing exit.
docs-check:
	$(GO) run ./cmd/docscheck
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) -C tools/analyzers vet ./...

# Full benchmark sweep (paper artifacts + substrate micro-benches).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Serving throughput at max batch sizes 1/8/32 (requests/sec), plus the
# traced variants (sampled-out / sampled-all) for trace overhead numbers.
# The unanchored pattern matches BenchmarkServeThroughputTraced as well, so
# bench-json snapshots trace overhead alongside the plain throughput runs.
serve-bench:
	$(GO) test -run '^$$' -bench BenchmarkServeThroughput -benchtime 2s .

# Substrate benchmarks worth longer timing runs in the snapshot; the paper
# artifacts (Table1, Fig5, ...) run once each, these get 1s apiece.
HOT_BENCH := BenchmarkMatMul|BenchmarkSparseMatMul|BenchmarkGRU|BenchmarkDense|BenchmarkCirculant|BenchmarkServeThroughput|BenchmarkHuffman|BenchmarkSVD

# Machine-readable perf snapshot: runs the full bench suite plus a longer
# pass over the substrate micro-benches, and writes BENCH_<date>.json
# (name, ns/op, allocs/op, req/s) so the perf trajectory is tracked in-repo
# across PRs. Later duplicate results override earlier ones. Each run is its
# own recipe line so a failing benchmark aborts the target instead of
# silently snapshotting partial output.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . > .bench_raw.txt
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchmem -benchtime 1s . >> .bench_raw.txt
	$(GO) run ./cmd/benchjson < .bench_raw.txt > .bench_snapshot.json
	mv .bench_snapshot.json BENCH_$$(date -u +%Y-%m-%d).json
	@rm -f .bench_raw.txt
	@ls -l BENCH_*.json
