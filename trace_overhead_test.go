package mobiledl_test

import (
	"context"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
	"mobiledl/internal/trace"
)

// benchRuntime builds the BenchmarkServeThroughput serving stack (same model,
// same batcher shape) with an optional tracer attached.
func benchRuntime(tb testing.TB, maxBatch int, tracer *trace.Tracer) *serve.Runtime {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	model := nn.NewSequential(
		nn.NewDense(rng, 64, 64), nn.NewReLU(),
		nn.NewDense(rng, 64, 64), nn.NewReLU(),
		nn.NewDense(rng, 64, 10),
	)
	backend, err := serve.NewDenseBackend(model)
	if err != nil {
		tb.Fatal(err)
	}
	reg := serve.NewRegistry()
	if _, err := reg.Install("bench", backend); err != nil {
		tb.Fatal(err)
	}
	rt, err := serve.NewRuntime(serve.RuntimeConfig{
		Registry: reg, Model: "bench",
		Batch:  serve.BatcherConfig{MaxBatch: maxBatch, MaxDelay: 500 * time.Microsecond},
		Tracer: tracer,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(rt.Close)
	return rt
}

// BenchmarkServeThroughputTraced is BenchmarkServeThroughput batch8 with a
// tracer attached, quantifying trace overhead at both extremes:
//
//	sampled-out: tracer present, Sample<0 — the per-request cost of having
//	             tracing compiled in and enabled but not sampling (the
//	             production configuration rounds to this at low sample rates)
//	sampled-all: Sample=1, every request builds and retains a full trace
//
// Compare req/s against BenchmarkServeThroughput/batch8 (no tracer at all).
func BenchmarkServeThroughputTraced(b *testing.B) {
	for _, bc := range []struct {
		name   string
		sample float64
	}{
		{"sampled-out", -1},
		{"sampled-all", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rt := benchRuntime(b, 8, trace.New(trace.Config{Sample: bc.sample}))
			procs := runtime.GOMAXPROCS(0)
			b.SetParallelism((64 + procs - 1) / procs)
			feats := make([]float64, 64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := rt.Predict(context.Background(), feats); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// TestTraceOverhead asserts the near-free claim: serving throughput with a
// tracer attached but sampled out stays within 5% of serving with no tracer
// at all. Throughput measurements on shared CI machines are noisy, so the
// test only runs under `make tracecheck` (MOBILEDL_TRACECHECK=1); the plain
// test suite skips it.
func TestTraceOverhead(t *testing.T) {
	if os.Getenv("MOBILEDL_TRACECHECK") != "1" {
		t.Skip("set MOBILEDL_TRACECHECK=1 (make tracecheck) to run the trace overhead gate")
	}
	measure := func(tracer *trace.Tracer) float64 {
		rt := benchRuntime(t, 8, tracer)
		feats := make([]float64, 64)
		run := func(n int) time.Duration {
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < 64; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := rt.Predict(context.Background(), feats); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			return time.Since(start)
		}
		run(200) // warm up pools and batcher adaptation
		const perWorker = 1500
		elapsed := run(perWorker)
		return float64(64*perWorker) / elapsed.Seconds()
	}

	// Interleave repetitions so machine-load drift hits both variants alike,
	// and compare best-of to shed scheduling noise.
	var off, out float64
	for rep := 0; rep < 3; rep++ {
		if v := measure(nil); v > off {
			off = v
		}
		if v := measure(trace.New(trace.Config{Sample: -1})); v > out {
			out = v
		}
	}
	delta := (off - out) / off
	t.Logf("throughput: tracing-off %.0f req/s, sampled-out %.0f req/s, delta %.2f%%", off, out, delta*100)
	if delta > 0.05 {
		t.Fatalf("sampled-out tracing costs %.1f%% throughput (budget 5%%): off=%.0f on=%.0f req/s",
			delta*100, off, out)
	}
}
