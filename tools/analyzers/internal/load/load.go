// Package load type-checks the packages of a Go module using only the
// standard library. It shells out to `go list -export -deps -json`, which
// compiles dependencies into the build cache and reports their export-data
// files, then parses each target package from source and type-checks it with
// go/types, resolving imports through go/importer's gc importer pointed at
// that export data. This is the same division of labor as
// x/tools/go/packages in LoadSyntax mode, minus the dependency.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string // absolute directory of the package's sources
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns inside the module rooted
// at dir. Test files are not loaded: the invariant suite polices production
// code, and tests legitimately use wall clocks, background contexts, and
// unpooled scratch. All packages share the returned FileSet.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %v in %s: %v\n%s", patterns, dir, err, errBuf.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(p.Dir, f),
				nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, fmt.Errorf("parsing %s: %v", f, err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Name:  p.Name,
			Dir:   p.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, fset, nil
}
