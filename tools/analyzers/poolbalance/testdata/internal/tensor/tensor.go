// Package tensor is a minimal stub of the real pool API at the same import
// path, so the analyzer's type-based matching works in testdata.
package tensor

// Matrix is pooled storage.
type Matrix struct {
	rows, cols int
	data       []float64
}

// Row returns one row slice.
func (m *Matrix) Row(i int) []float64 { return m.data }

// Pool recycles matrices.
type Pool struct{}

// Get returns a pooled matrix.
func (p *Pool) Get(rows, cols int) *Matrix { return &Matrix{rows: rows, cols: cols} }

// Put releases a pooled matrix.
func (p *Pool) Put(m *Matrix) {}

// Get returns a matrix from the default pool.
func Get(rows, cols int) *Matrix { return &Matrix{rows: rows, cols: cols} }

// Put releases m to the default pool.
func Put(m *Matrix) {}

// AddInto is an Into-style kernel that borrows its operands.
func AddInto(dst, a, b *Matrix) error { return nil }
