module mobiledl

go 1.24
