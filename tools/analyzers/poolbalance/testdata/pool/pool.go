// Package pool exercises every poolbalance pattern: guaranteed leaks,
// error-path leaks, balanced releases, defers, ownership transfers, and the
// nolint escape.
package pool

import (
	"errors"

	"mobiledl/internal/tensor"
)

var errBoom = errors.New("boom")

var shared tensor.Pool

// sink keeps transferred buffers alive.
var sink []*tensor.Matrix

func dropped() {
	tensor.Get(2, 2) // want `result of tensor.Get is discarded`
}

func blankBound() {
	_ = tensor.Get(2, 2) // want `result of tensor.Get is discarded`
}

func neverReleased() {
	v := tensor.Get(2, 2) // want `v from tensor.Get is never released`
	v.Row(0)
}

func errorPathLeak(fail bool) error {
	v := tensor.Get(2, 2) // want `v from tensor.Get is not released on the return path at line \d+`
	if fail {
		return errBoom // leaks v
	}
	tensor.Put(v)
	return nil
}

func methodErrorPathLeak(fail bool) error {
	v := shared.Get(2, 2) // want `v from shared.Get is not released on the return path at line \d+`
	if fail {
		return errBoom
	}
	shared.Put(v)
	return nil
}

func balanced() error {
	v := tensor.Get(2, 2)
	if err := tensor.AddInto(v, v, v); err != nil {
		tensor.Put(v)
		return err
	}
	tensor.Put(v)
	return nil
}

func deferred(fail bool) error {
	v := tensor.Get(2, 2)
	defer tensor.Put(v)
	if fail {
		return errBoom
	}
	return nil
}

func deferredClosure(fail bool) error {
	v := tensor.Get(2, 2)
	defer func() { tensor.Put(v) }()
	if fail {
		return errBoom
	}
	return nil
}

func transferredByReturn() *tensor.Matrix {
	v := tensor.Get(2, 2)
	return v // caller owns it now
}

func transferredByStore() {
	v := tensor.Get(2, 2)
	sink = append(sink, v) // the sink owns it now
}

func transferredByField(holder *struct{ m *tensor.Matrix }) {
	holder.m = tensor.Get(2, 2) // stored straight into a struct
}

func transferredToGoroutine() {
	v := tensor.Get(2, 2)
	go func() {
		tensor.Put(v)
	}()
}

func capturedByWorker() {
	v := tensor.Get(2, 2)
	go func() {
		v.Row(0) // the goroutine owns the buffer now
	}()
}

func closureUsesThenLeaks() {
	f := func(fail bool) error {
		v := tensor.Get(2, 2) // want `v from tensor.Get is not released on the return path at line \d+`
		v.Row(0)
		if fail {
			return errBoom
		}
		tensor.Put(v)
		return nil
	}
	_ = f(true)
}

func borrowedThenLeaked(fail bool) error {
	v := tensor.Get(2, 2) // want `v from tensor.Get is not released on the return path at line \d+`
	if err := tensor.AddInto(v, v, v); err != nil {
		return err // AddInto only borrowed v: this path leaks it
	}
	tensor.Put(v)
	return nil
}

func closureScopedLeak() {
	f := func(fail bool) error {
		v := tensor.Get(2, 2) // want `v from tensor.Get is not released on the return path at line \d+`
		if fail {
			return errBoom
		}
		tensor.Put(v)
		return nil
	}
	_ = f(false)
}

func nolintEscape() *tensor.Matrix {
	v := shared.Get(2, 2) //nolint:poolbalance // refcounted snapshot: release() puts it back
	sink = append(sink, v)
	return v
}
