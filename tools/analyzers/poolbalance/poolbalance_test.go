package poolbalance_test

import (
	"testing"

	"mobiledl/tools/analyzers/analysistest"
	"mobiledl/tools/analyzers/poolbalance"
)

// TestPoolBalance runs the analyzer over the testdata module: planted leaks
// (dropped results, error-path misses, closure-scoped misses) must be
// flagged, and balanced/deferred/transferred/nolinted sites must pass clean.
func TestPoolBalance(t *testing.T) {
	analysistest.Run(t, "testdata", poolbalance.Analyzer, nil, "mobiledl/pool")
}
