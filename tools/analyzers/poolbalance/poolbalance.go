// Package poolbalance flags tensor pool acquisitions that are not released
// on every return path. PR 2's zero-alloc kernels depend on every
// tensor.Pool.Get / tensor.Get being matched by a Put (directly or via
// defer) before the enclosing function returns; a miss on an error path
// silently degrades the pool back to garbage-per-op.
//
// The check is lexical, not a full CFG dataflow: for each Get whose result
// stays a local variable, every return statement after the Get must be
// preceded (in source order) by a Put of that variable, unless a deferred
// Put covers the whole function. Passing the buffer to a synchronous callee
// is a borrow (the Into-kernel idiom), not a release. Results that escape —
// returned, stored into a struct/slice/map, aliased, appended, sent to a
// goroutine, captured by a closure — transfer ownership and are skipped;
// sites that intentionally
// hand buffers across API boundaries in ways the analyzer cannot see carry
// a `//nolint:poolbalance // reason` escape.
package poolbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobiledl/tools/analyzers/analysis"
)

// tensorPath is the package whose pool the analyzer polices.
const tensorPath = "mobiledl/internal/tensor"

// Analyzer is the poolbalance invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "poolbalance",
	Doc: "check that every tensor pool Get is Put on all return paths " +
		"(or explicitly transfers ownership)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == tensorPath {
		return nil // the pool's own implementation hands buffers around freely
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
			return true
		})
	}
	return nil
}

// walker analyzes one declared function body (closures included).
type walker struct {
	pass *analysis.Pass
	body *ast.BlockStmt

	// parent[n] is the syntactic parent of n within body.
	parent map[ast.Node]ast.Node
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &walker{pass: pass, body: body, parent: map[ast.Node]ast.Node{}}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			w.parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && w.isPoolCall(call, "Get") {
			w.checkGet(call)
		}
		return true
	})
}

// checkGet applies the balance rule to one acquisition.
func (w *walker) checkGet(get *ast.CallExpr) {
	obj := w.binding(get)
	if obj == nil {
		// A result dropped on the floor is a guaranteed leak; a result
		// consumed in place (argument, return value, composite literal
		// element) transfers ownership and is the consumer's to release.
		if w.isDropped(get) {
			w.pass.Reportf(get.Pos(), "result of %s is discarded; the pooled buffer can never be released", callName(get))
		}
		return
	}

	rel := w.releases(obj)
	if rel.deferred {
		return
	}
	if w.escapes(obj, rel, get) {
		return // ownership transferred; the new owner releases
	}

	if len(rel.puts) == 0 {
		w.pass.Reportf(get.Pos(), "%s from %s is never released: no Put, defer, or ownership transfer in this function", obj.Name(), callName(get))
		return
	}
	for _, exitPos := range w.exitsAfter(get) {
		released := false
		for _, put := range rel.puts {
			if put > get.Pos() && put < exitPos {
				released = true
				break
			}
		}
		if !released {
			w.pass.Reportf(get.Pos(), "%s from %s is not released on the return path at line %d",
				obj.Name(), callName(get), w.pass.Fset.Position(exitPos).Line)
			return // one finding per Get is enough
		}
	}
}

// binding resolves the local variable a Get result is assigned to; nil when
// the result is dropped or consumed in place.
func (w *walker) binding(call *ast.CallExpr) types.Object {
	switch p := w.parent[call].(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return nil
		}
		for i, rhs := range p.Rhs {
			if rhs != call {
				continue
			}
			id, ok := p.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				return nil
			}
			if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
				return obj
			}
			return w.pass.TypesInfo.Uses[id]
		}
	case *ast.ValueSpec:
		for i, v := range p.Values {
			if v == call && i < len(p.Names) {
				return w.pass.TypesInfo.Defs[p.Names[i]]
			}
		}
	}
	return nil
}

// isDropped reports a Get whose result reaches nothing: a bare expression
// statement or an assignment to blank.
func (w *walker) isDropped(call *ast.CallExpr) bool {
	switch p := w.parent[call].(type) {
	case *ast.ExprStmt:
		return true
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return false
		}
		for i, rhs := range p.Rhs {
			if rhs == call {
				if id, ok := p.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					return true
				}
			}
		}
	}
	return false
}

// releaseSet records how obj is handed back to the pool.
type releaseSet struct {
	puts     []token.Pos         // non-deferred Put(obj) positions
	deferred bool                // a defer (directly or via closure) Puts obj
	putIDs   map[*ast.Ident]bool // idents consumed as Put arguments
}

// releases finds every Put of obj in the function body.
func (w *walker) releases(obj types.Object) releaseSet {
	rel := releaseSet{putIDs: map[*ast.Ident]bool{}}
	ast.Inspect(w.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !w.isPoolCall(call, "Put") || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok || w.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		rel.putIDs[id] = true
		if w.inDefer(call) {
			rel.deferred = true
		} else {
			rel.puts = append(rel.puts, call.Pos())
		}
		return true
	})
	return rel
}

// inDefer reports whether n sits under a defer statement, either directly
// (`defer tensor.Put(v)`) or inside a deferred closure.
func (w *walker) inDefer(n ast.Node) bool {
	for cur := n; cur != nil && cur != ast.Node(w.body); cur = w.parent[cur] {
		if _, ok := cur.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// escapes reports whether obj's buffer leaves this function's custody by a
// means other than Put. Any such transfer makes the new holder responsible
// for the release, so the balance check stands down.
func (w *walker) escapes(obj types.Object, rel releaseSet, get *ast.CallExpr) bool {
	getScope, _ := w.funcScope(get)
	escaped := false
	ast.Inspect(w.body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || w.pass.TypesInfo.Uses[id] != obj || rel.putIDs[id] {
			return true
		}
		// A use in a different (nested) function scope means a closure
		// captured the buffer; unless that closure is deferred cleanup, it
		// may outlive this function, so ownership has transferred.
		if idScope, _ := w.funcScope(id); idScope != getScope {
			if !w.inDefer(id) {
				escaped = true
			}
			return !escaped
		}
		if w.identEscapes(id) {
			escaped = true
			return false
		}
		return true
	})
	return escaped
}

// identEscapes classifies one use of the tracked variable by climbing its
// parent chain to the enclosing statement.
func (w *walker) identEscapes(id *ast.Ident) bool {
	for p := w.parent[id]; p != nil && p != ast.Node(w.body); p = w.parent[p] {
		switch pp := p.(type) {
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
			return true
		case *ast.UnaryExpr:
			if pp.Op == token.AND {
				return true
			}
		case *ast.CallExpr:
			if isCallee(pp, id) {
				return false // v.Method(...): plain use, result is a fresh value
			}
			if w.isPoolCall(pp, "Put") {
				return false // release, accounted for in releases()
			}
			if isBuiltinAppend(w.pass, pp) {
				return true // appended into a slice someone else owns
			}
			// A synchronous call borrows the buffer — the dominant idiom
			// here is Into-style kernels writing into the caller's pooled
			// scratch, with the caller still responsible for the Put. Async
			// uses (go/defer) outlive the statement and do escape.
			switch w.parent[pp].(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				return true
			}
			return false
		case *ast.AssignStmt:
			// Reached statement level inside an assignment without being
			// consumed by a call/return: v aliased to another name, stored
			// into a field/element, or reassigned — stop tracking either way.
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// exitsAfter lists the positions of return statements after the Get in the
// Get's own function scope, plus the implicit fall-off-the-end exit when the
// body can reach its closing brace.
func (w *walker) exitsAfter(get *ast.CallExpr) []token.Pos {
	scopeBody, scopeLit := w.funcScope(get)
	var exits []token.Pos
	ast.Inspect(scopeBody, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != scopeLit {
			return false // returns inside nested closures exit the closure, not us
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > get.Pos() {
			exits = append(exits, ret.Pos())
		}
		return true
	})
	if bodyFallsThrough(scopeBody) {
		exits = append(exits, scopeBody.End())
	}
	return exits
}

// funcScope finds the innermost function body containing n: a closure's
// body, or the declared function's.
func (w *walker) funcScope(n ast.Node) (*ast.BlockStmt, *ast.FuncLit) {
	for cur := w.parent[n]; cur != nil; cur = w.parent[cur] {
		if fl, ok := cur.(*ast.FuncLit); ok {
			return fl.Body, fl
		}
	}
	return w.body, nil
}

// bodyFallsThrough reports whether the last statement lets control reach the
// closing brace (an implicit return).
func bodyFallsThrough(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	case *ast.ForStmt:
		if last.Cond == nil && !hasLoopBreak(last.Body) {
			return false // `for { ... }` without break never falls through
		}
	}
	return true
}

// hasLoopBreak reports a break targeting the loop whose body is given.
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // break inside these targets them, not our loop
		case *ast.BranchStmt:
			if b.Tok == token.BREAK && b.Label == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBuiltinAppend matches calls to the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// isCallee reports whether id is (part of) the function expression of call
// rather than an argument.
func isCallee(call *ast.CallExpr, id *ast.Ident) bool {
	found := false
	ast.Inspect(call.Fun, func(n ast.Node) bool {
		if n == ast.Node(id) {
			found = true
		}
		return !found
	})
	return found
}

// isPoolCall reports whether call invokes the tensor pool's method or
// package-level function with the given name (Get or Put).
func (w *walker) isPoolCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != tensorPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return isPoolType(recv.Type())
	}
	return true // package-level tensor.Get / tensor.Put
}

// isPoolType matches tensor.Pool and *tensor.Pool.
func isPoolType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == tensorPath
}

// callName renders the Get call for messages (tensor.Get or pool.Get).
func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "pool Get"
}
