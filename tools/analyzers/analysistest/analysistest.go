// Package analysistest runs an analyzer over a testdata mini-module and
// checks its findings against `// want "regexp"` comments, mirroring
// x/tools/go/analysis/analysistest. Each analyzer's testdata directory is a
// real module (its own go.mod, typically `module mobiledl` so stub packages
// can occupy the same import paths the analyzer matches on, e.g.
// mobiledl/internal/tensor).
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"mobiledl/tools/analyzers/analysis"
	"mobiledl/tools/analyzers/internal/load"
)

// wantRe matches one quoted expectation inside a `// want` comment; several
// may follow each other, each either double- or back-quoted:
// // want "first" `second`.
var wantRe = regexp.MustCompile("want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one unmatched-so-far want pattern.
type expectation struct {
	re   *regexp.Regexp
	used bool
}

// wantIndex maps file -> line -> pending expectations.
type wantIndex map[string]map[int][]*expectation

// Run loads the module under testdata, applies a to every package matched by
// patterns (respecting a.AppliesTo, exactly as the driver does), and fails t
// unless findings and want-comments agree one-to-one.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, flags map[string]string, patterns ...string) {
	t.Helper()
	dir, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("resolving %s: %v", testdata, err)
	}
	pkgs, fset, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, dir)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info, flags, &diags)
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	analysis.SortDiagnostics(fset, diags)

	// Every loaded package's files carry expectations — including packages
	// outside a.AppliesTo, where a stray want-comment would mean the author
	// expected scoping the analyzer does not implement.
	expected := make(wantIndex)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, fset, f, expected)
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, exp := range expected[pos.Filename][pos.Line] {
			if !exp.used && exp.re.MatchString(d.Message) {
				exp.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for file, lines := range expected {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.used {
					t.Errorf("%s:%d: expected finding matching %q, got none", filepath.Base(file), line, exp.re)
				}
			}
		}
	}
}

// collectWants records the `// want "..."` expectations of one file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, out wantIndex) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Slash)
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				var pat string
				var err error
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else if pat, err = strconv.Unquote(q); err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*expectation)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &expectation{re: re})
			}
		}
	}
}
