// Package offline sits outside the serve/fedserve/cluster hot path: the
// same detach pattern produces no findings, proving the analyzer's scoping.
package offline

import "context"

func load(ctx context.Context, path string) error {
	_ = ctx
	return nil
}

// Warm is offline tooling; detaching is fine and must not be flagged.
func Warm(ctx context.Context, path string) error {
	return load(context.Background(), path)
}
