// Package serve exercises ctxflow: functions on the hot path that receive a
// context must thread it to ctx-taking callees rather than detaching them
// with context.Background()/context.TODO().
package serve

import "context"

func fetch(ctx context.Context, key string) (string, error) {
	_ = ctx
	return key, nil
}

// Predict threads the caller's ctx: clean.
func Predict(ctx context.Context, key string) (string, error) {
	return fetch(ctx, key)
}

// Detached drops the request ctx on the floor: flagged.
func Detached(ctx context.Context, key string) (string, error) {
	return fetch(context.Background(), key) // want `Detached receives a context.Context but passes context.Background\(\) to fetch`
}

// Undecided punts with TODO: flagged.
func Undecided(ctx context.Context, key string) (string, error) {
	return fetch(context.TODO(), key) // want `Undecided receives a context.Context but passes context.TODO\(\) to fetch`
}

// NewBatchCtx takes no ctx parameter — the batch-lifetime pattern — so a
// fresh Background context is legal here.
func NewBatchCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	return ctx
}

// InClosure shows closures inheriting ctx availability from the enclosing
// function: the goroutine body still has the request ctx in scope.
func InClosure(ctx context.Context, key string) {
	go func() {
		_, _ = fetch(context.Background(), key) // want `InClosure receives a context.Context but passes context.Background\(\) to fetch`
	}()
}

// ClosureOwnCtx: the enclosing function has no ctx, but the closure declares
// one — detaching inside the closure is still flagged.
func ClosureOwnCtx(key string) func(context.Context) {
	return func(ctx context.Context) {
		_, _ = fetch(context.TODO(), key) // want `ClosureOwnCtx receives a context.Context but passes context.TODO\(\) to fetch`
	}
}

// Audited is genuinely detached work with a reviewed justification.
func Audited(ctx context.Context, key string) {
	_, _ = fetch(context.Background(), key) //nolint:ctxflow // fire-and-forget audit write must outlive the request
}

// BlankCtx cannot thread a context it cannot name: clean.
func BlankCtx(_ context.Context, key string) (string, error) {
	return fetch(context.Background(), key)
}
