// Package ctxflow flags the context-dropping bug class PR 5 fixed by hand
// in execGroup: a function on the serve/fedserve/cluster hot path receives
// a context.Context but calls a context-taking callee with
// context.Background() or context.TODO(), detaching the callee from request
// deadlines and cancellation. Batch-lifetime contexts that aggregate many
// request contexts are created in functions that take no ctx parameter, so
// they are naturally out of scope; genuinely detached work inside a
// ctx-taking function carries `//nolint:ctxflow // reason`.
package ctxflow

import (
	"go/ast"
	"go/types"

	"mobiledl/tools/analyzers/analysis"
)

// hotPathPkgs are the serving-side packages (and subtrees) under check.
var hotPathPkgs = []string{
	"mobiledl/internal/serve",
	"mobiledl/internal/fedserve",
	"mobiledl/internal/cluster",
}

// Analyzer is the ctxflow invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag hot-path functions that receive a context.Context but call " +
		"a callee with context.Background()/context.TODO() instead of threading it",
	AppliesTo: func(path string) bool {
		for _, p := range hotPathPkgs {
			if analysis.PathHasPrefix(path, p) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd, fd.Body, hasCtxParam(pass, fd.Type))
			return false
		})
	}
	return nil
}

// checkFunc walks one function body. ctxAvail says whether the enclosing
// scope (this function or a parent closure) has a context parameter; nested
// closures inherit it and may add their own.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, body ast.Node, ctxAvail bool) {
	name := fd.Name.Name
	var walk func(n ast.Node, avail bool)
	walk = func(n ast.Node, avail bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.FuncLit:
				if node == n {
					return true
				}
				walk(node.Body, avail || hasCtxParam(pass, node.Type))
				return false
			case *ast.CallExpr:
				if !avail {
					return true
				}
				for _, arg := range node.Args {
					inner, ok := arg.(*ast.CallExpr)
					if !ok {
						continue
					}
					which := backgroundOrTODO(pass, inner)
					if which == "" {
						continue
					}
					pass.Reportf(inner.Pos(),
						"%s receives a context.Context but passes context.%s() to %s; thread the caller's ctx through",
						name, which, calleeName(node))
				}
			}
			return true
		})
	}
	walk(body, ctxAvail)
}

// hasCtxParam reports whether ft declares a non-blank context.Context
// parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			continue // unnamed ctx cannot be threaded anyway
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

// backgroundOrTODO returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func backgroundOrTODO(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isContextType matches the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeName renders the called function for the message.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "callee"
}
