package ctxflow_test

import (
	"testing"

	"mobiledl/tools/analyzers/analysistest"
	"mobiledl/tools/analyzers/ctxflow"
)

// TestCtxFlow covers detaching via Background and TODO, closure inheritance
// of the enclosing ctx, closures declaring their own ctx, the batch-lifetime
// no-ctx-param exemption, the nolint escape, blank ctx params, and package
// scoping (internal/offline detaches freely with no findings).
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, nil, "./...")
}
