package metricname_test

import (
	"testing"

	"mobiledl/tools/analyzers/analysistest"
	"mobiledl/tools/analyzers/metricname"
)

// TestMetricName covers clean registrations for every PromWriter method,
// shape violations, per-kind suffix rules, reserved suffixes, the
// compile-time-constant requirement for names and WriteSortedLabels kinds,
// and the nolint escape.
func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, nil, "mobiledl/emit")
}
