// Package metricname enforces the /metrics naming convention at every
// registration site: string names passed to metrics.PromWriter's Counter,
// Gauge, Histogram, and WriteSortedLabels must match
// ^mobiledl_[a-z0-9_]+$ and follow the Prometheus suffix rules — counters
// end in _total (byte counters in _bytes_total), gauges and histograms do
// not, and nothing claims the writer-reserved _bucket/_sum/_count suffixes.
// Names must be compile-time constants so the exported surface is greppable.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"mobiledl/tools/analyzers/analysis"
)

// metricsPath is the package defining PromWriter.
const metricsPath = "mobiledl/internal/metrics"

// nameRe is the base shape: mobiledl_ prefix, lowercase snake case, no
// leading/trailing/double underscores.
var nameRe = regexp.MustCompile(`^mobiledl_[a-z0-9]+(_[a-z0-9]+)*$`)

// histUnits are the unit suffixes a histogram family must end with, so the
// series name states what the buckets measure.
var histUnits = []string{"_ms", "_seconds", "_bytes", "_ratio"}

// Analyzer is the metricname invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric names registered on metrics.PromWriter must match " +
		"^mobiledl_[a-z0-9_]+$ with proper _total/_bytes suffix conventions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == metricsPath {
		return nil // the writer itself derives _bucket/_sum/_count internally
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method := promWriterMethod(pass, call)
			if method == "" || len(call.Args) == 0 {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to PromWriter.%s must be a compile-time constant string", method)
				return true
			}
			kind := strings.ToLower(method)
			if method == "WriteSortedLabels" {
				// Signature: (name, help, kind, labelName, values, fixed...).
				if len(call.Args) < 3 {
					return true
				}
				k, ok := constString(pass, call.Args[2])
				if !ok {
					pass.Reportf(call.Args[2].Pos(),
						"metric kind passed to PromWriter.WriteSortedLabels must be a compile-time constant string")
					return true
				}
				kind = k
			}
			for _, problem := range check(name, kind) {
				pass.Reportf(call.Args[0].Pos(), "metric %q: %s", name, problem)
			}
			return true
		})
	}
	return nil
}

// check validates one metric family name against the conventions for its
// kind ("counter", "gauge", "histogram").
func check(name, kind string) []string {
	var problems []string
	if !nameRe.MatchString(name) {
		problems = append(problems, "must match ^mobiledl_[a-z0-9_]+$ (mobiledl_ prefix, lowercase snake case, no double or trailing underscores)")
		return problems // suffix rules are noise once the shape is wrong
	}
	for _, reserved := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, reserved) {
			problems = append(problems, "suffix "+reserved+" is reserved for series the writer derives from histograms")
		}
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			if strings.HasSuffix(name, "_bytes") {
				problems = append(problems, "byte counters end in _bytes_total")
			} else {
				problems = append(problems, "counters end in _total")
			}
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			problems = append(problems, "gauges must not end in _total (that suffix marks counters)")
		}
	case "histogram":
		if strings.HasSuffix(name, "_total") {
			problems = append(problems, "histograms must not end in _total (that suffix marks counters)")
			break
		}
		unit := false
		for _, u := range histUnits {
			if strings.HasSuffix(name, u) {
				unit = true
				break
			}
		}
		if !unit {
			problems = append(problems, "histograms end in a unit suffix ("+strings.Join(histUnits, ", ")+") naming what the buckets measure")
		}
	}
	return problems
}

// promWriterMethod returns the registration-method name when call is a
// method call on *metrics.PromWriter, else "".
func promWriterMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "PromWriter" || obj.Pkg() == nil || obj.Pkg().Path() != metricsPath {
		return ""
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram", "WriteSortedLabels":
		return fn.Name()
	}
	return ""
}

// constString resolves expr to a compile-time string constant.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
