// Package emit exercises metricname at registration call sites: prefix and
// snake-case shape, per-kind suffix rules, reserved suffixes, the
// const-name requirement, WriteSortedLabels kinds, and the nolint escape.
package emit

import "mobiledl/internal/metrics"

const latencyName = "mobiledl_predict_latency_ms"

func register(w *metrics.PromWriter, hist metrics.HistogramSnapshot, perNode map[string]uint64) {
	// Clean registrations.
	w.Counter("mobiledl_requests_total", "served requests", 1)
	w.Counter("mobiledl_rx_bytes_total", "bytes received", 1)
	w.Gauge("mobiledl_queue_depth", "pending batches", 0)
	w.Histogram(latencyName, "predict latency", hist)
	w.WriteSortedLabels("mobiledl_peer_sends_total", "per-peer sends", "counter", "peer", perNode)

	// Shape violations: wrong prefix, uppercase, double underscore.
	w.Counter("requests_total", "missing prefix", 1)              // want `metric "requests_total": must match`
	w.Gauge("mobiledl_QueueDepth", "uppercase", 0)                // want `must match`
	w.Counter("mobiledl__requests_total", "double underscore", 1) // want `must match`

	// Suffix conventions per kind.
	w.Counter("mobiledl_requests", "counter without _total", 1)       // want `counters end in _total`
	w.Counter("mobiledl_rx_bytes", "byte counter", 1)                 // want `byte counters end in _bytes_total`
	w.Gauge("mobiledl_evictions_total", "gauge posing as counter", 0) // want `gauges must not end in _total`
	w.Histogram("mobiledl_predict_latency", "no unit suffix", hist)   // want `histograms end in a unit suffix`
	w.Histogram("mobiledl_batch_total", "counter-suffixed", hist)     // want `histograms must not end in _total`

	// Reserved suffixes collide with writer-derived series; _count also
	// breaks the counter suffix rule, so two findings land on this line.
	w.Counter("mobiledl_flush_count", "reserved", 1) // want `suffix _count is reserved` `counters end in _total`

	// Names and kinds must be compile-time constants.
	dyn := "mobiledl_dynamic_total"
	w.Counter(dyn, "runtime-built name", 1) // want `must be a compile-time constant`
	kind := "counter"
	w.WriteSortedLabels("mobiledl_peer_drops_total", "per-peer drops", kind, "peer", perNode) // want `kind passed to PromWriter.WriteSortedLabels must be a compile-time constant`

	// WriteSortedLabels applies the rules of its declared kind.
	w.WriteSortedLabels("mobiledl_peer_drops", "per-peer drops", "counter", "peer", perNode) // want `counters end in _total`

	// Reviewed exception: a legacy dashboard pins this pre-convention name.
	w.Gauge("legacy_uptime", "grandfathered series", 0) //nolint:metricname // dashboard pins the pre-mobiledl name until Q4 migration
}
