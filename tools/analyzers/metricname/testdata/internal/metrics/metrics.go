// Package metrics stubs PromWriter with the real registration signatures so
// the analyzer's receiver-type matching works against the testdata module.
// The analyzer skips this package itself (it derives _bucket/_sum/_count).
package metrics

// Label is one name=value pair on a series.
type Label struct {
	Name, Value string
}

// HistogramSnapshot is a frozen bucket view.
type HistogramSnapshot struct {
	Counts []uint64
	Sum    float64
}

// PromWriter renders families in Prometheus text exposition format.
type PromWriter struct{}

func (w *PromWriter) Counter(name, help string, value float64, labels ...Label)         {}
func (w *PromWriter) Gauge(name, help string, value float64, labels ...Label)           {}
func (w *PromWriter) Histogram(name, help string, h HistogramSnapshot, labels ...Label) {}
func (w *PromWriter) WriteSortedLabels(name, help, kind, labelName string, values map[string]uint64, fixed ...Label) {
}
