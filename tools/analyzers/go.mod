module mobiledl/tools/analyzers

go 1.24
