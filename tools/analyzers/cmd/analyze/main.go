// Command analyze is the multichecker for this repo's invariant suite: it
// loads the module at -dir, runs the poolbalance, nowallclock, ctxflow, and
// metricname analyzers over the matched packages, and exits non-zero on any
// finding. CI runs it through `make analyze`.
//
// Usage:
//
//	analyze -dir ../.. -nowallclock.allowlist ../../.nowallclock-allow ./...
//
// Findings print as file:line:col: message (analyzer). Suppress an
// individual true-but-intended site with `//nolint:<analyzer> // reason` —
// the reason is mandatory; bare //nolint directives do not suppress.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobiledl/tools/analyzers/analysis"
	"mobiledl/tools/analyzers/ctxflow"
	"mobiledl/tools/analyzers/internal/load"
	"mobiledl/tools/analyzers/metricname"
	"mobiledl/tools/analyzers/nowallclock"
	"mobiledl/tools/analyzers/poolbalance"
)

// suite is every analyzer the binary runs, in output-grouping order.
var suite = []*analysis.Analyzer{
	poolbalance.Analyzer,
	nowallclock.Analyzer,
	ctxflow.Analyzer,
	metricname.Analyzer,
}

func main() {
	dir := flag.String("dir", ".", "module root to analyze")
	allowlist := flag.String("nowallclock.allowlist", "", "path to the nowallclock exception file")
	listOnly := flag.Bool("list", false, "print the analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fatal("resolving -dir: %v", err)
	}
	flags := map[string]string{}
	if *allowlist != "" {
		abs, err := filepath.Abs(*allowlist)
		if err != nil {
			fatal("resolving allowlist: %v", err)
		}
		flags["allowlist"] = abs
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := load.Load(root, patterns...)
	if err != nil {
		fatal("%v", err)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range suite {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info, flags, &diags)
			if err := a.Run(pass); err != nil {
				fatal("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "analyze: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: analyze [-dir module] [-nowallclock.allowlist file] [packages]\n\nanalyzers:\n")
	for _, a := range suite {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "analyze: "+format+"\n", args...)
	os.Exit(2)
}
