// Package nowallclock forbids wall-clock reads and global math/rand in the
// determinism-critical packages: internal/sim and internal/federated must
// produce bit-identical round histories across runs and worker counts (PR
// 9's determinism gates), and internal/fedserve's merge/select logic feeds
// them. time.Now, time.Since, and the global rand source are exactly the
// calls that silently break that property.
//
// Legitimate wall-clock sites (traffic pacing against real HTTP servers,
// wall-time fields in operator-facing reports, straggler latency
// accounting) are named one-per-line in an allowlist file passed via the
// `allowlist` flag, so every exception is reviewed rather than ambient.
package nowallclock

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"strings"

	"mobiledl/tools/analyzers/analysis"
)

// criticalPkgs are the import paths (and subtrees) the analyzer polices.
var criticalPkgs = []string{
	"mobiledl/internal/sim",
	"mobiledl/internal/federated",
	"mobiledl/internal/fedserve",
}

// Analyzer is the nowallclock invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/time.Since and global math/rand in " +
		"determinism-critical packages (sim, federated, fedserve)",
	AppliesTo: func(path string) bool {
		for _, p := range criticalPkgs {
			if analysis.PathHasPrefix(path, p) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	allow, err := ParseAllowlist(pass.Flags["allowlist"])
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		var funcStack []string
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch nd := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, funcName(nd))
				checkBody(pass, nd.Body, funcStack[len(funcStack)-1], allow)
				funcStack = funcStack[:len(funcStack)-1]
				return false // checkBody walked the body already
			}
			return true
		})
	}
	return nil
}

// checkBody scans one function body; fn is its allowlist name.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, fn string, allow Allowlist) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		var what string
		switch obj.Pkg().Path() {
		case "time":
			if obj.Name() == "Now" || obj.Name() == "Since" {
				what = "wall-clock read time." + obj.Name()
			}
		case "math/rand", "math/rand/v2":
			sig, sok := obj.Type().(*types.Signature)
			if sok && sig.Recv() == nil && !strings.HasPrefix(obj.Name(), "New") {
				what = "global math/rand source (" + obj.Pkg().Name() + "." + obj.Name() + ")"
			}
		}
		if what == "" {
			return true
		}
		pos := pass.Fset.Position(sel.Pos())
		if allow.Permits(pos.Filename, fn) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s in determinism-critical package %s (function %s); seed an explicit source or add a reviewed allowlist entry",
			what, pass.Pkg.Path(), fn)
		return true
	})
}

// funcName renders a FuncDecl the way allowlist entries spell it:
// `Func` for functions, `Recv.Method` for methods (pointer receivers
// without the star).
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Recv[T]) keep just the base name.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// Allowlist is the parsed exception file: each entry pairs a file-path
// suffix with a function name.
type Allowlist []allowEntry

type allowEntry struct {
	fileSuffix string
	fn         string // "*" permits the whole file
}

// ParseAllowlist reads the exception file. Format, one entry per line:
//
//	internal/sim/traffic.go:runReplay   # why this site may read the clock
//
// Blank lines and #-comment lines are skipped; inline #-comments are
// stripped. An entry of the form `path:*` exempts an entire file.
func ParseAllowlist(path string) (Allowlist, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nowallclock allowlist: %v", err)
	}
	defer f.Close()
	var out Allowlist
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		file, fn, ok := strings.Cut(line, ":")
		if !ok || file == "" || fn == "" {
			return nil, fmt.Errorf("nowallclock allowlist %s:%d: want `path/to/file.go:FuncName`, got %q", path, lineNo, line)
		}
		out = append(out, allowEntry{fileSuffix: file, fn: strings.TrimSpace(fn)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nowallclock allowlist: %v", err)
	}
	return out, nil
}

// Permits reports whether the allowlist covers function fn in file.
func (a Allowlist) Permits(file, fn string) bool {
	for _, e := range a {
		if !strings.HasSuffix(file, e.fileSuffix) {
			continue
		}
		if e.fn == "*" || e.fn == fn {
			return true
		}
	}
	return false
}
