// Package clockok sits outside the determinism-critical set: wall-clock
// reads here are legal and must produce no findings.
package clockok

import "time"

// Uptime may read the clock freely — liveness logic is wall-clock domain.
func Uptime(start time.Time) time.Duration {
	_ = time.Now()
	return time.Since(start)
}
