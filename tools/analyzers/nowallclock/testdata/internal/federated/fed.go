// Package federated holds the clean patterns: seeded sources and
// data-carried timestamps pass without findings.
package federated

import "math/rand"

// Round trains with an explicit, seeded source.
func Round(seed int64, n int) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

func shuffleSeeded(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source \(rand.Shuffle\)`
}
