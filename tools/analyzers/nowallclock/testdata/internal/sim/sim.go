// Package sim exercises nowallclock: in-scope wall-clock and global-rand
// reads must be flagged unless an allowlist entry or a justified nolint
// covers them; seeded sources stay legal.
package sim

import (
	"math/rand"
	"time"
)

// Replay is a carrier for method receiver cases.
type Replay struct {
	began time.Time
}

func readsClock() int64 {
	t := time.Now() // want `wall-clock read time.Now in determinism-critical package mobiledl/internal/sim \(function readsClock\)`
	return t.Unix()
}

func readsElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand source \(rand.Intn\)`
}

func globalFloat() float64 {
	return rand.Float64() // want `global math/rand source \(rand.Float64\)`
}

func seededIsFine(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func (rp *Replay) Flagged() time.Duration {
	return time.Since(rp.began) // want `function Replay.Flagged`
}

// Judge is allowlisted as Replay.Judge.
func (rp *Replay) Judge() time.Duration {
	return time.Since(rp.began)
}

// allowedPacer is allowlisted by name.
func allowedPacer() time.Time {
	return time.Now()
}

func nolintEscape() time.Time {
	return time.Now() //nolint:nowallclock // one-shot boot stamp, not round logic
}

func deadlineClock() time.Time {
	// A time.Time value that arrives as data is fine; constructing one from
	// the wall clock is not.
	return time.Unix(42, 0)
}
