package nowallclock_test

import (
	"os"
	"path/filepath"
	"testing"

	"mobiledl/tools/analyzers/analysistest"
	"mobiledl/tools/analyzers/nowallclock"
)

// TestNoWallClock covers the flagged patterns (time.Now/Since, global
// math/rand), the clean ones (seeded sources), the allowlist (plain
// functions and methods), the nolint escape, and package scoping (the
// clockok package reads the clock with no findings expected).
func TestNoWallClock(t *testing.T) {
	allow, err := filepath.Abs(filepath.Join("testdata", "allow.txt"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, "testdata", nowallclock.Analyzer,
		map[string]string{"allowlist": allow}, "./...")
}

// TestParseAllowlist pins the exception-file contract: a missing file and a
// malformed entry are hard errors (CI must not green-light with exceptions
// silently unloaded), comments and blanks are skipped, and entries match by
// file suffix plus exact function or `*`.
func TestParseAllowlist(t *testing.T) {
	if _, err := nowallclock.ParseAllowlist("does-not-exist.txt"); err == nil {
		t.Fatal("missing allowlist must be a hard error")
	}

	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("no-colon-here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := nowallclock.ParseAllowlist(bad); err == nil {
		t.Fatal("malformed entry must be a hard error")
	}

	good := filepath.Join(t.TempDir(), "allow.txt")
	body := "# comment\n\ninternal/sim/a.go:Run # inline note\ninternal/sim/b.go:*\n"
	if err := os.WriteFile(good, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	allow, err := nowallclock.ParseAllowlist(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		file, fn string
		want     bool
	}{
		{"/abs/path/internal/sim/a.go", "Run", true},
		{"/abs/path/internal/sim/a.go", "Other", false},
		{"/abs/path/internal/sim/b.go", "Anything", true},
		{"/abs/path/internal/sim/c.go", "Run", false},
	} {
		if got := allow.Permits(tc.file, tc.fn); got != tc.want {
			t.Errorf("Permits(%q, %q) = %v, want %v", tc.file, tc.fn, got, tc.want)
		}
	}

	if empty, err := nowallclock.ParseAllowlist(""); err != nil || empty != nil {
		t.Fatalf("empty path should load an empty allowlist, got %v, %v", empty, err)
	}
}
