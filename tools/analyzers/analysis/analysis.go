// Package analysis is a deliberately small, zero-dependency stand-in for
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass surface for the
// invariant suite in this module. The container this repo builds in has no
// module proxy access, so instead of importing x/tools the suite carries its
// own ~200-line framework over the stdlib go/ast + go/types packages; the
// loader in internal/load supplies fully type-checked packages via
// `go list -export` export data.
//
// The shape mirrors the real package on purpose — an analyzer written here
// ports to x/tools/go/analysis by swapping imports and dropping AppliesTo.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //nolint:<name>
	// directives. Lowercase, no spaces.
	Name string

	// Doc is the one-paragraph description printed by `analyze -help`.
	Doc string

	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. nil means every package.
	AppliesTo func(pkgPath string) bool

	// Run performs the check and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Flags holds per-analyzer options from the driver (for example the
	// nowallclock allowlist path), keyed by option name.
	Flags map[string]string

	diags *[]Diagnostic
	nolin *nolintIndex
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewPass assembles a pass over pkg for a; diagnostics accumulate into sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, flags map[string]string, sink *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Flags:     flags,
		diags:     sink,
	}
}

// Reportf records a finding unless a justified //nolint:<name> directive on
// the same line (or on a directive-only line immediately above) suppresses
// it. A //nolint directive with no `// reason` trailer does NOT suppress —
// every escape must say why.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.nolin == nil {
		p.nolin = buildNolintIndex(p.Fset, p.Files)
	}
	if p.nolin.suppresses(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// SortDiagnostics orders findings by file position for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// PathHasPrefix reports whether pkg equals prefix or sits beneath it
// (segment-wise, so "a/bc" does not match prefix "a/b").
func PathHasPrefix(pkg, prefix string) bool {
	if pkg == prefix {
		return true
	}
	return len(pkg) > len(prefix) && pkg[:len(prefix)] == prefix && pkg[len(prefix)] == '/'
}
