package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// nolintIndex maps file -> line -> set of analyzer names suppressed on that
// line. Only directives carrying a justification count; a bare
// `//nolint:poolbalance` is ignored so the original finding still surfaces.
type nolintIndex struct {
	byFile map[string]map[int]map[string]bool
}

// buildNolintIndex scans every comment in files for
// `//nolint:name1,name2 // reason` directives. A directive on a line of its
// own also covers the next line, matching how reviewers attach it above a
// long statement.
func buildNolintIndex(fset *token.FileSet, files []*ast.File) *nolintIndex {
	idx := &nolintIndex{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		codeLines := linesWithCode(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseNolint(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := idx.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byFile[pos.Filename] = lines
				}
				cover := []int{pos.Line}
				if !codeLines[pos.Line] {
					// Directive-only line: it annotates the next line.
					cover = append(cover, pos.Line+1)
				}
				for _, ln := range cover {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return idx
}

// linesWithCode returns the set of lines on which some AST node (i.e. actual
// code, not a comment) starts — used to tell an end-of-line directive from a
// directive sitting on a line of its own.
func linesWithCode(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

// parseNolint extracts the analyzer names from a justified nolint directive.
// Accepted shape: `//nolint:a,b // why this site is exempt`. Returns ok=false
// for non-directives and for directives with an empty reason.
func parseNolint(text string) (names []string, ok bool) {
	const prefix = "//nolint:"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := text[len(prefix):]
	// Split the name list from the reason trailer.
	cut := strings.IndexAny(rest, " \t")
	if cut < 0 {
		return nil, false // no reason at all
	}
	list, reason := rest[:cut], strings.TrimSpace(rest[cut:])
	reason = strings.TrimPrefix(reason, "//")
	if strings.TrimSpace(reason) == "" {
		return nil, false // `//nolint:x //` with nothing after
	}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// suppresses reports whether analyzer name is nolinted at position p.
func (idx *nolintIndex) suppresses(name string, p token.Position) bool {
	lines := idx.byFile[p.Filename]
	if lines == nil {
		return false
	}
	set := lines[p.Line]
	if set == nil {
		return false
	}
	return set[name] || set["all"]
}
