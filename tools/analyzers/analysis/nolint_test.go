package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const nolintSrc = `package p

func a() int {
	return 1 //nolint:check // justified because test
}

func b() int {
	return 2 //nolint:check
}

func c() int {
	//nolint:check // directive-only line covers the next
	return 3
}

func d() int {
	return 4 //nolint:other // different analyzer
}

func e() int {
	return 5 //nolint:all // suppress every analyzer here
}

func g() int {
	return 6 //nolint:check //
}
`

// TestNolintSuppression pins the directive contract: a reason trailer is
// mandatory (bare directives and empty `//` trailers do NOT suppress), a
// directive-only line covers the line below it, analyzer names must match,
// and `all` suppresses any analyzer.
func TestNolintSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", nolintSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}

	a := &Analyzer{Name: "check"}
	var diags []Diagnostic
	pass := NewPass(a, fset, []*ast.File{f}, nil, nil, nil, &diags)

	// One report per function, on its return-statement line.
	reportLines := map[int]string{
		4:  "a: justified nolint suppresses",
		8:  "b: bare nolint must NOT suppress",
		13: "c: directive-only line above suppresses",
		17: "d: wrong analyzer name must NOT suppress",
		21: "e: nolint:all suppresses",
		25: "g: empty reason trailer must NOT suppress",
	}
	tf := fset.File(f.Pos())
	for line, label := range reportLines {
		pass.Reportf(tf.LineStart(line), "%s", label)
	}

	got := make(map[string]bool)
	for _, d := range diags {
		got[d.Message] = true
	}
	for line, label := range reportLines {
		suppressed := line == 4 || line == 13 || line == 21
		if suppressed == got[label] {
			t.Errorf("line %d (%s): suppressed=%v, want %v", line, label, !got[label], suppressed)
		}
	}
}
