package metrics

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestPromWriterGroupsFamilies(t *testing.T) {
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	// Two producers interleave families; the output must group them.
	w.Counter("demo_requests_total", "Requests.", 3, Label{Name: "model", Value: "a"})
	w.Gauge("demo_inflight", "Inflight.", 2, Label{Name: "model", Value: "a"})
	w.Counter("demo_requests_total", "Requests.", 5, Label{Name: "model", Value: "b"})
	w.Gauge("demo_inflight", "Inflight.", 0, Label{Name: "model", Value: "b"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP demo_requests_total Requests.
# TYPE demo_requests_total counter
demo_requests_total{model="a"} 3
demo_requests_total{model="b"} 5
# HELP demo_inflight Inflight.
# TYPE demo_inflight gauge
demo_inflight{model="a"} 2
demo_inflight{model="b"} 0
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	r := NewLatencyRecorder(8)
	for _, v := range []float64{0.04, 0.2, 0.2, 3, 2000} {
		r.Record(v)
	}
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Histogram("demo_latency_ms", "Latency.", r.Histogram(), Label{Name: "model", Value: "a"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE demo_latency_ms histogram",
		`demo_latency_ms_bucket{model="a",le="0.05"} 1`,
		`demo_latency_ms_bucket{model="a",le="0.25"} 3`,
		`demo_latency_ms_bucket{model="a",le="5"} 4`,
		`demo_latency_ms_bucket{model="a",le="1000"} 4`,
		`demo_latency_ms_bucket{model="a",le="+Inf"} 5`,
		`demo_latency_ms_count{model="a"} 5`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestPromWriterLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Gauge("demo", "D.", 1, Label{Name: "v", Value: "a\"b\\c\nd"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := `demo{v="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping: got %q, want it to contain %q", buf.String(), want)
	}
}

func TestPromWriterTypeConflict(t *testing.T) {
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Counter("demo", "D.", 1)
	w.Gauge("demo", "D.", 2)
	if err := w.Flush(); !errors.Is(err, ErrInput) {
		t.Fatalf("re-typed metric: %v, want ErrInput", err)
	}
}
