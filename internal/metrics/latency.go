package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultLatencyBuckets are the cumulative histogram bounds (milliseconds)
// a LatencyRecorder tracks for Prometheus exposition: sub-millisecond
// resolution where batched serving lives, coarsening toward the second mark.
var DefaultLatencyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}

// LatencyRecorder accumulates latency observations for a serving runtime.
// Quantiles are computed over a sliding window of the most recent samples
// (a fixed-capacity ring, so memory is bounded under sustained load), while
// count, mean, max, and the histogram buckets cover the recorder's whole
// lifetime — Prometheus histograms must be monotonic, so they cannot ride
// the sliding window. All methods are safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []float64 // ring buffer of recent observations
	next    int       // ring write cursor
	count   uint64
	sum     float64
	max     float64
	bounds  []float64 // ascending histogram upper bounds
	buckets []uint64  // per-bucket (non-cumulative) lifetime counts
}

// NewLatencyRecorder builds a recorder whose quantile window holds capacity
// samples (minimum 1), with DefaultLatencyBuckets histogram bounds.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &LatencyRecorder{
		samples: make([]float64, 0, capacity),
		bounds:  DefaultLatencyBuckets,
		buckets: make([]uint64, len(DefaultLatencyBuckets)),
	}
}

// Record adds one observation (any unit; callers in this repo use
// milliseconds). NaN and negative values are dropped.
func (r *LatencyRecorder) Record(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.sum += v
	if v > r.max {
		r.max = v
	}
	for i, bound := range r.bounds {
		if v <= bound {
			r.buckets[i]++
			break
		}
	}
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, v)
		return
	}
	r.samples[r.next] = v
	r.next = (r.next + 1) % cap(r.samples)
}

// Count returns the lifetime number of recorded observations.
func (r *LatencyRecorder) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Quantile returns the q-th quantile (0 <= q <= 1) over the sliding window,
// with linear interpolation between adjacent order statistics. It returns an
// error when no samples have been recorded or q is out of range.
func (r *LatencyRecorder) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: quantile %v", ErrInput, q)
	}
	r.mu.Lock()
	window := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	if len(window) == 0 {
		return 0, fmt.Errorf("%w: no samples recorded", ErrInput)
	}
	sort.Float64s(window)
	return quantileOf(window, q), nil
}

// quantileOf interpolates the q-th quantile of an already-sorted, non-empty
// sample.
func quantileOf(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// HistogramSnapshot is the cumulative-bucket digest of a LatencyRecorder,
// shaped for Prometheus exposition: Counts[i] is the lifetime number of
// observations <= Bounds[i], and Count/Sum close the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // cumulative; same length as Bounds
	Count  uint64   // lifetime observations (the +Inf bucket)
	Sum    float64
}

// Histogram snapshots the lifetime cumulative buckets.
func (r *LatencyRecorder) Histogram() HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := HistogramSnapshot{
		Bounds: r.bounds,
		Counts: make([]uint64, len(r.buckets)),
		Count:  r.count,
		Sum:    r.sum,
	}
	var cum uint64
	for i, n := range r.buckets {
		cum += n
		h.Counts[i] = cum
	}
	return h
}

// LatencySummary is a point-in-time digest of a LatencyRecorder, shaped for
// a stats endpoint.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot digests the recorder. An empty recorder yields a zero summary.
func (r *LatencyRecorder) Snapshot() LatencySummary {
	r.mu.Lock()
	s := LatencySummary{Count: r.count, Max: r.max}
	if r.count > 0 {
		s.Mean = r.sum / float64(r.count)
	}
	window := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	if len(window) == 0 {
		return s
	}
	sort.Float64s(window)
	s.P50 = quantileOf(window, 0.50)
	s.P90 = quantileOf(window, 0.90)
	s.P99 = quantileOf(window, 0.99)
	return s
}
