package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Fatalf("accuracy %v, want 0.75", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput, got %v", err)
	}
	if _, err := Accuracy(nil, nil); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for empty, got %v", err)
	}
}

func TestConfusionMatrixPerfect(t *testing.T) {
	pred := []int{0, 1, 2, 0, 1, 2}
	cm, err := NewConfusionMatrix(pred, pred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cm.MacroF1() != 1 || cm.MicroF1() != 1 || cm.WeightedF1() != 1 {
		t.Fatalf("perfect predictions should give F1=1: macro=%v micro=%v weighted=%v",
			cm.MacroF1(), cm.MicroF1(), cm.WeightedF1())
	}
}

func TestConfusionMatrixKnown(t *testing.T) {
	// truth:  0 0 0 1 1
	// pred:   0 0 1 1 0
	truth := []int{0, 0, 0, 1, 1}
	pred := []int{0, 0, 1, 1, 0}
	cm, err := NewConfusionMatrix(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, r := cm.PrecisionRecall()
	// class 0: tp=2, predicted=3, actual=3 -> p=2/3, r=2/3
	if math.Abs(p[0]-2.0/3) > 1e-12 || math.Abs(r[0]-2.0/3) > 1e-12 {
		t.Fatalf("class 0 p=%v r=%v, want 2/3", p[0], r[0])
	}
	// class 1: tp=1, predicted=2, actual=2 -> p=1/2, r=1/2
	if math.Abs(p[1]-0.5) > 1e-12 || math.Abs(r[1]-0.5) > 1e-12 {
		t.Fatalf("class 1 p=%v r=%v, want 1/2", p[1], r[1])
	}
	// micro F1 == accuracy == 3/5
	if math.Abs(cm.MicroF1()-0.6) > 1e-12 {
		t.Fatalf("micro F1 %v, want 0.6", cm.MicroF1())
	}
	wantMacro := (2.0/3 + 0.5) / 2
	if math.Abs(cm.MacroF1()-wantMacro) > 1e-12 {
		t.Fatalf("macro F1 %v, want %v", cm.MacroF1(), wantMacro)
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix([]int{0}, []int{5}, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for out-of-range label, got %v", err)
	}
	if _, err := NewConfusionMatrix([]int{0}, []int{0}, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for zero classes, got %v", err)
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	auc, err := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("perfect separation AUC %v, want 1", auc)
	}
	auc, err = AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("inverted separation AUC %v, want 0", auc)
	}
	// All-tied scores give AUC 0.5.
	auc, err = AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC %v, want 0.5", auc)
	}
}

func TestAUCValidation(t *testing.T) {
	if _, err := AUC([]float64{1}, []int{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for single-class input, got %v", err)
	}
	if _, err := AUC([]float64{1, 2}, []int{0, 3}); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for non-binary label, got %v", err)
	}
}

func TestMicroF1EqualsAccuracyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		classes := 2 + rng.Intn(5)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(classes)
			truth[i] = rng.Intn(classes)
		}
		acc, err := Accuracy(pred, truth)
		if err != nil {
			return false
		}
		cm, err := NewConfusionMatrix(pred, truth, classes)
		if err != nil {
			return false
		}
		return math.Abs(cm.MicroF1()-acc) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateReport(t *testing.T) {
	rep, err := Evaluate([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy != 0.75 || rep.MicroF1 != 0.75 {
		t.Fatalf("report %+v", rep)
	}
	if rep.F1 <= 0 || rep.F1 > 1 || rep.MacroF1 <= 0 || rep.MacroF1 > 1 {
		t.Fatalf("F1 out of range: %+v", rep)
	}
}
