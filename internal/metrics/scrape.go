package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition-format series sample: a metric name (for
// histograms, the `_bucket`/`_sum`/`_count` series name), its label set, and
// the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed Prometheus text exposition payload — the read side of
// PromWriter, shared by acceptance harnesses (clustercheck, fedsim) and
// tests so each caller stops hand-rolling `strings.Contains` matching
// against raw metric text. Build one with ParseProm or ScrapeURL and query
// it with Value / Sum / HistogramQuantile.
type Scrape struct {
	samples []Sample
	types   map[string]string // family -> TYPE declaration
}

// ParseProm parses a text exposition (format 0.0.4) payload. Unparseable
// sample lines are an error; HELP/TYPE comments are retained as family
// metadata and other comments are skipped.
func ParseProm(text string) (*Scrape, error) {
	s := &Scrape{types: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" {
				s.types[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", ln+1, err)
		}
		s.samples = append(s.samples, sample)
	}
	return s, nil
}

// ScrapeURL fetches url (a /metrics endpoint) and parses the payload.
func ScrapeURL(url string) (*Scrape, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("metrics: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: scrape %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics: scrape %s: %w", url, err)
	}
	return ParseProm(string(body))
}

// parseSampleLine parses `name{l1="v1",l2="v2"} value` (labels optional).
func parseSampleLine(line string) (Sample, error) {
	sample := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return sample, fmt.Errorf("no value: %q", line)
	} else {
		sample.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, sample.Labels)
		if err != nil {
			return sample, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return sample, fmt.Errorf("no value: %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sample, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	sample.Value = v
	return sample, nil
}

// parseLabels parses a `{name="value",...}` block starting at s[0] == '{',
// un-escaping label values, and returns the index just past the closing '}'.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label block")
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: missing opening quote", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
	}
}

// matches reports whether the sample carries every given label pair (the
// sample may have more).
func (s Sample) matches(labels []Label) bool {
	for _, l := range labels {
		if s.Labels[l.Name] != l.Value {
			return false
		}
	}
	return true
}

// Has reports whether any series of the named family was scraped (for
// histograms, the family name matches its `_bucket`/`_sum`/`_count` series
// too).
func (s *Scrape) Has(name string) bool {
	if _, ok := s.types[name]; ok {
		return true
	}
	for _, sm := range s.samples {
		if sm.Name == name {
			return true
		}
	}
	return false
}

// Type returns the declared TYPE of a family ("" when undeclared).
func (s *Scrape) Type(name string) string { return s.types[name] }

// Value returns the first sample of the named series matching every given
// label, and whether one was found.
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	for _, sm := range s.samples {
		if sm.Name == name && sm.matches(labels) {
			return sm.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample of the named series matching the given label subset
// — e.g. a counter summed across its `model` label, or across nodes when
// several scrapes are merged with Merge.
func (s *Scrape) Sum(name string, labels ...Label) float64 {
	var total float64
	for _, sm := range s.samples {
		if sm.Name == name && sm.matches(labels) {
			total += sm.Value
		}
	}
	return total
}

// Merge folds another scrape's samples into this one (types from the other
// scrape win only where unset), so per-node scrapes aggregate into one
// cluster-wide view.
func (s *Scrape) Merge(o *Scrape) {
	s.samples = append(s.samples, o.samples...)
	for k, v := range o.types {
		if _, ok := s.types[k]; !ok {
			s.types[k] = v
		}
	}
}

// HistogramBuckets returns the named histogram's cumulative buckets matching
// the given label subset, as parallel (ascending bound, cumulative count)
// slices with the +Inf bucket last. Series split across labels (e.g. one
// histogram per model) are summed per bound.
func (s *Scrape) HistogramBuckets(name string, labels ...Label) (bounds []float64, counts []float64) {
	acc := map[float64]float64{}
	for _, sm := range s.samples {
		if sm.Name != name+"_bucket" || !sm.matches(labels) {
			continue
		}
		le := sm.Labels["le"]
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = v
		}
		acc[bound] += sm.Value
	}
	for b := range acc {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	counts = make([]float64, len(bounds))
	for i, b := range bounds {
		counts[i] = acc[b]
	}
	return bounds, counts
}

// HistogramQuantile estimates the q-th quantile of the named histogram from
// its cumulative buckets (the prometheus histogram_quantile estimator:
// linear interpolation within the landing bucket). The result saturates at
// the highest finite bound when the quantile lands in the +Inf bucket.
// Errors when the histogram is missing or empty.
func (s *Scrape) HistogramQuantile(name string, q float64, labels ...Label) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: quantile %v", ErrInput, q)
	}
	bounds, counts := s.HistogramBuckets(name, labels...)
	return BucketQuantile(q, bounds, counts)
}

// BucketQuantile computes a quantile from cumulative histogram buckets
// (ascending bounds, the last of which may be +Inf). It is also the delta
// path for windowed SLO math: subtract two scrapes' cumulative counts and
// pass the difference.
func BucketQuantile(q float64, bounds, counts []float64) (float64, error) {
	if len(bounds) == 0 || len(bounds) != len(counts) {
		return 0, fmt.Errorf("%w: %d bounds, %d counts", ErrInput, len(bounds), len(counts))
	}
	total := counts[len(counts)-1]
	if total <= 0 {
		return 0, fmt.Errorf("%w: empty histogram", ErrInput)
	}
	rank := q * total
	for i, c := range counts {
		if c < rank {
			continue
		}
		hi := bounds[i]
		if math.IsInf(hi, 1) {
			// Saturate at the highest finite bound; the true value is
			// unknowable past it.
			if i == 0 {
				return 0, fmt.Errorf("%w: only a +Inf bucket", ErrInput)
			}
			return bounds[i-1], nil
		}
		lo, loCount := 0.0, 0.0
		if i > 0 {
			lo, loCount = bounds[i-1], counts[i-1]
		}
		if c == loCount {
			return hi, nil
		}
		return lo + (hi-lo)*(rank-loCount)/(c-loCount), nil
	}
	return bounds[len(bounds)-1], nil
}
