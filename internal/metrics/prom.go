package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one name/value pair attached to a Prometheus sample.
type Label struct {
	Name  string
	Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4), the payload of a /metrics endpoint. Samples accumulate
// in memory and Flush writes them grouped by metric family — the format
// requires a family's series to be consecutive, and producers (one per
// served model, plus training sources) naturally interleave families. The
// `# HELP` / `# TYPE` header is emitted once per family, label values are
// escaped, and the first error (io failure or a name re-declared under a
// different type) is retained for Err/Flush. A PromWriter is
// single-goroutine: build one per scrape over a buffer.
type PromWriter struct {
	w     io.Writer
	order []string          // families in first-seen order
	kinds map[string]string // family -> TYPE
	helps map[string]string
	lines map[string][]string // family -> rendered sample lines
	err   error
}

// NewPromWriter builds a writer that Flush renders to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{
		w:     w,
		kinds: make(map[string]string),
		helps: make(map[string]string),
		lines: make(map[string][]string),
	}
}

// Err returns the first error recorded so far.
func (p *PromWriter) Err() error { return p.err }

// Counter records one monotonically-increasing sample.
func (p *PromWriter) Counter(name, help string, value float64, labels ...Label) {
	p.sample(name, "counter", help, name, value, labels)
}

// Gauge records one point-in-time sample.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...Label) {
	p.sample(name, "gauge", help, name, value, labels)
}

// Histogram records one cumulative-bucket histogram: a `_bucket` series per
// bound plus `+Inf`, then `_sum` and `_count`.
func (p *PromWriter) Histogram(name, help string, h HistogramSnapshot, labels ...Label) {
	if p.err != nil {
		return
	}
	if len(h.Bounds) != len(h.Counts) {
		p.err = fmt.Errorf("%w: histogram %s has %d bounds but %d counts", ErrInput, name, len(h.Bounds), len(h.Counts))
		return
	}
	if !p.family(name, "histogram", help) {
		return
	}
	for i, bound := range h.Bounds {
		le := Label{Name: "le", Value: formatFloat(bound)}
		p.line(name, name+"_bucket", float64(h.Counts[i]), append(append([]Label(nil), labels...), le))
	}
	p.line(name, name+"_bucket", float64(h.Count), append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"}))
	p.line(name, name+"_sum", h.Sum, labels)
	p.line(name, name+"_count", float64(h.Count), labels)
}

// WriteSortedLabels records one sample per key of a map-backed series (e.g.
// per-placement counts) in sorted key order, so scrapes are deterministic.
// kind is "counter" or "gauge".
func (p *PromWriter) WriteSortedLabels(name, help, kind, labelName string, values map[string]uint64, fixed ...Label) {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		labels := append(append([]Label(nil), fixed...), Label{Name: labelName, Value: k})
		if kind == "gauge" {
			p.Gauge(name, help, float64(values[k]), labels...)
		} else {
			p.Counter(name, help, float64(values[k]), labels...)
		}
	}
}

// Flush writes every family — header then its samples, families in
// first-seen order — and returns the first error recorded at any point.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	for _, fam := range p.order {
		if _, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", fam, p.helps[fam], fam, p.kinds[fam]); err != nil {
			p.err = err
			return err
		}
		for _, ln := range p.lines[fam] {
			if _, err := io.WriteString(p.w, ln); err != nil {
				p.err = err
				return err
			}
		}
	}
	return nil
}

func (p *PromWriter) sample(fam, kind, help, series string, value float64, labels []Label) {
	if p.err != nil {
		return
	}
	if !p.family(fam, kind, help) {
		return
	}
	p.line(fam, series, value, labels)
}

// family registers a metric family the first time its name appears and
// enforces that a name keeps one type for the writer's lifetime.
func (p *PromWriter) family(name, kind, help string) bool {
	if declared, ok := p.kinds[name]; ok {
		if declared != kind {
			p.err = fmt.Errorf("%w: metric %s declared as both %s and %s", ErrInput, name, declared, kind)
			return false
		}
		return true
	}
	p.order = append(p.order, name)
	p.kinds[name] = kind
	p.helps[name] = help
	return true
}

func (p *PromWriter) line(fam, series string, value float64, labels []Label) {
	var sb strings.Builder
	sb.WriteString(series)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(value))
	sb.WriteByte('\n')
	p.lines[fam] = append(p.lines[fam], sb.String())
}

// escapeLabel applies the exposition-format label escapes: backslash, double
// quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
