package metrics

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

const scrapeFixture = `# HELP mobiledl_requests_total Requests answered successfully.
# TYPE mobiledl_requests_total counter
mobiledl_requests_total{model="a"} 10
mobiledl_requests_total{model="b"} 32
# HELP mobiledl_queue_depth Requests waiting.
# TYPE mobiledl_queue_depth gauge
mobiledl_queue_depth{model="a"} 3
# HELP mobiledl_request_latency_ms End-to-end latency.
# TYPE mobiledl_request_latency_ms histogram
mobiledl_request_latency_ms_bucket{model="a",le="1"} 50
mobiledl_request_latency_ms_bucket{model="a",le="10"} 90
mobiledl_request_latency_ms_bucket{model="a",le="100"} 99
mobiledl_request_latency_ms_bucket{model="a",le="+Inf"} 100
mobiledl_request_latency_ms_sum{model="a"} 421.5
mobiledl_request_latency_ms_count{model="a"} 100
escaped{path="a\"b\\c\nd"} 1
`

func TestParsePromRoundTrip(t *testing.T) {
	s, err := ParseProm(scrapeFixture)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("mobiledl_requests_total") || s.Type("mobiledl_requests_total") != "counter" {
		t.Fatalf("counter family missing or untyped: %q", s.Type("mobiledl_requests_total"))
	}
	if s.Type("mobiledl_request_latency_ms") != "histogram" {
		t.Fatal("histogram TYPE not retained")
	}
	if v, ok := s.Value("mobiledl_requests_total", Label{Name: "model", Value: "b"}); !ok || v != 32 {
		t.Fatalf("Value(model=b) = %v, %v", v, ok)
	}
	if _, ok := s.Value("mobiledl_requests_total", Label{Name: "model", Value: "zzz"}); ok {
		t.Fatal("Value matched a missing label")
	}
	if got := s.Sum("mobiledl_requests_total"); got != 42 {
		t.Fatalf("Sum across models = %v, want 42", got)
	}
	if v, ok := s.Value("escaped", Label{Name: "path", Value: "a\"b\\c\nd"}); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v %v", v, ok)
	}
	if s.Has("nonexistent_family") {
		t.Fatal("Has matched a missing family")
	}
}

// TestParsePromReadsPromWriterOutput pins the writer/parser pair: whatever
// PromWriter emits, ParseProm must read back, including histograms and
// escaped labels.
func TestParsePromReadsPromWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	pw.Counter("c_total", "help", 7, Label{Name: "weird", Value: "a\"b\\c\nd"})
	pw.Gauge("g", "help", 2.5)
	rec := NewLatencyRecorder(16)
	for _, v := range []float64{0.2, 0.7, 3, 40, 900} {
		rec.Record(v)
	}
	pw.Histogram("lat_ms", "help", rec.Histogram())
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := ParseProm(buf.String())
	if err != nil {
		t.Fatalf("parse of PromWriter output: %v\n%s", err, buf.String())
	}
	if v, ok := s.Value("c_total", Label{Name: "weird", Value: "a\"b\\c\nd"}); !ok || v != 7 {
		t.Fatalf("counter round-trip: %v %v", v, ok)
	}
	if v, ok := s.Value("lat_ms_count"); !ok || v != 5 {
		t.Fatalf("histogram count round-trip: %v %v", v, ok)
	}
	bounds, counts := s.HistogramBuckets("lat_ms")
	if len(bounds) != len(DefaultLatencyBuckets)+1 || !math.IsInf(bounds[len(bounds)-1], 1) {
		t.Fatalf("bucket shape: %v", bounds)
	}
	if counts[len(counts)-1] != 5 {
		t.Fatalf("+Inf bucket = %v, want 5", counts[len(counts)-1])
	}
}

func TestScrapeURL(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(scrapeFixture))
	}))
	defer ts.Close()
	s, err := ScrapeURL(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("mobiledl_requests_total"); got != 42 {
		t.Fatalf("scraped sum = %v", got)
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, err := ScrapeURL(bad.URL); err == nil {
		t.Fatal("500 scrape did not error")
	}
}

func TestHistogramQuantile(t *testing.T) {
	s, err := ParseProm(scrapeFixture)
	if err != nil {
		t.Fatal(err)
	}
	// Median: rank 50 lands exactly on the le=1 bucket boundary.
	p50, err := s.HistogramQuantile("mobiledl_request_latency_ms", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v, want (0, 1]", p50)
	}
	// p95: rank 95 falls in (10, 100], 5/9ths of the way through.
	p95, err := s.HistogramQuantile("mobiledl_request_latency_ms", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 90*(95.0-90)/9
	if math.Abs(p95-want) > 1e-9 {
		t.Fatalf("p95 = %v, want %v", p95, want)
	}
	// p999 lands in +Inf: saturates at the highest finite bound.
	p999, err := s.HistogramQuantile("mobiledl_request_latency_ms", 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if p999 != 100 {
		t.Fatalf("p999 = %v, want saturation at 100", p999)
	}
	if _, err := s.HistogramQuantile("missing_histogram", 0.5); err == nil {
		t.Fatal("missing histogram did not error")
	}
	if _, err := s.HistogramQuantile("mobiledl_request_latency_ms", 1.5); err == nil {
		t.Fatal("out-of-range quantile did not error")
	}
}

func TestBucketQuantileEdges(t *testing.T) {
	if _, err := BucketQuantile(0.5, nil, nil); err == nil {
		t.Fatal("empty buckets did not error")
	}
	if _, err := BucketQuantile(0.5, []float64{1, math.Inf(1)}, []float64{0, 0}); err == nil {
		t.Fatal("zero-count histogram did not error")
	}
	// All mass in the first bucket: q interpolates inside [0, bound].
	v, err := BucketQuantile(0.5, []float64{10, math.Inf(1)}, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("single-bucket p50 = %v, want 5", v)
	}
}

func TestScrapeMerge(t *testing.T) {
	a, err := ParseProm("x_total{node=\"a\"} 1\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseProm("# TYPE x_total counter\nx_total{node=\"b\"} 2\n")
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if got := a.Sum("x_total"); got != 3 {
		t.Fatalf("merged sum = %v", got)
	}
	if a.Type("x_total") != "counter" {
		t.Fatal("merge dropped the type")
	}
}
