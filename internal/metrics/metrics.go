// Package metrics implements the evaluation measures the paper reports:
// accuracy, per-class precision/recall, macro/micro F1, confusion matrices,
// and binary AUC.
package metrics

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInput reports invalid metric inputs (length mismatch, empty sets).
var ErrInput = errors.New("metrics: invalid input")

// Accuracy returns the fraction of predictions equal to the true labels.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("%w: %d predictions vs %d labels", ErrInput, len(pred), len(truth))
	}
	correct := 0
	for i, p := range pred {
		if p == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// ConfusionMatrix holds counts[i][j] = samples with true class i predicted j.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix tabulates predictions against truth over classes.
func NewConfusionMatrix(pred, truth []int, classes int) (*ConfusionMatrix, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return nil, fmt.Errorf("%w: %d predictions vs %d labels", ErrInput, len(pred), len(truth))
	}
	if classes <= 0 {
		return nil, fmt.Errorf("%w: %d classes", ErrInput, classes)
	}
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, classes)
	}
	for i, p := range pred {
		tr := truth[i]
		if p < 0 || p >= classes || tr < 0 || tr >= classes {
			return nil, fmt.Errorf("%w: label out of range (pred=%d truth=%d classes=%d)", ErrInput, p, tr, classes)
		}
		cm.Counts[tr][p]++
	}
	return cm, nil
}

// PrecisionRecall returns per-class precision and recall. Classes with no
// predicted (resp. true) samples get precision (resp. recall) 0.
func (cm *ConfusionMatrix) PrecisionRecall() (precision, recall []float64) {
	precision = make([]float64, cm.Classes)
	recall = make([]float64, cm.Classes)
	for c := 0; c < cm.Classes; c++ {
		tp := cm.Counts[c][c]
		var predicted, actual int
		for k := 0; k < cm.Classes; k++ {
			predicted += cm.Counts[k][c]
			actual += cm.Counts[c][k]
		}
		if predicted > 0 {
			precision[c] = float64(tp) / float64(predicted)
		}
		if actual > 0 {
			recall[c] = float64(tp) / float64(actual)
		}
	}
	return precision, recall
}

// MacroF1 returns the unweighted mean of per-class F1 scores.
func (cm *ConfusionMatrix) MacroF1() float64 {
	p, r := cm.PrecisionRecall()
	var sum float64
	for c := 0; c < cm.Classes; c++ {
		if p[c]+r[c] > 0 {
			sum += 2 * p[c] * r[c] / (p[c] + r[c])
		}
	}
	return sum / float64(cm.Classes)
}

// MicroF1 returns the micro-averaged F1, which for single-label multi-class
// classification equals accuracy.
func (cm *ConfusionMatrix) MicroF1() float64 {
	var tp, total int
	for c := 0; c < cm.Classes; c++ {
		tp += cm.Counts[c][c]
		for k := 0; k < cm.Classes; k++ {
			total += cm.Counts[c][k]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(tp) / float64(total)
}

// WeightedF1 returns the support-weighted mean of per-class F1 scores,
// the "F1" column convention used in the paper's Table I.
func (cm *ConfusionMatrix) WeightedF1() float64 {
	p, r := cm.PrecisionRecall()
	var sum float64
	var total int
	for c := 0; c < cm.Classes; c++ {
		var support int
		for k := 0; k < cm.Classes; k++ {
			support += cm.Counts[c][k]
		}
		total += support
		if p[c]+r[c] > 0 {
			sum += float64(support) * 2 * p[c] * r[c] / (p[c] + r[c])
		}
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// AUC computes the area under the ROC curve for binary labels (0/1) given
// predicted scores for the positive class, using the rank formulation with
// proper tie handling.
func AUC(scores []float64, labels []int) (float64, error) {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0, fmt.Errorf("%w: %d scores vs %d labels", ErrInput, len(scores), len(labels))
	}
	type pair struct {
		s float64
		l int
	}
	ps := make([]pair, len(scores))
	var pos, neg int
	for i := range scores {
		if labels[i] != 0 && labels[i] != 1 {
			return 0, fmt.Errorf("%w: AUC labels must be 0/1, got %d", ErrInput, labels[i])
		}
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("%w: AUC needs both classes (pos=%d neg=%d)", ErrInput, pos, neg)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Average ranks across ties.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSum float64
	for i, p := range ps {
		if p.l == 1 {
			rankSum += ranks[i]
		}
	}
	return (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg)), nil
}

// Report bundles the headline numbers for one classifier evaluation.
type Report struct {
	Accuracy float64
	MacroF1  float64
	MicroF1  float64
	F1       float64 // support-weighted, the paper's Table I convention
}

// Evaluate computes a full Report from predictions.
func Evaluate(pred, truth []int, classes int) (Report, error) {
	acc, err := Accuracy(pred, truth)
	if err != nil {
		return Report{}, err
	}
	cm, err := NewConfusionMatrix(pred, truth, classes)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Accuracy: acc,
		MacroF1:  cm.MacroF1(),
		MicroF1:  cm.MicroF1(),
		F1:       cm.WeightedF1(),
	}, nil
}
