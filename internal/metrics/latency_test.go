package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestLatencyRecorderQuantiles(t *testing.T) {
	r := NewLatencyRecorder(1000)
	for i := 1; i <= 100; i++ {
		r.Record(float64(i))
	}
	if r.Count() != 100 {
		t.Fatalf("count %d, want 100", r.Count())
	}
	p50, err := r.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p50-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", p50)
	}
	s := r.Snapshot()
	if s.Max != 100 || math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if _, err := r.Quantile(1.5); !errors.Is(err, ErrInput) {
		t.Fatalf("out-of-range quantile: %v", err)
	}
}

func TestLatencyRecorderEmptyAndInvalid(t *testing.T) {
	r := NewLatencyRecorder(8)
	if _, err := r.Quantile(0.5); !errors.Is(err, ErrInput) {
		t.Fatalf("empty quantile: %v", err)
	}
	if s := r.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	r.Record(-1)
	r.Record(math.NaN())
	if r.Count() != 0 {
		t.Fatal("invalid samples must be dropped")
	}
}

func TestLatencyRecorderSlidingWindow(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := 0; i < 100; i++ {
		r.Record(1000) // old regime
	}
	for i := 0; i < 4; i++ {
		r.Record(1) // new regime fills the window
	}
	p99, err := r.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 != 1 {
		t.Fatalf("window quantile should forget old samples, p99 = %v", p99)
	}
	// Lifetime stats still remember everything.
	if s := r.Snapshot(); s.Count != 104 || s.Max != 1000 {
		t.Fatalf("lifetime stats %+v", s)
	}
}

// TestLatencyRecorderQuantileEdges pins the boundary cases: a window of
// one sample answers every quantile with that sample, and q=0 / q=1 are the
// window minimum and maximum exactly (no interpolation off the ends).
func TestLatencyRecorderQuantileEdges(t *testing.T) {
	one := NewLatencyRecorder(1)
	one.Record(7)
	one.Record(42) // window of 1: only the latest sample remains
	for _, q := range []float64{0, 0.5, 1} {
		got, err := one.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("Quantile(%v) on a window of 1 = %v, want 42", q, got)
		}
	}

	r := NewLatencyRecorder(16)
	for _, v := range []float64{9, 3, 12, 1, 6} {
		r.Record(v)
	}
	if got, err := r.Quantile(0); err != nil || got != 1 {
		t.Fatalf("Quantile(0) = %v, %v; want the window minimum 1", got, err)
	}
	if got, err := r.Quantile(1); err != nil || got != 12 {
		t.Fatalf("Quantile(1) = %v, %v; want the window maximum 12", got, err)
	}
	if _, err := r.Quantile(math.NaN()); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN quantile: %v, want ErrInput", err)
	}
	if _, err := r.Quantile(-0.1); !errors.Is(err, ErrInput) {
		t.Fatalf("negative quantile: %v, want ErrInput", err)
	}
}

func TestLatencyRecorderHistogram(t *testing.T) {
	r := NewLatencyRecorder(4)
	for _, v := range []float64{0.01, 0.3, 30, 5000} {
		r.Record(v)
	}
	h := r.Histogram()
	if h.Count != 4 || math.Abs(h.Sum-5030.31) > 1e-9 {
		t.Fatalf("histogram count=%d sum=%v", h.Count, h.Sum)
	}
	if len(h.Counts) != len(h.Bounds) {
		t.Fatalf("%d counts for %d bounds", len(h.Counts), len(h.Bounds))
	}
	// Cumulative counts must be monotonic and end below Count when samples
	// overflow the last bound (5000 > 1000 lives only in +Inf).
	var prev uint64
	for i, c := range h.Counts {
		if c < prev {
			t.Fatalf("bucket %d not cumulative: %v", i, h.Counts)
		}
		prev = c
	}
	if last := h.Counts[len(h.Counts)-1]; last != 3 {
		t.Fatalf("last bound holds %d, want 3 (one sample beyond every bound)", last)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(float64(g*500 + i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Count() != 4000 {
		t.Fatalf("count %d, want 4000", r.Count())
	}
}
