package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestLatencyRecorderQuantiles(t *testing.T) {
	r := NewLatencyRecorder(1000)
	for i := 1; i <= 100; i++ {
		r.Record(float64(i))
	}
	if r.Count() != 100 {
		t.Fatalf("count %d, want 100", r.Count())
	}
	p50, err := r.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p50-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", p50)
	}
	s := r.Snapshot()
	if s.Max != 100 || math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if _, err := r.Quantile(1.5); !errors.Is(err, ErrInput) {
		t.Fatalf("out-of-range quantile: %v", err)
	}
}

func TestLatencyRecorderEmptyAndInvalid(t *testing.T) {
	r := NewLatencyRecorder(8)
	if _, err := r.Quantile(0.5); !errors.Is(err, ErrInput) {
		t.Fatalf("empty quantile: %v", err)
	}
	if s := r.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	r.Record(-1)
	r.Record(math.NaN())
	if r.Count() != 0 {
		t.Fatal("invalid samples must be dropped")
	}
}

func TestLatencyRecorderSlidingWindow(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := 0; i < 100; i++ {
		r.Record(1000) // old regime
	}
	for i := 0; i < 4; i++ {
		r.Record(1) // new regime fills the window
	}
	p99, err := r.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 != 1 {
		t.Fatalf("window quantile should forget old samples, p99 = %v", p99)
	}
	// Lifetime stats still remember everything.
	if s := r.Snapshot(); s.Count != 104 || s.Max != 1000 {
		t.Fatalf("lifetime stats %+v", s)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(float64(g*500 + i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Count() != 4000 {
		t.Fatalf("count %d, want 4000", r.Count())
	}
}
