package compress

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6)) // 2..64
		data := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = data[i]
		}
		FFT(data, false)
		FFT(data, true)
		for i := range data {
			if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	data := []complex128{1, 0, 0, 0}
	FFT(data, false)
	for i, v := range data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	// FFT of all ones is an impulse of height n.
	data = []complex128{1, 1, 1, 1}
	FFT(data, false)
	if cmplx.Abs(data[0]-4) > 1e-12 {
		t.Fatalf("DC bin %v, want 4", data[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(data[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, data[i])
		}
	}
}

// circulantDense builds a Dense layer whose weight matrix is exactly
// block-circulant, so the projection must be lossless.
func circulantDense(t *testing.T, rng *rand.Rand, in, out, block int) *nn.Dense {
	t.Helper()
	w := tensor.New(in, out)
	for i := 0; i < out/block; i++ {
		for j := 0; j < in/block; j++ {
			c := make([]float64, block)
			for k := range c {
				c[k] = rng.NormFloat64()
			}
			for r := 0; r < block; r++ {
				for s := 0; s < block; s++ {
					w.Set(j*block+s, i*block+r, c[(r-s+block)%block])
				}
			}
		}
	}
	bias := tensor.RandNormal(rng, 1, out, 0, 1)
	d, err := nn.NewDenseFrom(w, bias)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBlockCirculantExactOnCirculantWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := circulantDense(t, rng, 8, 12, 4)
	bc, err := NewBlockCirculantFromDense(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(rng, 5, 8, 0, 1)
	want, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bc.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("FFT circulant forward disagrees with dense forward on circulant weights")
	}
	// ToDense must reconstruct the original weights exactly.
	rec, err := bc.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Weights().Value.Equal(d.Weights().Value, 1e-9) {
		t.Fatal("ToDense did not recover circulant weights")
	}
}

func TestBlockCirculantBlockOneIsExact(t *testing.T) {
	// Block size 1 stores every weight: the projection is the identity.
	rng := rand.New(rand.NewSource(2))
	d := nn.NewDense(rng, 6, 4)
	bc, err := NewBlockCirculantFromDense(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(rng, 3, 6, 0, 1)
	want, _ := d.Forward(x, false)
	got, err := bc.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("block=1 circulant is not exact")
	}
}

func TestBlockCirculantCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := nn.NewDense(rng, 16, 16)
	bc, err := NewBlockCirculantFromDense(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 16*16/8 + 16 bias = 48 vs 256 + 16.
	if got := bc.ParamCount(); got != 16*16/8+16 {
		t.Fatalf("ParamCount %d", got)
	}
}

func TestBlockCirculantValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := nn.NewDense(rng, 6, 4)
	if _, err := NewBlockCirculantFromDense(d, 3); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for non-power-of-two block")
	}
	if _, err := NewBlockCirculantFromDense(d, 4); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for non-dividing block")
	}
	bc, err := NewBlockCirculantFromDense(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Backward(nil); !errors.Is(err, ErrCompress) {
		t.Fatal("circulant backward should refuse")
	}
	if _, err := bc.Forward(tensor.New(1, 5), false); !errors.Is(err, tensor.ErrShape) {
		t.Fatal("want ErrShape for wrong input width")
	}
}

func TestCirculantModelAccuracyTradeoff(t *testing.T) {
	model, x, labels := trainedModel(t) // 10 -> 32 -> 4 MLP
	baseAcc, err := EvalAccuracy(model, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Block 2 on the 10x32 layer: 10,32 both even.
	cm, before, after, err := CirculantModel(model, 2)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("circulant projection saved nothing: %d -> %d", before, after)
	}
	acc, err := EvalAccuracy(cm, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < baseAcc-0.35 {
		t.Fatalf("block-2 circulant accuracy %v collapsed from %v", acc, baseAcc)
	}
	if _, _, _, err := CirculantModel(nn.NewSequential(nn.NewReLU()), 2); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for dense-free model")
	}
}
