package compress

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// DistillConfig configures knowledge distillation (Hinton et al. [37],
// Section III-B technique (3)): a small student mimics a large teacher by
// training against temperature-softened teacher logits mixed with the hard
// labels.
type DistillConfig struct {
	Epochs      int
	BatchSize   int
	Temperature float64
	// Alpha weights the soft (teacher) term; (1-Alpha) the hard labels.
	Alpha     float64
	Optimizer nn.Optimizer
	Seed      int64
}

func (c *DistillConfig) validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("%w: epochs=%d", ErrCompress, c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("%w: batch=%d", ErrCompress, c.BatchSize)
	case c.Temperature <= 0:
		return fmt.Errorf("%w: temperature=%v", ErrCompress, c.Temperature)
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("%w: alpha=%v", ErrCompress, c.Alpha)
	case c.Optimizer == nil:
		return fmt.Errorf("%w: optimizer required", ErrCompress)
	}
	return nil
}

// Distill trains the student against the teacher on (x, labels) and returns
// per-epoch mean losses. The teacher is only read (inference mode).
func Distill(teacher, student *nn.Sequential, x *tensor.Matrix, labels []int, classes int, cfg DistillConfig) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := x.Rows()
	if n == 0 || n != len(labels) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrCompress, n, len(labels))
	}
	y, err := nn.OneHot(labels, classes)
	if err != nil {
		return nil, err
	}
	// Teacher logits are fixed; compute once.
	teacherLogits, err := teacher.Forward(x, false)
	if err != nil {
		return nil, fmt.Errorf("teacher forward: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	loss := nn.NewDistillationLoss(cfg.Temperature, cfg.Alpha)
	params := student.Params()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx := order[start:end]
			xb, err := x.SelectRows(idx)
			if err != nil {
				return nil, err
			}
			yb, err := y.SelectRows(idx)
			if err != nil {
				return nil, err
			}
			tb, err := teacherLogits.SelectRows(idx)
			if err != nil {
				return nil, err
			}
			nn.ZeroGrads(params)
			out, err := student.Forward(xb, true)
			if err != nil {
				return nil, err
			}
			l, err := loss.ForwardDistill(out, tb, yb)
			if err != nil {
				return nil, err
			}
			g, err := loss.Backward()
			if err != nil {
				return nil, err
			}
			if _, err := student.Backward(g); err != nil {
				return nil, err
			}
			if err := cfg.Optimizer.Step(params); err != nil {
				return nil, err
			}
			epochLoss += l
			batches++
		}
		losses = append(losses, epochLoss/float64(batches))
	}
	return losses, nil
}
