package compress

import (
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/tensor"
)

// Quantized is a weight matrix represented by a shared codebook and
// per-entry code indices — the weight-sharing quantization of Deep
// Compression [28] (network quantization, Section III-B technique (1)).
// Zero entries (from pruning) are preserved exactly with a reserved code.
type Quantized struct {
	Rows, Cols int
	// Codebook holds the shared centroid values; index 0 is reserved for
	// exact zero when ZeroCode is true.
	Codebook []float64
	Codes    []uint16
	ZeroCode bool
}

// QuantizeKMeans clusters the non-zero entries of m into 2^bits - 1 shared
// values by 1-D k-means (Lloyd's algorithm with linearly spaced init, as in
// [28]), reserving one code for exact zeros.
func QuantizeKMeans(rng *rand.Rand, m *tensor.Matrix, bits int, iters int) (*Quantized, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: %d-bit quantization", ErrCompress, bits)
	}
	if iters <= 0 {
		iters = 20
	}
	var nonzeros []float64
	for _, v := range m.Data() {
		if v != 0 {
			nonzeros = append(nonzeros, v)
		}
	}
	k := 1<<bits - 1
	if k > len(nonzeros) {
		k = len(nonzeros)
	}
	q := &Quantized{
		Rows:     m.Rows(),
		Cols:     m.Cols(),
		Codes:    make([]uint16, m.Size()),
		ZeroCode: true,
	}
	if k == 0 { // all-zero matrix
		q.Codebook = []float64{0}
		return q, nil
	}

	// Linear init over [min, max] (the scheme [28] found most robust).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range nonzeros {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	centroids := make([]float64, k)
	if k == 1 {
		centroids[0] = (lo + hi) / 2
	} else {
		for i := range centroids {
			centroids[i] = lo + (hi-lo)*float64(i)/float64(k-1)
		}
	}
	_ = rng // kept in the signature for alternative random-init strategies

	assign := make([]int, len(nonzeros))
	for it := 0; it < iters; it++ {
		// Assignment step.
		for i, v := range nonzeros {
			best, bestD := 0, math.Inf(1)
			for c, cv := range centroids {
				if d := math.Abs(v - cv); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		// Update step.
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, c := range assign {
			sums[c] += nonzeros[i]
			counts[c]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c] / float64(counts[c])
			}
		}
	}

	// Codebook: index 0 = zero, 1..k = centroids.
	q.Codebook = make([]float64, k+1)
	copy(q.Codebook[1:], centroids)
	nzPos := 0
	for i, v := range m.Data() {
		if v == 0 {
			q.Codes[i] = 0
			continue
		}
		q.Codes[i] = uint16(assign[nzPos] + 1)
		nzPos++
	}
	return q, nil
}

// QuantizeLinear quantizes m with uniform (linear) n-bit quantization over
// [min, max], the simpler scheme of [32-34] ("reducing the bits required to
// depict the parameters").
func QuantizeLinear(m *tensor.Matrix, bits int) (*Quantized, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: %d-bit quantization", ErrCompress, bits)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	levels := 1 << bits
	q := &Quantized{
		Rows:  m.Rows(),
		Cols:  m.Cols(),
		Codes: make([]uint16, m.Size()),
	}
	q.Codebook = make([]float64, levels)
	if hi == lo {
		q.Codebook[0] = lo
		return q, nil
	}
	step := (hi - lo) / float64(levels-1)
	for i := range q.Codebook {
		q.Codebook[i] = lo + step*float64(i)
	}
	for i, v := range m.Data() {
		code := int(math.Round((v - lo) / step))
		if code < 0 {
			code = 0
		}
		if code >= levels {
			code = levels - 1
		}
		q.Codes[i] = uint16(code)
	}
	return q, nil
}

// Dequantize reconstructs the dense matrix from the codebook.
func (q *Quantized) Dequantize() (*tensor.Matrix, error) {
	m := tensor.New(q.Rows, q.Cols)
	d := m.Data()
	for i, c := range q.Codes {
		if int(c) >= len(q.Codebook) {
			return nil, fmt.Errorf("%w: code %d outside codebook of %d", ErrCompress, c, len(q.Codebook))
		}
		d[i] = q.Codebook[c]
	}
	return m, nil
}

// QuantizationError returns the mean absolute reconstruction error vs m.
func (q *Quantized) QuantizationError(m *tensor.Matrix) (float64, error) {
	rec, err := q.Dequantize()
	if err != nil {
		return 0, err
	}
	diff, err := tensor.Sub(rec, m)
	if err != nil {
		return 0, err
	}
	return diff.L1Norm() / float64(diff.Size()), nil
}

// CodeHistogram returns the frequency of each code, the input to Huffman
// coding.
func (q *Quantized) CodeHistogram() map[uint16]int {
	h := make(map[uint16]int, len(q.Codebook))
	for _, c := range q.Codes {
		h[c]++
	}
	return h
}
