package compress

import (
	"fmt"
	"math"
	"math/cmplx"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// BlockCirculantDense is an inference-only dense layer whose weight matrix
// is block-circulant — the "structural matrix" compression of Section III-B
// ([35]) accelerated with FFT-based multiplication as in CirCNN [14]: an
// m x n matrix is described by mn/b parameters (b the block size) and each
// block-vector product is a circular convolution computed in O(b log b).
type BlockCirculantDense struct {
	in, out, block int
	// coeffs[i][j] is the defining vector (first column) of the circulant
	// block at block-row i, block-column j.
	coeffs [][][]float64
	bias   *tensor.Matrix

	// fftCoeffs caches the FFT of every defining vector.
	fftCoeffs [][][]complex128
}

var _ nn.Layer = (*BlockCirculantDense)(nil)

// NewBlockCirculantFromDense compresses an existing dense layer into
// block-circulant form with the given block size (a power of two dividing
// both dimensions). Each b x b block of the weight matrix is projected to
// the nearest circulant matrix by averaging its wrapped diagonals — the
// least-squares-optimal circulant approximation.
func NewBlockCirculantFromDense(d *nn.Dense, block int) (*BlockCirculantDense, error) {
	in, out := d.In(), d.Out()
	switch {
	case block < 1:
		return nil, fmt.Errorf("%w: block size %d", ErrCompress, block)
	case block&(block-1) != 0:
		return nil, fmt.Errorf("%w: block size %d is not a power of two", ErrCompress, block)
	case in%block != 0 || out%block != 0:
		return nil, fmt.Errorf("%w: block %d does not divide %dx%d", ErrCompress, block, in, out)
	}
	w := d.Weights().Value // in x out
	l := &BlockCirculantDense{
		in:    in,
		out:   out,
		block: block,
		bias:  d.Bias().Value.Clone(),
	}
	nbr := out / block // block rows of the (out x in) operator
	nbc := in / block
	l.coeffs = make([][][]float64, nbr)
	l.fftCoeffs = make([][][]complex128, nbr)
	for i := 0; i < nbr; i++ {
		l.coeffs[i] = make([][]float64, nbc)
		l.fftCoeffs[i] = make([][]complex128, nbc)
		for j := 0; j < nbc; j++ {
			c := make([]float64, block)
			// Operator entry O[r][s] = W[s][r] (forward computes x @ W).
			// Circulant convention: O[r][s] = c[(r-s) mod b].
			for r := 0; r < block; r++ {
				for s := 0; s < block; s++ {
					c[(r-s+block)%block] += w.At(j*block+s, i*block+r)
				}
			}
			for k := range c {
				c[k] /= float64(block)
			}
			l.coeffs[i][j] = c
			fc := make([]complex128, block)
			for k, v := range c {
				fc[k] = complex(v, 0)
			}
			FFT(fc, false)
			l.fftCoeffs[i][j] = fc
		}
	}
	return l, nil
}

// ParamCount returns the number of stored weight parameters (mn/b + bias).
func (l *BlockCirculantDense) ParamCount() int {
	return l.in*l.out/l.block + l.out
}

// Forward implements nn.Layer using FFT-based circular convolution.
func (l *BlockCirculantDense) Forward(x *tensor.Matrix, _ bool) (*tensor.Matrix, error) {
	if x.Cols() != l.in {
		return nil, fmt.Errorf("%w: circulant forward %d cols, want %d", tensor.ErrShape, x.Cols(), l.in)
	}
	out := tensor.New(x.Rows(), l.out)
	b := l.block
	nbr := l.out / b
	nbc := l.in / b
	xf := make([]complex128, b)
	acc := make([]complex128, b)
	for r := 0; r < x.Rows(); r++ {
		row := x.Row(r)
		orow := out.Row(r)
		for j := 0; j < nbc; j++ {
			for k := 0; k < b; k++ {
				xf[k] = complex(row[j*b+k], 0)
			}
			FFT(xf, false)
			for i := 0; i < nbr; i++ {
				fc := l.fftCoeffs[i][j]
				for k := 0; k < b; k++ {
					acc[k] = xf[k] * fc[k]
				}
				FFT(acc, true)
				for k := 0; k < b; k++ {
					orow[i*b+k] += real(acc[k])
				}
			}
		}
		for k := 0; k < l.out; k++ {
			orow[k] += l.bias.At(0, k)
		}
	}
	return out, nil
}

// Backward implements nn.Layer; the layer is inference-only.
func (l *BlockCirculantDense) Backward(_ *tensor.Matrix) (*tensor.Matrix, error) {
	return nil, fmt.Errorf("%w: BlockCirculantDense is inference-only", ErrCompress)
}

// Params implements nn.Layer (no trainable parameters).
func (l *BlockCirculantDense) Params() []*nn.Param { return nil }

// ToDense expands the block-circulant operator back to an explicit dense
// layer (for verification and accuracy evaluation).
func (l *BlockCirculantDense) ToDense() (*nn.Dense, error) {
	w := tensor.New(l.in, l.out)
	b := l.block
	for i := 0; i < l.out/b; i++ {
		for j := 0; j < l.in/b; j++ {
			c := l.coeffs[i][j]
			for r := 0; r < b; r++ {
				for s := 0; s < b; s++ {
					w.Set(j*b+s, i*b+r, c[(r-s+b)%b])
				}
			}
		}
	}
	return nn.NewDenseFrom(w, l.bias.Clone())
}

// CirculantModel replaces every compatible Dense layer with its
// block-circulant projection, returning the new model and the weight
// parameter counts before/after.
func CirculantModel(model *nn.Sequential, block int) (*nn.Sequential, int, int, error) {
	layers := model.Layers()
	out := make([]nn.Layer, len(layers))
	before, after := 0, 0
	converted := false
	for i, layer := range layers {
		d, ok := layer.(*nn.Dense)
		if !ok {
			out[i] = layer
			continue
		}
		before += d.In()*d.Out() + d.Out()
		if d.In()%block != 0 || d.Out()%block != 0 {
			out[i] = layer
			after += d.In()*d.Out() + d.Out()
			continue
		}
		bc, err := NewBlockCirculantFromDense(d, block)
		if err != nil {
			return nil, 0, 0, err
		}
		out[i] = bc
		after += bc.ParamCount()
		converted = true
	}
	if !converted {
		return nil, 0, 0, fmt.Errorf("%w: no layer compatible with block %d", ErrCompress, block)
	}
	return nn.NewSequential(out...), before, after, nil
}

// FFT computes the in-place radix-2 Cooley-Tukey FFT of data (len must be a
// power of two). inverse selects the inverse transform (scaled by 1/n).
func FFT(data []complex128, inverse bool) {
	n := len(data)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := data[i+j]
				v := data[i+j+length/2] * w
				data[i+j] = u + v
				data[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range data {
			data[i] *= inv
		}
	}
}
