package compress

import (
	"container/heap"
	"fmt"
	"sort"
)

// HuffmanCode is a canonical Huffman code over uint16 symbols, the final
// lossless stage of the Deep Compression pipeline [28].
type HuffmanCode struct {
	// Lengths maps each symbol to its code length in bits.
	Lengths map[uint16]int
	codes   map[uint16]code
}

type code struct {
	bits uint64
	n    int
}

type huffNode struct {
	freq        int
	symbol      uint16
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int      { return len(h) }
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].symbol < h[j].symbol // deterministic tie-break
}
func (h *huffHeap) Push(x any) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewHuffmanCode builds a canonical Huffman code from symbol frequencies.
func NewHuffmanCode(freqs map[uint16]int) (*HuffmanCode, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("%w: empty frequency table", ErrCompress)
	}
	h := &huffHeap{}
	for sym, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("%w: non-positive frequency %d for symbol %d", ErrCompress, f, sym)
		}
		heap.Push(h, &huffNode{freq: f, symbol: sym})
	}
	heap.Init(h)
	if h.Len() == 1 {
		// Single-symbol degenerate case: one-bit code.
		node := heap.Pop(h).(*huffNode)
		hc := &HuffmanCode{
			Lengths: map[uint16]int{node.symbol: 1},
			codes:   map[uint16]code{node.symbol: {bits: 0, n: 1}},
		}
		return hc, nil
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, left: a, right: b, symbol: min16(a.symbol, b.symbol)})
	}
	root := heap.Pop(h).(*huffNode)

	lengths := make(map[uint16]int, len(freqs))
	assignLengths(root, 0, lengths)

	// Canonicalize: sort by (length, symbol) and assign sequential codes.
	hc := &HuffmanCode{Lengths: lengths, codes: make(map[uint16]code, len(lengths))}
	type symLen struct {
		sym uint16
		n   int
	}
	ordered := make([]symLen, 0, len(lengths))
	for s, n := range lengths {
		ordered = append(ordered, symLen{s, n})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].n != ordered[j].n {
			return ordered[i].n < ordered[j].n
		}
		return ordered[i].sym < ordered[j].sym
	})
	var next uint64
	prevLen := 0
	for _, sl := range ordered {
		next <<= uint(sl.n - prevLen)
		hc.codes[sl.sym] = code{bits: next, n: sl.n}
		next++
		prevLen = sl.n
	}
	return hc, nil
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func assignLengths(n *huffNode, depth int, out map[uint16]int) {
	if n.left == nil && n.right == nil {
		if depth == 0 {
			depth = 1
		}
		out[n.symbol] = depth
		return
	}
	assignLengths(n.left, depth+1, out)
	assignLengths(n.right, depth+1, out)
}

// Encode packs symbols into a bitstream, returning the bytes and total bits.
func (hc *HuffmanCode) Encode(symbols []uint16) ([]byte, int, error) {
	var out []byte
	var cur byte
	var curBits int
	total := 0
	for _, s := range symbols {
		c, ok := hc.codes[s]
		if !ok {
			return nil, 0, fmt.Errorf("%w: symbol %d not in code", ErrCompress, s)
		}
		for b := c.n - 1; b >= 0; b-- {
			bit := byte((c.bits >> uint(b)) & 1)
			cur = cur<<1 | bit
			curBits++
			total++
			if curBits == 8 {
				out = append(out, cur)
				cur, curBits = 0, 0
			}
		}
	}
	if curBits > 0 {
		cur <<= uint(8 - curBits)
		out = append(out, cur)
	}
	return out, total, nil
}

// Decode unpacks count symbols from a bitstream produced by Encode.
func (hc *HuffmanCode) Decode(data []byte, count int) ([]uint16, error) {
	// Build a decode map from (length, code bits) -> symbol.
	type key struct {
		n    int
		bits uint64
	}
	decode := make(map[key]uint16, len(hc.codes))
	maxLen := 0
	for s, c := range hc.codes {
		decode[key{c.n, c.bits}] = s
		if c.n > maxLen {
			maxLen = c.n
		}
	}
	out := make([]uint16, 0, count)
	var acc uint64
	var accLen int
	bitPos := 0
	totalBits := len(data) * 8
	for len(out) < count {
		if accLen > maxLen {
			return nil, fmt.Errorf("%w: invalid huffman stream", ErrCompress)
		}
		if bitPos >= totalBits && accLen == 0 {
			return nil, fmt.Errorf("%w: huffman stream truncated (%d of %d symbols)", ErrCompress, len(out), count)
		}
		if bitPos < totalBits {
			byteIdx := bitPos / 8
			bit := (data[byteIdx] >> uint(7-bitPos%8)) & 1
			acc = acc<<1 | uint64(bit)
			accLen++
			bitPos++
		} else {
			return nil, fmt.Errorf("%w: huffman stream truncated (%d of %d symbols)", ErrCompress, len(out), count)
		}
		if s, ok := decode[key{accLen, acc}]; ok {
			out = append(out, s)
			acc, accLen = 0, 0
		}
	}
	return out, nil
}

// MeanBits returns the expected code length in bits under the given
// frequency distribution — the compression-rate figure [28] reports.
func (hc *HuffmanCode) MeanBits(freqs map[uint16]int) float64 {
	var total, bits float64
	for s, f := range freqs {
		total += float64(f)
		bits += float64(f * hc.Lengths[s])
	}
	if total == 0 {
		return 0
	}
	return bits / total
}
