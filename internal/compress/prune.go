package compress

import (
	"fmt"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// PruneMatrix zeroes the smallest-magnitude entries of m in place until the
// requested fraction is zero (Han et al. [13]: "learning only the important
// connections"). It returns the realized sparsity.
func PruneMatrix(m *tensor.Matrix, sparsity float64) (float64, error) {
	if sparsity < 0 || sparsity >= 1 {
		return 0, fmt.Errorf("%w: sparsity %v", ErrCompress, sparsity)
	}
	if sparsity == 0 {
		return Sparsity(m), nil
	}
	threshold := absThresholdForSparsity(m, sparsity)
	d := m.Data()
	for i, v := range d {
		if v < 0 {
			if -v <= threshold {
				d[i] = 0
			}
		} else if v <= threshold {
			d[i] = 0
		}
	}
	return Sparsity(m), nil
}

// PruneModel prunes every Dense layer's weight matrix in a Sequential model
// to the given sparsity (biases are kept dense, as in [28]).
// It returns the overall realized weight sparsity.
func PruneModel(model *nn.Sequential, sparsity float64) (float64, error) {
	var zeros, total int
	pruned := false
	for _, layer := range model.Layers() {
		d, ok := layer.(*nn.Dense)
		if !ok {
			continue
		}
		pruned = true
		if _, err := PruneMatrix(d.Weights().Value, sparsity); err != nil {
			return 0, err
		}
		for _, v := range d.Weights().Value.Data() {
			if v == 0 {
				zeros++
			}
		}
		total += d.Weights().Value.Size()
	}
	if !pruned {
		return 0, fmt.Errorf("%w: model has no dense layers", ErrCompress)
	}
	return float64(zeros) / float64(total), nil
}

// SparseDense is an inference-only dense layer backed by a CSR weight
// matrix, demonstrating that the pruned model runs directly from the
// compressed representation.
type SparseDense struct {
	w *CSR
	b *tensor.Matrix
}

var _ nn.Layer = (*SparseDense)(nil)

// NewSparseDense converts a (pruned) dense layer into its sparse form.
func NewSparseDense(d *nn.Dense) *SparseDense {
	return &SparseDense{w: ToCSR(d.Weights().Value), b: d.Bias().Value.Clone()}
}

// Weight returns the CSR weight matrix.
func (s *SparseDense) Weight() *CSR { return s.w }

// Forward implements nn.Layer (inference only).
func (s *SparseDense) Forward(x *tensor.Matrix, _ bool) (*tensor.Matrix, error) {
	y, err := s.w.MatMul(x)
	if err != nil {
		return nil, err
	}
	return tensor.AddRowVector(y, s.b)
}

// Backward implements nn.Layer; SparseDense is inference-only.
func (s *SparseDense) Backward(_ *tensor.Matrix) (*tensor.Matrix, error) {
	return nil, fmt.Errorf("%w: SparseDense is inference-only", ErrCompress)
}

// Params implements nn.Layer (no trainable parameters).
func (s *SparseDense) Params() []*nn.Param { return nil }

// Sparsify replaces every Dense layer in the model with its SparseDense
// equivalent, returning a new inference-only model.
func Sparsify(model *nn.Sequential) *nn.Sequential {
	layers := model.Layers()
	out := make([]nn.Layer, len(layers))
	for i, l := range layers {
		if d, ok := l.(*nn.Dense); ok {
			out[i] = NewSparseDense(d)
		} else {
			out[i] = l
		}
	}
	return nn.NewSequential(out...)
}
