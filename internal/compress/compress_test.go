package compress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/tensor"
)

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandNormal(rng, 6, 8, 0, 1)
	if _, err := PruneMatrix(m, 0.5); err != nil {
		t.Fatal(err)
	}
	csr := ToCSR(m)
	if !csr.ToDense().Equal(m, 0) {
		t.Fatal("CSR dense round trip failed")
	}
	enc, err := csr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCSR(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ToDense().Equal(m, 0) {
		t.Fatal("CSR encode/decode round trip failed")
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := tensor.RandNormal(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0, 1)
		// Randomly sparsify.
		d := m.Data()
		for i := range d {
			if rng.Float64() < 0.6 {
				d[i] = 0
			}
		}
		csr := ToCSR(m)
		enc, err := csr.Encode()
		if err != nil {
			return false
		}
		dec, err := DecodeCSR(enc)
		if err != nil {
			return false
		}
		return dec.ToDense().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMatMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.RandNormal(rng, 5, 4, 0, 1)
	if _, err := PruneMatrix(w, 0.4); err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(rng, 3, 5, 0, 1)
	want, _ := tensor.MatMul(x, w)
	got, err := ToCSR(w).MatMul(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("sparse matmul disagrees with dense")
	}
}

func TestDecodeCSRRejectsGarbage(t *testing.T) {
	if _, err := DecodeCSR([]byte{1, 2, 3}); !errors.Is(err, ErrCompress) {
		t.Fatalf("want ErrCompress, got %v", err)
	}
}

func TestPruneMatrixSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.RandNormal(rng, 20, 20, 0, 1)
	got, err := PruneMatrix(m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.02 {
		t.Fatalf("realized sparsity %v, want ~0.9", got)
	}
	// Surviving weights are the largest-magnitude ones: every remaining
	// |w| must be >= every pruned |w| (which is 0, so check the threshold
	// property on a fresh matrix instead).
	m2, _ := tensor.FromSlice(1, 4, []float64{0.1, -5, 0.2, 3})
	if _, err := PruneMatrix(m2, 0.5); err != nil {
		t.Fatal(err)
	}
	if m2.At(0, 1) != -5 || m2.At(0, 3) != 3 {
		t.Fatalf("pruning removed large weights: %v", m2)
	}
	if m2.At(0, 0) != 0 || m2.At(0, 2) != 0 {
		t.Fatalf("pruning kept small weights: %v", m2)
	}
	if _, err := PruneMatrix(m, 1.0); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for sparsity 1.0")
	}
}

func TestSparseDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := nn.NewDense(rng, 6, 3)
	if _, err := PruneMatrix(d.Weights().Value, 0.5); err != nil {
		t.Fatal(err)
	}
	sd := NewSparseDense(d)
	x := tensor.RandNormal(rng, 4, 6, 0, 1)
	want, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sd.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("SparseDense disagrees with Dense")
	}
	if _, err := sd.Backward(nil); !errors.Is(err, ErrCompress) {
		t.Fatal("SparseDense backward should refuse")
	}
}

func TestQuantizeKMeansAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := tensor.RandNormal(rng, 10, 10, 0, 1)
	q8, err := QuantizeKMeans(rng, m, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := QuantizeKMeans(rng, m, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := q8.QuantizationError(m)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := q2.QuantizationError(m)
	if err != nil {
		t.Fatal(err)
	}
	if e8 >= e2 {
		t.Fatalf("8-bit error %v should beat 2-bit error %v", e8, e2)
	}
	if e8 > 0.02 {
		t.Fatalf("8-bit quantization error %v too large", e8)
	}
}

func TestQuantizePreservesZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := tensor.RandNormal(rng, 8, 8, 0, 1)
	if _, err := PruneMatrix(m, 0.6); err != nil {
		t.Fatal(err)
	}
	q, err := QuantizeKMeans(rng, m, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Data() {
		if v == 0 && rec.Data()[i] != 0 {
			t.Fatal("quantization did not preserve pruned zeros")
		}
	}
}

func TestQuantizeLinear(t *testing.T) {
	m, _ := tensor.FromSlice(1, 5, []float64{0, 0.25, 0.5, 0.75, 1})
	q, err := QuantizeLinear(m, 2) // 4 levels: 0, 1/3, 2/3, 1
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := q.QuantizationError(m)
	if e > 0.17 {
		t.Fatalf("2-bit linear error %v", e)
	}
	if rec.At(0, 0) != 0 || rec.At(0, 4) != 1 {
		t.Fatalf("linear quantization should hit range endpoints: %v", rec)
	}
	if _, err := QuantizeLinear(m, 0); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for 0 bits")
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		nsyms := 1 + rng.Intn(20)
		symbols := make([]uint16, n)
		for i := range symbols {
			// Skewed distribution so Huffman has something to exploit.
			s := rng.Intn(nsyms)
			if rng.Float64() < 0.5 {
				s = 0
			}
			symbols[i] = uint16(s)
		}
		freqs := make(map[uint16]int)
		for _, s := range symbols {
			freqs[s]++
		}
		hc, err := NewHuffmanCode(freqs)
		if err != nil {
			return false
		}
		enc, _, err := hc.Encode(symbols)
		if err != nil {
			return false
		}
		dec, err := hc.Decode(enc, len(symbols))
		if err != nil {
			return false
		}
		if len(dec) != len(symbols) {
			return false
		}
		for i := range dec {
			if dec[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanBeatsFixedWidthOnSkew(t *testing.T) {
	// 90% zeros over 16 symbols: Huffman mean bits should be well under the
	// fixed 4 bits.
	freqs := map[uint16]int{0: 900}
	for s := uint16(1); s < 16; s++ {
		freqs[s] = 7
	}
	hc, err := NewHuffmanCode(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if mean := hc.MeanBits(freqs); mean >= 2.5 {
		t.Fatalf("huffman mean bits %v on 90%%-skewed data, want < 2.5", mean)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	hc, err := NewHuffmanCode(map[uint16]int{7: 42})
	if err != nil {
		t.Fatal(err)
	}
	enc, bits, err := hc.Encode([]uint16{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if bits != 3 {
		t.Fatalf("bits %d, want 3", bits)
	}
	dec, err := hc.Decode(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dec {
		if s != 7 {
			t.Fatal("single-symbol decode wrong")
		}
	}
	if _, err := NewHuffmanCode(nil); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for empty freqs")
	}
}

// trainedModel builds and trains a small classifier for compression tests.
func trainedModel(t *testing.T) (*nn.Sequential, *tensor.Matrix, []int) {
	t.Helper()
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 400, Classes: 4, Dim: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	model := nn.NewSequential(
		nn.NewDense(rng, 10, 32),
		nn.NewReLU(),
		nn.NewDense(rng, 32, 4),
	)
	y, _ := nn.OneHot(fb.Labels, 4)
	if _, err := nn.Train(model, fb.X, y, nn.TrainConfig{
		Epochs: 20, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Loss: nn.NewSoftmaxCrossEntropy(), Rng: rng,
	}); err != nil {
		t.Fatal(err)
	}
	return model, fb.X, fb.Labels
}

func TestDeepCompressionPipeline(t *testing.T) {
	model, x, labels := trainedModel(t)
	baseAcc, err := EvalAccuracy(model, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	work, err := CopyModel(model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPipeline(work, PipelineConfig{Sparsity: 0.7, Bits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes.PrunedBytes >= res.Sizes.DenseBytes {
		t.Fatalf("pruning did not shrink: %+v", res.Sizes)
	}
	if res.Sizes.QuantizedBytes >= res.Sizes.PrunedBytes {
		t.Fatalf("quantization did not shrink: %+v", res.Sizes)
	}
	if res.Sizes.HuffmanBytes > res.Sizes.QuantizedBytes {
		t.Fatalf("huffman grew the model: %+v", res.Sizes)
	}
	if r := res.Sizes.Ratio(); r < 5 {
		t.Fatalf("compression ratio %v, want >= 5x", r)
	}
	compAcc, err := EvalAccuracy(res.Model, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if compAcc < baseAcc-0.1 {
		t.Fatalf("compressed accuracy %v dropped too far from %v", compAcc, baseAcc)
	}
}

func TestPipelineValidation(t *testing.T) {
	model, _, _ := trainedModel(t)
	if _, err := RunPipeline(model, PipelineConfig{Sparsity: 0.5, Bits: 0}); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for bits=0")
	}
	empty := nn.NewSequential(nn.NewReLU())
	if _, err := RunPipeline(empty, PipelineConfig{Sparsity: 0.5, Bits: 4}); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for model without dense layers")
	}
}

func TestFactorizeDenseReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Build an exactly rank-3 weight matrix; rank-3 factorization must be
	// numerically lossless.
	a := tensor.RandNormal(rng, 12, 3, 0, 1)
	b := tensor.RandNormal(rng, 3, 8, 0, 1)
	w, _ := tensor.MatMul(a, b)
	d, err := nn.NewDenseFrom(w, tensor.New(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	first, second, err := FactorizeDense(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(rng, 5, 12, 0, 1)
	want, _ := d.Forward(x, false)
	h, err := first.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := second.Forward(h, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-8) {
		t.Fatal("rank-3 factorization of rank-3 layer is lossy")
	}
}

func TestFactorizeModelSavesParams(t *testing.T) {
	model, x, labels := trainedModel(t)
	baseAcc, _ := EvalAccuracy(model, x, labels)
	fm, before, after, err := FactorizeModel(model, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("factorization grew params: %d -> %d", before, after)
	}
	acc, err := EvalAccuracy(fm, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < baseAcc-0.15 {
		t.Fatalf("factorized accuracy %v dropped too far from %v", acc, baseAcc)
	}
	if _, _, _, err := FactorizeModel(model, 0); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for rank fraction 0")
	}
}

func TestDistillationHelpsSmallStudent(t *testing.T) {
	teacher, x, labels := trainedModel(t)
	newStudent := func(seed int64) *nn.Sequential {
		rng := rand.New(rand.NewSource(seed))
		return nn.NewSequential(nn.NewDense(rng, 10, 6), nn.NewReLU(), nn.NewDense(rng, 6, 4))
	}

	// Distilled student.
	distilled := newStudent(1)
	if _, err := Distill(teacher, distilled, x, labels, 4, DistillConfig{
		Epochs: 15, BatchSize: 32, Temperature: 3, Alpha: 0.7,
		Optimizer: opt.NewAdam(0.01), Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	distAcc, err := EvalAccuracy(distilled, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	teachAcc, _ := EvalAccuracy(teacher, x, labels)
	if distAcc < teachAcc-0.15 {
		t.Fatalf("distilled student %v far below teacher %v", distAcc, teachAcc)
	}
	if nn.NumParams(distilled.Params()) >= nn.NumParams(teacher.Params()) {
		t.Fatal("student is not smaller than teacher")
	}
}

func TestDistillValidation(t *testing.T) {
	teacher, x, labels := trainedModel(t)
	student := teacher
	if _, err := Distill(teacher, student, x, labels, 4, DistillConfig{}); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for zero config")
	}
}

func TestSparsifyModel(t *testing.T) {
	model, x, labels := trainedModel(t)
	if _, err := PruneModel(model, 0.6); err != nil {
		t.Fatal(err)
	}
	sparse := Sparsify(model)
	denseAcc, _ := EvalAccuracy(model, x, labels)
	sparseAcc, err := EvalAccuracy(sparse, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(denseAcc-sparseAcc) > 1e-12 {
		t.Fatalf("sparse model accuracy %v != dense pruned accuracy %v", sparseAcc, denseAcc)
	}
}

func TestPruneModelReportsSparsity(t *testing.T) {
	model, _, _ := trainedModel(t)
	s, err := PruneModel(model, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.8) > 0.05 {
		t.Fatalf("model sparsity %v, want ~0.8", s)
	}
	if _, err := PruneModel(nn.NewSequential(nn.NewReLU()), 0.5); !errors.Is(err, ErrCompress) {
		t.Fatal("want ErrCompress for dense-free model")
	}
}
