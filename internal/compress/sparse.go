// Package compress implements the model compression and acceleration
// toolbox of Section III-B: magnitude-based weight pruning with a CSR sparse
// format, k-means weight-sharing and linear quantization, Huffman coding of
// quantized indices (together: the Deep Compression pipeline of Han et al.
// [28]), truncated-SVD low-rank factorization of dense layers [36], and
// knowledge distillation [37]. Compression ratios are measured on real
// encoded bytes, not parameter counts.
package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mobiledl/internal/tensor"
)

// ErrCompress reports invalid compression parameters or corrupt encodings.
var ErrCompress = errors.New("compress: invalid input")

// CSR is a compressed sparse row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Values     []float64
}

// ToCSR converts a dense matrix, keeping entries with |v| > 0.
func ToCSR(m *tensor.Matrix) *CSR {
	c := &CSR{
		Rows:   m.Rows(),
		Cols:   m.Cols(),
		RowPtr: make([]int32, m.Rows()+1),
	}
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Values = append(c.Values, v)
			}
		}
		c.RowPtr[i+1] = int32(len(c.Values))
	}
	return c
}

// ToDense reconstructs the dense matrix.
func (c *CSR) ToDense() *tensor.Matrix {
	m := tensor.New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			m.Set(i, int(c.ColIdx[p]), c.Values[p])
		}
	}
	return m
}

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.Values) }

// MatMul computes x @ W where W is this CSR matrix (rows = in, cols = out).
// x is batch x in.
func (c *CSR) MatMul(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols() != c.Rows {
		return nil, fmt.Errorf("%w: sparse matmul %dx%d @ %dx%d",
			tensor.ErrShape, x.Rows(), x.Cols(), c.Rows, c.Cols)
	}
	out := tensor.New(x.Rows(), c.Cols)
	for b := 0; b < x.Rows(); b++ {
		xrow := x.Row(b)
		orow := out.Row(b)
		for i := 0; i < c.Rows; i++ {
			xv := xrow[i]
			if xv == 0 {
				continue
			}
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				orow[c.ColIdx[p]] += xv * c.Values[p]
			}
		}
	}
	return out, nil
}

// Encode serializes the CSR matrix to a compact binary form.
func (c *CSR) Encode() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) error { return binary.Write(&buf, binary.LittleEndian, v) }
	if err := w(int32(c.Rows)); err != nil {
		return nil, err
	}
	if err := w(int32(c.Cols)); err != nil {
		return nil, err
	}
	if err := w(int32(len(c.Values))); err != nil {
		return nil, err
	}
	if err := w(c.RowPtr); err != nil {
		return nil, err
	}
	if err := w(c.ColIdx); err != nil {
		return nil, err
	}
	if err := w(c.Values); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCSR parses a CSR encoding produced by Encode.
func DecodeCSR(b []byte) (*CSR, error) {
	r := bytes.NewReader(b)
	var rows, cols, nnz int32
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd(&rows); err != nil {
		return nil, fmt.Errorf("%w: csr header: %v", ErrCompress, err)
	}
	if err := rd(&cols); err != nil {
		return nil, fmt.Errorf("%w: csr header: %v", ErrCompress, err)
	}
	if err := rd(&nnz); err != nil {
		return nil, fmt.Errorf("%w: csr header: %v", ErrCompress, err)
	}
	if rows < 0 || cols < 0 || nnz < 0 || int64(nnz) > int64(rows)*int64(cols) {
		return nil, fmt.Errorf("%w: csr dims %dx%d nnz %d", ErrCompress, rows, cols, nnz)
	}
	c := &CSR{
		Rows:   int(rows),
		Cols:   int(cols),
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, nnz),
		Values: make([]float64, nnz),
	}
	if err := rd(c.RowPtr); err != nil {
		return nil, fmt.Errorf("%w: csr rowptr: %v", ErrCompress, err)
	}
	if err := rd(c.ColIdx); err != nil {
		return nil, fmt.Errorf("%w: csr colidx: %v", ErrCompress, err)
	}
	if err := rd(c.Values); err != nil {
		return nil, fmt.Errorf("%w: csr values: %v", ErrCompress, err)
	}
	return c, nil
}

// Sparsity returns the fraction of zero entries in m.
func Sparsity(m *tensor.Matrix) float64 {
	if m.Size() == 0 {
		return 0
	}
	zeros := 0
	for _, v := range m.Data() {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(m.Size())
}

// DenseBytes returns the raw storage cost of a dense float64 matrix.
func DenseBytes(m *tensor.Matrix) int { return m.Size() * 8 }

// absThresholdForSparsity returns the magnitude threshold that prunes the
// given fraction of entries.
func absThresholdForSparsity(m *tensor.Matrix, sparsity float64) float64 {
	mags := make([]float64, m.Size())
	for i, v := range m.Data() {
		mags[i] = math.Abs(v)
	}
	k := int(sparsity * float64(len(mags)))
	if k <= 0 {
		return 0
	}
	if k >= len(mags) {
		k = len(mags) - 1
	}
	// nth-element via partial quickselect.
	return quickselect(mags, k)
}

// quickselect returns the k-th smallest element (0-based), mutating data.
func quickselect(data []float64, k int) float64 {
	lo, hi := 0, len(data)-1
	for lo < hi {
		p := partition(data, lo, hi)
		switch {
		case p == k:
			return data[p]
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return data[k]
}

func partition(data []float64, lo, hi int) int {
	pivot := data[(lo+hi)/2]
	i, j := lo, hi
	for {
		for data[i] < pivot {
			i++
		}
		for data[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		data[i], data[j] = data[j], data[i]
		i++
		j--
	}
}
