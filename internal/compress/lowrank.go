package compress

import (
	"fmt"
	"math"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// FactorizeDense replaces a Dense layer W (in x out) with two layers
// U' (in x k) and V' (k x out) from its truncated SVD, the low-rank
// factorization of Denton et al. [36] (Section III-B technique (2)).
// The bias moves to the second layer; the first is bias-free (zero bias).
func FactorizeDense(d *nn.Dense, rank int) (first, second *nn.Dense, err error) {
	w := d.Weights().Value
	if rank <= 0 || rank > min(w.Rows(), w.Cols()) {
		return nil, nil, fmt.Errorf("%w: rank %d for %dx%d layer", ErrCompress, rank, w.Rows(), w.Cols())
	}
	svd, err := tensor.SVD(w)
	if err != nil {
		return nil, nil, fmt.Errorf("factorize: %w", err)
	}
	tr, err := svd.Truncate(rank)
	if err != nil {
		return nil, nil, err
	}
	// W ≈ (U sqrt(S)) (sqrt(S) V^T); split the singular values evenly so
	// both factors are well-scaled.
	u := tr.U.Clone()
	for i := 0; i < u.Rows(); i++ {
		row := u.Row(i)
		for j := range row {
			row[j] *= sqrtNonneg(tr.S[j])
		}
	}
	vt := tr.V.T()
	for i := 0; i < vt.Rows(); i++ {
		row := vt.Row(i)
		s := sqrtNonneg(tr.S[i])
		for j := range row {
			row[j] *= s
		}
	}
	first, err = nn.NewDenseFrom(u, tensor.New(1, rank))
	if err != nil {
		return nil, nil, err
	}
	second, err = nn.NewDenseFrom(vt, d.Bias().Value.Clone())
	if err != nil {
		return nil, nil, err
	}
	return first, second, nil
}

func sqrtNonneg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// FactorizeModel replaces every Dense layer whose rank reduction saves
// parameters (k < in*out/(in+out)) with its rank-k factorization, where
// k = ceil(rankFraction * min(in, out)). Returns the new model and the
// parameter counts before and after.
func FactorizeModel(model *nn.Sequential, rankFraction float64) (*nn.Sequential, int, int, error) {
	if rankFraction <= 0 || rankFraction > 1 {
		return nil, 0, 0, fmt.Errorf("%w: rank fraction %v", ErrCompress, rankFraction)
	}
	var out []nn.Layer
	before := nn.NumParams(model.Params())
	for _, layer := range model.Layers() {
		d, ok := layer.(*nn.Dense)
		if !ok {
			out = append(out, layer)
			continue
		}
		k := int(rankFraction*float64(min(d.In(), d.Out())) + 0.999)
		if k < 1 {
			k = 1
		}
		// Only factorize when it actually saves parameters, counting the
		// extra rank-k bias the first factor introduces.
		if k*(d.In()+d.Out()+1) >= d.In()*d.Out() {
			out = append(out, layer)
			continue
		}
		f, s, err := FactorizeDense(d, k)
		if err != nil {
			return nil, 0, 0, err
		}
		out = append(out, f, s)
	}
	m := nn.NewSequential(out...)
	return m, before, nn.NumParams(m.Params()), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
