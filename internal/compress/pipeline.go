package compress

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// StageSizes reports the encoded model size (bytes, weights only) after each
// Deep Compression stage.
type StageSizes struct {
	DenseBytes     int // raw float64 weights
	PrunedBytes    int // CSR encoding after pruning
	QuantizedBytes int // codebook + fixed-width codes for CSR values
	HuffmanBytes   int // codebook + huffman-coded codes
}

// Ratio returns original-size / final-size.
func (s StageSizes) Ratio() float64 {
	if s.HuffmanBytes == 0 {
		return 0
	}
	return float64(s.DenseBytes) / float64(s.HuffmanBytes)
}

// PipelineConfig configures the three-stage Deep Compression pipeline [28]:
// prune, quantize (weight sharing), Huffman-code.
type PipelineConfig struct {
	Sparsity float64
	Bits     int
	// KMeansIters bounds the quantization clustering (default 20).
	KMeansIters int
	Seed        int64
}

// PipelineResult is the outcome of compressing one model.
type PipelineResult struct {
	Sizes StageSizes
	// Model is the decompressed (dense-reconstructed) model for accuracy
	// evaluation; weights carry both pruning zeros and quantization error.
	Model *nn.Sequential
}

// RunPipeline compresses every Dense layer of the model through
// prune -> k-means quantize -> Huffman, measuring real encoded bytes at
// each stage, and returns the reconstructed model.
func RunPipeline(model *nn.Sequential, cfg PipelineConfig) (*PipelineResult, error) {
	if cfg.Bits <= 0 {
		return nil, fmt.Errorf("%w: bits=%d", ErrCompress, cfg.Bits)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sizes StageSizes
	layers := model.Layers()
	newLayers := make([]nn.Layer, len(layers))
	compressedAny := false

	for i, layer := range layers {
		d, ok := layer.(*nn.Dense)
		if !ok {
			newLayers[i] = layer
			continue
		}
		compressedAny = true
		w := d.Weights().Value.Clone()
		sizes.DenseBytes += DenseBytes(w)

		// Stage 1: prune.
		if _, err := PruneMatrix(w, cfg.Sparsity); err != nil {
			return nil, err
		}
		csr := ToCSR(w)
		enc, err := csr.Encode()
		if err != nil {
			return nil, err
		}
		sizes.PrunedBytes += len(enc)

		// Stage 2: quantize the surviving weights with shared centroids.
		q, err := QuantizeKMeans(rng, w, cfg.Bits, cfg.KMeansIters)
		if err != nil {
			return nil, err
		}
		// Quantized CSR cost. Following [28], column indices are stored as
		// relative offsets (1 byte each; gaps beyond 255 are rare at these
		// sizes and would cost a filler code), row lengths as uint16, and
		// codes at ceil(log2(levels)) bits for the nnz entries. The shared
		// codebook is float64.
		structureBytes := csr.NNZ() + 2*(csr.Rows+1)
		codebookBytes := 8 * len(q.Codebook)
		codeBits := bitsFor(len(q.Codebook))
		sizes.QuantizedBytes += structureBytes + codebookBytes + (csr.NNZ()*codeBits+7)/8

		// Stage 3: Huffman-code the nnz code indices.
		nzCodes := make([]uint16, 0, csr.NNZ())
		for idx, c := range q.Codes {
			if w.Data()[idx] != 0 {
				nzCodes = append(nzCodes, c)
			}
		}
		// Stage 3 falls back to the fixed-width encoding when the Huffman
		// stream plus its code-length table would be larger (small layers
		// with near-uniform code usage), as practical encoders do.
		fixedBytes := (csr.NNZ()*codeBits + 7) / 8
		huffBytes := fixedBytes
		if len(nzCodes) > 0 {
			freqs := make(map[uint16]int)
			for _, c := range nzCodes {
				freqs[c]++
			}
			hc, err := NewHuffmanCode(freqs)
			if err != nil {
				return nil, err
			}
			encBits, _, err := hc.Encode(nzCodes)
			if err != nil {
				return nil, err
			}
			if cost := len(encBits) + 2*len(hc.Lengths); cost < fixedBytes {
				huffBytes = cost
			}
		}
		sizes.HuffmanBytes += structureBytes + codebookBytes + huffBytes

		// Reconstruct a dense layer with the compressed weights.
		rec, err := q.Dequantize()
		if err != nil {
			return nil, err
		}
		// Preserve exact zeros from pruning.
		rd, wd := rec.Data(), w.Data()
		for j := range rd {
			if wd[j] == 0 {
				rd[j] = 0
			}
		}
		nl, err := nn.NewDenseFrom(rec, d.Bias().Value.Clone())
		if err != nil {
			return nil, err
		}
		newLayers[i] = nl
	}
	if !compressedAny {
		return nil, fmt.Errorf("%w: model has no dense layers", ErrCompress)
	}
	return &PipelineResult{Sizes: sizes, Model: nn.NewSequential(newLayers...)}, nil
}

func bitsFor(levels int) int {
	bits := 0
	for 1<<bits < levels {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// CopyModel deep-copies a Sequential of Dense/activation/dropout layers so
// compression experiments can keep the original for comparison. Layers
// without parameters are shared (they are stateless across inference).
func CopyModel(model *nn.Sequential) (*nn.Sequential, error) {
	layers := model.Layers()
	out := make([]nn.Layer, len(layers))
	for i, l := range layers {
		if d, ok := l.(*nn.Dense); ok {
			nl, err := nn.NewDenseFrom(d.Weights().Value.Clone(), d.Bias().Value.Clone())
			if err != nil {
				return nil, err
			}
			out[i] = nl
			continue
		}
		out[i] = l
	}
	return nn.NewSequential(out...), nil
}

// EvalAccuracy scores a model's classification accuracy.
func EvalAccuracy(model *nn.Sequential, x *tensor.Matrix, labels []int) (float64, error) {
	preds, err := model.Predict(x)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}
