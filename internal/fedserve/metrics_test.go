package fedserve

import (
	"bytes"
	"strings"
	"testing"

	"mobiledl/internal/metrics"
	"mobiledl/internal/serve"
)

// TestWriteMetricsExportsTrainingGauges checks the coordinator's Prometheus
// slice: construction publishes version 1, so the publication counter and
// accuracy gauges must already be visible before any round runs.
func TestWriteMetricsExportsTrainingGauges(t *testing.T) {
	tk := newTask(t, 4, true)
	reg := serve.NewRegistry()
	coord, err := NewCoordinator(tk.config(reg, "fedmlp"))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	var buf bytes.Buffer
	w := metrics.NewPromWriter(&buf)
	coord.WriteMetrics(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`mobiledl_train_round{model="fedmlp"} 0`,
		`mobiledl_train_published_total{model="fedmlp"} 1`,
		`mobiledl_train_last_accuracy{model="fedmlp"}`,
		"# TYPE mobiledl_train_round gauge",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in training metrics:\n%s", want, got)
		}
	}
	// No DP configured: the epsilon gauge must be absent, not zero.
	if strings.Contains(got, "mobiledl_train_epsilon") {
		t.Fatalf("epsilon exported for a non-DP run:\n%s", got)
	}
}
