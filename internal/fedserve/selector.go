package fedserve

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// ClientOutcome describes how one dispatched client update ended, the
// feedback signal a ClientSelector scores clients with.
type ClientOutcome struct {
	Client int
	// Round is the round the update was dispatched in; Collected is the
	// round that gathered it (later under partial quorum).
	Round, Collected int
	// Failed marks a client-training error; DroppedStale an update past the
	// staleness bound. Exactly one of {Failed, DroppedStale, merged} holds.
	Failed       bool
	DroppedStale bool
	// DeltaNorm is the joint L2 norm of a merged update's parameter delta
	// (0 when the update failed or was dropped).
	DeltaNorm float64
	Samples   int
	Loss      float64
}

// ClientSelector owns cohort selection and per-client merge weighting for a
// Coordinator. Pick draws the round's cohort from the eligible set (all
// randomness must come from rng, so runs stay reproducible per seed);
// ObserveRound feeds back one collected round's outcomes; Weight returns the
// multiplier applied to a client's contribution in the weighted merge
// (1 = neutral). Implementations must be safe for concurrent Weight/Scores
// reads; Pick and ObserveRound are only ever called from the coordinator's
// driver goroutine.
type ClientSelector interface {
	Pick(rng *rand.Rand, eligible []int, m int) []int
	ObserveRound(outcomes []ClientOutcome)
	Weight(k int) float64
}

// Scored-selector constants. The shape follows the cluster peer scorer
// (internal/cluster): EWMAs over recent observations rather than lifetime
// averages, so a client that recovers (transient network failure, one bad
// batch) climbs back quickly.
const (
	// selEWMAAlpha is the weight of the newest observation.
	selEWMAAlpha = 0.4
	// selNormWindow bounds the recent merged-update norms kept as the
	// robust (median) reference magnitude.
	selNormWindow = 256
	// selMinSelectWeight floors a client's selection weight so even a
	// zero-scored client retains a small re-probe probability (a jailed
	// client could otherwise never demonstrate recovery).
	selMinSelectWeight = 0.02
	// selMinMergeWeight floors the merge multiplier so a round whose whole
	// cohort is down-weighted still has positive total weight.
	selMinMergeWeight = 0.01
	// selWeightFail / selWeightNorm weight the two score components:
	// failure/staleness rate and update-magnitude anomaly.
	selWeightFail = 0.5
	selWeightNorm = 0.5
)

// clientScore is one client's EWMA state.
type clientScore struct {
	// failEWMA tracks failures (1) and stale drops (0.5) vs clean merges (0).
	failEWMA float64
	// devEWMA tracks the relative deviation of the client's update norm from
	// the cohort's median norm: honest clients sit near 0, boosted or
	// replaced models spike to (scale-1) and beyond.
	devEWMA  float64
	observed bool
}

// ScoredSelector is the reference ClientSelector: an EWMA reputation per
// observed client combining failure rate and update-norm anomaly (deviation
// from the median merged-update magnitude — the robust statistic a minority
// of adversaries cannot shift). Selection is score-weighted sampling without
// replacement, and the merge multiplier falls off steeply (score^4) so a
// flagged client's updates are attenuated the same round they are detected.
// Unobserved clients score neutral (1): a fresh population is sampled
// uniformly, exactly like the default selector.
type ScoredSelector struct {
	mu      sync.Mutex
	clients map[int]*clientScore
	// normWin is a ring of recent merged-update norms; its median is the
	// reference magnitude deviations are measured against.
	normWin  []float64
	normNext int
}

var _ ClientSelector = (*ScoredSelector)(nil)

// NewScoredSelector builds an empty selector; every client starts neutral.
func NewScoredSelector() *ScoredSelector {
	return &ScoredSelector{clients: make(map[int]*clientScore)}
}

// scoreLocked combines the components for client k; callers hold s.mu.
func (s *ScoredSelector) scoreLocked(k int) float64 {
	cs, ok := s.clients[k]
	if !ok || !cs.observed {
		return 1
	}
	normComp := math.Exp(-cs.devEWMA * cs.devEWMA)
	return selWeightFail*(1-cs.failEWMA) + selWeightNorm*normComp
}

// Score returns client k's current reputation in [0, 1] (1 = neutral or
// healthy). Safe from any goroutine.
func (s *ScoredSelector) Score(k int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scoreLocked(k)
}

// Scores snapshots every observed client's score.
func (s *ScoredSelector) Scores() map[int]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]float64, len(s.clients))
	for k := range s.clients {
		out[k] = s.scoreLocked(k)
	}
	return out
}

// Weight implements ClientSelector: the merge multiplier for client k.
func (s *ScoredSelector) Weight(k int) float64 {
	sc := s.Score(k)
	w := sc * sc * sc * sc
	if w < selMinMergeWeight {
		w = selMinMergeWeight
	}
	return w
}

// ObserveRound folds one collected round's outcomes into the per-client
// EWMAs. The round's merged norms join the reference window first, so the
// deviation each client is judged by includes its own round's median — a
// first-round poisoner is caught before any history exists.
func (s *ScoredSelector) ObserveRound(outcomes []ClientOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range outcomes {
		if !o.Failed && !o.DroppedStale {
			if len(s.normWin) < selNormWindow {
				s.normWin = append(s.normWin, o.DeltaNorm)
			} else {
				s.normWin[s.normNext] = o.DeltaNorm
				s.normNext = (s.normNext + 1) % selNormWindow
			}
		}
	}
	med := median(s.normWin)
	for _, o := range outcomes {
		cs, ok := s.clients[o.Client]
		if !ok {
			cs = &clientScore{}
			s.clients[o.Client] = cs
		}
		var fail, dev float64
		switch {
		case o.Failed:
			fail = 1
		case o.DroppedStale:
			fail = 0.5
		default:
			if med > 0 {
				dev = math.Abs(o.DeltaNorm-med) / med
			}
		}
		if !cs.observed {
			cs.observed = true
			cs.failEWMA = fail
			cs.devEWMA = dev
			continue
		}
		cs.failEWMA = selEWMAAlpha*fail + (1-selEWMAAlpha)*cs.failEWMA
		// Failed/dropped updates carry no norm evidence; leave devEWMA.
		if !o.Failed && !o.DroppedStale {
			cs.devEWMA = selEWMAAlpha*dev + (1-selEWMAAlpha)*cs.devEWMA
		}
	}
}

// median of a sample (0 when empty); does not mutate its argument.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Pick implements ClientSelector: score-weighted sampling of m clients
// without replacement (Efraimidis-Spirakis A-Res: each candidate draws
// u^(1/w) and the m largest keys win). One rng draw per eligible client in
// slice order, so a fixed seed reproduces the cohort at any worker count.
func (s *ScoredSelector) Pick(rng *rand.Rand, eligible []int, m int) []int {
	if m >= len(eligible) {
		return append([]int(nil), eligible...)
	}
	if m <= 0 {
		return nil
	}
	h := make(keyHeap, 0, m)
	s.mu.Lock()
	for _, k := range eligible {
		// Same steep score^4 falloff as the merge weight, floored so a
		// flagged client keeps a small re-probe probability.
		sc := s.scoreLocked(k)
		w := sc * sc * sc * sc
		if w < selMinSelectWeight {
			w = selMinSelectWeight
		}
		key := math.Pow(rng.Float64(), 1/w)
		if len(h) < m {
			heap.Push(&h, keyed{k: k, key: key})
			continue
		}
		if keyedLess(h[0], keyed{k: k, key: key}) {
			h[0] = keyed{k: k, key: key}
			heap.Fix(&h, 0)
		}
	}
	s.mu.Unlock()
	out := make([]int, len(h))
	for i, kw := range h {
		out[i] = kw.k
	}
	return out
}

// keyed pairs a client with its sampling key; keyHeap is a min-heap on the
// key so the root is always the weakest of the current winners.
type keyed struct {
	k   int
	key float64
}

// keyedLess orders by key, with the client index as a deterministic
// tie-break.
func keyedLess(a, b keyed) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.k < b.k
}

type keyHeap []keyed

func (h keyHeap) Len() int           { return len(h) }
func (h keyHeap) Less(i, j int) bool { return keyedLess(h[i], h[j]) }
func (h keyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x any)        { *h = append(*h, x.(keyed)) }
func (h *keyHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
