package fedserve

import (
	"testing"

	"mobiledl/internal/serve"
	"mobiledl/internal/trace"
)

// TestCoordinatorRoundTraces runs a short federated loop with tracing on and
// verifies rounds become long-lived traces with the full lifecycle: cohort
// selection, client fan-out (one span per collected client, materialized by
// the driver from worker-stamped timestamps), merge, eval, and publish.
func TestCoordinatorRoundTraces(t *testing.T) {
	tracer := trace.New(trace.Config{Sample: 1})
	tk := newTask(t, 4, true)
	reg := serve.NewRegistry()
	cfg := tk.config(reg, "fedmlp")
	cfg.Rounds = 3
	cfg.Tracer = tracer
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()

	recent := tracer.Recent()
	if len(recent) < 3 {
		t.Fatalf("retained %d traces, want one per round (3)", len(recent))
	}
	// Every retained round trace must carry the round lifecycle; at least
	// one (a round that trained and published) must have the full set.
	sawFull := false
	for _, sum := range recent {
		if sum.Name != "fed.round" {
			t.Fatalf("unexpected trace %q", sum.Name)
		}
		td := tracer.Get(sum.TraceID)
		if td == nil {
			t.Fatalf("listed trace %s not retrievable", sum.TraceID)
		}
		names := map[string]int{}
		var clientsUnderFanout, fanID int
		for _, sp := range td.Spans {
			names[sp.Name]++
			if sp.Name == "fanout" {
				fanID = sp.ID
			}
		}
		for _, sp := range td.Spans {
			if sp.Name == "client" && sp.Parent == fanID {
				clientsUnderFanout++
				if sp.DurationMs <= 0 {
					t.Fatalf("client span with zero duration in %s", sum.TraceID)
				}
			}
		}
		for _, want := range []string{"select", "fanout", "merge"} {
			if names[want] != 1 {
				t.Fatalf("round trace %s has %d %q spans: %v", sum.TraceID, names[want], want, names)
			}
		}
		if names["client"] > 0 && clientsUnderFanout != names["client"] {
			t.Fatalf("client spans not parented under fanout: %v", td.Spans)
		}
		if names["eval"] == 1 && names["publish"] == 1 && names["client"] > 0 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("no round trace captured the full select/fanout/client/merge/eval/publish lifecycle")
	}
}
