// Package fedserve closes the paper's train-to-serve loop: an asynchronous
// federated-training coordinator that runs rounds continuously and
// hot-publishes every accepted global model into a serve.Registry, so
// /v1/predict traffic migrates to better models mid-flight with no restart.
//
// One Coordinator owns the loop. Each round it
//
//  1. gates device eligibility through federated.Scheduler (the paper's
//     "idle, plugged in, on WiFi" constraint) and samples a cohort,
//  2. fans client training out across a GOMAXPROCS-bounded worker pool via
//     the federated.Trainer seam, each client working against a pooled
//     snapshot of the dispatch-time global parameters,
//  3. merges the returned parameter deltas — waiting for the full cohort
//     (Quorum=1, deterministic for a fixed seed) or merging early and
//     folding stragglers into later rounds with staleness-decayed weight,
//     bounded by MaxStaleness (staler updates are dropped),
//  4. optionally aggregates privately (DPConfig): per-client joint-L2 clip,
//     fixed-denominator average, Gaussian noise, with a moments accountant
//     reporting the cumulative epsilon in Status, and
//  5. on the EvalEvery cadence, evaluates the global model on the held-out
//     set and publishes it — nn.EncodeWeights checkpoint, decoded into a
//     fresh factory copy, installed via Registry.InstallWithMeta with
//     round/accuracy provenance — unless it regresses past AccuracyDrop
//     below the best published accuracy (eval-gated acceptance).
//
// Construction publishes the initial model as version 1, so a serve.Runtime
// can attach before any training happens and the version chain on
// /v1/models shows accuracy climbing from the untrained baseline.
//
// Control exposes the coordinator over HTTP (POST /v1/train/start, POST
// /v1/train/pause, GET /v1/train/status), mounted next to the serving API
// by cmd/mobiledlserve's -train flag. examples/trainserve is the end-to-end
// demo: training on non-IID shards while a concurrent client watches served
// accuracy improve across hot-swapped versions. See ARCHITECTURE.md at the
// repository root for the full data-flow diagram.
package fedserve
