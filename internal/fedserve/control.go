package fedserve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Control exposes a Coordinator over HTTP — the training control plane
// mounted next to the serving API:
//
//	POST /v1/train/start   start (or resume) the round loop
//	POST /v1/train/pause   pause at the next round boundary
//	GET  /v1/train/status  Status snapshot (round, accuracies, versions, ...)
//
// Start/pause respond with the resulting Status; an invalid transition
// (e.g. starting a stopped coordinator) is 409 Conflict.
type Control struct {
	coord *Coordinator
}

// NewControl wraps a coordinator for HTTP control.
func NewControl(c *Coordinator) *Control { return &Control{coord: c} }

// Mount registers the control-plane routes on mux.
func (ct *Control) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/train/start", ct.handleStart)
	mux.HandleFunc("/v1/train/pause", ct.handlePause)
	mux.HandleFunc("/v1/train/status", ct.handleStatus)
}

func (ct *Control) handleStart(w http.ResponseWriter, r *http.Request) {
	ct.transition(w, r, ct.coord.Start)
}

func (ct *Control) handlePause(w http.ResponseWriter, r *http.Request) {
	ct.transition(w, r, ct.coord.Pause)
}

func (ct *Control) transition(w http.ResponseWriter, r *http.Request, op func() error) {
	if r.Method != http.MethodPost {
		ct.httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if err := op(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrState) {
			status = http.StatusConflict
		}
		ct.httpError(w, status, err)
		return
	}
	ct.writeJSON(w, ct.coord.Status())
}

func (ct *Control) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		ct.httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	ct.writeJSON(w, ct.coord.Status())
}

func (ct *Control) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func (ct *Control) httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
