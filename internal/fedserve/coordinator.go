package fedserve

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/nn"
	"mobiledl/internal/privacy"
	"mobiledl/internal/serve"
	"mobiledl/internal/tensor"
	"mobiledl/internal/trace"
)

// ErrConfig reports an invalid coordinator configuration.
var ErrConfig = errors.New("fedserve: invalid configuration")

// ErrState reports a control operation that is invalid in the coordinator's
// current state (e.g. pausing a coordinator that was never started).
var ErrState = errors.New("fedserve: invalid state transition")

// State is the coordinator lifecycle state.
type State string

// Coordinator states. Idle coordinators have published their initial version
// but run no rounds; Stopped is terminal (reached via Stop or by exhausting
// Config.Rounds).
const (
	StateIdle    State = "idle"
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateStopped State = "stopped"
)

// DPConfig enables user-level differentially private aggregation: each
// client delta is clipped to joint L2 norm Clip, the round average uses the
// fixed-denominator estimator over the expected cohort, and Gaussian noise
// with multiplier Sigma is added — the DP-FedAvg server step (see
// privacy.RunDPFedAvg). The coordinator's moments accountant reports the
// cumulative epsilon in Status. DP requires synchronous rounds (Quorum >= 1):
// the accountant prices one noisy release per round, which staleness-weighted
// partial merges would invalidate.
type DPConfig struct {
	Clip  float64
	Sigma float64
	// Delta is the accountant's delta for the reported epsilon (default 1e-5).
	Delta float64
}

// Config wires a Coordinator: the federated task (factory, shards, held-out
// eval set), the round knobs, the asynchrony and privacy policies, and the
// serving registry accepted models publish into.
type Config struct {
	// Factory builds architecture-aligned models: the global model, each
	// client's local model, and every published serving copy.
	Factory federated.ModelFactory
	// Shards are the per-client local datasets.
	Shards  []*data.ClientShard
	Classes int
	// EvalX/EvalY are the held-out set gating publication.
	EvalX *tensor.Matrix
	EvalY []int

	// Rounds bounds the run (0 = run until Stop).
	Rounds int
	// ClientFraction samples the eligible cohort each round (default 1).
	ClientFraction float64
	// Cohort, when positive, fixes the round cohort size instead of
	// ClientFraction — the natural knob when the population is huge and the
	// eligible count swings round to round (scenario simulation).
	Cohort      int
	LocalEpochs int // default 1
	LocalBatch  int
	LocalLR     float64
	Seed        int64
	// Workers sizes the client-training pool (0 = GOMAXPROCS).
	Workers int
	// Scheduler, if non-nil, gates device eligibility per round.
	Scheduler *federated.Scheduler
	// Eligible, if non-nil, additionally gates per-(round, client)
	// eligibility — the client-injection seam simulators use for diurnal
	// participation curves and clock-skewed populations. It is consulted on
	// the driver goroutine for every non-busy client each round, so it must
	// be cheap and must not block.
	Eligible func(round, k int) bool
	// Trainer overrides the default SGDTrainer built from the Local* knobs.
	// A Trainer that also implements federated.ClientTrainer receives the
	// round and client index with each call (pluggable client behavior).
	Trainer federated.Trainer
	// Selector, if non-nil, owns cohort selection and per-client merge
	// weighting — e.g. a ScoredSelector that down-weights clients whose
	// updates fail, arrive stale, or deviate anomalously in magnitude. Nil
	// keeps the default uniform selection and pure n_k staleness weighting.
	Selector ClientSelector

	// Quorum is the fraction of each round's dispatched cohort the round
	// waits for before merging (default 1 = synchronous barrier, which makes
	// rounds deterministic for a fixed seed). Below 1 the round merges early
	// and stragglers land in later rounds as stale updates.
	Quorum float64
	// MaxStaleness bounds how many rounds late an update may arrive and
	// still merge (with decayed weight); staler updates are dropped. Only
	// meaningful with Quorum < 1 (default then: 2).
	MaxStaleness int
	// StalenessDecay multiplies an update's merge weight per round of
	// staleness (default 0.5).
	StalenessDecay float64

	// DP, if non-nil, makes aggregation differentially private.
	DP *DPConfig

	// Registry and Model name the published servable. The coordinator
	// publishes its initial global model at construction so serving can
	// begin before the first round completes.
	Registry *serve.Registry
	Model    string
	// EvalEvery sets the eval-and-maybe-publish cadence in rounds (default 1).
	EvalEvery int
	// AccuracyDrop tolerates publishing a version up to this much below the
	// best published accuracy (default 0: never publish a regression).
	AccuracyDrop float64
	// RoundInterval paces the loop between rounds (0 = run flat out).
	RoundInterval time.Duration

	// Checkpoint, if non-nil, persists round state (global weights, round
	// counter, accumulated status, privacy spend) so a restarted coordinator
	// resumes from the last checkpoint instead of round 0. Checkpoint
	// failures degrade gracefully: training continues, the error is counted.
	Checkpoint CheckpointStore
	// CheckpointEvery sets the checkpoint cadence in rounds (default 1 =
	// after every round that merged updates).
	CheckpointEvery int

	// Tracer, when set, samples coordinator rounds into long-lived traces
	// (select -> client fan-out -> merge -> eval -> publish). Nil disables
	// round tracing.
	Tracer *trace.Tracer
	// Logger receives structured training logs; nil means slog.Default().
	Logger *slog.Logger
}

func (c *Config) validate() error {
	switch {
	case c.Factory == nil:
		return fmt.Errorf("%w: nil model factory", ErrConfig)
	case len(c.Shards) == 0:
		return fmt.Errorf("%w: no client shards", ErrConfig)
	case c.Classes < 2:
		return fmt.Errorf("%w: %d classes", ErrConfig, c.Classes)
	case c.EvalX == nil || len(c.EvalY) == 0 || c.EvalX.Rows() != len(c.EvalY):
		return fmt.Errorf("%w: held-out eval set missing or misaligned", ErrConfig)
	case c.Registry == nil || c.Model == "":
		return fmt.Errorf("%w: publication needs a registry and model name", ErrConfig)
	case c.Rounds < 0:
		return fmt.Errorf("%w: Rounds=%d", ErrConfig, c.Rounds)
	case c.ClientFraction < 0 || c.ClientFraction > 1:
		return fmt.Errorf("%w: ClientFraction=%v", ErrConfig, c.ClientFraction)
	case c.Cohort < 0:
		return fmt.Errorf("%w: Cohort=%d", ErrConfig, c.Cohort)
	case c.Quorum < 0 || c.Quorum > 1:
		return fmt.Errorf("%w: Quorum=%v", ErrConfig, c.Quorum)
	case c.Trainer == nil && c.LocalLR <= 0:
		return fmt.Errorf("%w: LocalLR=%v with no custom Trainer", ErrConfig, c.LocalLR)
	}
	if c.DP != nil {
		if c.DP.Clip <= 0 || c.DP.Sigma < 0 {
			return fmt.Errorf("%w: DP clip=%v sigma=%v", ErrConfig, c.DP.Clip, c.DP.Sigma)
		}
		if c.Quorum != 0 && c.Quorum < 1 {
			return fmt.Errorf("%w: DP aggregation requires synchronous rounds (Quorum=1)", ErrConfig)
		}
	}
	return nil
}

// PublishedVersion is one accepted, registry-installed model version.
type PublishedVersion struct {
	Version  int       `json:"version"`
	Round    int       `json:"round"`
	Accuracy float64   `json:"accuracy"`
	At       time.Time `json:"at"`
}

// Status is a point-in-time snapshot of the coordinator, the payload of
// GET /v1/train/status.
type Status struct {
	State State  `json:"state"`
	Model string `json:"model"`
	// Round is the last completed round (0 before any round finishes).
	Round    int `json:"round"`
	InFlight int `json:"in_flight"`
	// MergedUpdates / DroppedStale count client updates folded into or
	// discarded from the global model across the run.
	MergedUpdates int `json:"merged_updates"`
	DroppedStale  int `json:"dropped_stale"`
	// FailedClients counts client training errors (skipped, not fatal).
	FailedClients int     `json:"failed_clients"`
	LastLoss      float64 `json:"last_loss"`
	LastAccuracy  float64 `json:"last_accuracy"`
	BestAccuracy  float64 `json:"best_accuracy"`
	// RejectedRounds counts evals that regressed past AccuracyDrop and were
	// not published.
	RejectedRounds int    `json:"rejected_rounds"`
	UpBytes        int64  `json:"up_bytes"`
	DownBytes      int64  `json:"down_bytes"`
	LastError      string `json:"last_error,omitempty"`
	// Epsilon is the cumulative user-level privacy spend (DP runs only).
	Epsilon   float64            `json:"epsilon,omitempty"`
	Published []PublishedVersion `json:"published"`
	// StartRound is the checkpointed round this run resumed from (0 = fresh
	// start); Checkpoints / CheckpointErrors count persisted round states and
	// failed saves or loads across the run.
	StartRound       int `json:"start_round,omitempty"`
	Checkpoints      int `json:"checkpoints,omitempty"`
	CheckpointErrors int `json:"checkpoint_errors,omitempty"`
}

// job is one dispatched client-training task.
type job struct {
	round int
	k     int
	seed  int64
	base  *baseSnap
}

// done is one finished client-training task, carrying the parameter delta
// against the base the client trained from. start/end are stamped by the
// worker; the channel send that delivers the struct to the driver gives the
// happens-before edge, so the driver can materialize a span from them
// without any worker ever touching a trace slab.
type done struct {
	round      int
	k          int
	delta      []*tensor.Matrix // pooled; the driver Puts after merging
	n          int
	loss       float64
	err        error
	start, end time.Time
}

// baseSnap is a pooled snapshot of the global parameters at dispatch time,
// shared by one round's cohort and released to the pool when the last client
// finishes with it.
type baseSnap struct {
	vals []*tensor.Matrix
	refs int32
}

func (s *baseSnap) release() {
	if atomic.AddInt32(&s.refs, -1) == 0 {
		for _, v := range s.vals {
			tensor.Put(v)
		}
	}
}

// Coordinator owns the continuous federated train-to-serve loop: it runs
// rounds (device eligibility, parallel client fan-out, staleness-bounded
// merging, optional DP aggregation), evaluates the global model on the
// held-out set, and hot-publishes accepted versions into the serving
// registry. Construction publishes the initial model as version 1 so a
// serve.Runtime can be attached before training starts; Start launches the
// round loop, Pause/Stop control it, and Status snapshots progress at any
// time from any goroutine.
type Coordinator struct {
	cfg     Config
	trainer federated.Trainer
	// perClient is non-nil when trainer also implements the identity-aware
	// federated.ClientTrainer seam.
	perClient federated.ClientTrainer
	global    *nn.Sequential
	vals      []*tensor.Matrix
	eval      func(*nn.Sequential) (float64, error)
	rng       *rand.Rand
	acct      *privacy.MomentsAccountant
	dpDenom   float64

	paramBytes int64
	evalEvery  int
	quorum     float64
	decay      float64
	staleMax   int
	tracer     *trace.Tracer
	logger     *slog.Logger

	jobs     chan job
	results  chan done
	workerWg sync.WaitGroup
	doneCh   chan struct{}
	stopOnce sync.Once
	stopCh   chan struct{}

	// driver-goroutine state (no locking needed).
	busy            map[int]bool
	inflight        int
	mergedSinceEval int
	mergedSinceCk   int
	history         []federated.RoundStats

	// startRound is the checkpointed round this run resumed from (0 fresh);
	// lastRound bounds the run at startRound+Rounds (0 = unbounded). ckEvery
	// is the checkpoint cadence in rounds.
	startRound int
	lastRound  int
	ckEvery    int

	mu      sync.Mutex
	cond    *sync.Cond
	state   State
	started bool
	status  Status
}

// NewCoordinator validates the config, builds the global model, evaluates
// it, and publishes it as the model's initial version so serving can begin
// immediately. The round loop does not run until Start.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ClientFraction == 0 {
		cfg.ClientFraction = 1
	}
	if cfg.LocalEpochs <= 0 {
		cfg.LocalEpochs = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	global, err := cfg.Factory()
	if err != nil {
		return nil, fmt.Errorf("fedserve: build global model: %w", err)
	}
	trainer := cfg.Trainer
	if trainer == nil {
		trainer = &federated.SGDTrainer{
			Factory: cfg.Factory,
			Classes: cfg.Classes,
			Epochs:  cfg.LocalEpochs,
			Batch:   cfg.LocalBatch,
			LR:      cfg.LocalLR,
		}
	}
	c := &Coordinator{
		cfg:        cfg,
		trainer:    trainer,
		global:     global,
		vals:       federated.ParamValues(global.Params()),
		eval:       federated.AccuracyEval(cfg.EvalX, cfg.EvalY),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		paramBytes: int64(nn.NumParams(global.Params())) * federated.BytesPerValue,
		evalEvery:  cfg.EvalEvery,
		quorum:     cfg.Quorum,
		decay:      cfg.StalenessDecay,
		staleMax:   cfg.MaxStaleness,
		tracer:     cfg.Tracer,
		logger:     cfg.Logger,
		jobs:       make(chan job, len(cfg.Shards)),
		results:    make(chan done, len(cfg.Shards)),
		doneCh:     make(chan struct{}),
		stopCh:     make(chan struct{}),
		busy:       make(map[int]bool),
		state:      StateIdle,
	}
	c.perClient, _ = trainer.(federated.ClientTrainer)
	if c.logger == nil {
		c.logger = slog.Default()
	}
	c.cond = sync.NewCond(&c.mu)
	if c.evalEvery <= 0 {
		c.evalEvery = 1
	}
	if c.quorum == 0 {
		c.quorum = 1
	}
	if c.decay == 0 {
		c.decay = 0.5
	}
	if c.quorum < 1 && c.staleMax == 0 {
		c.staleMax = 2
	}
	if cfg.DP != nil && cfg.DP.Sigma > 0 {
		c.acct, err = privacy.NewMomentsAccountant(cfg.DP.Sigma, cfg.ClientFraction)
		if err != nil {
			return nil, err
		}
	}
	c.dpDenom = cfg.ClientFraction * float64(len(cfg.Shards))
	if c.dpDenom < 1 {
		c.dpDenom = 1
	}
	c.ckEvery = cfg.CheckpointEvery
	if c.ckEvery <= 0 {
		c.ckEvery = 1
	}
	c.status = Status{State: StateIdle, Model: cfg.Model, LastAccuracy: -1, BestAccuracy: -1}

	resumed := false
	if cfg.Checkpoint != nil {
		resumed, err = c.resume()
		if err != nil {
			return nil, err
		}
	}
	if cfg.Rounds > 0 {
		c.lastRound = c.startRound + cfg.Rounds
	}

	// Publish the current global so traffic has a version to hit — the
	// untrained round-0 model on a fresh start, the checkpointed weights on
	// resume. When boot recovery already reinstalled the model from the
	// publish log, the recovered version keeps serving and the republish is
	// skipped (re-publishing identical weights would just burn a version).
	if resumed {
		if _, err := cfg.Registry.Get(cfg.Model); err == nil {
			return c, nil
		}
	}
	acc, err := c.eval(c.global)
	if err != nil {
		return nil, fmt.Errorf("fedserve: initial eval: %w", err)
	}
	if err := c.publish(c.startRound, acc); err != nil {
		return nil, err
	}
	return c, nil
}

// Start launches the round loop (idle) or resumes it (paused). Starting a
// running coordinator is a no-op; starting a stopped one is ErrState.
func (c *Coordinator) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateStopped:
		return fmt.Errorf("%w: coordinator is stopped", ErrState)
	case StateRunning:
		return nil
	case StatePaused:
		c.setStateLocked(StateRunning)
		c.cond.Broadcast()
		return nil
	}
	c.setStateLocked(StateRunning)
	c.started = true
	for w := 0; w < c.cfg.Workers; w++ {
		c.workerWg.Add(1)
		go c.worker()
	}
	go c.run()
	return nil
}

// Pause suspends the round loop at the next round boundary; in-flight client
// jobs finish and merge after resume. Pausing an unstarted or stopped
// coordinator is ErrState.
func (c *Coordinator) Pause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StatePaused:
		return nil
	case StateRunning:
		c.setStateLocked(StatePaused)
		c.cond.Broadcast()
		return nil
	}
	return fmt.Errorf("%w: cannot pause a coordinator that is %s", ErrState, c.state)
}

// Stop terminates the round loop, drains in-flight client work, and waits
// for it to wind down. Terminal and idempotent.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	wasStarted := c.started
	c.setStateLocked(StateStopped)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stopCh) })
	if wasStarted {
		<-c.doneCh
	}
}

// Wait blocks until the round loop exits — Config.Rounds exhausted or Stop
// called. It must follow a successful Start.
func (c *Coordinator) Wait() { <-c.doneCh }

// Status snapshots coordinator progress; safe from any goroutine.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.status
	st.Published = append([]PublishedVersion(nil), c.status.Published...)
	return st
}

// History returns the per-round statistics recorded so far (Accuracy -1 on
// rounds that were not evaluated), in round order.
func (c *Coordinator) History() []federated.RoundStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]federated.RoundStats(nil), c.history...)
}

func (c *Coordinator) setStateLocked(s State) {
	c.state = s
	c.status.State = s
}

// worker consumes client-training jobs until the jobs channel closes.
func (c *Coordinator) worker() {
	defer c.workerWg.Done()
	for j := range c.jobs {
		c.results <- c.trainOne(j)
	}
}

// trainOne runs one client against its dispatch-time base snapshot and
// returns the pooled parameter delta.
func (c *Coordinator) trainOne(j job) (d done) {
	defer j.base.release()
	d = done{round: j.round, k: j.k, start: time.Now()}
	defer func() { d.end = time.Now() }()
	var res federated.ClientResult
	var err error
	if c.perClient != nil {
		res, err = c.perClient.TrainRoundClient(j.round, j.k, c.cfg.Shards[j.k], j.base.vals, j.seed)
	} else {
		res, err = c.trainer.TrainClient(c.cfg.Shards[j.k], j.base.vals, j.seed)
	}
	if err != nil {
		d.err = err
		return d
	}
	d.n, d.loss = res.N, res.Loss
	d.delta = make([]*tensor.Matrix, len(res.Weights))
	for i, w := range res.Weights {
		d.delta[i] = tensor.Get(w.Rows(), w.Cols())
		if serr := tensor.SubInto(d.delta[i], w, j.base.vals[i]); serr != nil {
			d.err = serr
			break
		}
	}
	if d.err != nil {
		putDeltas(d)
		d.delta = nil
	}
	return d
}

func putDeltas(d done) {
	for _, m := range d.delta {
		tensor.Put(m)
	}
}

// run is the driver goroutine: the continuous round loop.
func (c *Coordinator) run() {
	defer c.shutdown()
	// Rounds are absolute across restarts: a resumed run continues the
	// checkpointed numbering and runs Config.Rounds more rounds from there.
	for round := c.startRound + 1; c.lastRound == 0 || round <= c.lastRound; round++ {
		if !c.awaitRunnable() {
			return
		}
		progressed := c.runRound(round)
		pause := c.cfg.RoundInterval
		if !progressed && pause < idleBackoff {
			// Nothing dispatched and nothing collected (e.g. no eligible
			// devices): back off instead of spinning the driver at 100% CPU
			// on an unbounded run.
			pause = idleBackoff
		}
		if pause > 0 {
			select {
			case <-time.After(pause):
			case <-c.stopCh:
				return
			}
		}
	}
}

// idleBackoff paces rounds that could do no work at all.
const idleBackoff = 50 * time.Millisecond

// awaitRunnable blocks while paused and reports whether the loop should
// continue (false = stopped).
func (c *Coordinator) awaitRunnable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.state == StatePaused {
		c.cond.Wait()
	}
	return c.state == StateRunning
}

// runRound executes one coordinator round: select + dispatch the cohort,
// collect to quorum, merge, and (on the eval cadence) evaluate and maybe
// publish. It reports whether the round made any progress (dispatched or
// collected anything).
//
// Sampled rounds become long-lived traces. Every span write happens on this
// driver goroutine: client training is recorded from the worker-stamped
// timestamps each done struct carries (the results-channel receive is the
// happens-before edge), so stragglers from earlier rounds land in whichever
// round's trace collects them.
func (c *Coordinator) runRound(round int) bool {
	var sp trace.Span
	if c.tracer.Sample() {
		sp = c.tracer.Start("fed.round",
			trace.Str("model", c.cfg.Model), trace.Num("round", float64(round)))
	}

	sel := sp.Child("select")
	dispatched := c.dispatch(round)
	sel.End(trace.Num("cohort", float64(dispatched)))

	// Collect: at least the quorum of this round's cohort — and, when
	// nothing was dispatchable but work is still in flight, at least one
	// arrival so the loop always makes progress.
	need := int(math.Ceil(c.quorum * float64(dispatched)))
	if need == 0 && dispatched == 0 && c.inflight > 0 {
		need = 1
	}
	fan := sp.Child("fanout")
	var collected []done
	for len(collected) < need && c.inflight > 0 {
		d := <-c.results
		c.inflight--
		c.busy[d.k] = false
		collected = append(collected, d)
	}
	// Opportunistically drain anything else already finished.
	for {
		select {
		case d := <-c.results:
			c.inflight--
			c.busy[d.k] = false
			collected = append(collected, d)
			continue
		default:
		}
		break
	}
	for _, d := range collected {
		cs := fan.ChildAt("client", d.start, d.end.Sub(d.start),
			trace.Num("client", float64(d.k)),
			trace.Num("dispatch_round", float64(d.round)),
			trace.Num("samples", float64(d.n)))
		if d.err != nil {
			cs.Annotate(trace.Str("error", d.err.Error()))
		}
	}
	fan.End(trace.Num("collected", float64(len(collected))))

	ms := sp.Child("merge")
	c.merge(round, collected)
	ms.End(trace.Num("merged_total", float64(c.status.MergedUpdates)))

	// Evaluate on the cadence, but only when training actually advanced:
	// rounds with no eligible devices (or only dropped/failed updates) would
	// otherwise republish an unchanged model every EvalEvery rounds.
	if c.mergedSinceEval > 0 && (round%c.evalEvery == 0 || round == c.lastRound) {
		c.mergedSinceEval = 0
		c.evalAndMaybePublish(round, sp)
	}

	// Checkpoint on the cadence once training has advanced past the last
	// durable state; a failed save leaves mergedSinceCk pending so the next
	// round retries.
	if c.cfg.Checkpoint != nil && c.mergedSinceCk > 0 && (round%c.ckEvery == 0 || round == c.lastRound) {
		c.checkpoint(round, sp)
	}
	sp.End(trace.Num("collected", float64(len(collected))))
	return dispatched > 0 || len(collected) > 0
}

// dispatch selects this round's cohort among eligible, non-busy clients and
// enqueues their training jobs against a shared snapshot of the current
// global parameters. Returns the cohort size.
func (c *Coordinator) dispatch(round int) int {
	eligible := make([]int, 0, len(c.cfg.Shards))
	for k := range c.cfg.Shards {
		if c.busy[k] {
			continue
		}
		if c.cfg.Scheduler != nil && !c.cfg.Scheduler.Eligible(k) {
			continue
		}
		if c.cfg.Eligible != nil && !c.cfg.Eligible(round, k) {
			continue
		}
		eligible = append(eligible, k)
	}
	if c.cfg.Scheduler != nil {
		c.cfg.Scheduler.Advance()
	}
	if len(eligible) == 0 {
		return 0
	}
	m := int(c.cfg.ClientFraction * float64(len(eligible)))
	if c.cfg.Cohort > 0 {
		m = c.cfg.Cohort
	}
	if m < 1 {
		m = 1
	}
	if m > len(eligible) {
		m = len(eligible)
	}
	var selected []int
	if c.cfg.Selector != nil {
		selected = c.cfg.Selector.Pick(c.rng, eligible, m)
		if len(selected) == 0 {
			return 0
		}
	} else {
		c.rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
		selected = eligible[:m]
	}
	// Sort the cohort so job order (and each client's seed) is a function of
	// the selection set alone, then pre-draw seeds before any concurrency.
	sort.Ints(selected)
	base := &baseSnap{vals: make([]*tensor.Matrix, len(c.vals)), refs: int32(len(selected))}
	for i, v := range c.vals {
		base.vals[i] = tensor.Get(v.Rows(), v.Cols())
		if err := base.vals[i].CopyFrom(v); err != nil {
			// Shapes are factory-aligned; this is unreachable outside
			// programmer error.
			panic(err)
		}
	}
	for _, k := range selected {
		c.busy[k] = true
		c.jobs <- job{round: round, k: k, seed: c.rng.Int63(), base: base}
		c.inflight++
	}
	c.mu.Lock()
	c.status.DownBytes += int64(len(selected)) * c.paramBytes // model broadcast
	c.status.InFlight = c.inflight
	c.mu.Unlock()
	return len(selected)
}

// merge folds the collected client updates into the global model —
// staleness-weighted n_k-weighted averaging of deltas, or the DP
// clip-average-noise step — and records the round stats.
func (c *Coordinator) merge(round int, collected []done) {
	// Deterministic merge order regardless of arrival order: float addition
	// is not associative, and the sync path promises bit-identical rounds.
	sort.Slice(collected, func(a, b int) bool {
		if collected[a].round != collected[b].round {
			return collected[a].round < collected[b].round
		}
		return collected[a].k < collected[b].k
	})

	var merged []done
	var failed, dropped int
	var lastErr error
	var outcomes []ClientOutcome
	if c.cfg.Selector != nil {
		outcomes = make([]ClientOutcome, 0, len(collected))
	}
	for _, d := range collected {
		out := ClientOutcome{Client: d.k, Round: d.round, Collected: round, Samples: d.n, Loss: d.loss}
		switch {
		case d.err != nil:
			failed++
			out.Failed = true
			lastErr = fmt.Errorf("client %d (round %d): %w", d.k, d.round, d.err)
		case round-d.round > c.staleMax:
			dropped++
			out.DroppedStale = true
			putDeltas(d)
		default:
			out.DeltaNorm = jointNorm(d.delta)
			merged = append(merged, d)
		}
		if outcomes != nil {
			outcomes = append(outcomes, out)
		}
	}
	// Feed the selector before merging, so an update flagged anomalous this
	// round is down-weighted in this round's own merge.
	if c.cfg.Selector != nil {
		c.cfg.Selector.ObserveRound(outcomes)
	}

	var roundLoss float64
	if len(merged) > 0 {
		var err error
		if c.cfg.DP != nil {
			roundLoss, err = c.mergeDP(merged)
		} else {
			roundLoss, err = c.mergeWeighted(round, merged)
		}
		if err != nil {
			lastErr = err
		}
		for _, d := range merged {
			putDeltas(d)
		}
	}

	if lastErr != nil {
		c.logger.Warn("round had client or merge failures",
			"model", c.cfg.Model, "round", round,
			"failed", failed, "dropped_stale", dropped, "err", lastErr)
	}
	c.logger.Debug("round merged",
		"model", c.cfg.Model, "round", round,
		"merged", len(merged), "failed", failed, "dropped_stale", dropped,
		"loss", roundLoss)

	st := federated.RoundStats{
		Round:              round,
		TrainLoss:          roundLoss,
		Accuracy:           -1,
		ParticipatingUsers: len(merged),
	}

	c.mergedSinceEval += len(merged)
	c.mergedSinceCk += len(merged)

	c.mu.Lock()
	c.status.Round = round
	c.status.InFlight = c.inflight
	c.status.MergedUpdates += len(merged)
	c.status.DroppedStale += dropped
	c.status.FailedClients += failed
	c.status.UpBytes += int64(len(merged)+dropped) * c.paramBytes
	if len(merged) > 0 {
		c.status.LastLoss = roundLoss
	}
	switch {
	case lastErr != nil:
		c.status.LastError = lastErr.Error()
	case len(merged) > 0:
		// A clean merge clears any stale error, so /v1/train/status reports
		// current health rather than ancient history.
		c.status.LastError = ""
	}
	st.CumulativeUpBytes = c.status.UpBytes
	st.CumulativeDownBytes = c.status.DownBytes
	if c.acct != nil && len(merged) > 0 {
		c.acct.AccumulateSteps(1)
		if eps, err := c.acct.Epsilon(c.dpDelta()); err == nil {
			c.status.Epsilon = eps
		}
	}
	c.history = append(c.history, st)
	if len(c.history) > historyCap {
		c.history = c.history[len(c.history)-historyCap:]
	}
	c.mu.Unlock()
}

// historyCap bounds the in-memory round log for unbounded runs.
const historyCap = 4096

func (c *Coordinator) dpDelta() float64 {
	if c.cfg.DP.Delta > 0 {
		return c.cfg.DP.Delta
	}
	return 1e-5
}

// jointNorm is the joint L2 norm of a parameter delta (the magnitude signal
// anomaly-scoring selectors judge updates by).
func jointNorm(delta []*tensor.Matrix) float64 {
	var sq float64
	for _, m := range delta {
		n := m.FrobeniusNorm()
		sq += n * n
	}
	return math.Sqrt(sq)
}

// mergeWeighted applies global += sum_k (w_k / W) delta_k with
// w_k = n_k * decay^staleness — the FedAvg server step generalized to
// stale deltas (for a synchronous round it is exactly the n_k/n weighted
// average RunFedAvg computes). A configured Selector further multiplies
// each client's weight by its reputation (ClientSelector.Weight), so
// flagged clients contribute proportionally less. Returns the weighted
// mean client loss.
func (c *Coordinator) mergeWeighted(round int, merged []done) (float64, error) {
	var totalW, totalN, loss float64
	weights := make([]float64, len(merged))
	for i, d := range merged {
		w := float64(d.n) * math.Pow(c.decay, float64(round-d.round))
		if c.cfg.Selector != nil {
			w *= c.cfg.Selector.Weight(d.k)
		}
		weights[i] = w
		totalW += w
		totalN += float64(d.n)
		loss += d.loss * float64(d.n)
	}
	if totalW == 0 {
		return 0, fmt.Errorf("%w: merge with zero total weight", ErrConfig)
	}
	for pi, gv := range c.vals {
		for i, d := range merged {
			if err := tensor.AxpyInPlace(gv, weights[i]/totalW, d.delta[pi]); err != nil {
				return 0, err
			}
		}
	}
	return loss / totalN, nil
}

// mergeDP applies the DP-FedAvg server step: clip each client delta to joint
// L2 norm Clip, average with the fixed denominator q*W (the expected cohort
// mass), and add Gaussian noise scaled to the clip and denominator.
func (c *Coordinator) mergeDP(merged []done) (float64, error) {
	var loss float64
	for _, d := range merged {
		privacy.ClipJoint(d.delta, c.cfg.DP.Clip)
		loss += d.loss
	}
	scale := 1 / c.dpDenom
	for pi, gv := range c.vals {
		for _, d := range merged {
			if err := tensor.AxpyInPlace(gv, scale, d.delta[pi]); err != nil {
				return 0, err
			}
		}
		if c.cfg.DP.Sigma > 0 {
			noise := tensor.Get(gv.Rows(), gv.Cols())
			privacy.AddGaussian(c.rng, noise, c.cfg.DP.Sigma*c.cfg.DP.Clip/c.dpDenom)
			err := tensor.AddInPlace(gv, noise)
			tensor.Put(noise)
			if err != nil {
				return 0, err
			}
		}
	}
	return loss / float64(len(merged)), nil
}

// evalAndMaybePublish scores the global model on the held-out set and
// publishes it as a new registry version unless it regresses more than
// AccuracyDrop below the best published accuracy. Training always continues
// from the merged state; only publication is gated. sp is the round's trace
// span (inactive when the round is untraced).
func (c *Coordinator) evalAndMaybePublish(round int, sp trace.Span) {
	es := sp.Child("eval")
	acc, err := c.eval(c.global)
	es.EndErr(err, trace.Num("accuracy", acc))

	c.mu.Lock()
	if err != nil {
		c.status.LastError = fmt.Sprintf("round %d eval: %v", round, err)
		c.mu.Unlock()
		c.logger.Error("eval failed", "model", c.cfg.Model, "round", round,
			"trace_id", sp.TraceID(), "err", err)
		return
	}
	c.status.LastAccuracy = acc
	if n := len(c.history); n > 0 && c.history[n-1].Round == round {
		c.history[n-1].Accuracy = acc
	}
	accept := acc >= c.status.BestAccuracy-c.cfg.AccuracyDrop
	if !accept {
		c.status.RejectedRounds++
	}
	c.mu.Unlock()

	if !accept {
		sp.Annotate(trace.Str("publish", "rejected"))
		c.logger.Info("publication rejected (accuracy regression)",
			"model", c.cfg.Model, "round", round, "accuracy", acc)
		return
	}
	ps := sp.Child("publish")
	err = c.publish(round, acc)
	ps.EndErr(err)
	if err != nil {
		c.mu.Lock()
		c.status.LastError = fmt.Sprintf("round %d publish: %v", round, err)
		c.mu.Unlock()
		c.logger.Error("publish failed", "model", c.cfg.Model, "round", round,
			"trace_id", sp.TraceID(), "err", err)
	}
}

// publish checkpoints the global weights (nn.EncodeWeights), decodes them
// into a fresh factory-built copy, and hot-swaps that copy into the registry
// with round/accuracy provenance. The served model is decoupled from the
// training model: the coordinator keeps mutating the global while the
// published version stays frozen.
func (c *Coordinator) publish(round int, acc float64) error {
	blob, err := nn.EncodeWeights(c.global)
	if err != nil {
		return err
	}
	fresh, err := c.cfg.Factory()
	if err != nil {
		return err
	}
	if err := nn.DecodeWeights(fresh, blob); err != nil {
		return err
	}
	backend, err := serve.NewDenseBackend(fresh)
	if err != nil {
		return err
	}
	version, err := c.cfg.Registry.InstallWithMeta(c.cfg.Model, backend, &serve.VersionMeta{
		Source: "fedserve", Round: round, Accuracy: acc,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.status.LastAccuracy = acc
	if acc > c.status.BestAccuracy {
		c.status.BestAccuracy = acc
	}
	c.status.Published = append(c.status.Published, PublishedVersion{
		Version: version, Round: round, Accuracy: acc, At: time.Now(),
	})
	c.mu.Unlock()
	c.logger.Info("published model version",
		"model", c.cfg.Model, "version", version, "round", round, "accuracy", acc)
	return nil
}

// shutdown drains in-flight work, stops the workers, and marks the
// coordinator stopped.
func (c *Coordinator) shutdown() {
	close(c.jobs)
	for c.inflight > 0 {
		d := <-c.results
		c.inflight--
		putDeltas(d)
	}
	c.workerWg.Wait()
	// Final checkpoint so a clean Stop never loses merged-but-unsaved rounds.
	if c.cfg.Checkpoint != nil && c.mergedSinceCk > 0 {
		c.mu.Lock()
		round := c.status.Round
		c.mu.Unlock()
		c.checkpoint(round, trace.Span{})
	}
	c.mu.Lock()
	c.setStateLocked(StateStopped)
	c.status.InFlight = 0
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.doneCh)
}
