package fedserve

import "mobiledl/internal/metrics"

// WriteMetrics renders the coordinator's training progress as Prometheus
// series labeled with the published model name — the training slice of a
// serving /metrics payload, wired via serve.Server.AddMetricsSource so the
// serving package never imports this one.
func (c *Coordinator) WriteMetrics(w *metrics.PromWriter) {
	st := c.Status()
	ml := metrics.Label{Name: "model", Value: st.Model}
	w.Gauge("mobiledl_train_round", "Last completed federated round.", float64(st.Round), ml)
	w.Gauge("mobiledl_train_inflight_clients", "Client updates currently training.", float64(st.InFlight), ml)
	w.Counter("mobiledl_train_published_total", "Model versions accepted and hot-published.", float64(len(st.Published)), ml)
	w.Counter("mobiledl_train_rejected_total", "Evaluated rounds rejected for regressing past AccuracyDrop.", float64(st.RejectedRounds), ml)
	w.Counter("mobiledl_train_merged_updates_total", "Client updates folded into the global model.", float64(st.MergedUpdates), ml)
	w.Counter("mobiledl_train_dropped_stale_total", "Client updates dropped for exceeding MaxStaleness.", float64(st.DroppedStale), ml)
	w.Counter("mobiledl_train_failed_clients_total", "Client training errors (skipped, not fatal).", float64(st.FailedClients), ml)
	if st.LastAccuracy >= 0 {
		w.Gauge("mobiledl_train_last_accuracy", "Held-out accuracy of the last evaluated round.", st.LastAccuracy, ml)
	}
	if st.BestAccuracy >= 0 {
		w.Gauge("mobiledl_train_best_accuracy", "Best held-out accuracy published so far.", st.BestAccuracy, ml)
	}
	if st.Epsilon > 0 {
		w.Gauge("mobiledl_train_epsilon", "Cumulative user-level privacy spend (DP runs).", st.Epsilon, ml)
	}
	if st.StartRound > 0 {
		w.Gauge("mobiledl_train_start_round", "Checkpointed round this run resumed from (absent on fresh starts).", float64(st.StartRound), ml)
	}
	w.Counter("mobiledl_train_checkpoints_total", "Round-state checkpoints persisted.", float64(st.Checkpoints), ml)
	w.Counter("mobiledl_train_checkpoint_errors_total", "Checkpoint saves or loads that failed (training continued).", float64(st.CheckpointErrors), ml)
}
