package fedserve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/leakcheck"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
	"mobiledl/internal/tensor"
)

// task bundles one synthetic federated train-to-serve setup.
type task struct {
	factory federated.ModelFactory
	shards  []*data.ClientShard
	classes int
	evalX   *tensor.Matrix
	evalY   []int
}

func newTask(t *testing.T, clients int, iid bool) *task {
	t.Helper()
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var shards []*data.ClientShard
	if iid {
		shards, err = data.ShardIID(rng, trX, trY, clients)
	} else {
		shards, err = data.ShardNonIID(rng, trX, trY, clients)
	}
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42))
		return nn.NewSequential(
			nn.NewDense(r, 8, 16),
			nn.NewReLU(),
			nn.NewDense(r, 16, 4),
		), nil
	}
	return &task{factory: factory, shards: shards, classes: 4, evalX: teX, evalY: teY}
}

func (tk *task) config(reg *serve.Registry, model string) Config {
	return Config{
		Factory:     tk.factory,
		Shards:      tk.shards,
		Classes:     tk.classes,
		EvalX:       tk.evalX,
		EvalY:       tk.evalY,
		Rounds:      10,
		LocalEpochs: 2, LocalBatch: 16, LocalLR: 0.1,
		Seed:     1,
		Workers:  4,
		Registry: reg,
		Model:    model,
	}
}

// TestTrainToServeImprovesAcrossVersions is the end-to-end acceptance check:
// the coordinator trains on non-IID shards and hot-publishes into the
// registry while 32 concurrent clients keep predict traffic flowing through
// a serve.Runtime — and the accuracy of served predictions improves across
// at least three auto-published versions. Run under -race this doubles as
// the coordinator/registry/batcher race test.
func TestTrainToServeImprovesAcrossVersions(t *testing.T) {
	tk := newTask(t, 6, false)
	reg := serve.NewRegistry()
	coord, err := NewCoordinator(tk.config(reg, "fedmlp"))
	if err != nil {
		t.Fatal(err)
	}

	// Version 1 (the untrained round-0 model) must be serving already.
	if _, err := reg.Get("fedmlp"); err != nil {
		t.Fatalf("initial version not published: %v", err)
	}

	rt, err := serve.NewRuntime(serve.RuntimeConfig{
		Registry: reg, Model: "fedmlp",
		Batch: serve.BatcherConfig{MaxBatch: 8, MaxDelay: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// 32 concurrent clients hammer predictions across every hot swap.
	ctx, cancel := context.WithCancel(context.Background())
	var clients sync.WaitGroup
	var served, versionSpread atomic.Int64
	seen := make([]atomic.Bool, 64)
	for i := 0; i < 32; i++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			row := tk.evalX.Row(id % tk.evalX.Rows())
			for ctx.Err() == nil {
				res, err := rt.Predict(ctx, row)
				if err != nil {
					if ctx.Err() == nil && !errors.Is(err, serve.ErrClosed) {
						t.Errorf("client %d: %v", id, err)
					}
					return
				}
				served.Add(1)
				if res.ModelVersion < len(seen) && !seen[res.ModelVersion].Swap(true) {
					versionSpread.Add(1)
				}
			}
		}(i)
	}

	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()
	cancel()
	clients.Wait()

	st := coord.Status()
	if st.State != StateStopped {
		t.Fatalf("state %s after Wait", st.State)
	}
	if len(st.Published) < 3 {
		t.Fatalf("published %d versions, want >= 3 (status %+v)", len(st.Published), st)
	}
	for i := 1; i < len(st.Published); i++ {
		if st.Published[i].Accuracy < st.Published[i-1].Accuracy {
			t.Fatalf("published accuracy regressed: %v", st.Published)
		}
		if st.Published[i].Version <= st.Published[i-1].Version {
			t.Fatalf("versions not increasing: %v", st.Published)
		}
	}
	first, last := st.Published[0], st.Published[len(st.Published)-1]
	if last.Accuracy <= first.Accuracy {
		t.Fatalf("accuracy did not improve: v%d %.3f -> v%d %.3f",
			first.Version, first.Accuracy, last.Version, last.Accuracy)
	}
	if served.Load() == 0 {
		t.Fatal("no predictions served during training")
	}

	// The current registry version carries fedserve provenance on /v1/models.
	var found bool
	for _, info := range reg.Snapshot() {
		if info.Name == "fedmlp" {
			found = true
			if info.Train == nil || info.Train.Source != "fedserve" {
				t.Fatalf("missing train metadata: %+v", info)
			}
			if info.Train.Round != last.Round || info.Train.Accuracy != last.Accuracy {
				t.Fatalf("metadata mismatch: %+v vs published %+v", info.Train, last)
			}
		}
	}
	if !found {
		t.Fatal("fedmlp missing from registry snapshot")
	}
}

// TestCoordinatorDeterministicAcrossWorkers: with synchronous rounds
// (Quorum=1) and a fixed seed, the parallel fan-out must reproduce the
// sequential run bit-for-bit — identical round stats and identical final
// weights.
func TestCoordinatorDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]federated.RoundStats, []byte) {
		tk := newTask(t, 6, true)
		reg := serve.NewRegistry()
		cfg := tk.config(reg, "m")
		cfg.Workers = workers
		coord, err := NewCoordinator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Start(); err != nil {
			t.Fatal(err)
		}
		coord.Wait()
		blob, err := reg.Checkpoint("m")
		if err != nil {
			t.Fatal(err)
		}
		return coord.History(), blob
	}
	seqStats, seqBlob := run(1)
	parStats, parBlob := run(4)
	if len(seqStats) != len(parStats) {
		t.Fatalf("round counts differ: %d vs %d", len(seqStats), len(parStats))
	}
	for i := range seqStats {
		if seqStats[i] != parStats[i] {
			t.Fatalf("round %d stats differ:\nseq %+v\npar %+v", i, seqStats[i], parStats[i])
		}
	}
	if !bytes.Equal(seqBlob, parBlob) {
		t.Fatal("final published weights differ between worker counts")
	}
}

// TestCoordinatorAsyncMergesWithQuorum: with a partial quorum the loop must
// keep making progress, merge stragglers with staleness weighting, and still
// publish improved versions.
func TestCoordinatorAsyncMergesWithQuorum(t *testing.T) {
	tk := newTask(t, 8, true)
	reg := serve.NewRegistry()
	cfg := tk.config(reg, "async")
	cfg.Rounds = 12
	cfg.Quorum = 0.5
	cfg.MaxStaleness = 2
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()
	st := coord.Status()
	if st.MergedUpdates == 0 {
		t.Fatalf("async run merged nothing: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight work leaked: %+v", st)
	}
	if len(st.Published) < 2 {
		t.Fatalf("async run published %d versions, want >= 2", len(st.Published))
	}
	if st.BestAccuracy <= st.Published[0].Accuracy {
		t.Fatalf("async training did not improve: %+v", st.Published)
	}
}

// TestCoordinatorDPReportsEpsilon: DP aggregation must run, publish, and
// surface a growing privacy spend.
func TestCoordinatorDPReportsEpsilon(t *testing.T) {
	tk := newTask(t, 6, true)
	reg := serve.NewRegistry()
	cfg := tk.config(reg, "dp")
	cfg.Rounds = 6
	cfg.ClientFraction = 0.5
	cfg.DP = &DPConfig{Clip: 5, Sigma: 0.5}
	// Noise can regress individual evals; tolerate small drops so the run
	// still publishes.
	cfg.AccuracyDrop = 0.05
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()
	st := coord.Status()
	if st.Epsilon <= 0 {
		t.Fatalf("DP run reported epsilon %v", st.Epsilon)
	}
	if len(st.Published) < 1 {
		t.Fatal("DP run never published")
	}
}

func TestCoordinatorPauseResumeStop(t *testing.T) {
	leakcheck.Check(t)
	tk := newTask(t, 4, true)
	reg := serve.NewRegistry()
	cfg := tk.config(reg, "ctl")
	cfg.Rounds = 0 // run until stopped
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Pause(); !errors.Is(err, ErrState) {
		t.Fatalf("pausing an idle coordinator: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := coord.Pause(); err != nil {
		t.Fatal(err)
	}
	// Paused: round counter must stop advancing once the boundary is reached.
	deadline := time.Now().Add(2 * time.Second)
	var r1 int
	for {
		if coord.Status().State == StatePaused {
			r1 = coord.Status().Round
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed paused state")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if r2 := coord.Status().Round; r2 != r1 {
		t.Fatalf("rounds advanced while paused: %d -> %d", r1, r2)
	}
	if err := coord.Start(); err != nil { // resume
		t.Fatal(err)
	}
	coord.Stop()
	coord.Stop() // idempotent
	if st := coord.Status(); st.State != StateStopped {
		t.Fatalf("state %s after stop", st.State)
	}
	if err := coord.Start(); !errors.Is(err, ErrState) {
		t.Fatalf("starting a stopped coordinator: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tk := newTask(t, 4, true)
	reg := serve.NewRegistry()
	good := tk.config(reg, "v")
	bad := []func(*Config){
		func(c *Config) { c.Factory = nil },
		func(c *Config) { c.Shards = nil },
		func(c *Config) { c.Classes = 1 },
		func(c *Config) { c.EvalX = nil },
		func(c *Config) { c.EvalY = c.EvalY[:1] },
		func(c *Config) { c.Registry = nil },
		func(c *Config) { c.Model = "" },
		func(c *Config) { c.Rounds = -1 },
		func(c *Config) { c.ClientFraction = 1.5 },
		func(c *Config) { c.Quorum = -0.1 },
		func(c *Config) { c.LocalLR = 0 },
		func(c *Config) { c.DP = &DPConfig{Clip: 0, Sigma: 1} },
		func(c *Config) { c.DP = &DPConfig{Clip: 1, Sigma: 1}; c.Quorum = 0.5 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := NewCoordinator(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: want ErrConfig, got %v", i, err)
		}
	}
	if _, err := NewCoordinator(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}
