package fedserve

import (
	"errors"
	"sync"
	"testing"

	"mobiledl/internal/serve"
)

// memCheckpoints is an in-memory CheckpointStore with a switchable failure
// mode — the unit-test stand-in for the WAL-backed store (whose integration
// with the coordinator is exercised in internal/store's crash suite).
type memCheckpoints struct {
	mu      sync.Mutex
	data    map[string][]byte
	saves   int
	failing bool
}

var errCkStore = errors.New("checkpoint store down")

func newMemCheckpoints() *memCheckpoints {
	return &memCheckpoints{data: make(map[string][]byte)}
}

func (m *memCheckpoints) SaveCheckpoint(key string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failing {
		return errCkStore
	}
	m.data[key] = append([]byte(nil), payload...)
	m.saves++
	return nil
}

func (m *memCheckpoints) LoadCheckpoint(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failing {
		return nil, false, errCkStore
	}
	b, ok := m.data[key]
	return b, ok, nil
}

func (m *memCheckpoints) setFailing(on bool) {
	m.mu.Lock()
	m.failing = on
	m.mu.Unlock()
}

func (m *memCheckpoints) saveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// runToCompletion drives a bounded coordinator run and returns its final
// status.
func runToCompletion(t *testing.T, cfg Config) Status {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()
	coord.Stop()
	return coord.Status()
}

func TestCoordinatorResumesFromCheckpoint(t *testing.T) {
	tk := newTask(t, 4, true)
	cks := newMemCheckpoints()

	reg1 := serve.NewRegistry()
	cfg := tk.config(reg1, "fedmlp")
	cfg.Rounds = 4
	cfg.Checkpoint = cks
	st1 := runToCompletion(t, cfg)
	if st1.Round != 4 {
		t.Fatalf("first run ended at round %d, want 4", st1.Round)
	}
	if st1.Checkpoints == 0 {
		t.Fatal("first run persisted no checkpoints")
	}

	// "Restart": a fresh registry and coordinator over the same store. The
	// run must continue the absolute round numbering — never round 0 when a
	// checkpoint exists — and carry the counters forward.
	reg2 := serve.NewRegistry()
	cfg2 := tk.config(reg2, "fedmlp")
	cfg2.Rounds = 3
	cfg2.Checkpoint = cks
	st2 := runToCompletion(t, cfg2)
	if st2.StartRound != 4 {
		t.Fatalf("resumed StartRound = %d, want 4", st2.StartRound)
	}
	if st2.Round != 7 {
		t.Fatalf("resumed run ended at round %d, want 7 (4 checkpointed + 3 new)", st2.Round)
	}
	if st2.MergedUpdates <= st1.MergedUpdates {
		t.Fatalf("resumed MergedUpdates = %d, want > %d (counters carry forward)",
			st2.MergedUpdates, st1.MergedUpdates)
	}
	if st2.BestAccuracy < st1.BestAccuracy {
		t.Fatalf("resumed BestAccuracy %v regressed below checkpointed %v",
			st2.BestAccuracy, st1.BestAccuracy)
	}
	// The resumed coordinator republished the checkpointed weights (its
	// registry was empty), so serving was live from construction.
	if _, err := reg2.Get("fedmlp"); err != nil {
		t.Fatalf("resumed coordinator left nothing serving: %v", err)
	}
}

func TestResumeSkipsRepublishWhenRegistryRecovered(t *testing.T) {
	tk := newTask(t, 4, true)
	cks := newMemCheckpoints()

	reg1 := serve.NewRegistry()
	cfg := tk.config(reg1, "fedmlp")
	cfg.Rounds = 2
	cfg.Checkpoint = cks
	runToCompletion(t, cfg)

	// Simulate registry boot recovery having already reinstalled the model:
	// construct the coordinator against a registry that serves it. The
	// recovered version must keep serving — no extra version burned.
	reg2 := serve.NewRegistry()
	m, err := tk.factory()
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.NewDenseBackend(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Install("fedmlp", b); err != nil {
		t.Fatal(err)
	}
	before, _ := reg2.Get("fedmlp")

	cfg2 := tk.config(reg2, "fedmlp")
	cfg2.Rounds = 1
	cfg2.Checkpoint = cks
	coord, err := NewCoordinator(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	after, err := reg2.Get("fedmlp")
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != before.Version {
		t.Fatalf("construction republished: version %d -> %d", before.Version, after.Version)
	}
	if coord.Status().StartRound != 2 {
		t.Fatalf("StartRound = %d, want 2", coord.Status().StartRound)
	}
}

func TestCheckpointFailureDegradesGracefully(t *testing.T) {
	tk := newTask(t, 4, true)
	cks := newMemCheckpoints()
	cks.setFailing(true)

	reg := serve.NewRegistry()
	cfg := tk.config(reg, "fedmlp")
	cfg.Rounds = 3
	cfg.Checkpoint = cks
	st := runToCompletion(t, cfg)
	// Training ran to completion despite every save (and the initial load)
	// failing; the errors are surfaced, not fatal.
	if st.Round != 3 {
		t.Fatalf("run with failing store ended at round %d, want 3", st.Round)
	}
	if st.Checkpoints != 0 || st.CheckpointErrors == 0 {
		t.Fatalf("Checkpoints=%d CheckpointErrors=%d, want 0 and >0", st.Checkpoints, st.CheckpointErrors)
	}
	if st.StartRound != 0 {
		t.Fatalf("StartRound = %d on unreadable store, want 0", st.StartRound)
	}
}

func TestCorruptCheckpointStartsFresh(t *testing.T) {
	tk := newTask(t, 4, true)
	cks := newMemCheckpoints()
	cks.data[checkpointKey("fedmlp")] = []byte("not a gob checkpoint")

	reg := serve.NewRegistry()
	cfg := tk.config(reg, "fedmlp")
	cfg.Rounds = 2
	cfg.Checkpoint = cks
	st := runToCompletion(t, cfg)
	if st.StartRound != 0 || st.Round != 2 {
		t.Fatalf("StartRound=%d Round=%d after corrupt checkpoint, want 0 and 2", st.StartRound, st.Round)
	}
	if st.CheckpointErrors == 0 {
		t.Fatal("corrupt checkpoint not counted as an error")
	}
}

func TestCheckpointCadence(t *testing.T) {
	tk := newTask(t, 4, true)
	cks := newMemCheckpoints()

	reg := serve.NewRegistry()
	cfg := tk.config(reg, "fedmlp")
	cfg.Rounds = 6
	cfg.Checkpoint = cks
	cfg.CheckpointEvery = 3
	st := runToCompletion(t, cfg)
	// Rounds 3 and 6 are cadence points; the final-round save covers the rest.
	if st.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d with CheckpointEvery=3 over 6 rounds, want 2", st.Checkpoints)
	}
	if cks.saveCount() != 2 {
		t.Fatalf("store saw %d saves, want 2", cks.saveCount())
	}
}
