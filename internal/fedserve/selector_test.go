package fedserve

import (
	"math/rand"
	"reflect"
	"testing"
)

// outcomes builds a round of outcomes where most clients report norms near 1
// and the listed deviants report the given norm.
func honestRound(n int, norm float64) []ClientOutcome {
	out := make([]ClientOutcome, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, ClientOutcome{Client: k, DeltaNorm: norm, Samples: 10})
	}
	return out
}

func TestScoredSelectorNeutralWhenUnobserved(t *testing.T) {
	s := NewScoredSelector()
	if got := s.Score(7); got != 1 {
		t.Fatalf("unobserved Score = %v, want 1", got)
	}
	if got := s.Weight(7); got != 1 {
		t.Fatalf("unobserved Weight = %v, want 1", got)
	}
}

func TestScoredSelectorDownWeightsAnomalousNorms(t *testing.T) {
	s := NewScoredSelector()
	round := honestRound(20, 1.0)
	// Client 3 submits a boosted (model-replacement style) update: 20x the
	// cohort's magnitude.
	round[3].DeltaNorm = 20
	s.ObserveRound(round)

	honest, bad := s.Score(0), s.Score(3)
	if bad >= honest {
		t.Fatalf("anomalous client score %v not below honest %v", bad, honest)
	}
	if s.Weight(3) >= s.Weight(0) {
		t.Fatalf("anomalous Weight %v not below honest %v", s.Weight(3), s.Weight(0))
	}
	// The steep score^4 falloff should attenuate the poisoner hard in the
	// very round it is first seen.
	if w := s.Weight(3); w > 0.2 {
		t.Fatalf("poisoner merge weight %v, want strongly attenuated (<= 0.2)", w)
	}
	// A minority deviant must not drag honest clients down: median reference.
	if honest < 0.9 {
		t.Fatalf("honest score %v dropped despite median reference", honest)
	}
}

func TestScoredSelectorDownWeightsFailures(t *testing.T) {
	s := NewScoredSelector()
	for r := 0; r < 5; r++ {
		round := honestRound(10, 1.0)
		round[2] = ClientOutcome{Client: 2, Failed: true}
		round[5] = ClientOutcome{Client: 5, DroppedStale: true}
		s.ObserveRound(round)
	}
	if s.Score(2) >= s.Score(0) {
		t.Fatalf("failing client score %v not below honest %v", s.Score(2), s.Score(0))
	}
	if s.Score(5) >= s.Score(0) {
		t.Fatalf("stale client score %v not below honest %v", s.Score(5), s.Score(0))
	}
	// Stale drops are a softer signal than hard failures.
	if s.Score(2) >= s.Score(5) {
		t.Fatalf("failed score %v not below stale score %v", s.Score(2), s.Score(5))
	}
}

func TestScoredSelectorRecovers(t *testing.T) {
	s := NewScoredSelector()
	round := honestRound(10, 1.0)
	round[1] = ClientOutcome{Client: 1, Failed: true}
	s.ObserveRound(round)
	low := s.Score(1)
	// Five clean rounds later the EWMA should have pulled it most of the way
	// back toward healthy.
	for r := 0; r < 5; r++ {
		s.ObserveRound(honestRound(10, 1.0))
	}
	if got := s.Score(1); got <= low || got < 0.9 {
		t.Fatalf("score after recovery = %v (was %v), want >= 0.9", got, low)
	}
}

func TestScoredSelectorPickDeterministic(t *testing.T) {
	s := NewScoredSelector()
	round := honestRound(50, 1.0)
	round[9].DeltaNorm = 30
	s.ObserveRound(round)

	eligible := make([]int, 50)
	for i := range eligible {
		eligible[i] = i
	}
	a := s.Pick(rand.New(rand.NewSource(11)), eligible, 12)
	b := s.Pick(rand.New(rand.NewSource(11)), eligible, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed picked different cohorts:\n%v\n%v", a, b)
	}
	if len(a) != 12 {
		t.Fatalf("picked %d clients, want 12", len(a))
	}
	seen := map[int]bool{}
	for _, k := range a {
		if k < 0 || k >= 50 {
			t.Fatalf("picked client %d outside eligible set", k)
		}
		if seen[k] {
			t.Fatalf("client %d picked twice", k)
		}
		seen[k] = true
	}
}

func TestScoredSelectorPickEdgeCases(t *testing.T) {
	s := NewScoredSelector()
	eligible := []int{3, 8, 15}
	if got := s.Pick(rand.New(rand.NewSource(1)), eligible, 5); !reflect.DeepEqual(got, eligible) {
		t.Fatalf("m >= len(eligible): got %v, want all of %v", got, eligible)
	}
	if got := s.Pick(rand.New(rand.NewSource(1)), eligible, 0); got != nil {
		t.Fatalf("m = 0: got %v, want nil", got)
	}
}

// TestScoredSelectorPickAvoidsBadClients: over repeated draws, a heavily
// down-weighted client should be selected far less often than healthy peers.
func TestScoredSelectorPickAvoidsBadClients(t *testing.T) {
	s := NewScoredSelector()
	for r := 0; r < 6; r++ {
		round := honestRound(20, 1.0)
		round[4] = ClientOutcome{Client: 4, Failed: true}
		s.ObserveRound(round)
	}
	eligible := make([]int, 20)
	for i := range eligible {
		eligible[i] = i
	}
	rng := rand.New(rand.NewSource(42))
	hits := 0
	const draws = 200
	for i := 0; i < draws; i++ {
		for _, k := range s.Pick(rng, eligible, 10) {
			if k == 4 {
				hits++
			}
		}
	}
	// A uniform selector would include client 4 in half the draws (~100).
	if hits > draws/4 {
		t.Fatalf("bad client selected %d/%d times, want heavily suppressed", hits, draws)
	}
}
