package fedserve_test

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/fedserve"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
)

// ExampleCoordinator runs the full train-to-serve loop in-process: ten
// synchronous federated rounds over six non-IID clients, each accepted
// global model hot-published into a serving registry. With Quorum 1 and a
// fixed seed the run is deterministic.
func ExampleCoordinator() {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 8, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		panic(err)
	}
	shards, err := data.ShardNonIID(rand.New(rand.NewSource(9)), trX, trY, 6)
	if err != nil {
		panic(err)
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42))
		return nn.NewSequential(
			nn.NewDense(r, 8, 16), nn.NewReLU(), nn.NewDense(r, 16, 4),
		), nil
	}

	reg := serve.NewRegistry()
	coord, err := fedserve.NewCoordinator(fedserve.Config{
		Factory: factory, Shards: shards, Classes: 4,
		EvalX: teX, EvalY: teY,
		Rounds: 10, LocalEpochs: 2, LocalBatch: 16, LocalLR: 0.1,
		Seed: 1, Workers: 4,
		Registry: reg, Model: "fedmlp",
	})
	if err != nil {
		panic(err)
	}
	// The untrained model is already serving as version 1; a serve.Runtime
	// could attach here, before any training happens.
	if err := coord.Start(); err != nil {
		panic(err)
	}
	coord.Wait()

	st := coord.Status()
	first, last := st.Published[0], st.Published[len(st.Published)-1]
	fmt.Println("state:", st.State)
	fmt.Println("published at least 3 versions:", len(st.Published) >= 3)
	fmt.Println("served accuracy improved:", last.Accuracy > first.Accuracy)
	// Output:
	// state: stopped
	// published at least 3 versions: true
	// served accuracy improved: true
}
