package fedserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mobiledl/internal/serve"
)

func TestControlEndpoints(t *testing.T) {
	tk := newTask(t, 4, true)
	reg := serve.NewRegistry()
	cfg := tk.config(reg, "http")
	cfg.Rounds = 4
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	mux := http.NewServeMux()
	NewControl(coord).Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	getStatus := func() Status {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/train/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status endpoint: HTTP %d", resp.StatusCode)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := getStatus(); st.State != StateIdle {
		t.Fatalf("fresh coordinator state %s over HTTP", st.State)
	}

	// Wrong methods are 405.
	resp, err := http.Get(srv.URL + "/v1/train/start")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/train/start: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/train/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/train/status: HTTP %d", resp.StatusCode)
	}

	// Pause before start is an invalid transition: 409.
	resp, err = http.Post(srv.URL+"/v1/train/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause before start: HTTP %d", resp.StatusCode)
	}

	// Start runs the loop to completion; the returned body carries Status.
	resp, err = http.Post(srv.URL+"/v1/train/start", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var started Status
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The loop may already have finished by the time the response status was
	// snapshotted, so both running and stopped are legitimate here.
	if resp.StatusCode != http.StatusOK || (started.State != StateRunning && started.State != StateStopped) {
		t.Fatalf("start: HTTP %d state %s", resp.StatusCode, started.State)
	}

	coord.Wait()
	st := getStatus()
	if st.State != StateStopped || st.Round != 4 {
		t.Fatalf("after run: %+v", st)
	}
	if len(st.Published) == 0 {
		t.Fatal("status over HTTP lost the published-version log")
	}
}
