package fedserve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"mobiledl/internal/nn"
	"mobiledl/internal/trace"
)

// CheckpointStore persists the coordinator's round state between rounds so a
// restarted process resumes training from the last checkpoint instead of
// round 0. Latest-wins per key; Save must be durable when it returns nil.
// *store.Store implements it (the coordinator defines its own seam so this
// package never imports the persistence layer).
type CheckpointStore interface {
	SaveCheckpoint(key string, payload []byte) error
	LoadCheckpoint(key string) ([]byte, bool, error)
}

// checkpointKey namespaces coordinator checkpoints in a store shared with
// the registry's publish records.
func checkpointKey(model string) string { return "fedserve/" + model }

// checkpointWire is the gob-encoded checkpoint payload: everything a fresh
// coordinator needs to continue the run — the global weights, the round
// counter, the accumulated status counters, and the privacy spend. Trainer
// hyperparameters and shards come from Config, not the checkpoint: resuming
// with a different cohort or LR is legitimate.
type checkpointWire struct {
	Round   int
	Weights []byte

	LastLoss     float64
	LastAccuracy float64
	BestAccuracy float64

	MergedUpdates  int
	DroppedStale   int
	FailedClients  int
	RejectedRounds int
	UpBytes        int64
	DownBytes      int64

	// DPSteps restores the moments accountant: the epsilon already spent is
	// spent regardless of the restart.
	DPSteps int

	Published []PublishedVersion
	SavedAt   time.Time
}

func encodeCheckpoint(wire checkpointWire) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("fedserve: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCheckpoint(b []byte) (checkpointWire, error) {
	var wire checkpointWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&wire); err != nil {
		return checkpointWire{}, fmt.Errorf("fedserve: decode checkpoint: %w", err)
	}
	return wire, nil
}

// resume restores the coordinator from the latest checkpoint in
// cfg.Checkpoint, if any. A missing checkpoint or an unreadable one starts
// the run fresh (unreadable is logged and counted — the disk's problem must
// not stop training); weights that no longer fit the factory's architecture
// are a hard error, because silently training a fresh model while claiming
// the checkpoint's round counter would corrupt the run's provenance.
func (c *Coordinator) resume() (bool, error) {
	payload, ok, err := c.cfg.Checkpoint.LoadCheckpoint(checkpointKey(c.cfg.Model))
	if err != nil || !ok {
		if err != nil {
			c.status.CheckpointErrors++
			c.logger.Warn("checkpoint load failed; starting from round 0",
				"model", c.cfg.Model, "err", err)
		}
		return false, nil
	}
	wire, err := decodeCheckpoint(payload)
	if err != nil {
		c.status.CheckpointErrors++
		c.logger.Warn("checkpoint undecodable; starting from round 0",
			"model", c.cfg.Model, "err", err)
		return false, nil
	}
	// In-place restore: c.vals aliases the global's parameter tensors, so
	// decoding into the existing model keeps every dispatch snapshot aligned.
	if err := nn.DecodeWeights(c.global, wire.Weights); err != nil {
		return false, fmt.Errorf("fedserve: checkpoint weights do not fit the configured architecture: %w", err)
	}
	c.startRound = wire.Round
	c.status.Round = wire.Round
	c.status.StartRound = wire.Round
	c.status.LastLoss = wire.LastLoss
	c.status.LastAccuracy = wire.LastAccuracy
	c.status.BestAccuracy = wire.BestAccuracy
	c.status.MergedUpdates = wire.MergedUpdates
	c.status.DroppedStale = wire.DroppedStale
	c.status.FailedClients = wire.FailedClients
	c.status.RejectedRounds = wire.RejectedRounds
	c.status.UpBytes = wire.UpBytes
	c.status.DownBytes = wire.DownBytes
	c.status.Published = append([]PublishedVersion(nil), wire.Published...)
	if c.acct != nil && wire.DPSteps > 0 {
		c.acct.AccumulateSteps(wire.DPSteps)
		if eps, err := c.acct.Epsilon(c.dpDelta()); err == nil {
			c.status.Epsilon = eps
		}
	}
	c.logger.Info("resumed from checkpoint",
		"model", c.cfg.Model, "round", wire.Round,
		"best_accuracy", wire.BestAccuracy, "saved_at", wire.SavedAt)
	return true, nil
}

// saveCheckpoint encodes the current round state and writes it through the
// checkpoint store. Called from the driver goroutine only (the global's
// weights are stable between rounds).
func (c *Coordinator) saveCheckpoint(round int) error {
	blob, err := nn.EncodeWeights(c.global)
	if err != nil {
		return err
	}
	c.mu.Lock()
	wire := checkpointWire{
		Round:          round,
		Weights:        blob,
		LastLoss:       c.status.LastLoss,
		LastAccuracy:   c.status.LastAccuracy,
		BestAccuracy:   c.status.BestAccuracy,
		MergedUpdates:  c.status.MergedUpdates,
		DroppedStale:   c.status.DroppedStale,
		FailedClients:  c.status.FailedClients,
		RejectedRounds: c.status.RejectedRounds,
		UpBytes:        c.status.UpBytes,
		DownBytes:      c.status.DownBytes,
		Published:      append([]PublishedVersion(nil), c.status.Published...),
		SavedAt:        time.Now(),
	}
	c.mu.Unlock()
	if c.acct != nil {
		wire.DPSteps = c.acct.Steps()
	}
	payload, err := encodeCheckpoint(wire)
	if err != nil {
		return err
	}
	return c.cfg.Checkpoint.SaveCheckpoint(checkpointKey(c.cfg.Model), payload)
}

// checkpoint persists round state on the driver goroutine, degrading
// gracefully: a failed save is logged and counted, training continues, and
// the state stays pending so the next cadence point retries.
func (c *Coordinator) checkpoint(round int, sp trace.Span) {
	cs := sp.Child("checkpoint")
	err := c.saveCheckpoint(round)
	cs.EndErr(err)
	if err != nil {
		c.mu.Lock()
		c.status.CheckpointErrors++
		c.mu.Unlock()
		c.logger.Warn("checkpoint save failed; training continues, will retry",
			"model", c.cfg.Model, "round", round, "err", err)
		return
	}
	c.mergedSinceCk = 0
	c.mu.Lock()
	c.status.Checkpoints++
	c.mu.Unlock()
	c.logger.Debug("checkpointed round state", "model", c.cfg.Model, "round", round)
}
