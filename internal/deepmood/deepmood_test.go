package deepmood

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/metrics"
	"mobiledl/internal/opt"
)

func corpus(t *testing.T, users, sessions int, moodEffect float64, seed int64) *data.Corpus {
	t.Helper()
	c, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      moodEffect,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Task: 0, Classes: 2, Hidden: 4, Fusion: FusionFC},
		{Task: TaskMood, Classes: 1, Hidden: 4, Fusion: FusionFC},
		{Task: TaskMood, Classes: 2, Hidden: 0, Fusion: FusionFC},
		{Task: TaskMood, Classes: 2, Hidden: 4, Fusion: "bogus"},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %+v: want ErrConfig, got %v", cfg, err)
		}
	}
}

func TestForwardShapes(t *testing.T) {
	c := corpus(t, 2, 2, 0.5, 1)
	for _, fus := range []FusionKind{FusionFC, FusionFM, FusionMVM} {
		m, err := New(Config{Task: TaskMood, Classes: 2, Hidden: 6, Fusion: fus, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		s := data.NormalizeSessionViews(c.Sessions[0])
		out, err := m.Forward(s)
		if err != nil {
			t.Fatalf("%s: %v", fus, err)
		}
		if out.Rows() != 1 || out.Cols() != 2 {
			t.Fatalf("%s output %dx%d", fus, out.Rows(), out.Cols())
		}
	}
}

func TestBidirectionalForward(t *testing.T) {
	c := corpus(t, 2, 2, 0.5, 1)
	m, err := New(Config{Task: TaskMood, Classes: 2, Hidden: 4, Fusion: FusionFC, Bidirectional: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := data.NormalizeSessionViews(c.Sessions[0])
	out, err := m.Forward(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols() != 2 {
		t.Fatalf("output cols %d", out.Cols())
	}
}

func TestLabelSelection(t *testing.T) {
	s := &data.Session{UserID: 3, Mood: 1}
	mMood, _ := New(Config{Task: TaskMood, Classes: 2, Hidden: 2, Fusion: FusionFC, Seed: 1})
	mUser, _ := New(Config{Task: TaskUser, Classes: 5, Hidden: 2, Fusion: FusionFC, Seed: 1})
	if mMood.Label(s) != 1 || mUser.Label(s) != 3 {
		t.Fatal("label extraction wrong")
	}
}

func TestTrainReducesLossAndLearnsMood(t *testing.T) {
	// End-to-end: DeepMood must learn the synthetic mood signal well above
	// chance on held-out sessions.
	c := corpus(t, 4, 30, 1.0, 7)
	rng := rand.New(rand.NewSource(7))
	train, test, err := data.SplitSessions(rng, c.Sessions, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	trainN := NormalizeAll(train)
	testN := NormalizeAll(test)

	m, err := New(Config{Task: TaskMood, Classes: 2, Hidden: 10, Fusion: FusionFC, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	losses, err := m.Train(trainN, TrainConfig{
		Epochs:    10,
		BatchSize: 8,
		Optimizer: opt.NewAdam(0.01),
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	preds, err := m.PredictAll(testN)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, len(testN))
	for i, s := range testN {
		truth[i] = s.Mood
	}
	acc, err := metrics.Accuracy(preds, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.65 {
		t.Fatalf("mood accuracy %v on held-out sessions, want >= 0.65", acc)
	}
}

func TestTrainConfigValidation(t *testing.T) {
	m, _ := New(Config{Task: TaskMood, Classes: 2, Hidden: 2, Fusion: FusionFC, Seed: 1})
	if _, err := m.Train(nil, TrainConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestNormalizeAllPreservesLabels(t *testing.T) {
	c := corpus(t, 3, 2, 0.5, 2)
	norm := NormalizeAll(c.Sessions)
	for i, s := range norm {
		if s.UserID != c.Sessions[i].UserID || s.Mood != c.Sessions[i].Mood {
			t.Fatal("normalization changed labels")
		}
	}
}
