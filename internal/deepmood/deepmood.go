// Package deepmood implements DeepMood (Section IV-A, Fig. 4): an
// end-to-end late-fusion architecture for multi-view mobile typing-dynamics
// time series. Each view (alphanumeric keypresses, special-key events,
// accelerometer samples) is encoded by its own GRU; the final hidden states
// are fused by one of the three fusion layers of Eqs. 2-4 (package fusion)
// to predict a session-level label.
//
// The same architecture, labeled by user instead of mood, is DEEPSERVICE
// (Section IV-B); package deepservice wraps this model for that task.
package deepmood

import (
	"errors"
	"fmt"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/fusion"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// Task selects which session label the model predicts.
type Task int

// Supported prediction tasks.
const (
	TaskMood Task = iota + 1 // predict Session.Mood (DeepMood)
	TaskUser                 // predict Session.UserID (DEEPSERVICE)
)

// FusionKind selects the fusion head.
type FusionKind string

// Supported fusion heads (Eqs. 2-4).
const (
	FusionFC  FusionKind = "fc"
	FusionFM  FusionKind = "fm"
	FusionMVM FusionKind = "mvm"
)

// ErrConfig reports an invalid model configuration.
var ErrConfig = errors.New("deepmood: invalid configuration")

// Config configures a DeepMood model.
type Config struct {
	Task    Task
	Classes int
	// Hidden is the per-view GRU hidden size (d_h).
	Hidden int
	// Fusion selects the head: FC (Eq. 2), FM (Eq. 3) or MVM (Eq. 4).
	Fusion FusionKind
	// FusionUnits is k' for FC and k for FM/MVM; defaults to Hidden.
	FusionUnits int
	// Bidirectional doubles each view embedding with a reversed-direction GRU.
	Bidirectional bool
	Seed          int64
}

func (c *Config) validate() error {
	if c.Task != TaskMood && c.Task != TaskUser {
		return fmt.Errorf("%w: unknown task %d", ErrConfig, c.Task)
	}
	if c.Classes < 2 {
		return fmt.Errorf("%w: classes=%d", ErrConfig, c.Classes)
	}
	if c.Hidden <= 0 {
		return fmt.Errorf("%w: hidden=%d", ErrConfig, c.Hidden)
	}
	switch c.Fusion {
	case FusionFC, FusionFM, FusionMVM:
	default:
		return fmt.Errorf("%w: unknown fusion %q", ErrConfig, c.Fusion)
	}
	return nil
}

// encoder abstracts GRU vs BiGRU so the model code is direction-agnostic.
type encoder interface {
	ForwardSeq(seq *tensor.Matrix) (*tensor.Matrix, error)
	BackwardLast(dLast *tensor.Matrix) (*tensor.Matrix, error)
	Params() []*nn.Param
}

// Model is a trained or trainable DeepMood instance.
type Model struct {
	cfg      Config
	encoders []encoder // one per view: alphanumeric, special, accelerometer
	fusion   fusion.Layer
	params   []*nn.Param
}

// viewDims are the per-view input feature dimensions, in model view order.
var viewDims = []int{data.AlphanumericDim, data.SpecialDim, data.AccelerometerDim}

// New builds a DeepMood model.
func New(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.FusionUnits == 0 {
		cfg.FusionUnits = cfg.Hidden
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}

	embedDim := cfg.Hidden
	for _, d := range viewDims {
		if cfg.Bidirectional {
			m.encoders = append(m.encoders, nn.NewBiGRU(rng, d, cfg.Hidden))
		} else {
			m.encoders = append(m.encoders, nn.NewGRU(rng, d, cfg.Hidden))
		}
	}
	if cfg.Bidirectional {
		embedDim = 2 * cfg.Hidden
	}

	numViews := len(viewDims)
	switch cfg.Fusion {
	case FusionFC:
		m.fusion = fusion.NewFullyConnected(rng, numViews, embedDim, cfg.FusionUnits, cfg.Classes)
	case FusionFM:
		m.fusion = fusion.NewFactorizationMachine(rng, numViews, embedDim, cfg.FusionUnits, cfg.Classes)
	case FusionMVM:
		m.fusion = fusion.NewMultiviewMachine(rng, numViews, embedDim, cfg.FusionUnits, cfg.Classes)
	}

	for _, e := range m.encoders {
		m.params = append(m.params, e.Params()...)
	}
	m.params = append(m.params, m.fusion.Params()...)
	return m, nil
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param { return m.params }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Label extracts the task label from a session.
func (m *Model) Label(s *data.Session) int {
	if m.cfg.Task == TaskUser {
		return s.UserID
	}
	return s.Mood
}

// sessionViews orders the (normalized) session views for the encoders.
func sessionViews(s *data.Session) []*tensor.Matrix {
	return []*tensor.Matrix{s.Alphanumeric, s.Special, s.Accelerometer}
}

// Forward runs the full model on one session and returns class logits
// (1 x classes), caching state for Backward.
func (m *Model) Forward(s *data.Session) (*tensor.Matrix, error) {
	views := sessionViews(s)
	embeds := make([]*tensor.Matrix, len(views))
	for p, e := range m.encoders {
		h, err := e.ForwardSeq(views[p])
		if err != nil {
			return nil, fmt.Errorf("view %d encoder: %w", p, err)
		}
		embeds[p] = h
	}
	out, err := m.fusion.Forward(embeds)
	if err != nil {
		return nil, fmt.Errorf("fusion: %w", err)
	}
	return out, nil
}

// Backward backpropagates dLoss/dLogits through the fusion head and all
// view encoders, accumulating parameter gradients.
func (m *Model) Backward(grad *tensor.Matrix) error {
	viewGrads, err := m.fusion.Backward(grad)
	if err != nil {
		return fmt.Errorf("fusion backward: %w", err)
	}
	for p, e := range m.encoders {
		if _, err := e.BackwardLast(viewGrads[p]); err != nil {
			return fmt.Errorf("view %d encoder backward: %w", p, err)
		}
	}
	return nil
}

// Predict returns the predicted class for one session (inference mode).
func (m *Model) Predict(s *data.Session) (int, error) {
	out, err := m.Forward(s)
	if err != nil {
		return 0, err
	}
	return out.ArgMaxRow(0), nil
}

// PredictAll classifies each session.
func (m *Model) PredictAll(sessions []*data.Session) ([]int, error) {
	preds := make([]int, len(sessions))
	for i, s := range sessions {
		p, err := m.Predict(s)
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		preds[i] = p
	}
	return preds, nil
}

// TrainConfig configures session-level training.
type TrainConfig struct {
	Epochs    int
	BatchSize int // gradient-accumulation batch, in sessions
	Optimizer nn.Optimizer
	Rng       *rand.Rand
	// OnEpoch, if non-nil, receives the mean session loss per epoch.
	OnEpoch func(epoch int, loss float64)
}

// Train fits the model on the given (pre-normalized) sessions and returns
// per-epoch mean losses.
func (m *Model) Train(sessions []*data.Session, cfg TrainConfig) ([]float64, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.Optimizer == nil || cfg.Rng == nil {
		return nil, fmt.Errorf("%w: incomplete train config", ErrConfig)
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("%w: no sessions", ErrConfig)
	}
	loss := nn.NewSoftmaxCrossEntropy()
	order := make([]int, len(sessions))
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		count := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			nn.ZeroGrads(m.params)
			for _, idx := range order[start:end] {
				s := sessions[idx]
				out, err := m.Forward(s)
				if err != nil {
					return nil, err
				}
				y, err := nn.OneHot([]int{m.Label(s)}, m.cfg.Classes)
				if err != nil {
					return nil, err
				}
				l, err := loss.Forward(out, y)
				if err != nil {
					return nil, err
				}
				g, err := loss.Backward()
				if err != nil {
					return nil, err
				}
				if err := m.Backward(g); err != nil {
					return nil, err
				}
				epochLoss += l
				count++
			}
			// Average accumulated gradients over the batch.
			scale := 1 / float64(end-start)
			for _, p := range m.params {
				p.Grad.ScaleInPlace(scale)
			}
			if err := cfg.Optimizer.Step(m.params); err != nil {
				return nil, err
			}
		}
		losses = append(losses, epochLoss/float64(count))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, losses[len(losses)-1])
		}
	}
	return losses, nil
}

// NormalizeAll returns normalized copies of sessions ready for the model.
func NormalizeAll(sessions []*data.Session) []*data.Session {
	out := make([]*data.Session, len(sessions))
	for i, s := range sessions {
		out[i] = data.NormalizeSessionViews(s)
	}
	return out
}
