// Package version carries the build identity stamped into the binary at
// link time. The Makefile's build target passes
//
//	-ldflags "-X mobiledl/internal/version.Version=$(git describe ...)"
//
// so /metrics can export a mobiledl_build_info gauge identifying exactly
// which build is serving.
package version

// Version is the stamped build version ("dev" for unstamped builds).
var Version = "dev"
