package fusion

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

func randViews(rng *rand.Rand, numViews, dim int) []*tensor.Matrix {
	vs := make([]*tensor.Matrix, numViews)
	for p := range vs {
		vs[p] = tensor.RandNormal(rng, 1, dim, 0, 1)
	}
	return vs
}

// gradCheckFusion validates analytic parameter and input gradients against
// central differences for any fusion layer.
func gradCheckFusion(t *testing.T, layer Layer, rng *rand.Rand, numViews, dim, classes int) {
	t.Helper()
	views := randViews(rng, numViews, dim)
	loss := nn.NewSoftmaxCrossEntropy()
	y, err := nn.OneHot([]int{classes - 1}, classes)
	if err != nil {
		t.Fatal(err)
	}

	lossFn := func() float64 {
		out, err := layer.Forward(views)
		if err != nil {
			t.Fatal(err)
		}
		l, err := loss.Forward(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	nn.ZeroGrads(layer.Params())
	lossFn()
	g, err := loss.Backward()
	if err != nil {
		t.Fatal(err)
	}
	viewGrads, err := layer.Backward(g)
	if err != nil {
		t.Fatal(err)
	}

	const h = 1e-5
	// Parameter gradients.
	for _, p := range layer.Params() {
		data := p.Value.Data()
		gd := p.Grad.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + h
			lp := lossFn()
			data[i] = orig - h
			lm := lossFn()
			data[i] = orig
			num := (lp - lm) / (2 * h)
			if d := math.Abs(num - gd[i]); d > 1e-5 {
				t.Fatalf("%s param %s[%d]: analytic %v numeric %v", layer.Name(), p.Name, i, gd[i], num)
			}
		}
	}
	// Input gradients.
	for p, v := range views {
		data := v.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + h
			lp := lossFn()
			data[i] = orig - h
			lm := lossFn()
			data[i] = orig
			num := (lp - lm) / (2 * h)
			if d := math.Abs(num - viewGrads[p].Data()[i]); d > 1e-5 {
				t.Fatalf("%s view %d input grad [%d]: analytic %v numeric %v",
					layer.Name(), p, i, viewGrads[p].Data()[i], num)
			}
		}
	}
}

func TestFullyConnectedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gradCheckFusion(t, NewFullyConnected(rng, 3, 4, 6, 2), rng, 3, 4, 2)
}

func TestFactorizationMachineGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gradCheckFusion(t, NewFactorizationMachine(rng, 3, 4, 5, 2), rng, 3, 4, 2)
}

func TestMultiviewMachineGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gradCheckFusion(t, NewMultiviewMachine(rng, 3, 4, 5, 2), rng, 3, 4, 2)
}

func TestViewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layers := []Layer{
		NewFullyConnected(rng, 2, 3, 4, 2),
		NewFactorizationMachine(rng, 2, 3, 4, 2),
		NewMultiviewMachine(rng, 2, 3, 4, 2),
	}
	for _, l := range layers {
		// Wrong view count.
		if _, err := l.Forward(randViews(rng, 3, 3)); !errors.Is(err, ErrViews) {
			t.Fatalf("%s: want ErrViews for wrong count, got %v", l.Name(), err)
		}
		// Wrong view dim.
		if _, err := l.Forward(randViews(rng, 2, 5)); !errors.Is(err, ErrViews) {
			t.Fatalf("%s: want ErrViews for wrong dim, got %v", l.Name(), err)
		}
	}
}

func TestFusionOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, l := range []Layer{
		NewFullyConnected(rng, 3, 4, 8, 5),
		NewFactorizationMachine(rng, 3, 4, 6, 5),
		NewMultiviewMachine(rng, 3, 4, 6, 5),
	} {
		out, err := l.Forward(randViews(rng, 3, 4))
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if out.Rows() != 1 || out.Cols() != 5 {
			t.Fatalf("%s output %dx%d, want 1x5", l.Name(), out.Rows(), out.Cols())
		}
	}
}

func TestFusionLayersLearnViewInteraction(t *testing.T) {
	// Train each fusion head on a task whose label depends on the product of
	// two views (an interaction effect): y = 1 iff v1[0]*v2[0] > 0. FM and
	// MVM model such interactions explicitly; FC learns them via the hidden
	// layer. All should beat chance comfortably.
	for _, build := range []func(*rand.Rand) Layer{
		func(rng *rand.Rand) Layer { return NewFullyConnected(rng, 2, 2, 16, 2) },
		func(rng *rand.Rand) Layer { return NewFactorizationMachine(rng, 2, 2, 8, 2) },
		func(rng *rand.Rand) Layer { return NewMultiviewMachine(rng, 2, 2, 8, 2) },
	} {
		rng := rand.New(rand.NewSource(42))
		layer := build(rng)
		loss := nn.NewSoftmaxCrossEntropy()
		lr := 0.05

		sample := func() ([]*tensor.Matrix, int) {
			v1 := tensor.RandNormal(rng, 1, 2, 0, 1)
			v2 := tensor.RandNormal(rng, 1, 2, 0, 1)
			label := 0
			if v1.At(0, 0)*v2.At(0, 0) > 0 {
				label = 1
			}
			return []*tensor.Matrix{v1, v2}, label
		}

		for step := 0; step < 4000; step++ {
			views, label := sample()
			y, _ := nn.OneHot([]int{label}, 2)
			nn.ZeroGrads(layer.Params())
			out, err := layer.Forward(views)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := loss.Forward(out, y); err != nil {
				t.Fatal(err)
			}
			g, _ := loss.Backward()
			if _, err := layer.Backward(g); err != nil {
				t.Fatal(err)
			}
			for _, p := range layer.Params() {
				if err := tensor.AxpyInPlace(p.Value, -lr, p.Grad); err != nil {
					t.Fatal(err)
				}
			}
		}

		correct, total := 0, 500
		for i := 0; i < total; i++ {
			views, label := sample()
			out, err := layer.Forward(views)
			if err != nil {
				t.Fatal(err)
			}
			if out.ArgMaxRow(0) == label {
				correct++
			}
		}
		acc := float64(correct) / float64(total)
		if acc < 0.8 {
			t.Errorf("%s learned interaction task to only %v accuracy", layer.Name(), acc)
		}
	}
}
