// Package fusion implements the three multi-view fusion layers of DeepMood
// (Section IV-A, Eqs. 2-4): a fully connected layer over concatenated view
// embeddings, a Factorization Machine layer modeling second-order feature
// interactions, and a Multi-view Machine layer modeling full mth-order
// interactions across views.
//
// Each layer maps m view embeddings h^(p) (1 x dh row vectors) to class
// scores (1 x classes) and backpropagates to both its parameters and the
// per-view inputs.
package fusion

import (
	"errors"
	"fmt"
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// ErrViews reports a view-count or view-shape mismatch.
var ErrViews = errors.New("fusion: view mismatch")

// Layer is a multi-view fusion head.
type Layer interface {
	// Forward maps per-view embeddings to class logits (1 x classes).
	Forward(views []*tensor.Matrix) (*tensor.Matrix, error)
	// Backward consumes dLoss/dLogits and returns dLoss/dView per view,
	// accumulating parameter gradients.
	Backward(grad *tensor.Matrix) ([]*tensor.Matrix, error)
	// Params returns trainable parameters.
	Params() []*nn.Param
	// Name identifies the fusion variant in experiment tables.
	Name() string
}

func checkViews(views []*tensor.Matrix, numViews, viewDim int) error {
	if len(views) != numViews {
		return fmt.Errorf("%w: got %d views, want %d", ErrViews, len(views), numViews)
	}
	for p, v := range views {
		if v.Rows() != 1 || v.Cols() != viewDim {
			return fmt.Errorf("%w: view %d is %dx%d, want 1x%d", ErrViews, p, v.Rows(), v.Cols(), viewDim)
		}
	}
	return nil
}

// FullyConnected implements Eq. 2: concatenate views, apply a ReLU hidden
// layer with bias, then a linear output layer.
type FullyConnected struct {
	numViews, viewDim int
	hidden            *nn.Dense
	act               *nn.Activation
	out               *nn.Dense
}

var _ Layer = (*FullyConnected)(nil)

// NewFullyConnected builds the Eq. 2 head with k' hidden units.
func NewFullyConnected(rng *rand.Rand, numViews, viewDim, hiddenUnits, classes int) *FullyConnected {
	return &FullyConnected{
		numViews: numViews,
		viewDim:  viewDim,
		hidden:   nn.NewDense(rng, numViews*viewDim, hiddenUnits),
		act:      nn.NewReLU(),
		out:      nn.NewDense(rng, hiddenUnits, classes),
	}
}

// Name implements Layer.
func (f *FullyConnected) Name() string { return "FC" }

// Forward implements Layer.
func (f *FullyConnected) Forward(views []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := checkViews(views, f.numViews, f.viewDim); err != nil {
		return nil, err
	}
	h, err := tensor.HStack(views...)
	if err != nil {
		return nil, err
	}
	q, err := f.hidden.Forward(h, true)
	if err != nil {
		return nil, err
	}
	q, err = f.act.Forward(q, true)
	if err != nil {
		return nil, err
	}
	return f.out.Forward(q, true)
}

// Backward implements Layer.
func (f *FullyConnected) Backward(grad *tensor.Matrix) ([]*tensor.Matrix, error) {
	dq, err := f.out.Backward(grad)
	if err != nil {
		return nil, err
	}
	dq, err = f.act.Backward(dq)
	if err != nil {
		return nil, err
	}
	dh, err := f.hidden.Backward(dq)
	if err != nil {
		return nil, err
	}
	grads := make([]*tensor.Matrix, f.numViews)
	for p := 0; p < f.numViews; p++ {
		g, err := dh.SliceCols(p*f.viewDim, (p+1)*f.viewDim)
		if err != nil {
			return nil, err
		}
		grads[p] = g
	}
	return grads, nil
}

// Params implements Layer.
func (f *FullyConnected) Params() []*nn.Param {
	return append(f.hidden.Params(), f.out.Params()...)
}
