package fusion

import (
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// FactorizationMachine implements Eq. 3: for each class a,
//
//	q_a = U_a h          (k factor units over the concatenated views)
//	b_a = w_a^T [h; 1]
//	y_a = sum(q_a ⊙ q_a) + b_a
//
// modeling explicit second-order interactions between all input units.
type FactorizationMachine struct {
	numViews, viewDim, factors, classes int

	// u[a] is k x d, w[a] is 1 x (d+1).
	u []*nn.Param
	w []*nn.Param

	// caches from the last Forward
	h  *tensor.Matrix   // 1 x d
	qa []*tensor.Matrix // per class, k x 1 stored as 1 x k
}

var _ Layer = (*FactorizationMachine)(nil)

// NewFactorizationMachine builds the Eq. 3 head with k factor units.
func NewFactorizationMachine(rng *rand.Rand, numViews, viewDim, factors, classes int) *FactorizationMachine {
	d := numViews * viewDim
	fm := &FactorizationMachine{
		numViews: numViews,
		viewDim:  viewDim,
		factors:  factors,
		classes:  classes,
		u:        make([]*nn.Param, classes),
		w:        make([]*nn.Param, classes),
	}
	for a := 0; a < classes; a++ {
		fm.u[a] = nn.NewParam("fm_u", tensor.RandNormal(rng, factors, d, 0, 0.05))
		fm.w[a] = nn.NewParam("fm_w", tensor.RandNormal(rng, 1, d+1, 0, 0.05))
	}
	return fm
}

// Name implements Layer.
func (f *FactorizationMachine) Name() string { return "FM" }

// Forward implements Layer.
func (f *FactorizationMachine) Forward(views []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := checkViews(views, f.numViews, f.viewDim); err != nil {
		return nil, err
	}
	h, err := tensor.HStack(views...)
	if err != nil {
		return nil, err
	}
	f.h = h
	f.qa = f.qa[:0]
	out := tensor.New(1, f.classes)
	for a := 0; a < f.classes; a++ {
		// q_a = U_a h^T computed as h @ U_a^T -> 1 x k
		qa, err := tensor.MatMulT(h, f.u[a].Value)
		if err != nil {
			return nil, err
		}
		f.qa = append(f.qa, qa)
		var quad float64
		for _, v := range qa.Data() {
			quad += v * v
		}
		// b_a = w_a . [h; 1]
		wRow := f.w[a].Value.Row(0)
		bias := wRow[len(wRow)-1]
		for j, v := range h.Row(0) {
			bias += wRow[j] * v
		}
		out.Set(0, a, quad+bias)
	}
	return out, nil
}

// Backward implements Layer.
func (f *FactorizationMachine) Backward(grad *tensor.Matrix) ([]*tensor.Matrix, error) {
	if f.h == nil {
		return nil, nn.ErrNotReady
	}
	d := f.numViews * f.viewDim
	dh := tensor.New(1, d)
	for a := 0; a < f.classes; a++ {
		g := grad.At(0, a)
		if g == 0 {
			continue
		}
		qa := f.qa[a].Row(0)
		// dU_a = 2 g q_a h (outer product, k x d)
		du := f.u[a].Grad
		for i := 0; i < f.factors; i++ {
			coef := 2 * g * qa[i]
			row := du.Row(i)
			for j, hv := range f.h.Row(0) {
				row[j] += coef * hv
			}
		}
		// dw_a = g [h; 1]
		dw := f.w[a].Grad.Row(0)
		for j, hv := range f.h.Row(0) {
			dw[j] += g * hv
		}
		dw[d] += g
		// dh += 2 g U_a^T q_a + g w_a[:d]
		dhRow := dh.Row(0)
		uv := f.u[a].Value
		for i := 0; i < f.factors; i++ {
			coef := 2 * g * qa[i]
			for j := 0; j < d; j++ {
				dhRow[j] += coef * uv.At(i, j)
			}
		}
		wRow := f.w[a].Value.Row(0)
		for j := 0; j < d; j++ {
			dhRow[j] += g * wRow[j]
		}
	}
	grads := make([]*tensor.Matrix, f.numViews)
	for p := 0; p < f.numViews; p++ {
		g, err := dh.SliceCols(p*f.viewDim, (p+1)*f.viewDim)
		if err != nil {
			return nil, err
		}
		grads[p] = g
	}
	return grads, nil
}

// Params implements Layer.
func (f *FactorizationMachine) Params() []*nn.Param {
	ps := make([]*nn.Param, 0, 2*f.classes)
	ps = append(ps, f.u...)
	ps = append(ps, f.w...)
	return ps
}

// MultiviewMachine implements Eq. 4: for each class a and view p,
//
//	q_a^(p) = U_a^(p) [h^(p); 1]
//	y_a = sum(q_a^(1) ⊙ ... ⊙ q_a^(m))
//
// capturing all feature interactions up to order m across the m views,
// equivalent to Multi-view Machines [43].
type MultiviewMachine struct {
	numViews, viewDim, factors, classes int

	// u[a][p] is k x (dh+1).
	u [][]*nn.Param

	hb []*tensor.Matrix   // cached [h^(p); 1], 1 x (dh+1)
	qa [][]*tensor.Matrix // cached q_a^(p), 1 x k
}

var _ Layer = (*MultiviewMachine)(nil)

// NewMultiviewMachine builds the Eq. 4 head with k factor units.
func NewMultiviewMachine(rng *rand.Rand, numViews, viewDim, factors, classes int) *MultiviewMachine {
	mv := &MultiviewMachine{
		numViews: numViews,
		viewDim:  viewDim,
		factors:  factors,
		classes:  classes,
		u:        make([][]*nn.Param, classes),
	}
	for a := 0; a < classes; a++ {
		mv.u[a] = make([]*nn.Param, numViews)
		for p := 0; p < numViews; p++ {
			mv.u[a][p] = nn.NewParam("mvm_u", tensor.RandNormal(rng, factors, viewDim+1, 0, 0.1))
		}
	}
	return mv
}

// Name implements Layer.
func (m *MultiviewMachine) Name() string { return "MVM" }

// Forward implements Layer.
func (m *MultiviewMachine) Forward(views []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := checkViews(views, m.numViews, m.viewDim); err != nil {
		return nil, err
	}
	m.hb = m.hb[:0]
	for _, v := range views {
		hb := tensor.New(1, m.viewDim+1)
		copy(hb.Row(0), v.Row(0))
		hb.Set(0, m.viewDim, 1)
		m.hb = append(m.hb, hb)
	}
	m.qa = m.qa[:0]
	out := tensor.New(1, m.classes)
	for a := 0; a < m.classes; a++ {
		qs := make([]*tensor.Matrix, m.numViews)
		prod := tensor.New(1, m.factors)
		prod.Fill(1)
		for p := 0; p < m.numViews; p++ {
			q, err := tensor.MatMulT(m.hb[p], m.u[a][p].Value)
			if err != nil {
				return nil, err
			}
			qs[p] = q
			pd := prod.Data()
			for i, v := range q.Row(0) {
				pd[i] *= v
			}
		}
		m.qa = append(m.qa, qs)
		out.Set(0, a, prod.Sum())
	}
	return out, nil
}

// Backward implements Layer.
func (m *MultiviewMachine) Backward(grad *tensor.Matrix) ([]*tensor.Matrix, error) {
	if len(m.hb) == 0 {
		return nil, nn.ErrNotReady
	}
	grads := make([]*tensor.Matrix, m.numViews)
	for p := range grads {
		grads[p] = tensor.New(1, m.viewDim)
	}
	for a := 0; a < m.classes; a++ {
		g := grad.At(0, a)
		if g == 0 {
			continue
		}
		qs := m.qa[a]
		for p := 0; p < m.numViews; p++ {
			// dq_a^(p)[i] = g * prod_{r != p} q_a^(r)[i]
			dq := make([]float64, m.factors)
			for i := range dq {
				prod := g
				for r := 0; r < m.numViews; r++ {
					if r == p {
						continue
					}
					prod *= qs[r].At(0, i)
				}
				dq[i] = prod
			}
			// dU_a^(p) += dq ⊗ [h^(p); 1]
			du := m.u[a][p].Grad
			hb := m.hb[p].Row(0)
			for i := 0; i < m.factors; i++ {
				row := du.Row(i)
				for j, hv := range hb {
					row[j] += dq[i] * hv
				}
			}
			// dh^(p) += U_a^(p)[:, :dh]^T dq
			uv := m.u[a][p].Value
			dst := grads[p].Row(0)
			for i := 0; i < m.factors; i++ {
				for j := 0; j < m.viewDim; j++ {
					dst[j] += dq[i] * uv.At(i, j)
				}
			}
		}
	}
	return grads, nil
}

// Params implements Layer.
func (m *MultiviewMachine) Params() []*nn.Param {
	var ps []*nn.Param
	for a := range m.u {
		ps = append(ps, m.u[a]...)
	}
	return ps
}
