package tensor

import (
	"fmt"
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U diag(S) V^T,
// with U m x r, S length r, V n x r for an m x n input of rank at most r.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin singular value decomposition of a using the
// one-sided Jacobi method. It is O(mn^2) per sweep and converges fast for
// the modest layer sizes used in this repository's low-rank factorization
// experiments (E10). Singular values are returned in descending order.
func SVD(a *Matrix) (*SVDResult, error) {
	m, n := a.rows, a.cols
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("%w: SVD of empty %dx%d matrix", ErrShape, m, n)
	}
	// One-sided Jacobi works on the columns of A; for m < n decompose the
	// transpose and swap U/V.
	if m < n {
		res, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: res.V, S: res.S, V: res.U}, nil
	}

	// Work on a copy; w's columns converge to U * diag(S).
	w := a.Clone()
	v := Identity(n)

	const (
		maxSweeps = 60
		eps       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		offDiag := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				offDiag = math.Max(offDiag, math.Abs(gamma)/math.Sqrt(alpha*beta))
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					w.data[i*n+p] = c*wp - s*wq
					w.data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if offDiag < eps {
			break
		}
	}

	// Extract singular values as column norms of w and normalize.
	sv := make([]float64, n)
	u := New(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += w.data[i*n+j] * w.data[i*n+j]
		}
		norm = math.Sqrt(norm)
		sv[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.data[i*n+j] = w.data[i*n+j] / norm
			}
		}
	}

	// Sort by descending singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return sv[idx[x]] > sv[idx[y]] })

	us := New(m, n)
	vs := New(n, n)
	ss := make([]float64, n)
	for newJ, oldJ := range idx {
		ss[newJ] = sv[oldJ]
		for i := 0; i < m; i++ {
			us.data[i*n+newJ] = u.data[i*n+oldJ]
		}
		for i := 0; i < n; i++ {
			vs.data[i*n+newJ] = v.data[i*n+oldJ]
		}
	}
	return &SVDResult{U: us, S: ss, V: vs}, nil
}

// Truncate reduces the decomposition to its top-k components.
func (r *SVDResult) Truncate(k int) (*SVDResult, error) {
	if k <= 0 || k > len(r.S) {
		return nil, fmt.Errorf("%w: Truncate rank %d of %d", ErrShape, k, len(r.S))
	}
	u, err := r.U.SliceCols(0, k)
	if err != nil {
		return nil, err
	}
	v, err := r.V.SliceCols(0, k)
	if err != nil {
		return nil, err
	}
	s := make([]float64, k)
	copy(s, r.S[:k])
	return &SVDResult{U: u, S: s, V: v}, nil
}

// Reconstruct returns U diag(S) V^T.
func (r *SVDResult) Reconstruct() (*Matrix, error) {
	us := r.U.Clone()
	for i := 0; i < us.rows; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= r.S[j]
		}
	}
	return MatMulT(us, r.V)
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}
