package tensor

import (
	"math/bits"
	"sync"
)

// Pool recycles matrix storage across calls so hot paths (serving batches,
// per-step recurrent scratch, gradient temporaries) stop paying one garbage
// matrix per operation. Buffers are bucketed by capacity class (powers of
// two), so a Get is satisfied by any previously Put matrix whose capacity
// covers the request.
//
// Ownership convention (see doc.go "Performance"): a matrix obtained from
// Get is owned by the caller until it is handed back with Put; after Put the
// matrix must not be touched again. Matrices that escape to API callers
// (returned results) are never pooled — only intra-call scratch is.
//
// The zero value is ready to use. A Pool is safe for concurrent use; the
// package-level Get/Put helpers share one default pool so independent
// subsystems (batcher, executor, nn backward passes) feed each other's
// reuse.
type Pool struct {
	buckets [poolBuckets]sync.Pool
}

// poolBuckets caps the largest pooled buffer at 2^(poolBuckets-1) floats
// (512 MiB of float64); anything larger is allocated and dropped normally.
const poolBuckets = 27

// bucketFor returns the smallest b such that 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zeroed rows x cols matrix, reusing pooled storage when a
// large-enough buffer is available. It panics on negative dimensions like
// New.
func (p *Pool) Get(rows, cols int) *Matrix {
	n := rows * cols
	if rows < 0 || cols < 0 || n == 0 {
		return New(rows, cols)
	}
	b := bucketFor(n)
	if b >= poolBuckets {
		return New(rows, cols)
	}
	if v := p.buckets[b].Get(); v != nil {
		m := v.(*Matrix)
		m.rows, m.cols = rows, cols
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
		return m
	}
	// Allocate at full bucket capacity so the buffer satisfies any request
	// in this class once recycled.
	return &Matrix{rows: rows, cols: cols, data: make([]float64, n, 1<<b)}
}

// Put hands m back to the pool for reuse. m must not be used after Put, and
// must not alias storage still in use elsewhere (never Put a Reshape view or
// a RowMatrix). Put(nil) and empty matrices are no-ops.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.data) == 0 {
		return
	}
	// File under the largest class the capacity fully covers, so Get's
	// "capacity >= request" invariant holds.
	b := bits.Len(uint(cap(m.data))) - 1
	if b >= poolBuckets {
		b = poolBuckets - 1
	}
	m.data = m.data[:0]
	m.rows, m.cols = 0, 0
	p.buckets[b].Put(m)
}

var defaultPool Pool

// Get returns a zeroed rows x cols matrix from the shared default pool.
func Get(rows, cols int) *Matrix { return defaultPool.Get(rows, cols) }

// Put returns m to the shared default pool. See Pool.Put for the aliasing
// rules.
func Put(m *Matrix) { defaultPool.Put(m) }
