package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// naiveMatMul is the reference three-loop product the kernels are checked
// against.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// matmulShapes covers odd, non-multiple-of-unroll shapes (inner dims 1, 2,
// 3, 5 exercise every remainder of the 4-wide k-unroll) plus one shape past
// the parallel work threshold.
var matmulShapes = [][3]int{
	{1, 1, 1}, {1, 5, 1}, {3, 7, 5}, {17, 33, 9}, {65, 129, 31},
	{4, 2, 4}, {5, 3, 2}, {64, 128, 64},
	{128, 128, 128}, // 2^21 MACs: above parallelMinWork
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range matmulShapes {
		a := randMat(rng, s[0], s[1])
		b := randMat(rng, s[1], s[2])
		want := naiveMatMul(a, b)

		got, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("MatMul %v diverges from naive", s)
		}

		dst := New(s[0], s[2])
		dst.Fill(42) // Into must fully overwrite, not accumulate
		if err := MatMulInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(want, 1e-9) {
			t.Fatalf("MatMulInto %v diverges from naive", s)
		}

		// Accumulate variant: dst += a@b twice = 2*(a@b).
		if err := MatMulAccInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(Scale(want, 2), 1e-9) {
			t.Fatalf("MatMulAccInto %v diverges from 2x naive", s)
		}
	}
}

// TestMatMulParallelMatchesSequential pins the row-split path against the
// single-goroutine kernel at shapes whose row counts do not divide evenly
// across workers.
func TestMatMulParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range [][3]int{{7, 64, 32}, {13, 50, 11}, {130, 128, 127}, {256, 256, 256}} {
		a := randMat(rng, s[0], s[1])
		b := randMat(rng, s[1], s[2])
		seq := New(s[0], s[2])
		matMulRange(seq, a, b, 0, s[0], false)
		for _, workers := range []int{2, 3, 5, runtime.GOMAXPROCS(0) + 1} {
			par := New(s[0], s[2])
			parallelRows(s[0], workers, func(i0, i1 int) { matMulRange(par, a, b, i0, i1, false) })
			if !par.Equal(seq, 1e-12) {
				t.Fatalf("parallel MatMul %v with %d workers diverges", s, workers)
			}
		}
	}
}

func TestMatMulTIntoMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, s := range matmulShapes {
		a := randMat(rng, s[0], s[1])
		b := randMat(rng, s[2], s[1]) // b^T is s[1] x s[2]
		want := naiveMatMul(a, b.T())
		dst := New(s[0], s[2])
		dst.Fill(-3)
		if err := MatMulTInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(want, 1e-9) {
			t.Fatalf("MatMulTInto %v diverges", s)
		}
		if err := MatMulTAccInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(Scale(want, 2), 1e-9) {
			t.Fatalf("MatMulTAccInto %v diverges", s)
		}
	}
}

func TestTMatMulIntoMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range matmulShapes {
		a := randMat(rng, s[1], s[0]) // a^T is s[0] x s[1]
		b := randMat(rng, s[1], s[2])
		want := naiveMatMul(a.T(), b)
		dst := New(s[0], s[2])
		dst.Fill(5)
		if err := TMatMulInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(want, 1e-9) {
			t.Fatalf("TMatMulInto %v diverges", s)
		}
		if err := TMatMulAccInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(Scale(want, 2), 1e-9) {
			t.Fatalf("TMatMulAccInto %v diverges", s)
		}
		// The parallel split for a^T @ b is over dst rows (a's columns);
		// check odd worker counts directly.
		for _, workers := range []int{2, 3} {
			if s[0] < workers {
				continue
			}
			par := New(s[0], s[2])
			parallelRows(s[0], workers, func(i0, i1 int) { tMatMulRange(par, a, b, i0, i1, false) })
			if !par.Equal(want, 1e-9) {
				t.Fatalf("parallel TMatMul %v with %d workers diverges", s, workers)
			}
		}
	}
}

func TestIntoShapeChecks(t *testing.T) {
	a := New(2, 3)
	b := New(3, 4)
	if err := MatMulInto(New(2, 3), a, b); err == nil {
		t.Fatal("MatMulInto accepted wrong dst shape")
	}
	if err := MatMulTInto(New(2, 2), a, New(4, 2)); err == nil {
		t.Fatal("MatMulTInto accepted mismatched inner dims")
	}
	if err := AddInto(New(2, 3), a, New(3, 2)); err == nil {
		t.Fatal("AddInto accepted mismatched operands")
	}
	if err := SubInto(New(3, 2), a, a); err == nil {
		t.Fatal("SubInto accepted wrong dst shape")
	}
	if err := TInto(New(2, 3), a); err == nil {
		t.Fatal("TInto accepted un-transposed dst shape")
	}
	if err := SumRowsInto(New(2, 3), a); err == nil {
		t.Fatal("SumRowsInto accepted non-row dst")
	}
}

func TestElementwiseIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 4, 5)
	b := randMat(rng, 4, 5)

	want, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dst := a.Clone()
	if err := AddInto(dst, dst, b); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(want, 0) {
		t.Fatal("AddInto with dst aliasing a diverges")
	}

	wantSub, err := Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dst = a.Clone()
	if err := SubInto(dst, dst, b); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(wantSub, 0) {
		t.Fatal("SubInto with dst aliasing a diverges")
	}

	wantMul, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dst = b.Clone()
	if err := MulInto(dst, a, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(wantMul, 0) {
		t.Fatal("MulInto with dst aliasing b diverges")
	}

	v := randMat(rng, 1, 5)
	wantRV, err := AddRowVector(a, v)
	if err != nil {
		t.Fatal(err)
	}
	dst = a.Clone()
	if err := AddRowVectorInto(dst, dst, v); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(wantRV, 0) {
		t.Fatal("AddRowVectorInto in place diverges")
	}

	wantSm := Softmax(a)
	dst = a.Clone()
	if err := SoftmaxInto(dst, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(wantSm, 1e-15) {
		t.Fatal("SoftmaxInto in place diverges")
	}

	wantAp := Apply(a, math.Exp)
	dst = a.Clone()
	if err := ApplyInto(dst, dst, math.Exp); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(wantAp, 0) {
		t.Fatal("ApplyInto in place diverges")
	}
}

func TestTIntoAndSelectRowsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 3, 7)
	dst := New(7, 3)
	if err := TInto(dst, a); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(a.T(), 0) {
		t.Fatal("TInto diverges from T")
	}

	idx := []int{2, 0, 2}
	want, err := a.SelectRows(idx)
	if err != nil {
		t.Fatal(err)
	}
	got := New(3, 7)
	if err := a.SelectRowsInto(got, idx); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("SelectRowsInto diverges from SelectRows")
	}
	if err := a.SelectRowsInto(got, []int{0, 1, 99}); err == nil {
		t.Fatal("SelectRowsInto accepted out-of-range index")
	}
}

func TestRowMatrixView(t *testing.T) {
	m := New(3, 4)
	v := m.RowMatrix(1)
	v.Set(0, 2, 9)
	if m.At(1, 2) != 9 {
		t.Fatal("RowMatrix does not alias parent storage")
	}
	if v.Rows() != 1 || v.Cols() != 4 {
		t.Fatalf("RowMatrix shape %dx%d, want 1x4", v.Rows(), v.Cols())
	}
}

func TestPoolGetZeroedAndReused(t *testing.T) {
	var p Pool
	m := p.Get(4, 8)
	if m.Rows() != 4 || m.Cols() != 8 {
		t.Fatalf("Get shape %dx%d", m.Rows(), m.Cols())
	}
	m.Fill(7)
	p.Put(m)
	// Same capacity class: must come back zeroed regardless of reuse.
	n := p.Get(5, 5)
	for _, v := range n.Data() {
		if v != 0 {
			t.Fatal("pooled matrix not zeroed on Get")
		}
	}
	p.Put(n)
	// A larger request never reuses a too-small buffer.
	big := p.Get(100, 100)
	if big.Size() != 10000 || len(big.Data()) != 10000 {
		t.Fatalf("Get(100,100) size %d", big.Size())
	}
	p.Put(big)
	p.Put(nil)       // must not panic
	p.Put(New(0, 0)) // empty: no-op
}

// TestPoolConcurrent hammers one pool from 64 goroutines under -race: every
// goroutine must observe fully-zeroed, correctly-shaped private buffers.
func TestPoolConcurrent(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				rows := 1 + (g+it)%7
				cols := 1 + (g*it)%13
				m := p.Get(rows, cols)
				for _, v := range m.Data() {
					if v != 0 {
						errs <- errNotZero
						return
					}
				}
				m.Fill(float64(g))
				p.Put(m)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

var errNotZero = errShapeFor("pool handed out a dirty buffer")

func errShapeFor(msg string) error { return &poolTestErr{msg} }

type poolTestErr struct{ msg string }

func (e *poolTestErr) Error() string { return e.msg }
