package tensor

import (
	"fmt"
	"math"
)

// MatMul computes a @ b into a newly allocated matrix. It shares the
// register-blocked, threshold-parallel kernel with MatMulInto; callers on a
// hot path should preallocate (or pool) the destination and use the Into
// variant directly. The kernel is branch-free over the operand values —
// sparse speedups belong to compress.CSR, not here.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: MatMul %dx%d @ %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	if err := MatMulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulT computes a @ b^T without materializing the transpose.
func MatMulT(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.cols {
		return nil, fmt.Errorf("%w: MatMulT %dx%d @ (%dx%d)^T", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.rows)
	if err := MatMulTInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// TMatMul computes a^T @ b without materializing the transpose.
func TMatMul(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows {
		return nil, fmt.Errorf("%w: TMatMul (%dx%d)^T @ %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.cols, b.cols)
	if err := TMatMulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

func sameShape(op string, a, b *Matrix) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: %s %dx%d vs %dx%d", ErrShape, op, a.rows, a.cols, b.rows, b.cols)
	}
	return nil
}

// Add returns a + b.
func Add(a, b *Matrix) (*Matrix, error) {
	if err := sameShape("Add", a, b); err != nil {
		return nil, err
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns a - b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if err := sameShape("Sub", a, b); err != nil {
		return nil, err
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Mul returns the elementwise (Hadamard) product a ⊙ b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if err := sameShape("Mul", a, b); err != nil {
		return nil, err
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out, nil
}

// AddInPlace computes a += b in place.
func AddInPlace(a, b *Matrix) error {
	if err := sameShape("AddInPlace", a, b); err != nil {
		return err
	}
	for i, v := range b.data {
		a.data[i] += v
	}
	return nil
}

// AxpyInPlace computes a += alpha*b in place.
func AxpyInPlace(a *Matrix, alpha float64, b *Matrix) error {
	if err := sameShape("AxpyInPlace", a, b); err != nil {
		return err
	}
	for i, v := range b.data {
		a.data[i] += alpha * v
	}
	return nil
}

// Scale returns alpha * a.
func Scale(a *Matrix, alpha float64) *Matrix {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// ScaleInPlace multiplies every element by alpha in place.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// Apply returns a new matrix with f applied elementwise.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := a.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f elementwise in place.
func (m *Matrix) ApplyInPlace(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// AddRowVector returns a + v broadcast across rows (v is 1 x cols).
func AddRowVector(a, v *Matrix) (*Matrix, error) {
	if v.rows != 1 || v.cols != a.cols {
		return nil, fmt.Errorf("%w: AddRowVector %dx%d + %dx%d", ErrShape, a.rows, a.cols, v.rows, v.cols)
	}
	out := a.Clone()
	for i := 0; i < a.rows; i++ {
		row := out.Row(i)
		for j, bv := range v.data {
			row[j] += bv
		}
	}
	return out, nil
}

// SumRows returns the column-wise sum as a 1 x cols matrix.
func SumRows(a *Matrix) *Matrix {
	out := New(1, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// Max returns the maximum element (-Inf for an empty matrix).
func (m *Matrix) Max() float64 {
	max := math.Inf(-1)
	for _, v := range m.data {
		if v > max {
			max = v
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius (entrywise L2) norm.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// L1Norm returns the entrywise L1 norm.
func (m *Matrix) L1Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += math.Abs(v)
	}
	return s
}

// Dot returns the Frobenius inner product <a, b>.
func Dot(a, b *Matrix) (float64, error) {
	if err := sameShape("Dot", a, b); err != nil {
		return 0, err
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s, nil
}

// ArgMaxRow returns the index of the maximum element in row i.
func (m *Matrix) ArgMaxRow(i int) int {
	row := m.Row(i)
	best, bestV := 0, math.Inf(-1)
	for j, v := range row {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

// Softmax returns the row-wise softmax of a, computed stably.
func Softmax(a *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	_ = SoftmaxInto(out, a) // shapes match by construction
	return out
}

// HStack concatenates matrices horizontally (equal row counts).
func HStack(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return New(0, 0), nil
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			return nil, fmt.Errorf("%w: HStack rows %d vs %d", ErrShape, m.rows, rows)
		}
		cols += m.cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		orow := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.cols], m.Row(i))
			off += m.cols
		}
	}
	return out, nil
}

// VStack concatenates matrices vertically (equal column counts).
func VStack(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return New(0, 0), nil
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("%w: VStack cols %d vs %d", ErrShape, m.cols, cols)
		}
		rows += m.rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out, nil
}

// SliceCols returns columns [from, to) as a new matrix.
func (m *Matrix) SliceCols(from, to int) (*Matrix, error) {
	if from < 0 || to > m.cols || from > to {
		return nil, fmt.Errorf("%w: SliceCols [%d,%d) of %d cols", ErrShape, from, to, m.cols)
	}
	out := New(m.rows, to-from)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out, nil
}

// SliceRows returns rows [from, to) as a new matrix.
func (m *Matrix) SliceRows(from, to int) (*Matrix, error) {
	if from < 0 || to > m.rows || from > to {
		return nil, fmt.Errorf("%w: SliceRows [%d,%d) of %d rows", ErrShape, from, to, m.rows)
	}
	out := New(to-from, m.cols)
	copy(out.data, m.data[from*m.cols:to*m.cols])
	return out, nil
}

// SelectRows gathers the given row indices into a new matrix.
func (m *Matrix) SelectRows(idx []int) (*Matrix, error) {
	out := New(len(idx), m.cols)
	if err := m.SelectRowsInto(out, idx); err != nil {
		return nil, err
	}
	return out, nil
}
