package tensor

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 || m.Size() != 6 {
		t.Fatalf("got %dx%d size %d, want 2x3 size 6", m.Rows(), m.Cols(), m.Size())
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Fatalf("At(1,2) = %v, want 4.5", got)
	}
	if got := m.Row(1)[2]; got != 4.5 {
		t.Fatalf("Row(1)[2] = %v, want 4.5", got)
	}
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromSlice(2, 2, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected matrix %v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for ragged rows, got %v", err)
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
	if _, err := MatMul(a, New(3, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 4, 3, 0, 1)
	b := RandNormal(rng, 5, 3, 0, 1)
	c := RandNormal(rng, 4, 5, 0, 1)

	abT, err := MatMulT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MatMul(a, b.T())
	if !abT.Equal(want, 1e-12) {
		t.Fatal("MatMulT disagrees with explicit transpose")
	}

	aTc, err := TMatMul(a, c)
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := MatMul(a.T(), c)
	if !aTc.Equal(want2, 1e-12) {
		t.Fatal("TMatMul disagrees with explicit transpose")
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{10, 20}, {30, 40}})
	sum, _ := Add(a, b)
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff, _ := Sub(b, a)
	if diff.At(0, 0) != 9 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	prod, _ := Mul(a, b)
	if prod.At(1, 0) != 90 {
		t.Fatalf("Mul wrong: %v", prod)
	}
	if err := AxpyInPlace(a, 2, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 42 {
		t.Fatalf("Axpy wrong: %v", a)
	}
}

func TestBroadcastAndReductions(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := RowVector([]float64{10, 20, 30})
	got, err := AddRowVector(a, v)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 2) != 36 {
		t.Fatalf("AddRowVector wrong: %v", got)
	}
	s := SumRows(a)
	if s.At(0, 0) != 5 || s.At(0, 2) != 9 {
		t.Fatalf("SumRows wrong: %v", s)
	}
	if a.Sum() != 21 || a.Mean() != 3.5 || a.Max() != 6 {
		t.Fatalf("reductions wrong: sum=%v mean=%v max=%v", a.Sum(), a.Mean(), a.Max())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandNormal(rng, 6, 9, 0, 5)
	sm := Softmax(a)
	for i := 0; i < sm.Rows(); i++ {
		var sum float64
		for _, v := range sm.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	a := RowVector([]float64{1000, 1001, 1002})
	sm := Softmax(a)
	for _, v := range sm.Row(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", sm)
		}
	}
}

func TestStackAndSlice(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5}, {6}})
	h, err := HStack(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cols() != 3 || h.At(1, 2) != 6 {
		t.Fatalf("HStack wrong: %v", h)
	}
	vcat, err := VStack(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if vcat.Rows() != 4 || vcat.At(3, 1) != 4 {
		t.Fatalf("VStack wrong: %v", vcat)
	}
	sc, err := h.SliceCols(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cols() != 2 || sc.At(0, 1) != 5 {
		t.Fatalf("SliceCols wrong: %v", sc)
	}
	sr, err := vcat.SliceRows(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Rows() != 2 || sr.At(0, 0) != 1 {
		t.Fatalf("SliceRows wrong: %v", sr)
	}
	sel, err := vcat.SelectRows([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.At(0, 0) != 3 || sel.At(1, 0) != 1 {
		t.Fatalf("SelectRows wrong: %v", sel)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		m := RandNormal(rng, rows, cols, 0, 1)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0, 1)
		b := RandNormal(rng, a.Cols(), 1+rng.Intn(4), 0, 1)
		c := RandNormal(rng, b.Cols(), 1+rng.Intn(4), 0, 1)
		ab, _ := MatMul(a, b)
		abc1, _ := MatMul(ab, c)
		bc, _ := MatMul(b, c)
		abc2, _ := MatMul(a, bc)
		return abc1.Equal(abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandNormal(rng, rows, cols, 0, 10)
		b := RandNormal(rng, rows, cols, 0, 10)
		ab, _ := Add(a, b)
		ba, _ := Add(b, a)
		return ab.Equal(ba, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][2]int{{5, 3}, {3, 5}, {6, 6}, {1, 4}} {
		a := RandNormal(rng, dims[0], dims[1], 0, 1)
		res, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := res.Reconstruct()
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Equal(a, 1e-8) {
			t.Fatalf("SVD reconstruction of %dx%d differs: %v vs %v", dims[0], dims[1], rec, a)
		}
		for i := 1; i < len(res.S); i++ {
			if res.S[i] > res.S[i-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", res.S)
			}
		}
	}
}

func TestSVDTruncateLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Build an exactly rank-2 matrix; truncating to rank 2 must be lossless.
	u := RandNormal(rng, 6, 2, 0, 1)
	v := RandNormal(rng, 2, 5, 0, 1)
	a, _ := MatMul(u, v)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Truncate(2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tr.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(a, 1e-8) {
		t.Fatal("rank-2 truncation of a rank-2 matrix is lossy")
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandNormal(rng, 7, 4, 0, 1)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	utu, _ := TMatMul(res.U, res.U)
	if !utu.Equal(Identity(4), 1e-8) {
		t.Fatalf("U columns not orthonormal: %v", utu)
	}
	vtv, _ := TMatMul(res.V, res.V)
	if !vtv.Equal(Identity(4), 1e-8) {
		t.Fatalf("V columns not orthonormal: %v", vtv)
	}
}

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandNormal(rng, 3, 4, 0, 1)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("gob round trip changed the matrix")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r, err := m.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Set(0, 0, 99)
	if m.At(0, 0) != 99 {
		t.Fatal("Reshape did not share storage")
	}
	if _, err := m.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNorms(t *testing.T) {
	m, _ := FromSlice(1, 2, []float64{3, -4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := m.L1Norm(); got != 7 {
		t.Fatalf("L1Norm = %v, want 7", got)
	}
	d, err := Dot(m, m)
	if err != nil || d != 25 {
		t.Fatalf("Dot = %v (%v), want 25", d, err)
	}
}

func TestArgMaxRow(t *testing.T) {
	m, _ := FromRows([][]float64{{0.1, 0.9, 0.2}, {5, 1, 2}})
	if m.ArgMaxRow(0) != 1 || m.ArgMaxRow(1) != 0 {
		t.Fatal("ArgMaxRow wrong")
	}
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := GlorotUniform(rng, 100, 50)
	limit := math.Sqrt(6.0 / 150.0)
	for _, v := range m.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside [-%v, %v]", v, limit, limit)
		}
	}
}
