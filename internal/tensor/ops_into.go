package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// This file holds the destination-passing ("Into") kernels: every variant
// writes its result into a caller-supplied matrix and allocates nothing, so
// hot paths can reuse scratch from a Pool across calls. Conventions:
//
//   - dst must already have the result shape; a shape mismatch is an error,
//     never a silent reallocation.
//   - Elementwise kernels (AddInto, MulInto, ApplyInto, AddRowVectorInto,
//     SoftmaxInto) allow dst to alias an operand. Matmul and transpose
//     kernels require dst to be distinct from both operands.
//   - The matmul family parallelizes across row blocks when the
//     multiply-accumulate count reaches parallelMinWork and more than one
//     CPU is available; below that everything runs on the calling goroutine,
//     so mobile-scale shapes never pay goroutine overhead.

// parallelMinWork is the multiply-accumulate count (rows * inner * cols)
// above which the matmul kernels fan out across row blocks. 2^20 keeps the
// serving substrate's mobile-scale shapes (64x128 @ 128x64 = 2^19 MACs)
// sequential while letting 256x256 and larger matmuls use every core.
const parallelMinWork = 1 << 20

// matmulWorkers reports how many goroutines a kernel over `rows` rows with
// `work` total MACs should use (1 = run inline).
func matmulWorkers(rows, work int) int {
	if work < parallelMinWork {
		return 1
	}
	p := runtime.GOMAXPROCS(0)
	if p > rows {
		p = rows
	}
	if p < 1 {
		p = 1
	}
	return p
}

// parallelRows splits [0, rows) into contiguous blocks, one per worker, and
// runs fn on each block concurrently. workers must be >= 2.
func parallelRows(rows, workers int, fn func(i0, i1 int)) {
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := i0 + chunk
		if i1 > rows {
			i1 = rows
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

func checkDstShape(op string, dst *Matrix, rows, cols int) error {
	if dst.rows != rows || dst.cols != cols {
		return fmt.Errorf("%w: %s dst %dx%d, want %dx%d", ErrShape, op, dst.rows, dst.cols, rows, cols)
	}
	return nil
}

// MatMulInto computes dst = a @ b with no allocation. dst must be
// a.Rows() x b.Cols() and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) error {
	return matMulInto(dst, a, b, false)
}

// MatMulAccInto computes dst += a @ b with no allocation — the accumulate
// variant fused kernels (GRU gates, multi-term gradients) build on.
func MatMulAccInto(dst, a, b *Matrix) error {
	return matMulInto(dst, a, b, true)
}

func matMulInto(dst, a, b *Matrix, acc bool) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: MatMul %dx%d @ %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDstShape("MatMul", dst, a.rows, b.cols); err != nil {
		return err
	}
	if w := matmulWorkers(a.rows, a.rows*a.cols*b.cols); w > 1 {
		parallelRows(a.rows, w, func(i0, i1 int) { matMulRange(dst, a, b, i0, i1, acc) })
	} else {
		matMulRange(dst, a, b, 0, a.rows, acc)
	}
	return nil
}

// matMulRange runs the dst rows [i0, i1) of dst = a @ b (+= when acc). The
// inner kernel is register-tiled 2x4 (two dst rows by four k steps): each
// loaded panel of four b rows feeds two output rows, halving b traffic, and
// each pass over a dst row folds in four b rows, quartering dst-row traffic
// versus the naive ikj loop — while every stream stays contiguous.
func matMulRange(dst, a, b *Matrix, i0, i1 int, acc bool) {
	n, inner := b.cols, a.cols
	bd := b.data
	i := i0
	for ; i+2 <= i1; i += 2 {
		arow0 := a.data[i*inner : (i+1)*inner]
		arow1 := a.data[(i+1)*inner : (i+2)*inner]
		orow0 := dst.data[i*n : (i+1)*n]
		orow1 := dst.data[(i+1)*n : (i+2)*n]
		if !acc {
			for j := range orow0 {
				orow0[j] = 0
			}
			for j := range orow1 {
				orow1[j] = 0
			}
		}
		k := 0
		for ; k+4 <= inner; k += 4 {
			a00, a01, a02, a03 := arow0[k], arow0[k+1], arow0[k+2], arow0[k+3]
			a10, a11, a12, a13 := arow1[k], arow1[k+1], arow1[k+2], arow1[k+3]
			b0 := bd[k*n : k*n+n]
			b1 := bd[(k+1)*n : (k+1)*n+n]
			b2 := bd[(k+2)*n : (k+2)*n+n]
			b3 := bd[(k+3)*n : (k+3)*n+n]
			for j, v := range b0 {
				v1, v2, v3 := b1[j], b2[j], b3[j]
				orow0[j] += a00*v + a01*v1 + a02*v2 + a03*v3
				orow1[j] += a10*v + a11*v1 + a12*v2 + a13*v3
			}
		}
		for ; k < inner; k++ {
			av0, av1 := arow0[k], arow1[k]
			for j, v := range bd[k*n : k*n+n] {
				orow0[j] += av0 * v
				orow1[j] += av1 * v
			}
		}
	}
	for ; i < i1; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		orow := dst.data[i*n : (i+1)*n]
		if !acc {
			for j := range orow {
				orow[j] = 0
			}
		}
		k := 0
		for ; k+4 <= inner; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := bd[k*n : k*n+n]
			b1 := bd[(k+1)*n : (k+1)*n+n]
			b2 := bd[(k+2)*n : (k+2)*n+n]
			b3 := bd[(k+3)*n : (k+3)*n+n]
			for j, v := range b0 {
				orow[j] += a0*v + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < inner; k++ {
			av := arow[k]
			for j, v := range bd[k*n : k*n+n] {
				orow[j] += av * v
			}
		}
	}
}

// MatMulTInto computes dst = a @ b^T without materializing the transpose.
// dst must be a.Rows() x b.Rows() and must not alias a or b.
func MatMulTInto(dst, a, b *Matrix) error {
	return matMulTInto(dst, a, b, false)
}

// MatMulTAccInto computes dst += a @ b^T with no allocation.
func MatMulTAccInto(dst, a, b *Matrix) error {
	return matMulTInto(dst, a, b, true)
}

func matMulTInto(dst, a, b *Matrix, acc bool) error {
	if a.cols != b.cols {
		return fmt.Errorf("%w: MatMulT %dx%d @ (%dx%d)^T", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDstShape("MatMulT", dst, a.rows, b.rows); err != nil {
		return err
	}
	if w := matmulWorkers(a.rows, a.rows*a.cols*b.rows); w > 1 {
		parallelRows(a.rows, w, func(i0, i1 int) { matMulTRange(dst, a, b, i0, i1, acc) })
	} else {
		matMulTRange(dst, a, b, 0, a.rows, acc)
	}
	return nil
}

// matMulTRange runs dst rows [i0, i1) of dst = a @ b^T as dot products with
// four independent accumulators, so the FP adds pipeline instead of
// serializing on one dependency chain.
func matMulTRange(dst, a, b *Matrix, i0, i1 int, acc bool) {
	inner := a.cols
	for i := i0; i < i1; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		orow := dst.data[i*b.rows : (i+1)*b.rows]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*inner : (j+1)*inner]
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+4 <= inner; k += 4 {
				s0 += arow[k] * brow[k]
				s1 += arow[k+1] * brow[k+1]
				s2 += arow[k+2] * brow[k+2]
				s3 += arow[k+3] * brow[k+3]
			}
			for ; k < inner; k++ {
				s0 += arow[k] * brow[k]
			}
			if acc {
				orow[j] += s0 + s1 + s2 + s3
			} else {
				orow[j] = s0 + s1 + s2 + s3
			}
		}
	}
}

// TMatMulInto computes dst = a^T @ b without materializing the transpose.
// dst must be a.Cols() x b.Cols() and must not alias a or b.
func TMatMulInto(dst, a, b *Matrix) error {
	return tMatMulInto(dst, a, b, false)
}

// TMatMulAccInto computes dst += a^T @ b with no allocation.
func TMatMulAccInto(dst, a, b *Matrix) error {
	return tMatMulInto(dst, a, b, true)
}

func tMatMulInto(dst, a, b *Matrix, acc bool) error {
	if a.rows != b.rows {
		return fmt.Errorf("%w: TMatMul (%dx%d)^T @ %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDstShape("TMatMul", dst, a.cols, b.cols); err != nil {
		return err
	}
	if w := matmulWorkers(a.cols, a.rows*a.cols*b.cols); w > 1 {
		parallelRows(a.cols, w, func(i0, i1 int) { tMatMulRange(dst, a, b, i0, i1, acc) })
	} else {
		tMatMulRange(dst, a, b, 0, a.cols, acc)
	}
	return nil
}

// tMatMulRange computes dst rows [c0, c1) of dst = a^T @ b (dst row i is
// column i of a dotted against b). Keeping k outermost streams both a and b
// row-major; restricting i to the block keeps each worker's writes disjoint.
func tMatMulRange(dst, a, b *Matrix, c0, c1 int, acc bool) {
	n := b.cols
	if !acc {
		for i := c0; i < c1; i++ {
			orow := dst.data[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
		}
	}
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*n : (k+1)*n]
		for i := c0; i < c1; i++ {
			av := arow[i]
			orow := dst.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Matrix) error {
	if err := sameShape("AddInto", a, b); err != nil {
		return err
	}
	if err := checkDstShape("AddInto", dst, a.rows, a.cols); err != nil {
		return err
	}
	ad, bd2 := a.data, b.data
	for i := range dst.data {
		dst.data[i] = ad[i] + bd2[i]
	}
	return nil
}

// SubInto computes dst = a - b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Matrix) error {
	if err := sameShape("SubInto", a, b); err != nil {
		return err
	}
	if err := checkDstShape("SubInto", dst, a.rows, a.cols); err != nil {
		return err
	}
	ad, bd2 := a.data, b.data
	for i := range dst.data {
		dst.data[i] = ad[i] - bd2[i]
	}
	return nil
}

// MulInto computes the elementwise product dst = a ⊙ b. dst may alias a or b.
func MulInto(dst, a, b *Matrix) error {
	if err := sameShape("MulInto", a, b); err != nil {
		return err
	}
	if err := checkDstShape("MulInto", dst, a.rows, a.cols); err != nil {
		return err
	}
	ad, bd2 := a.data, b.data
	for i := range dst.data {
		dst.data[i] = ad[i] * bd2[i]
	}
	return nil
}

// ApplyInto computes dst = f(a) elementwise. dst may alias a.
func ApplyInto(dst, a *Matrix, f func(float64) float64) error {
	if err := checkDstShape("ApplyInto", dst, a.rows, a.cols); err != nil {
		return err
	}
	for i, v := range a.data {
		dst.data[i] = f(v)
	}
	return nil
}

// AddRowVectorInto computes dst = a + v broadcast across rows (v is
// 1 x cols). dst may alias a.
func AddRowVectorInto(dst, a, v *Matrix) error {
	if v.rows != 1 || v.cols != a.cols {
		return fmt.Errorf("%w: AddRowVector %dx%d + %dx%d", ErrShape, a.rows, a.cols, v.rows, v.cols)
	}
	if err := checkDstShape("AddRowVector", dst, a.rows, a.cols); err != nil {
		return err
	}
	vd := v.data
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j, bv := range vd {
			drow[j] = arow[j] + bv
		}
	}
	return nil
}

// SumRowsInto writes the column-wise sum of a into dst (1 x cols).
func SumRowsInto(dst, a *Matrix) error {
	if err := checkDstShape("SumRows", dst, 1, a.cols); err != nil {
		return err
	}
	od := dst.data
	for j := range od {
		od[j] = 0
	}
	for i := 0; i < a.rows; i++ {
		for j, v := range a.Row(i) {
			od[j] += v
		}
	}
	return nil
}

// SoftmaxInto computes the row-wise stable softmax of a into dst. dst may
// alias a.
func SoftmaxInto(dst, a *Matrix) error {
	if err := checkDstShape("Softmax", dst, a.rows, a.cols); err != nil {
		return err
	}
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		orow := dst.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			orow[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return nil
}

// TInto writes the transpose of a into dst (a.Cols() x a.Rows()). dst must
// not alias a.
func TInto(dst, a *Matrix) error {
	if err := checkDstShape("T", dst, a.cols, a.rows); err != nil {
		return err
	}
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst.data[j*dst.cols+i] = v
		}
	}
	return nil
}

// SelectRowsInto gathers the given row indices of m into dst
// (len(idx) x m.Cols()).
func (m *Matrix) SelectRowsInto(dst *Matrix, idx []int) error {
	if err := checkDstShape("SelectRows", dst, len(idx), m.cols); err != nil {
		return err
	}
	for i, r := range idx {
		if r < 0 || r >= m.rows {
			return fmt.Errorf("%w: SelectRows index %d of %d rows", ErrShape, r, m.rows)
		}
		copy(dst.Row(i), m.Row(r))
	}
	return nil
}
