package tensor

import (
	"math"
	"math/rand"
)

// RandUniform returns a rows x cols matrix with entries drawn uniformly
// from [lo, hi) using rng.
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	span := hi - lo
	for i := range m.data {
		m.data[i] = lo + span*rng.Float64()
	}
	return m
}

// RandNormal returns a rows x cols matrix with N(mean, std^2) entries.
func RandNormal(rng *rand.Rand, rows, cols int, mean, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = mean + std*rng.NormFloat64()
	}
	return m
}

// GlorotUniform returns a matrix initialized with the Glorot/Xavier uniform
// scheme for a layer with the given fan-in and fan-out, the initialization
// Keras (the paper's substrate) uses by default for dense and GRU kernels.
func GlorotUniform(rng *rand.Rand, fanIn, fanOut int) *Matrix {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, fanIn, fanOut, -limit, limit)
}

// HeNormal returns a matrix initialized with the He normal scheme,
// appropriate for ReLU networks.
func HeNormal(rng *rand.Rand, fanIn, fanOut int) *Matrix {
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandNormal(rng, fanIn, fanOut, 0, std)
}
