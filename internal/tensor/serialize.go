package tensor

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// matrixWire is the gob wire format for Matrix; the struct fields of Matrix
// itself are unexported by design, so we marshal through this mirror.
type matrixWire struct {
	Rows, Cols int
	Data       []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(matrixWire{Rows: m.rows, Cols: m.cols, Data: m.data}); err != nil {
		return nil, fmt.Errorf("encode matrix: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(b []byte) error {
	var w matrixWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("decode matrix: %w", err)
	}
	if len(w.Data) != w.Rows*w.Cols {
		return fmt.Errorf("%w: decoded %d values for %dx%d", ErrShape, len(w.Data), w.Rows, w.Cols)
	}
	m.rows, m.cols, m.data = w.Rows, w.Cols, w.Data
	return nil
}

var (
	_ gob.GobEncoder = (*Matrix)(nil)
	_ gob.GobDecoder = (*Matrix)(nil)
)
