// Package tensor implements the dense linear-algebra substrate used by every
// other package in this repository: row-major float64 matrices with the
// elementwise, reduction and BLAS-like operations a small neural-network
// stack needs, plus a one-sided Jacobi SVD used for low-rank factorization.
//
// Hot paths use the destination-passing kernels (MatMulInto and friends in
// ops_into.go), which write into caller-supplied matrices with zero
// allocation, together with Pool / Get / Put for recycled scratch. The
// matmul family parallelizes across row blocks above a fixed work threshold
// and stays sequential (register-tiled) below it. See the module-level
// doc.go "Performance conventions" for the ownership rules.
//
// The package is deliberately self-contained (stdlib only) because the paper
// assumes a deep-learning substrate (Keras/TensorFlow) that is not available
// in a pure-Go, offline environment; see DESIGN.md for the substitution note.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Matrices are mutable; operations
// document whether they allocate a new result or write in place.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized matrix with the given dimensions.
// It panics only on negative dimensions, which indicates programmer error.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice builds a rows x cols matrix backed by a copy of data
// (len(data) must equal rows*cols).
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: FromSlice got %d values for %dx%d", ErrShape, len(data), rows, cols)
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m, nil
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: FromRows row %d has %d values, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// RowVector returns a 1 x len(v) matrix copying v.
func RowVector(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Size returns the total number of elements.
func (m *Matrix) Size() int { return m.rows * m.cols }

// Data returns the underlying row-major storage. The slice aliases the
// matrix; mutating it mutates the matrix. It is exposed for hot paths
// (optimizers, serialization) that need direct access.
func (m *Matrix) Data() []float64 { return m.data }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// RowMatrix returns row i as a 1 x cols matrix view sharing storage with m:
// mutating the view mutates m. It lets per-row transforms (clipping, noise)
// run without the slice-out-and-copy-back round trip. Views must never be
// handed to a Pool.
func (m *Matrix) RowMatrix(i int) *Matrix {
	return &Matrix{rows: 1, cols: m.cols, data: m.Row(i)}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: CopyFrom %dx%d <- %dx%d", ErrShape, m.rows, m.cols, src.rows, src.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Reshape returns a new matrix header with the given dimensions sharing the
// same backing storage. rows*cols must equal the current size.
func (m *Matrix) Reshape(rows, cols int) (*Matrix, error) {
	if rows*cols != m.rows*m.cols {
		return nil, fmt.Errorf("%w: Reshape %dx%d -> %dx%d", ErrShape, m.rows, m.cols, rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: m.data}, nil
}

// T returns the transpose as a newly allocated matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Equal reports whether m and other have identical shape and elements
// within tolerance tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging (rows capped at 8).
func (m *Matrix) String() string {
	const maxRows = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxRows; i++ {
		fmt.Fprintf(&b, "%v", m.Row(i))
		if i != m.rows-1 {
			b.WriteString("; ")
		}
	}
	if m.rows > maxRows {
		b.WriteString("...")
	}
	b.WriteString("]")
	return b.String()
}
