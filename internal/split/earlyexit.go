package split

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// EarlyExit is the distributed-DNN pattern of Teerapittayanon et al. [25]
// (Section III): a small exit classifier runs on the device over the local
// representation; when its softmax confidence clears a threshold the answer
// is returned locally ("fast and localized inference"), otherwise the
// representation is offloaded to the deep cloud network.
type EarlyExit struct {
	// Pipeline provides the local feature extractor and the cloud network.
	Pipeline *Pipeline
	// Exit is the on-device classifier over the local representation.
	Exit *nn.Sequential
	// Threshold is the minimum local softmax confidence to answer locally.
	Threshold float64
}

// NewEarlyExit wraps a split pipeline with a local exit classifier.
func NewEarlyExit(p *Pipeline, exit *nn.Sequential, threshold float64) (*EarlyExit, error) {
	if p == nil || exit == nil {
		return nil, fmt.Errorf("%w: pipeline and exit classifier required", ErrConfig)
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("%w: threshold %v", ErrConfig, threshold)
	}
	return &EarlyExit{Pipeline: p, Exit: exit, Threshold: threshold}, nil
}

// TrainExit fits the exit classifier on clean local representations.
func (e *EarlyExit) TrainExit(x *tensor.Matrix, labels []int, classes int, cfg TrainConfig) error {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.Optimizer == nil || cfg.Rng == nil {
		return fmt.Errorf("%w: incomplete train config", ErrConfig)
	}
	rep, err := e.Pipeline.TransformClean(x)
	if err != nil {
		return err
	}
	y, err := nn.OneHot(labels, classes)
	if err != nil {
		return err
	}
	_, err = nn.Train(e.Exit, rep, y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: cfg.Optimizer,
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Rng:       cfg.Rng,
	})
	return err
}

// ExitStats summarizes one cascade evaluation.
type ExitStats struct {
	Total      int
	LocalExits int
	Offloaded  int
	Accuracy   float64
	// LocalFraction is LocalExits / Total.
	LocalFraction float64
}

// ExitLocally evaluates the exit classifier over a clean local
// representation. It returns per-row predictions (meaningful only for rows
// that exit) and the indices of rows whose confidence misses the threshold
// and must be offloaded to the cloud. This is the device half of the
// cascade; serving executors use it to short-circuit whole batches without
// touching the network when every row exits.
func (e *EarlyExit) ExitLocally(rep *tensor.Matrix) (preds []int, offload []int, err error) {
	// Softmax into pooled scratch: the probabilities are consumed before the
	// buffer is recycled, so the serving hot path sheds one garbage matrix
	// per batch.
	probs := tensor.Get(rep.Rows(), e.ExitClasses())
	defer tensor.Put(probs)
	return e.ExitLocallyInto(probs, rep)
}

// ExitLocallyInto is ExitLocally with the exit classifier's softmax written
// into a caller-supplied probs matrix (rep.Rows() x ExitClasses()). Serving
// backends use it to reuse the confidence distribution — e.g. for top-K
// probability reporting — without a second forward pass. probs may be pooled
// scratch; it is fully overwritten.
func (e *EarlyExit) ExitLocallyInto(probs, rep *tensor.Matrix) (preds []int, offload []int, err error) {
	out, err := e.Exit.Forward(rep, false)
	if err != nil {
		return nil, nil, err
	}
	if err := tensor.SoftmaxInto(probs, out); err != nil {
		return nil, nil, err
	}
	preds = make([]int, rep.Rows())
	for i := 0; i < rep.Rows(); i++ {
		c := probs.ArgMaxRow(i)
		preds[i] = c
		if probs.At(i, c) < e.Threshold {
			offload = append(offload, i)
		}
	}
	return preds, offload, nil
}

// ExitClasses returns the output width of the exit classifier (the Out of
// its last Dense layer), which is the column count ExitLocallyInto expects
// of its probs matrix.
func (e *EarlyExit) ExitClasses() int {
	classes := 0
	for _, l := range e.Exit.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			classes = d.Out()
		}
	}
	return classes
}

// Predict classifies one batch through the cascade, reporting per-sample
// predictions and where each was answered. Offloaded samples go through the
// pipeline's privacy perturbation exactly like plain split inference.
func (e *EarlyExit) Predict(rng *rand.Rand, x *tensor.Matrix) ([]int, []bool, error) {
	rep, err := e.Pipeline.TransformClean(x)
	if err != nil {
		return nil, nil, err
	}
	preds, offloadIdx, err := e.ExitLocally(rep)
	if err != nil {
		return nil, nil, err
	}
	local := make([]bool, x.Rows())
	for i := range local {
		local[i] = true
	}
	if len(offloadIdx) > 0 {
		sub, err := rep.SelectRows(offloadIdx)
		if err != nil {
			return nil, nil, err
		}
		cloudPreds, err := e.Pipeline.CloudPredictRep(rng, sub)
		if err != nil {
			return nil, nil, err
		}
		for k, i := range offloadIdx {
			preds[i] = cloudPreds[k]
			local[i] = false
		}
	}
	return preds, local, nil
}

// Evaluate runs the cascade over labeled data and reports accuracy plus the
// local-exit fraction (the communication saving vs always offloading).
func (e *EarlyExit) Evaluate(rng *rand.Rand, x *tensor.Matrix, labels []int) (ExitStats, error) {
	preds, local, err := e.Predict(rng, x)
	if err != nil {
		return ExitStats{}, err
	}
	stats := ExitStats{Total: len(preds)}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
		if local[i] {
			stats.LocalExits++
		}
	}
	stats.Offloaded = stats.Total - stats.LocalExits
	stats.Accuracy = float64(correct) / float64(stats.Total)
	stats.LocalFraction = float64(stats.LocalExits) / float64(stats.Total)
	return stats, nil
}
