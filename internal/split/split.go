// Package split implements the authors' private cloud-based inference
// framework of Section III-A (ARDEN, Wang et al. [30], Fig. 3): a DNN is
// divided into a frozen, lightweight local part that runs on the mobile
// device and a deep cloud part. The local activation is perturbed with
// nullification and calibrated noise before upload, giving a differential-
// privacy guarantee, and the cloud network is made robust to that
// perturbation by "noisy training" — injecting the same perturbations into
// its training data.
package split

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/privacy"
	"mobiledl/internal/tensor"
)

// ErrConfig reports an invalid split-inference configuration.
var ErrConfig = errors.New("split: invalid configuration")

// Pipeline is a split DNN: frozen local layers + trainable cloud layers.
type Pipeline struct {
	// Local is the frozen on-device feature extractor.
	Local *nn.Sequential
	// Cloud is the server-side network, fine-tuned in the cloud.
	Cloud *nn.Sequential
	// NullRate is the input-nullification probability applied to the
	// transformed representation.
	NullRate float64
	// NoiseSigma is the std of Gaussian noise added to the representation.
	NoiseSigma float64
	// Bound clips the representation's L2 norm before noising so the noise
	// is calibrated to a fixed sensitivity.
	Bound float64
}

// Config configures a Pipeline.
type Config struct {
	Local      *nn.Sequential
	Cloud      *nn.Sequential
	NullRate   float64
	NoiseSigma float64
	Bound      float64
}

// New validates and builds a split pipeline.
func New(cfg Config) (*Pipeline, error) {
	switch {
	case cfg.Local == nil || cfg.Cloud == nil:
		return nil, fmt.Errorf("%w: local and cloud networks required", ErrConfig)
	case cfg.NullRate < 0 || cfg.NullRate >= 1:
		return nil, fmt.Errorf("%w: null rate %v", ErrConfig, cfg.NullRate)
	case cfg.NoiseSigma < 0:
		return nil, fmt.Errorf("%w: noise sigma %v", ErrConfig, cfg.NoiseSigma)
	case cfg.Bound <= 0:
		return nil, fmt.Errorf("%w: bound %v", ErrConfig, cfg.Bound)
	}
	return &Pipeline{
		Local:      cfg.Local,
		Cloud:      cfg.Cloud,
		NullRate:   cfg.NullRate,
		NoiseSigma: cfg.NoiseSigma,
		Bound:      cfg.Bound,
	}, nil
}

// Transform runs the frozen local network and applies the privacy
// perturbation (clip -> nullification -> Gaussian noise) row by row.
// This is exactly what leaves the mobile device.
func (p *Pipeline) Transform(rng *rand.Rand, x *tensor.Matrix) (*tensor.Matrix, error) {
	h, err := p.Local.Forward(x, false)
	if err != nil {
		return nil, fmt.Errorf("local forward: %w", err)
	}
	return p.Perturb(rng, h)
}

// Perturb applies the privacy perturbation (clip -> nullification ->
// Gaussian noise) to an already-computed local representation, returning a
// new matrix. Staged executors (e.g. a serving runtime that computes the
// clean representation once for an early-exit check) use this to perturb
// only the rows that are actually offloaded.
func (p *Pipeline) Perturb(rng *rand.Rand, rep *tensor.Matrix) (*tensor.Matrix, error) {
	out := rep.Clone()
	for i := 0; i < out.Rows(); i++ {
		// Row views mutate out in place — no per-row slice-and-copy-back.
		row := out.RowMatrix(i)
		if _, err := privacy.ClipL2(row, p.Bound); err != nil {
			return nil, err
		}
		if p.NullRate > 0 {
			if _, err := privacy.Nullification(rng, row, p.NullRate); err != nil {
				return nil, err
			}
		}
		if p.NoiseSigma > 0 {
			privacy.AddGaussian(rng, row, p.NoiseSigma)
		}
	}
	return out, nil
}

// TransformClean runs the local network without perturbation (used for the
// non-private baseline and for noisy-training data synthesis). The result
// never aliases x: pass-through layer stacks (e.g. dropout-only locals,
// whose inference Forward returns its input) are cloned, so callers that
// recycle x — the serving batcher pools its batch matrices — stay safe.
func (p *Pipeline) TransformClean(x *tensor.Matrix) (*tensor.Matrix, error) {
	h, err := p.Local.Forward(x, false)
	if err != nil {
		return nil, err
	}
	if h == x {
		return h.Clone(), nil
	}
	return h, nil
}

// Epsilon returns the per-query (ε, δ) differential-privacy guarantee of
// the Gaussian perturbation given the clipped L2 sensitivity (2*Bound for
// replace-one adjacency) at the configured sigma.
func (p *Pipeline) Epsilon(delta float64) (float64, error) {
	if p.NoiseSigma == 0 {
		return 0, fmt.Errorf("%w: no noise, no DP guarantee", ErrConfig)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("%w: delta %v", ErrConfig, delta)
	}
	// sigma = sqrt(2 ln(1.25/δ)) * S / ε  =>  ε = sqrt(2 ln(1.25/δ)) * S / sigma
	sensitivity := 2 * p.Bound
	return sqrtTwoLog(delta) * sensitivity / p.NoiseSigma, nil
}

func sqrtTwoLog(delta float64) float64 {
	return math.Sqrt(2 * math.Log(1.25/delta))
}

// Predict classifies x through the full split pipeline with perturbation.
func (p *Pipeline) Predict(rng *rand.Rand, x *tensor.Matrix) ([]int, error) {
	rep, err := p.Transform(rng, x)
	if err != nil {
		return nil, err
	}
	return p.Cloud.Predict(rep)
}

// CloudPredictRep perturbs an already-computed clean local representation
// and classifies it with the cloud network — the upload+server half of the
// split placement when the device half has already run.
func (p *Pipeline) CloudPredictRep(rng *rand.Rand, rep *tensor.Matrix) ([]int, error) {
	pert, err := p.Perturb(rng, rep)
	if err != nil {
		return nil, err
	}
	return p.Cloud.Predict(pert)
}

// RepDim returns the width of the local representation (the last Dense
// output of the local network, or inputDim if it has none) — the per-sample
// upload payload width under the split placement.
func (p *Pipeline) RepDim(inputDim int) int {
	outDim := inputDim
	for _, l := range p.Local.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			outDim = d.Out()
		}
	}
	return outDim
}

// PayloadBytes returns the per-sample upload size of the transformed
// representation vs the raw input, demonstrating the paper's claim that the
// abstract representation is smaller than the raw data.
func (p *Pipeline) PayloadBytes(inputDim int) (raw, transformed int) {
	return inputDim * 8, p.RepDim(inputDim) * 8
}

// TrainConfig configures cloud-side training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer nn.Optimizer
	Rng       *rand.Rand
	// NoisyFraction is the fraction of additional perturbed copies injected
	// per clean sample (the paper's noisy training; 0 = clean training).
	NoisyFraction float64
}

// TrainCloud fine-tunes the cloud network on representations of (x, labels).
// With NoisyFraction > 0 it performs noisy training: the training set is the
// clean representations plus perturbed copies, so the cloud network learns
// to be robust to the inference-time perturbation.
func (p *Pipeline) TrainCloud(x *tensor.Matrix, labels []int, classes int, cfg TrainConfig) ([]float64, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.Optimizer == nil || cfg.Rng == nil {
		return nil, fmt.Errorf("%w: incomplete train config", ErrConfig)
	}
	if cfg.NoisyFraction < 0 || cfg.NoisyFraction > 4 {
		return nil, fmt.Errorf("%w: noisy fraction %v", ErrConfig, cfg.NoisyFraction)
	}
	clean, err := p.TransformClean(x)
	if err != nil {
		return nil, err
	}
	reps := clean
	allLabels := labels
	if cfg.NoisyFraction > 0 {
		copies := int(cfg.NoisyFraction + 0.999)
		parts := []*tensor.Matrix{clean}
		lab := append([]int(nil), labels...)
		for c := 0; c < copies; c++ {
			noisy, err := p.Transform(cfg.Rng, x)
			if err != nil {
				return nil, err
			}
			parts = append(parts, noisy)
			lab = append(lab, labels...)
		}
		reps, err = tensor.VStack(parts...)
		if err != nil {
			return nil, err
		}
		allLabels = lab
	}
	y, err := nn.OneHot(allLabels, classes)
	if err != nil {
		return nil, err
	}
	return nn.Train(p.Cloud, reps, y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: cfg.Optimizer,
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Rng:       cfg.Rng,
	})
}

// Accuracy scores the full perturbed pipeline on labeled data.
func (p *Pipeline) Accuracy(rng *rand.Rand, x *tensor.Matrix, labels []int) (float64, error) {
	preds, err := p.Predict(rng, x)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, pr := range preds {
		if pr == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}
