package split

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
)

// buildPipeline creates a split pipeline over a synthetic task: a frozen
// random-projection local net and a trainable cloud classifier.
func buildPipeline(t *testing.T, nullRate, sigma float64) (*Pipeline, func() *nn.Sequential) {
	t.Helper()
	localRng := rand.New(rand.NewSource(21))
	local := nn.NewSequential(nn.NewDense(localRng, 10, 6), nn.NewTanh())
	newCloud := func() *nn.Sequential {
		r := rand.New(rand.NewSource(22))
		return nn.NewSequential(nn.NewDense(r, 6, 16), nn.NewReLU(), nn.NewDense(r, 16, 3))
	}
	p, err := New(Config{
		Local:      local,
		Cloud:      newCloud(),
		NullRate:   nullRate,
		NoiseSigma: sigma,
		Bound:      2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, newCloud
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	local := nn.NewSequential(nn.NewDense(rng, 4, 2))
	cloud := nn.NewSequential(nn.NewDense(rng, 2, 2))
	bad := []Config{
		{Local: nil, Cloud: cloud, Bound: 1},
		{Local: local, Cloud: nil, Bound: 1},
		{Local: local, Cloud: cloud, NullRate: 1, Bound: 1},
		{Local: local, Cloud: cloud, NoiseSigma: -1, Bound: 1},
		{Local: local, Cloud: cloud, Bound: 0},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %+v: want ErrConfig, got %v", cfg, err)
		}
	}
}

func TestTransformAppliesPerturbation(t *testing.T) {
	p, _ := buildPipeline(t, 0.3, 0.5)
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 20, Classes: 3, Dim: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	clean, err := p.TransformClean(fb.X)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := p.Transform(rng, fb.X)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Equal(noisy, 1e-9) {
		t.Fatal("perturbed transform equals clean transform")
	}
	if noisy.Rows() != 20 || noisy.Cols() != 6 {
		t.Fatalf("transform shape %dx%d", noisy.Rows(), noisy.Cols())
	}
}

func TestPayloadSmallerThanInput(t *testing.T) {
	p, _ := buildPipeline(t, 0, 0)
	raw, transformed := p.PayloadBytes(10)
	if transformed >= raw {
		t.Fatalf("transformed payload %d should be smaller than raw %d", transformed, raw)
	}
}

func TestEpsilonCalibration(t *testing.T) {
	p, _ := buildPipeline(t, 0, 1.0)
	eps1, err := p.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	p.NoiseSigma = 2.0
	eps2, err := p.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if eps2 >= eps1 {
		t.Fatal("more noise must mean smaller epsilon")
	}
	p.NoiseSigma = 0
	if _, err := p.Epsilon(1e-5); !errors.Is(err, ErrConfig) {
		t.Fatal("no noise should refuse to report a DP guarantee")
	}
	p.NoiseSigma = 1
	if _, err := p.Epsilon(0); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for delta=0")
	}
}

func TestNoisyTrainingBeatsCleanUnderPerturbation(t *testing.T) {
	// The core ARDEN claim (E8): with perturbed inference, a cloud net
	// trained with noisy samples outperforms one trained on clean
	// representations only.
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 600, Classes: 3, Dim: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}

	run := func(noisyFraction float64) float64 {
		p, _ := buildPipeline(t, 0.25, 0.6)
		rng := rand.New(rand.NewSource(5))
		if _, err := p.TrainCloud(trX, trY, 3, TrainConfig{
			Epochs:        25,
			BatchSize:     32,
			Optimizer:     opt.NewAdam(0.01),
			Rng:           rng,
			NoisyFraction: noisyFraction,
		}); err != nil {
			t.Fatal(err)
		}
		// Average over several perturbed evaluations to reduce variance.
		var total float64
		const reps = 5
		for i := 0; i < reps; i++ {
			acc, err := p.Accuracy(rand.New(rand.NewSource(int64(100+i))), teX, teY)
			if err != nil {
				t.Fatal(err)
			}
			total += acc
		}
		return total / reps
	}

	cleanAcc := run(0)
	noisyAcc := run(2)
	if noisyAcc <= cleanAcc {
		t.Fatalf("noisy training (%v) did not beat clean training (%v) under perturbation",
			noisyAcc, cleanAcc)
	}
	if noisyAcc < 0.6 {
		t.Fatalf("noisy-trained pipeline accuracy %v too low", noisyAcc)
	}
}

func TestTrainCloudValidation(t *testing.T) {
	p, _ := buildPipeline(t, 0, 0)
	fb, _ := data.GenerateFedBench(data.FedBenchConfig{Samples: 20, Classes: 3, Dim: 10, Seed: 1})
	if _, err := p.TrainCloud(fb.X, fb.Labels, 3, TrainConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for zero config")
	}
	if _, err := p.TrainCloud(fb.X, fb.Labels, 3, TrainConfig{
		Epochs: 1, BatchSize: 8, Optimizer: opt.NewAdam(0.01),
		Rng: rand.New(rand.NewSource(1)), NoisyFraction: 9,
	}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for huge noisy fraction")
	}
}

func TestFrozenLocalUnchangedByTraining(t *testing.T) {
	p, _ := buildPipeline(t, 0.2, 0.3)
	fb, _ := data.GenerateFedBench(data.FedBenchConfig{Samples: 100, Classes: 3, Dim: 10, Seed: 3})
	before := p.Local.Params()[0].Value.Clone()
	if _, err := p.TrainCloud(fb.X, fb.Labels, 3, TrainConfig{
		Epochs: 3, BatchSize: 16, Optimizer: opt.NewAdam(0.01),
		Rng: rand.New(rand.NewSource(4)), NoisyFraction: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if !p.Local.Params()[0].Value.Equal(before, 0) {
		t.Fatal("cloud training modified the frozen local network")
	}
}
