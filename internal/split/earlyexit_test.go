package split

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/tensor"
)

// buildCascade trains both the cloud network (noisy) and a small local exit
// classifier over the shared frozen local representation.
func buildCascade(t *testing.T, threshold float64) (*EarlyExit, *dataSet) {
	t.Helper()
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 600, Classes: 3, Dim: 10, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := buildPipeline(t, 0.15, 0.3)
	if _, err := p.TrainCloud(trX, trY, 3, TrainConfig{
		Epochs: 25, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Rng: rand.New(rand.NewSource(62)), NoisyFraction: 1,
	}); err != nil {
		t.Fatal(err)
	}
	exitRng := rand.New(rand.NewSource(63))
	exit := nn.NewSequential(nn.NewDense(exitRng, 6, 3))
	cascade, err := NewEarlyExit(p, exit, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if err := cascade.TrainExit(trX, trY, 3, TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Rng: rand.New(rand.NewSource(64)),
	}); err != nil {
		t.Fatal(err)
	}
	return cascade, &dataSet{teX: teX, teY: teY}
}

type dataSet struct {
	teX *tensor.Matrix
	teY []int
}

func TestEarlyExitValidation(t *testing.T) {
	p, _ := buildPipeline(t, 0, 0)
	rng := rand.New(rand.NewSource(1))
	exit := nn.NewSequential(nn.NewDense(rng, 6, 3))
	if _, err := NewEarlyExit(nil, exit, 0.5); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for nil pipeline")
	}
	if _, err := NewEarlyExit(p, nil, 0.5); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for nil exit")
	}
	if _, err := NewEarlyExit(p, exit, 1.5); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for threshold > 1")
	}
	cascade, err := NewEarlyExit(p, exit, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cascade.TrainExit(nil, nil, 3, TrainConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for zero train config")
	}
}

func TestEarlyExitThresholdControlsOffload(t *testing.T) {
	low, ds := buildCascade(t, 0.4)
	high, _ := buildCascade(t, 0.99)
	rng := rand.New(rand.NewSource(65))
	lowStats, err := low.Evaluate(rng, ds.teX, ds.teY)
	if err != nil {
		t.Fatal(err)
	}
	highStats, err := high.Evaluate(rand.New(rand.NewSource(65)), ds.teX, ds.teY)
	if err != nil {
		t.Fatal(err)
	}
	if lowStats.LocalFraction <= highStats.LocalFraction {
		t.Fatalf("lower threshold should exit locally more: %v vs %v",
			lowStats.LocalFraction, highStats.LocalFraction)
	}
	if lowStats.LocalExits+lowStats.Offloaded != lowStats.Total {
		t.Fatal("exit accounting inconsistent")
	}
}

func TestEarlyExitAccuracyReasonable(t *testing.T) {
	cascade, ds := buildCascade(t, 0.75)
	stats, err := cascade.Evaluate(rand.New(rand.NewSource(66)), ds.teX, ds.teY)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accuracy < 0.7 {
		t.Fatalf("cascade accuracy %v", stats.Accuracy)
	}
	if stats.LocalFraction == 0 {
		t.Fatal("cascade never exited locally at threshold 0.75")
	}
}

func TestExitLocallyIntoExposesConfidences(t *testing.T) {
	cascade, ds := buildCascade(t, 0.75)
	rep, err := cascade.Pipeline.TransformClean(ds.teX)
	if err != nil {
		t.Fatal(err)
	}
	probs := tensor.New(rep.Rows(), cascade.ExitClasses())
	preds, offload, err := cascade.ExitLocallyInto(probs, rep)
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with the scratch-owning wrapper.
	preds2, offload2, err := cascade.ExitLocally(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(preds2) || len(offload) != len(offload2) {
		t.Fatalf("wrapper disagrees: %d/%d preds, %d/%d offloads",
			len(preds), len(preds2), len(offload), len(offload2))
	}
	offloaded := make(map[int]bool, len(offload))
	for _, i := range offload {
		offloaded[i] = true
	}
	for i, p := range preds {
		if p != preds2[i] {
			t.Fatalf("row %d: preds diverge %d vs %d", i, p, preds2[i])
		}
		if p != probs.ArgMaxRow(i) {
			t.Fatalf("row %d: pred %d is not the probs argmax %d", i, p, probs.ArgMaxRow(i))
		}
		conf := probs.At(i, p)
		if offloaded[i] != (conf < cascade.Threshold) {
			t.Fatalf("row %d: confidence %v vs threshold %v, offloaded=%v",
				i, conf, cascade.Threshold, offloaded[i])
		}
		sum := 0.0
		for _, v := range probs.Row(i) {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d: softmax sums to %v", i, sum)
		}
	}
}
