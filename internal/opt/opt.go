// Package opt implements the gradient-descent optimizers cited by the paper
// ([10] Adam, [11] AdaGrad, [12] RMSProp, plus plain/momentum SGD), operating
// on nn.Param lists, along with learning-rate schedules and global-norm
// gradient clipping.
package opt

import (
	"errors"
	"fmt"
	"math"

	"mobiledl/internal/nn"
)

// ErrBadHyper reports an invalid hyperparameter.
var ErrBadHyper = errors.New("opt: invalid hyperparameter")

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param][]float64
}

var _ nn.Optimizer = (*SGD)(nil)

// NewSGD returns plain SGD with learning rate lr.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewMomentumSGD returns SGD with classical momentum.
func NewMomentumSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements nn.Optimizer.
func (s *SGD) Step(params []*nn.Param) error {
	if s.LR <= 0 {
		return fmt.Errorf("%w: SGD learning rate %v", ErrBadHyper, s.LR)
	}
	if s.Momentum != 0 && s.velocity == nil {
		s.velocity = make(map[*nn.Param][]float64, len(params))
	}
	for _, p := range params {
		v := p.Value.Data()
		g := p.Grad.Data()
		if s.Momentum == 0 {
			for i := range v {
				grad := g[i] + s.WeightDecay*v[i]
				v[i] -= s.LR * grad
			}
			continue
		}
		vel, ok := s.velocity[p]
		if !ok {
			vel = make([]float64, len(v))
			s.velocity[p] = vel
		}
		for i := range v {
			grad := g[i] + s.WeightDecay*v[i]
			vel[i] = s.Momentum*vel[i] - s.LR*grad
			v[i] += vel[i]
		}
	}
	return nil
}

// Adam implements Kingma & Ba's Adam optimizer [10].
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*nn.Param][]float64
	v map[*nn.Param][]float64
}

var _ nn.Optimizer = (*Adam)(nil)

// NewAdam returns Adam with the canonical defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements nn.Optimizer.
func (a *Adam) Step(params []*nn.Param) error {
	if a.LR <= 0 || a.Beta1 < 0 || a.Beta1 >= 1 || a.Beta2 < 0 || a.Beta2 >= 1 {
		return fmt.Errorf("%w: Adam lr=%v β1=%v β2=%v", ErrBadHyper, a.LR, a.Beta1, a.Beta2)
	}
	if a.m == nil {
		a.m = make(map[*nn.Param][]float64, len(params))
		a.v = make(map[*nn.Param][]float64, len(params))
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		val := p.Value.Data()
		g := p.Grad.Data()
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(val))
			a.m[p] = m
			a.v[p] = make([]float64, len(val))
		}
		v := a.v[p]
		for i := range val {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mh := m[i] / bc1
			vh := v[i] / bc2
			val[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
	return nil
}

// AdaGrad implements Duchi et al.'s adaptive subgradient method [11].
type AdaGrad struct {
	LR, Eps float64

	acc map[*nn.Param][]float64
}

var _ nn.Optimizer = (*AdaGrad)(nil)

// NewAdaGrad returns AdaGrad with accumulator epsilon 1e-8.
func NewAdaGrad(lr float64) *AdaGrad { return &AdaGrad{LR: lr, Eps: 1e-8} }

// Step implements nn.Optimizer.
func (a *AdaGrad) Step(params []*nn.Param) error {
	if a.LR <= 0 {
		return fmt.Errorf("%w: AdaGrad learning rate %v", ErrBadHyper, a.LR)
	}
	if a.acc == nil {
		a.acc = make(map[*nn.Param][]float64, len(params))
	}
	for _, p := range params {
		val := p.Value.Data()
		g := p.Grad.Data()
		acc, ok := a.acc[p]
		if !ok {
			acc = make([]float64, len(val))
			a.acc[p] = acc
		}
		for i := range val {
			acc[i] += g[i] * g[i]
			val[i] -= a.LR * g[i] / (math.Sqrt(acc[i]) + a.Eps)
		}
	}
	return nil
}

// RMSProp implements Tieleman & Hinton's RMSProp [12].
type RMSProp struct {
	LR, Decay, Eps float64

	acc map[*nn.Param][]float64
}

var _ nn.Optimizer = (*RMSProp)(nil)

// NewRMSProp returns RMSProp with decay 0.9 and epsilon 1e-8.
func NewRMSProp(lr float64) *RMSProp { return &RMSProp{LR: lr, Decay: 0.9, Eps: 1e-8} }

// Step implements nn.Optimizer.
func (r *RMSProp) Step(params []*nn.Param) error {
	if r.LR <= 0 || r.Decay <= 0 || r.Decay >= 1 {
		return fmt.Errorf("%w: RMSProp lr=%v decay=%v", ErrBadHyper, r.LR, r.Decay)
	}
	if r.acc == nil {
		r.acc = make(map[*nn.Param][]float64, len(params))
	}
	for _, p := range params {
		val := p.Value.Data()
		g := p.Grad.Data()
		acc, ok := r.acc[p]
		if !ok {
			acc = make([]float64, len(val))
			r.acc[p] = acc
		}
		for i := range val {
			acc[i] = r.Decay*acc[i] + (1-r.Decay)*g[i]*g[i]
			val[i] -= r.LR * g[i] / (math.Sqrt(acc[i]) + r.Eps)
		}
	}
	return nil
}

// ClipGlobalNorm rescales all gradients so their joint L2 norm is at most
// maxNorm and returns the pre-clip norm. A non-positive maxNorm is an error.
func ClipGlobalNorm(params []*nn.Param, maxNorm float64) (float64, error) {
	if maxNorm <= 0 {
		return 0, fmt.Errorf("%w: clip norm %v", ErrBadHyper, maxNorm)
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm, nil
}

// Scheduled wraps an optimizer whose LR field it anneals each step.
type Scheduled struct {
	inner    *SGD
	schedule func(step int) float64
	step     int
}

var _ nn.Optimizer = (*Scheduled)(nil)

// NewExponentialDecay wraps sgd so its learning rate decays by factor gamma
// every interval steps.
func NewExponentialDecay(sgd *SGD, gamma float64, interval int) *Scheduled {
	base := sgd.LR
	return &Scheduled{
		inner: sgd,
		schedule: func(step int) float64 {
			return base * math.Pow(gamma, float64(step/interval))
		},
	}
}

// Step implements nn.Optimizer.
func (s *Scheduled) Step(params []*nn.Param) error {
	s.inner.LR = s.schedule(s.step)
	s.step++
	return s.inner.Step(params)
}
