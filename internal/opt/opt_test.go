package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// quadParam builds a single parameter initialized at x0 whose loss is
// 0.5*||x||^2, i.e. grad = x. Every sane optimizer must drive it to 0.
func quadParam(x0 float64) *nn.Param {
	v, _ := tensor.FromSlice(1, 3, []float64{x0, -x0, x0 / 2})
	return nn.NewParam("q", v)
}

func runQuadratic(t *testing.T, o nn.Optimizer, steps int) float64 {
	t.Helper()
	p := quadParam(5)
	for i := 0; i < steps; i++ {
		p.ZeroGrad()
		if err := p.AccumulateGrad(p.Value); err != nil {
			t.Fatal(err)
		}
		if err := o.Step([]*nn.Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	return p.Value.FrobeniusNorm()
}

func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	tests := []struct {
		name  string
		o     nn.Optimizer
		steps int
		tol   float64
	}{
		{"sgd", NewSGD(0.1), 200, 1e-2},
		{"momentum", NewMomentumSGD(0.05, 0.9), 200, 1e-2},
		{"adam", NewAdam(0.1), 500, 1e-2},
		{"adagrad", NewAdaGrad(0.5), 800, 1e-2},
		// RMSProp's normalized steps oscillate at O(lr) around the optimum,
		// so it gets a looser tolerance.
		{"rmsprop", NewRMSProp(0.05), 500, 1e-1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if norm := runQuadratic(t, tc.o, tc.steps); norm > tc.tol {
				t.Fatalf("%s left ||x|| = %v after %d steps", tc.name, norm, tc.steps)
			}
		})
	}
}

func TestBadHyperparameters(t *testing.T) {
	p := quadParam(1)
	for _, o := range []nn.Optimizer{
		NewSGD(0), NewSGD(-1),
		&Adam{LR: 0.1, Beta1: 1.5},
		&RMSProp{LR: 0.1, Decay: 0},
		NewAdaGrad(-0.1),
	} {
		if err := o.Step([]*nn.Param{p}); !errors.Is(err, ErrBadHyper) {
			t.Fatalf("%T: want ErrBadHyper, got %v", o, err)
		}
	}
}

func TestClipGlobalNorm(t *testing.T) {
	p := quadParam(0)
	g, _ := tensor.FromSlice(1, 3, []float64{3, 4, 0})
	if err := p.AccumulateGrad(g); err != nil {
		t.Fatal(err)
	}
	pre, err := ClipGlobalNorm([]*nn.Param{p}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	if n := p.Grad.FrobeniusNorm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm %v, want 1", n)
	}
	// Below the threshold the gradient is untouched.
	p.ZeroGrad()
	small, _ := tensor.FromSlice(1, 3, []float64{0.1, 0, 0})
	_ = p.AccumulateGrad(small)
	if _, err := ClipGlobalNorm([]*nn.Param{p}, 1); err != nil {
		t.Fatal(err)
	}
	if p.Grad.At(0, 0) != 0.1 {
		t.Fatal("clip modified a gradient below threshold")
	}
	if _, err := ClipGlobalNorm(nil, 0); !errors.Is(err, ErrBadHyper) {
		t.Fatal("want ErrBadHyper for non-positive max norm")
	}
}

func TestExponentialDecaySchedule(t *testing.T) {
	sgd := NewSGD(1.0)
	sched := NewExponentialDecay(sgd, 0.5, 2)
	p := quadParam(1)
	for i := 0; i < 5; i++ {
		p.ZeroGrad()
		_ = p.AccumulateGrad(p.Value)
		if err := sched.Step([]*nn.Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	// After 5 steps the last applied LR corresponds to step index 4: 1.0 * 0.5^(4/2).
	if math.Abs(sgd.LR-0.25) > 1e-12 {
		t.Fatalf("scheduled LR %v, want 0.25", sgd.LR)
	}
}

func TestTrainMLPOnBlobs(t *testing.T) {
	// Integration: a 2-layer MLP must separate two well-separated Gaussian
	// blobs to >95% train accuracy.
	rng := rand.New(rand.NewSource(7))
	n := 200
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		cx := float64(c)*4 - 2
		x.Set(i, 0, cx+rng.NormFloat64()*0.5)
		x.Set(i, 1, cx+rng.NormFloat64()*0.5)
	}
	y, err := nn.OneHot(labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := nn.NewSequential(
		nn.NewDense(rng, 2, 8),
		nn.NewReLU(),
		nn.NewDense(rng, 8, 2),
	)
	losses, err := nn.Train(model, x, y, nn.TrainConfig{
		Epochs:    30,
		BatchSize: 16,
		Optimizer: NewAdam(0.01),
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	preds, err := model.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Fatalf("train accuracy %v < 0.95", acc)
	}
}
