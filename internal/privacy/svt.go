package privacy

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrBudgetExhausted is returned by SparseVector.Query once the positive-
// answer budget is spent.
var ErrBudgetExhausted = errors.New("privacy: sparse vector budget exhausted")

// SparseVector implements the sparse vector technique (AboveThreshold) that
// Shokri & Shmatikov [16] use to privately select which gradients to share:
// it answers a stream of threshold queries, spending privacy budget only on
// positive answers, and halts after MaxPositives of them.
type SparseVector struct {
	rng          *rand.Rand
	epsilon      float64
	sensitivity  float64
	maxPositives int

	noisyThreshold float64
	positives      int
}

// NewSparseVector creates an AboveThreshold instance with total budget
// epsilon, query sensitivity, threshold, and a cap on positive answers.
// Half the budget perturbs the threshold; the other half perturbs queries.
func NewSparseVector(rng *rand.Rand, epsilon, sensitivity, threshold float64, maxPositives int) (*SparseVector, error) {
	if epsilon <= 0 || sensitivity <= 0 || maxPositives <= 0 {
		return nil, fmt.Errorf("%w: svt epsilon=%v sensitivity=%v c=%d",
			ErrBudget, epsilon, sensitivity, maxPositives)
	}
	sv := &SparseVector{
		rng:          rng,
		epsilon:      epsilon,
		sensitivity:  sensitivity,
		maxPositives: maxPositives,
	}
	sv.noisyThreshold = threshold + LaplaceNoise(rng, 2*sensitivity/epsilon)
	return sv, nil
}

// Query reports whether value exceeds the (noisy) threshold. Only positive
// answers consume budget; after MaxPositives of them it returns
// ErrBudgetExhausted.
func (sv *SparseVector) Query(value float64) (bool, error) {
	if sv.positives >= sv.maxPositives {
		return false, ErrBudgetExhausted
	}
	noisy := value + LaplaceNoise(sv.rng, 4*float64(sv.maxPositives)*sv.sensitivity/sv.epsilon)
	if noisy >= sv.noisyThreshold {
		sv.positives++
		return true, nil
	}
	return false, nil
}

// PositivesUsed returns how many positive answers have been spent.
func (sv *SparseVector) PositivesUsed() int { return sv.positives }
