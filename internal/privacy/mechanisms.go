package privacy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/tensor"
)

// ErrBudget reports an invalid privacy parameter.
var ErrBudget = errors.New("privacy: invalid privacy parameter")

// LaplaceNoise draws one Laplace(0, scale) sample via inverse-CDF.
func LaplaceNoise(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	return -scale * math.Copysign(math.Log(1-2*math.Abs(u)), u)
}

// LaplaceMechanism perturbs m in place to achieve ε-DP for a query with the
// given L1 sensitivity: noise scale b = sensitivity / ε.
func LaplaceMechanism(rng *rand.Rand, m *tensor.Matrix, sensitivity, epsilon float64) error {
	if epsilon <= 0 || sensitivity <= 0 {
		return fmt.Errorf("%w: laplace sensitivity=%v epsilon=%v", ErrBudget, sensitivity, epsilon)
	}
	scale := sensitivity / epsilon
	d := m.Data()
	for i := range d {
		d[i] += LaplaceNoise(rng, scale)
	}
	return nil
}

// GaussianSigma returns the noise standard deviation that makes the Gaussian
// mechanism (ε, δ)-DP for a query with the given L2 sensitivity:
// σ = sqrt(2 ln(1.25/δ)) * sensitivity / ε (the classical analytic bound,
// valid for ε ≤ 1).
func GaussianSigma(sensitivity, epsilon, delta float64) (float64, error) {
	if epsilon <= 0 || delta <= 0 || delta >= 1 || sensitivity <= 0 {
		return 0, fmt.Errorf("%w: gaussian sensitivity=%v epsilon=%v delta=%v",
			ErrBudget, sensitivity, epsilon, delta)
	}
	return math.Sqrt(2*math.Log(1.25/delta)) * sensitivity / epsilon, nil
}

// GaussianMechanism perturbs m in place with N(0, σ²) noise calibrated for
// (ε, δ)-DP at the given L2 sensitivity.
func GaussianMechanism(rng *rand.Rand, m *tensor.Matrix, sensitivity, epsilon, delta float64) error {
	sigma, err := GaussianSigma(sensitivity, epsilon, delta)
	if err != nil {
		return err
	}
	AddGaussian(rng, m, sigma)
	return nil
}

// AddGaussian adds N(0, sigma²) noise to every element of m in place.
func AddGaussian(rng *rand.Rand, m *tensor.Matrix, sigma float64) {
	d := m.Data()
	for i := range d {
		d[i] += sigma * rng.NormFloat64()
	}
}

// ClipL2 rescales m in place so its Frobenius norm is at most bound,
// returning the pre-clip norm. This is the per-example gradient clipping of
// DP-SGD [20] and the update bounding of DP-FedAvg [22].
func ClipL2(m *tensor.Matrix, bound float64) (float64, error) {
	if bound <= 0 {
		return 0, fmt.Errorf("%w: clip bound %v", ErrBudget, bound)
	}
	norm := m.FrobeniusNorm()
	if norm > bound {
		m.ScaleInPlace(bound / norm)
	}
	return norm, nil
}

// Nullification zeroes each element of m independently with probability
// rate, the input-nullification perturbation of the ARDEN split-inference
// framework [30] (Section III-A). It returns the number of nullified cells.
func Nullification(rng *rand.Rand, m *tensor.Matrix, rate float64) (int, error) {
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("%w: nullification rate %v", ErrBudget, rate)
	}
	d := m.Data()
	count := 0
	for i := range d {
		if rng.Float64() < rate {
			d[i] = 0
			count++
		}
	}
	return count, nil
}
