// Package privacy implements the differential-privacy machinery of Section
// II-C: Laplace and Gaussian output-perturbation mechanisms, L2 clipping,
// the moments accountant of Abadi et al. [20], DP-SGD, the user-level
// DP-FedAvg of McMahan et al. [22], and the sparse vector technique used by
// Shokri & Shmatikov [16].
//
// # DP-FedAvg
//
// RunDPFedAvg is the private counterpart of federated.RunFedAvg and rides
// the same Trainer/FanOut seam: clients are selected independently with
// probability P, the cohort trains in parallel across a GOMAXPROCS-bounded
// worker pool (identical results for any worker count — randomness derives
// from pre-drawn per-client seeds), and the server step differs from plain
// FedAvg in exactly the four ways McMahan et al. list — Poisson sampling, a
// per-client joint-L2 clip, a fixed-denominator (q·W) average, and Gaussian
// noise calibrated by Sigma. The bundled MomentsAccountant converts the
// per-round noise into a cumulative (epsilon, delta) spend.
//
// internal/fedserve reuses the same clip-average-noise merge for its
// continuous train-to-serve rounds when a DP config is set, so a served
// model chain can carry a user-level privacy guarantee end to end. See
// ARCHITECTURE.md at the repository root.
package privacy
