package privacy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

func TestLaplaceNoiseDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	scale := 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := LaplaceNoise(rng, scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.1 {
		t.Fatalf("laplace mean %v, want ~0", mean)
	}
	// E|X| = scale for Laplace(0, scale).
	if meanAbs := sumAbs / n; math.Abs(meanAbs-scale) > 0.1 {
		t.Fatalf("laplace E|X| %v, want %v", meanAbs, scale)
	}
}

func TestMechanismValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(2, 2)
	if err := LaplaceMechanism(rng, m, 1, 0); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for epsilon=0")
	}
	if err := GaussianMechanism(rng, m, 1, 1, 0); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for delta=0")
	}
	if _, err := ClipL2(m, 0); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for clip bound 0")
	}
	if _, err := Nullification(rng, m, 2); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for rate 2")
	}
}

func TestGaussianSigmaScaling(t *testing.T) {
	s1, err := GaussianSigma(1, 1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := GaussianSigma(1, 2, 1e-5)
	if s2 >= s1 {
		t.Fatal("sigma must shrink as epsilon grows")
	}
	s3, _ := GaussianSigma(2, 1, 1e-5)
	if math.Abs(s3-2*s1) > 1e-12 {
		t.Fatal("sigma must scale linearly with sensitivity")
	}
}

func TestClipL2(t *testing.T) {
	m, _ := tensor.FromSlice(1, 2, []float64{3, 4})
	pre, err := ClipL2(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pre != 5 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if n := m.FrobeniusNorm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", n)
	}
	// Under the bound: untouched.
	m2, _ := tensor.FromSlice(1, 2, []float64{0.3, 0.4})
	if _, err := ClipL2(m2, 1); err != nil {
		t.Fatal(err)
	}
	if m2.At(0, 0) != 0.3 {
		t.Fatal("clip changed an in-bound matrix")
	}
}

func TestNullificationRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := tensor.New(100, 100)
	m.Fill(1)
	count, err := Nullification(rng, m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(count) / 10000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("nullified fraction %v, want ~0.3", frac)
	}
	if got := 10000 - int(m.Sum()); got != count {
		t.Fatalf("count %d disagrees with zeroed cells %d", count, got)
	}
}

func TestAccountantEpsilonMonotoneInSteps(t *testing.T) {
	a, err := NewMomentsAccountant(1.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i := 0; i < 5; i++ {
		a.AccumulateSteps(100)
		eps, err := a.Epsilon(1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if eps <= prev {
			t.Fatalf("epsilon not increasing: %v after %d steps (prev %v)", eps, a.Steps(), prev)
		}
		prev = eps
	}
}

func TestAccountantEpsilonDecreasesWithSigma(t *testing.T) {
	eps := func(sigma float64) float64 {
		a, err := NewMomentsAccountant(sigma, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		a.AccumulateSteps(1000)
		e, err := a.Epsilon(1e-5)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if !(eps(0.5) > eps(1.0) && eps(1.0) > eps(2.0) && eps(2.0) > eps(4.0)) {
		t.Fatalf("epsilon not decreasing in sigma: %v %v %v %v", eps(0.5), eps(1.0), eps(2.0), eps(4.0))
	}
}

func TestAccountantBeatsStrongComposition(t *testing.T) {
	// The point of the moments accountant [20]: for many steps at small q it
	// yields a much smaller epsilon than advanced composition.
	a, _ := NewMomentsAccountant(2.0, 0.01)
	steps := 10000
	a.AccumulateSteps(steps)
	momentsEps, err := a.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// Per-step epsilon for the same mechanism via the classical Gaussian
	// bound at sensitivity q (subsampled), roughly eps0 = q * sqrt(2 ln(1.25/δ)) / σ.
	eps0 := 0.01 * math.Sqrt(2*math.Log(1.25/1e-5)) / 2.0
	strongEps, err := StrongCompositionEpsilon(eps0, steps, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if momentsEps >= strongEps {
		t.Fatalf("moments accountant (%v) not tighter than strong composition (%v)", momentsEps, strongEps)
	}
}

func TestAccountantValidation(t *testing.T) {
	if _, err := NewMomentsAccountant(0, 0.1); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for sigma=0")
	}
	if _, err := NewMomentsAccountant(1, 0); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for q=0")
	}
	a, _ := NewMomentsAccountant(1, 0.5)
	if _, err := a.Epsilon(0); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for delta=0")
	}
	if eps, err := a.Epsilon(1e-5); err != nil || eps != 0 {
		t.Fatalf("zero steps should cost zero epsilon, got %v (%v)", eps, err)
	}
}

func TestAccountantEpsilonIncreasesWithQProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q1 := 0.001 + 0.05*rng.Float64()
		q2 := q1 * (1.5 + rng.Float64())
		if q2 > 1 {
			return true
		}
		e := func(q float64) float64 {
			a, err := NewMomentsAccountant(2, q)
			if err != nil {
				return math.NaN()
			}
			a.AccumulateSteps(500)
			eps, err := a.Epsilon(1e-5)
			if err != nil {
				return math.NaN()
			}
			return eps
		}
		return e(q2) >= e(q1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func dpsgdSetup(t *testing.T) (*nn.Sequential, *tensor.Matrix, []int) {
	t.Helper()
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 200, Classes: 2, Dim: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	model := nn.NewSequential(nn.NewDense(rng, 5, 8), nn.NewReLU(), nn.NewDense(rng, 8, 2))
	return model, fb.X, fb.Labels
}

func TestDPSGDTrainsAndAccounts(t *testing.T) {
	model, x, labels := dpsgdSetup(t)
	res, err := TrainDPSGD(model, x, labels, 2, DPSGDConfig{
		Epochs: 3, LotSize: 20, LR: 0.2, Clip: 1.0, Sigma: 1.0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accountant.Steps() == 0 {
		t.Fatal("accountant recorded no steps")
	}
	eps, err := res.Accountant.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 || math.IsInf(eps, 0) {
		t.Fatalf("bad epsilon %v", eps)
	}
	// The model should still learn something despite the noise.
	preds, err := model.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(labels)); acc < 0.7 {
		t.Fatalf("DP-SGD accuracy %v, want >= 0.7", acc)
	}
}

func TestDPSGDValidation(t *testing.T) {
	model, x, labels := dpsgdSetup(t)
	if _, err := TrainDPSGD(model, x, labels, 2, DPSGDConfig{}); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for zero config")
	}
}

func TestDPFedAvgEndToEnd(t *testing.T) {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 600, Classes: 4, Dim: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	shards, err := data.ShardIID(rng, trX, trY, 10)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42))
		return nn.NewSequential(nn.NewDense(r, 8, 16), nn.NewReLU(), nn.NewDense(r, 16, 4)), nil
	}
	res, err := RunDPFedAvg(factory, shards, 4, DPFedAvgConfig{
		Rounds:      20,
		P:           0.5,
		LocalEpochs: 3,
		LocalBatch:  16,
		LocalLR:     0.2,
		Clip:        5.0,
		Sigma:       0.5,
		Seed:        3,
		Eval:        federated.AccuracyEval(teX, teY),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Stats[len(res.Stats)-1]
	if final.Accuracy < 0.7 {
		t.Fatalf("DP-FedAvg accuracy %v, want >= 0.7", final.Accuracy)
	}
	eps, err := res.Accountant.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Fatalf("epsilon %v", eps)
	}
}

func TestDPFedAvgValidation(t *testing.T) {
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(1))
		return nn.NewSequential(nn.NewDense(r, 2, 2)), nil
	}
	if _, err := RunDPFedAvg(factory, nil, 2, DPFedAvgConfig{
		Rounds: 1, P: 0.5, LocalEpochs: 1, LocalLR: 0.1, Clip: 1,
	}); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for no clients")
	}
}

func TestSparseVector(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sv, err := NewSparseVector(rng, 10, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Values far above threshold should mostly answer true; far below false.
	above, err := sv.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if !above {
		t.Fatal("value far above threshold answered false")
	}
	below, err := sv.Query(-100)
	if err != nil {
		t.Fatal(err)
	}
	if below {
		t.Fatal("value far below threshold answered true")
	}
	// Exhaust the budget.
	for i := 0; i < 2; i++ {
		if _, err := sv.Query(100); err != nil {
			t.Fatal(err)
		}
	}
	if sv.PositivesUsed() != 3 {
		t.Fatalf("positives used %d, want 3", sv.PositivesUsed())
	}
	if _, err := sv.Query(100); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if _, err := NewSparseVector(rng, 0, 1, 0, 1); !errors.Is(err, ErrBudget) {
		t.Fatal("want ErrBudget for epsilon=0")
	}
}
