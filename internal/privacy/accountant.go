package privacy

import (
	"fmt"
	"math"
)

// MomentsAccountant tracks the cumulative privacy loss of repeated
// applications of the subsampled Gaussian mechanism, following Abadi et al.
// [20]. Each step samples each record with probability q and adds Gaussian
// noise with multiplier sigma (noise stddev = sigma * clip bound).
//
// The log-moment of one step is bounded (Lemma 3 of [20], low-order term)
// by α(λ) ≤ q²λ(λ+1) / ((1-q)σ²) + O(q³λ³/σ³); moments compose additively
// across steps, and ε is obtained by minimizing over the moment order λ:
//
//	ε = min_λ ( T·α(λ) + ln(1/δ) ) / λ.
type MomentsAccountant struct {
	// Sigma is the Gaussian noise multiplier.
	Sigma float64
	// Q is the per-step sampling probability.
	Q float64
	// MaxLambda bounds the moment orders searched (default 64).
	MaxLambda int

	steps int
}

// NewMomentsAccountant validates parameters and returns an accountant.
func NewMomentsAccountant(sigma, q float64) (*MomentsAccountant, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("%w: sigma=%v", ErrBudget, sigma)
	}
	if q <= 0 || q > 1 {
		return nil, fmt.Errorf("%w: q=%v", ErrBudget, q)
	}
	return &MomentsAccountant{Sigma: sigma, Q: q, MaxLambda: 64}, nil
}

// AccumulateSteps records n further mechanism invocations.
func (a *MomentsAccountant) AccumulateSteps(n int) { a.steps += n }

// Steps returns the number of recorded invocations.
func (a *MomentsAccountant) Steps() int { return a.steps }

// logMomentBound returns the per-step log-moment bound α(λ).
func (a *MomentsAccountant) logMomentBound(lambda float64) float64 {
	q, sigma := a.Q, a.Sigma
	if q == 1 {
		// No subsampling amplification: Gaussian mechanism RDP.
		return lambda * (lambda + 1) / (2 * sigma * sigma)
	}
	low := q * q * lambda * (lambda + 1) / ((1 - q) * sigma * sigma)
	high := math.Pow(q, 3) * math.Pow(lambda, 3) / math.Pow(sigma, 3)
	return low + high
}

// Epsilon returns the (ε, δ)-DP guarantee after the recorded steps.
func (a *MomentsAccountant) Epsilon(delta float64) (float64, error) {
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("%w: delta=%v", ErrBudget, delta)
	}
	if a.steps == 0 {
		return 0, nil
	}
	maxLambda := a.MaxLambda
	if maxLambda <= 0 {
		maxLambda = 64
	}
	best := math.Inf(1)
	for l := 1; l <= maxLambda; l++ {
		lambda := float64(l)
		eps := (float64(a.steps)*a.logMomentBound(lambda) + math.Log(1/delta)) / lambda
		if eps < best {
			best = eps
		}
	}
	return best, nil
}

// StrongCompositionEpsilon is the naive advanced-composition baseline the
// moments accountant improves on: per-step ε0 composed T times gives
// ε ≈ ε0 sqrt(2T ln(1/δ')) + T ε0 (e^{ε0}-1). Exposed so experiments can
// show the accountant's tighter budget (the E6 ablation).
func StrongCompositionEpsilon(eps0 float64, steps int, deltaPrime float64) (float64, error) {
	if eps0 <= 0 || steps <= 0 || deltaPrime <= 0 || deltaPrime >= 1 {
		return 0, fmt.Errorf("%w: eps0=%v steps=%d delta'=%v", ErrBudget, eps0, steps, deltaPrime)
	}
	t := float64(steps)
	return eps0*math.Sqrt(2*t*math.Log(1/deltaPrime)) + t*eps0*(math.Exp(eps0)-1), nil
}
