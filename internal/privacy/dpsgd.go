package privacy

import (
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// DPSGDConfig configures differentially private SGD (Abadi et al. [20]):
// per-example gradient clipping to L2 bound Clip, Gaussian noise with
// multiplier Sigma on the summed gradients, and lot-based sampling with
// probability Q = LotSize / N tracked by the moments accountant.
type DPSGDConfig struct {
	Epochs  int
	LotSize int
	LR      float64
	Clip    float64
	Sigma   float64
	Seed    int64
}

func (c *DPSGDConfig) validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("%w: epochs=%d", ErrBudget, c.Epochs)
	case c.LotSize <= 0:
		return fmt.Errorf("%w: lot size=%d", ErrBudget, c.LotSize)
	case c.LR <= 0:
		return fmt.Errorf("%w: lr=%v", ErrBudget, c.LR)
	case c.Clip <= 0:
		return fmt.Errorf("%w: clip=%v", ErrBudget, c.Clip)
	case c.Sigma <= 0:
		return fmt.Errorf("%w: sigma=%v", ErrBudget, c.Sigma)
	}
	return nil
}

// DPSGDResult reports the training outcome and the privacy spent.
type DPSGDResult struct {
	Losses     []float64
	Accountant *MomentsAccountant
}

// TrainDPSGD trains model on (x, labels) with DP-SGD and returns per-epoch
// losses plus the accountant holding the spent privacy budget.
func TrainDPSGD(model *nn.Sequential, x *tensor.Matrix, labels []int, classes int, cfg DPSGDConfig) (*DPSGDResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := x.Rows()
	if n == 0 || n != len(labels) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrBudget, n, len(labels))
	}
	q := float64(cfg.LotSize) / float64(n)
	if q > 1 {
		q = 1
	}
	acct, err := NewMomentsAccountant(cfg.Sigma, q)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	loss := nn.NewSoftmaxCrossEntropy()
	params := model.Params()
	stepsPerEpoch := n / cfg.LotSize
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}

	// Accumulators for the clipped per-example gradient sum.
	sums := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		sums[i] = tensor.New(p.Value.Rows(), p.Value.Cols())
	}

	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		var lossCount int
		for step := 0; step < stepsPerEpoch; step++ {
			// Poisson-style lot: sample each record with probability q.
			var lot []int
			for i := 0; i < n; i++ {
				if rng.Float64() < q {
					lot = append(lot, i)
				}
			}
			if len(lot) == 0 {
				continue
			}
			for i := range sums {
				sums[i].Zero()
			}
			for _, idx := range lot {
				xi, err := x.SelectRows([]int{idx})
				if err != nil {
					return nil, err
				}
				yi, err := nn.OneHot([]int{labels[idx]}, classes)
				if err != nil {
					return nil, err
				}
				l, err := nn.GradientsOn(model, xi, yi, loss)
				if err != nil {
					return nil, err
				}
				epochLoss += l
				lossCount++
				// Clip the joint per-example gradient to L2 bound Clip.
				var sq float64
				for _, p := range params {
					for _, g := range p.Grad.Data() {
						sq += g * g
					}
				}
				scale := 1.0
				if norm := math.Sqrt(sq); norm > cfg.Clip {
					scale = cfg.Clip / norm
				}
				for pi, p := range params {
					if err := tensor.AxpyInPlace(sums[pi], scale, p.Grad); err != nil {
						return nil, err
					}
				}
			}
			// Noise the sum and take an averaged step.
			inv := 1 / float64(len(lot))
			for pi, p := range params {
				AddGaussian(rng, sums[pi], cfg.Sigma*cfg.Clip)
				if err := tensor.AxpyInPlace(p.Value, -cfg.LR*inv, sums[pi]); err != nil {
					return nil, err
				}
			}
			acct.AccumulateSteps(1)
		}
		if lossCount > 0 {
			losses = append(losses, epochLoss/float64(lossCount))
		} else {
			losses = append(losses, 0)
		}
	}
	return &DPSGDResult{Losses: losses, Accountant: acct}, nil
}
