package privacy

import (
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// DPFedAvgConfig configures the user-level differentially private federated
// averaging of McMahan et al. [22], which modifies non-private federated
// training exactly as Section II-C lists:
//
//  1. participants are selected independently with probability P rather
//     than as a fixed-size cohort;
//  2. each client update is bounded to L2 norm Clip;
//  3. a fixed-denominator estimator (q·W) is used for the weighted average
//     so the moments accountant applies;
//  4. Gaussian noise with multiplier Sigma is added to the final average.
type DPFedAvgConfig struct {
	Rounds int
	// P is the independent per-client selection probability.
	P           float64
	LocalEpochs int
	LocalBatch  int
	LocalLR     float64
	Clip        float64
	Sigma       float64
	Seed        int64
	// Workers sizes the client-training worker pool (0 = GOMAXPROCS). Like
	// RunFedAvg, results are identical for any worker count.
	Workers   int
	Eval      func(model *nn.Sequential) (float64, error)
	EvalEvery int
}

func (c *DPFedAvgConfig) validate(numClients int) error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("%w: rounds=%d", ErrBudget, c.Rounds)
	case c.P <= 0 || c.P > 1:
		return fmt.Errorf("%w: p=%v", ErrBudget, c.P)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("%w: local epochs=%d", ErrBudget, c.LocalEpochs)
	case c.LocalLR <= 0:
		return fmt.Errorf("%w: local lr=%v", ErrBudget, c.LocalLR)
	case c.Clip <= 0:
		return fmt.Errorf("%w: clip=%v", ErrBudget, c.Clip)
	case c.Sigma < 0:
		return fmt.Errorf("%w: sigma=%v", ErrBudget, c.Sigma)
	case numClients == 0:
		return fmt.Errorf("%w: no clients", ErrBudget)
	}
	return nil
}

// DPFedAvgResult bundles the trained model, per-round stats, and the
// accountant carrying the user-level privacy spend.
type DPFedAvgResult struct {
	Model      *nn.Sequential
	Stats      []federated.RoundStats
	Accountant *MomentsAccountant
}

// RunDPFedAvg executes user-level DP federated averaging.
func RunDPFedAvg(factory federated.ModelFactory, shards []*data.ClientShard, classes int, cfg DPFedAvgConfig) (*DPFedAvgResult, error) {
	if err := cfg.validate(len(shards)); err != nil {
		return nil, err
	}
	global, err := factory()
	if err != nil {
		return nil, err
	}
	globalParams := global.Params()

	var acct *MomentsAccountant
	if cfg.Sigma > 0 {
		acct, err = NewMomentsAccountant(cfg.Sigma, cfg.P)
		if err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	paramBytes := int64(nn.NumParams(globalParams)) * federated.BytesPerValue

	var stats []federated.RoundStats
	var upBytes, downBytes int64

	// Fixed denominator: expected participation mass q*W with uniform
	// client weights w_k = 1.
	expectedMass := cfg.P * float64(len(shards))

	deltas := make([]*tensor.Matrix, len(globalParams))
	for i, p := range globalParams {
		deltas[i] = tensor.New(p.Value.Rows(), p.Value.Cols())
	}

	trainer := &federated.SGDTrainer{
		Factory: factory,
		Classes: classes,
		Epochs:  cfg.LocalEpochs,
		Batch:   cfg.LocalBatch,
		LR:      cfg.LocalLR,
	}
	globalVals := federated.ParamValues(globalParams)

	// Per-client delta scratch, pooled: one buffer set reused across every
	// client of every round (the joint clip needs a whole client's delta at
	// once, so the subtraction cannot stream into the accumulator directly).
	scratch := make([]*tensor.Matrix, len(globalParams))
	for i, p := range globalParams {
		scratch[i] = tensor.Get(p.Value.Rows(), p.Value.Cols())
		defer tensor.Put(scratch[i])
	}

	for round := 0; round < cfg.Rounds; round++ {
		for i := range deltas {
			deltas[i].Zero()
		}
		// Independent Bernoulli(P) selection, with per-client seeds drawn in
		// client order so the parallel fan-out reproduces the sequential run.
		var selected []int
		var seeds []int64
		for k := range shards {
			if rng.Float64() >= cfg.P {
				continue
			}
			selected = append(selected, k)
			seeds = append(seeds, rng.Int63())
		}
		participating := len(selected)
		var roundLoss float64
		if participating > 0 {
			updates, err := federated.FanOut(trainer, shards, selected, globalVals, seeds, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("round %d: %w", round, err)
			}
			for _, u := range updates {
				roundLoss += u.Loss
				// delta_k = w_local - w_global, bounded to joint L2 norm Clip
				// across all parameter matrices.
				for i := range scratch {
					if err := tensor.SubInto(scratch[i], u.Weights[i], globalVals[i]); err != nil {
						return nil, err
					}
				}
				ClipJoint(scratch, cfg.Clip)
				for i := range deltas {
					if err := tensor.AddInPlace(deltas[i], scratch[i]); err != nil {
						return nil, err
					}
				}
			}
			roundLoss /= float64(participating)
			upBytes += int64(participating) * paramBytes
			downBytes += int64(participating) * paramBytes
		}

		// Fixed-denominator estimator + Gaussian noise on the average.
		for i, p := range globalParams {
			deltas[i].ScaleInPlace(1 / expectedMass)
			if cfg.Sigma > 0 {
				AddGaussian(rng, deltas[i], cfg.Sigma*cfg.Clip/expectedMass)
			}
			if err := tensor.AddInPlace(p.Value, deltas[i]); err != nil {
				return nil, err
			}
		}
		if acct != nil {
			acct.AccumulateSteps(1)
		}

		st := federated.RoundStats{
			Round:               round,
			TrainLoss:           roundLoss,
			Accuracy:            -1,
			CumulativeUpBytes:   upBytes,
			CumulativeDownBytes: downBytes,
			ParticipatingUsers:  participating,
		}
		if cfg.Eval != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			acc, err := cfg.Eval(global)
			if err != nil {
				return nil, err
			}
			st.Accuracy = acc
		}
		stats = append(stats, st)
	}
	return &DPFedAvgResult{Model: global, Stats: stats, Accountant: acct}, nil
}

// ClipJoint rescales a parameter-update set so its joint L2 norm (flattened
// across all matrices) is at most bound — the per-client bounding step of
// DP-FedAvg, shared with the fedserve coordinator's DP merge.
func ClipJoint(update []*tensor.Matrix, bound float64) {
	var sq float64
	for _, m := range update {
		for _, v := range m.Data() {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm > bound {
		scale := bound / norm
		for _, m := range update {
			m.ScaleInPlace(scale)
		}
	}
}
