// Package core is the high-level facade of the mobiledl library: the entry
// points a downstream application would use to (1) train mobile-data models
// collaboratively, privately or centrally, (2) shrink them for on-device
// deployment, (3) decide where to run inference, and (4) apply the two
// reference applications, DeepMood and DEEPSERVICE.
//
// Everything here composes the lower-level packages (nn, federated, privacy,
// compress, mobile, split, deepmood, deepservice); nothing is re-implemented.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"mobiledl/internal/compress"
	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/deepservice"
	"mobiledl/internal/federated"
	"mobiledl/internal/metrics"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/privacy"
	"mobiledl/internal/tensor"
)

// ErrConfig reports an invalid facade configuration.
var ErrConfig = errors.New("core: invalid configuration")

// MLPSpec describes a plain feed-forward classifier.
type MLPSpec struct {
	In      int
	Hidden  []int
	Classes int
	Seed    int64
}

// NewMLP builds a ReLU MLP from the spec. The returned factory creates
// further identically initialized copies (required by federated training).
func NewMLP(spec MLPSpec) (*nn.Sequential, federated.ModelFactory, error) {
	if spec.In <= 0 || spec.Classes < 2 {
		return nil, nil, fmt.Errorf("%w: MLP in=%d classes=%d", ErrConfig, spec.In, spec.Classes)
	}
	factory := func() (*nn.Sequential, error) {
		rng := rand.New(rand.NewSource(spec.Seed))
		var layers []nn.Layer
		prev := spec.In
		for _, h := range spec.Hidden {
			if h <= 0 {
				return nil, fmt.Errorf("%w: hidden size %d", ErrConfig, h)
			}
			layers = append(layers, nn.NewDense(rng, prev, h), nn.NewReLU())
			prev = h
		}
		layers = append(layers, nn.NewDense(rng, prev, spec.Classes))
		return nn.NewSequential(layers...), nil
	}
	model, err := factory()
	if err != nil {
		return nil, nil, err
	}
	return model, factory, nil
}

// TrainCentralized fits a model on a single dataset with Adam — the plain,
// non-distributed baseline every other scheme is compared against.
func TrainCentralized(model *nn.Sequential, x *tensor.Matrix, labels []int, classes, epochs int, seed int64) error {
	y, err := nn.OneHot(labels, classes)
	if err != nil {
		return err
	}
	_, err = nn.Train(model, x, y, nn.TrainConfig{
		Epochs:    epochs,
		BatchSize: 32,
		Optimizer: opt.NewAdam(0.01),
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Rng:       rand.New(rand.NewSource(seed)),
	})
	return err
}

// Federate runs federated averaging over client shards; see package
// federated for the full configuration surface.
func Federate(factory federated.ModelFactory, shards []*data.ClientShard, classes int, cfg federated.FedAvgConfig) (*nn.Sequential, []federated.RoundStats, error) {
	return federated.RunFedAvg(factory, shards, classes, cfg)
}

// FederatePrivately runs user-level DP federated averaging; see package
// privacy for the mechanism details.
func FederatePrivately(factory federated.ModelFactory, shards []*data.ClientShard, classes int, cfg privacy.DPFedAvgConfig) (*privacy.DPFedAvgResult, error) {
	return privacy.RunDPFedAvg(factory, shards, classes, cfg)
}

// CompressForMobile runs the Deep Compression pipeline and reports the
// realized on-the-wire size reduction.
func CompressForMobile(model *nn.Sequential, sparsity float64, bits int) (*compress.PipelineResult, error) {
	return compress.RunPipeline(model, compress.PipelineConfig{Sparsity: sparsity, Bits: bits, Seed: 1})
}

// PlanInference compares local, cloud and split placement for the given
// model and input sizes and returns plans sorted best-first.
func PlanInference(device mobile.Device, net mobile.Network, model *nn.Sequential, inputBytes, payloadBytes int64) []mobile.PlanCost {
	w := mobile.Workload{
		TotalMACs:    mobile.ModelMACs(model),
		LocalMACs:    mobile.ModelMACs(model) * 0.05,
		ModelBytes:   mobile.ModelBytes(model),
		InputBytes:   inputBytes,
		PayloadBytes: payloadBytes,
		OutputBytes:  256,
	}
	return mobile.ComparePlacements(device, mobile.CloudServer(), net, w)
}

// MoodModel bundles a trained DeepMood model with its evaluation helpers.
type MoodModel struct {
	Model *deepmood.Model
}

// TrainMoodModel trains DeepMood on raw sessions (normalization handled
// internally) and returns the wrapped model.
func TrainMoodModel(sessions []*data.Session, fusionKind deepmood.FusionKind, epochs int, seed int64) (*MoodModel, error) {
	m, err := deepmood.New(deepmood.Config{
		Task:    deepmood.TaskMood,
		Classes: data.NumMoods,
		Hidden:  10,
		Fusion:  fusionKind,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := m.Train(deepmood.NormalizeAll(sessions), deepmood.TrainConfig{
		Epochs:    epochs,
		BatchSize: 8,
		Optimizer: opt.NewAdam(0.01),
		Rng:       rand.New(rand.NewSource(seed)),
	}); err != nil {
		return nil, err
	}
	return &MoodModel{Model: m}, nil
}

// Evaluate scores mood prediction on raw sessions.
func (m *MoodModel) Evaluate(sessions []*data.Session) (metrics.Report, error) {
	norm := deepmood.NormalizeAll(sessions)
	preds, err := m.Model.PredictAll(norm)
	if err != nil {
		return metrics.Report{}, err
	}
	truth := make([]int, len(norm))
	for i, s := range norm {
		truth[i] = s.Mood
	}
	return metrics.Evaluate(preds, truth, data.NumMoods)
}

// TrainIdentifier trains a DEEPSERVICE N-way user identifier on raw sessions.
func TrainIdentifier(sessions []*data.Session, numUsers, epochs int, seed int64) (*deepservice.Identifier, error) {
	id, err := deepservice.New(deepservice.Config{
		NumUsers: numUsers,
		Hidden:   10,
		Fusion:   deepmood.FusionFC,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := id.Train(deepmood.NormalizeAll(sessions), deepmood.TrainConfig{
		Epochs:    epochs,
		BatchSize: 8,
		Optimizer: opt.NewAdam(0.01),
		Rng:       rand.New(rand.NewSource(seed)),
	}); err != nil {
		return nil, err
	}
	return id, nil
}
