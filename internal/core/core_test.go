package core

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/federated"
	"mobiledl/internal/mobile"
)

func TestNewMLP(t *testing.T) {
	model, factory, err := NewMLP(MLPSpec{In: 8, Hidden: []int{16, 8}, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Layers()) != 5 { // dense relu dense relu dense
		t.Fatalf("got %d layers", len(model.Layers()))
	}
	copy1, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	// Factory copies must be identically initialized.
	if !copy1.Params()[0].Value.Equal(model.Params()[0].Value, 0) {
		t.Fatal("factory copies differ from original")
	}
	if _, _, err := NewMLP(MLPSpec{In: 0, Classes: 2}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig")
	}
	if _, _, err := NewMLP(MLPSpec{In: 2, Hidden: []int{-1}, Classes: 2}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for negative hidden")
	}
}

func TestCentralizedAndFederatedParity(t *testing.T) {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 400, Classes: 3, Dim: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}

	central, factory, err := NewMLP(MLPSpec{In: 8, Hidden: []int{16}, Classes: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := TrainCentralized(central, trX, trY, 3, 15, 4); err != nil {
		t.Fatal(err)
	}
	eval := federated.AccuracyEval(teX, teY)
	centralAcc, err := eval(central)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	shards, err := data.ShardIID(rng, trX, trY, 8)
	if err != nil {
		t.Fatal(err)
	}
	fed, stats, err := Federate(factory, shards, 3, federated.FedAvgConfig{
		Rounds: 15, ClientFraction: 1, LocalEpochs: 3, LocalBatch: 16,
		LocalLR: 0.1, Seed: 6, Eval: eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	fedAcc := stats[len(stats)-1].Accuracy
	if fed == nil || fedAcc < centralAcc-0.15 {
		t.Fatalf("federated accuracy %v too far below centralized %v", fedAcc, centralAcc)
	}
}

func TestCompressForMobile(t *testing.T) {
	fb, _ := data.GenerateFedBench(data.FedBenchConfig{Samples: 300, Classes: 3, Dim: 8, Seed: 7})
	model, _, err := NewMLP(MLPSpec{In: 8, Hidden: []int{32}, Classes: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := TrainCentralized(model, fb.X, fb.Labels, 3, 10, 9); err != nil {
		t.Fatal(err)
	}
	res, err := CompressForMobile(model, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes.Ratio() <= 2 {
		t.Fatalf("compression ratio %v", res.Sizes.Ratio())
	}
}

func TestPlanInference(t *testing.T) {
	model, _, err := NewMLP(MLPSpec{In: 8, Hidden: []int{32}, Classes: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	plans := PlanInference(mobile.MidrangePhone(), mobile.OfflineNetwork(), model, 4096, 1024)
	if len(plans) != 3 {
		t.Fatalf("got %d plans", len(plans))
	}
	if plans[0].Placement != mobile.PlaceLocal || !plans[0].Feasible {
		t.Fatal("offline best plan must be local")
	}
}

func TestMoodAndIdentityFacades(t *testing.T) {
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers: 3, SessionsPerUser: 20, MoodEffect: 1.0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	train, test, err := data.SplitSessions(rng, corpus.Sessions, 0.8)
	if err != nil {
		t.Fatal(err)
	}

	mood, err := TrainMoodModel(train, deepmood.FusionFC, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mood.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy <= 0.5 {
		t.Fatalf("mood accuracy %v at or below chance", rep.Accuracy)
	}

	id, err := TrainIdentifier(train, 3, 4, 14)
	if err != nil {
		t.Fatal(err)
	}
	idRep, err := id.Evaluate(deepmood.NormalizeAll(test))
	if err != nil {
		t.Fatal(err)
	}
	if idRep.Accuracy <= 1.0/3 {
		t.Fatalf("identification accuracy %v at or below chance", idRep.Accuracy)
	}
}
