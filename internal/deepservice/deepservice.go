// Package deepservice implements DEEPSERVICE (Section IV-B, [48]): a
// multi-view, multi-class deep model that identifies the user of a mobile
// device from keystroke and accelerometer dynamics. Architecturally it is
// the DeepMood multi-view GRU + fusion model labeled by user identity; this
// package adds the N-way and pairwise (binary) identification protocols the
// paper evaluates.
package deepservice

import (
	"errors"
	"fmt"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/metrics"
	"mobiledl/internal/nn"
)

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("deepservice: invalid configuration")

// Config configures a DEEPSERVICE identifier.
type Config struct {
	NumUsers int
	Hidden   int
	Fusion   deepmood.FusionKind
	// FusionUnits is the fusion head capacity; defaults to Hidden.
	FusionUnits int
	Seed        int64
}

// Identifier is an N-way user-identification model.
type Identifier struct {
	model *deepmood.Model
	users int
}

// New builds an N-way identifier.
func New(cfg Config) (*Identifier, error) {
	if cfg.NumUsers < 2 {
		return nil, fmt.Errorf("%w: NumUsers=%d", ErrConfig, cfg.NumUsers)
	}
	if cfg.Fusion == "" {
		cfg.Fusion = deepmood.FusionMVM
	}
	m, err := deepmood.New(deepmood.Config{
		Task:        deepmood.TaskUser,
		Classes:     cfg.NumUsers,
		Hidden:      cfg.Hidden,
		Fusion:      cfg.Fusion,
		FusionUnits: cfg.FusionUnits,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Identifier{model: m, users: cfg.NumUsers}, nil
}

// Model exposes the underlying multi-view model.
func (id *Identifier) Model() *deepmood.Model { return id.model }

// Train fits the identifier on normalized sessions.
func (id *Identifier) Train(sessions []*data.Session, cfg deepmood.TrainConfig) ([]float64, error) {
	return id.model.Train(sessions, cfg)
}

// Identify predicts the user of one session.
func (id *Identifier) Identify(s *data.Session) (int, error) {
	return id.model.Predict(s)
}

// Evaluate computes accuracy and F1 over test sessions.
func (id *Identifier) Evaluate(sessions []*data.Session) (metrics.Report, error) {
	preds, err := id.model.PredictAll(sessions)
	if err != nil {
		return metrics.Report{}, err
	}
	truth := make([]int, len(sessions))
	for i, s := range sessions {
		truth[i] = s.UserID
	}
	return metrics.Evaluate(preds, truth, id.users)
}

// PairResult is one binary user-vs-user identification outcome (the paper's
// "any two users" protocol, e.g. husband-and-wife phone sharing).
type PairResult struct {
	UserA, UserB int
	Accuracy     float64
	F1           float64
}

// PairwiseConfig configures the pairwise identification experiment.
type PairwiseConfig struct {
	Hidden      int
	Fusion      deepmood.FusionKind
	FusionUnits int
	Epochs      int
	BatchSize   int
	LR          float64
	TrainFrac   float64
	Seed        int64
}

// EvaluatePairs trains and evaluates a fresh binary identifier for every
// user pair in users, returning per-pair results. Sessions must be the raw
// (unnormalized) corpus; normalization happens internally.
func EvaluatePairs(sessions []*data.Session, users []int, cfg PairwiseConfig, newOpt func() nn.Optimizer) ([]PairResult, error) {
	if len(users) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 users", ErrConfig)
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.8
	}
	var results []PairResult
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			res, err := evaluatePair(sessions, users[i], users[j], cfg, newOpt())
			if err != nil {
				return nil, fmt.Errorf("pair (%d,%d): %w", users[i], users[j], err)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

func evaluatePair(sessions []*data.Session, a, b int, cfg PairwiseConfig, optimizer nn.Optimizer) (PairResult, error) {
	// Relabel the pair's sessions to {0, 1}.
	var pair []*data.Session
	for _, s := range sessions {
		if s.UserID != a && s.UserID != b {
			continue
		}
		ns := data.NormalizeSessionViews(s)
		if s.UserID == a {
			ns.UserID = 0
		} else {
			ns.UserID = 1
		}
		pair = append(pair, ns)
	}
	if len(pair) < 4 {
		return PairResult{}, fmt.Errorf("%w: only %d sessions for pair", ErrConfig, len(pair))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	train, test, err := data.SplitSessions(rng, pair, cfg.TrainFrac)
	if err != nil {
		return PairResult{}, err
	}
	id, err := New(Config{
		NumUsers:    2,
		Hidden:      cfg.Hidden,
		Fusion:      cfg.Fusion,
		FusionUnits: cfg.FusionUnits,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return PairResult{}, err
	}
	if _, err := id.Train(train, deepmood.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: optimizer,
		Rng:       rng,
	}); err != nil {
		return PairResult{}, err
	}
	rep, err := id.Evaluate(test)
	if err != nil {
		return PairResult{}, err
	}
	return PairResult{UserA: a, UserB: b, Accuracy: rep.Accuracy, F1: rep.F1}, nil
}

// MeanPairMetrics averages pairwise accuracy and F1, the numbers the paper
// reports as 99.1% accuracy / 98.97% F1.
func MeanPairMetrics(results []PairResult) (accuracy, f1 float64) {
	if len(results) == 0 {
		return 0, 0
	}
	for _, r := range results {
		accuracy += r.Accuracy
		f1 += r.F1
	}
	n := float64(len(results))
	return accuracy / n, f1 / n
}
