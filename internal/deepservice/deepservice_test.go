package deepservice

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
)

func corpus(t *testing.T, users, sessions int, seed int64) *data.Corpus {
	t.Helper()
	c, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      0.3,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumUsers: 1, Hidden: 4}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestIdentifierLearnsUsers(t *testing.T) {
	// 4-way identification on synthetic biometric signatures must beat
	// chance (0.25) by a wide margin on held-out sessions.
	c := corpus(t, 4, 25, 11)
	rng := rand.New(rand.NewSource(11))
	train, test, err := data.SplitSessions(rng, c.Sessions, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	id, err := New(Config{NumUsers: 4, Hidden: 12, Fusion: deepmood.FusionFC, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := id.Train(deepmood.NormalizeAll(train), deepmood.TrainConfig{
		Epochs:    12,
		BatchSize: 8,
		Optimizer: opt.NewAdam(0.01),
		Rng:       rng,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := id.Evaluate(deepmood.NormalizeAll(test))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.6 {
		t.Fatalf("4-way identification accuracy %v, want >= 0.6", rep.Accuracy)
	}
	if rep.F1 <= 0 || rep.F1 > 1 {
		t.Fatalf("bad F1 %v", rep.F1)
	}
}

func TestPairwiseIdentification(t *testing.T) {
	c := corpus(t, 3, 20, 13)
	results, err := EvaluatePairs(c.Sessions, []int{0, 1, 2}, PairwiseConfig{
		Hidden:    6,
		Fusion:    deepmood.FusionFC,
		Epochs:    4,
		BatchSize: 8,
		Seed:      13,
	}, func() nn.Optimizer { return opt.NewAdam(0.01) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // C(3,2)
		t.Fatalf("got %d pair results, want 3", len(results))
	}
	acc, f1 := MeanPairMetrics(results)
	if acc < 0.7 {
		t.Fatalf("mean pairwise accuracy %v, want >= 0.7", acc)
	}
	if f1 <= 0 {
		t.Fatalf("mean pairwise F1 %v", f1)
	}
}

func TestMeanPairMetricsEmpty(t *testing.T) {
	acc, f1 := MeanPairMetrics(nil)
	if acc != 0 || f1 != 0 {
		t.Fatal("empty results should give zeros")
	}
}

func TestEvaluatePairsValidation(t *testing.T) {
	c := corpus(t, 2, 5, 1)
	if _, err := EvaluatePairs(c.Sessions, []int{0}, PairwiseConfig{Hidden: 2}, func() nn.Optimizer {
		return opt.NewAdam(0.01)
	}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}
