package baselines

import (
	"math"
	"math/rand"
	"sync"

	"mobiledl/internal/tensor"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling (sqrt(features) by default). Trees train concurrently.
type RandomForest struct {
	NumTrees       int
	MaxDepth       int
	MinSamplesLeaf int
	Seed           int64
	// Workers bounds training concurrency (0 = NumTrees, i.e. unbounded).
	Workers int

	trees   []*DecisionTree
	classes int
}

var _ Classifier = (*RandomForest)(nil)

// NewRandomForest returns a forest with 50 trees of depth 10.
func NewRandomForest() *RandomForest {
	return &RandomForest{NumTrees: 50, MaxDepth: 10, MinSamplesLeaf: 2, Seed: 1, Workers: 4}
}

// Name implements Classifier.
func (m *RandomForest) Name() string { return "RandomForest" }

// Fit implements Classifier.
func (m *RandomForest) Fit(x *tensor.Matrix, labels []int, classes int) error {
	if err := validateFit(x, labels, classes); err != nil {
		return err
	}
	m.classes = classes
	m.trees = make([]*DecisionTree, m.NumTrees)
	maxFeatures := int(math.Sqrt(float64(x.Cols())))
	if maxFeatures < 1 {
		maxFeatures = 1
	}

	workers := m.Workers
	if workers <= 0 {
		workers = m.NumTrees
	}
	sem := make(chan struct{}, workers)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup

	// Pre-derive per-tree seeds deterministically so concurrency does not
	// affect reproducibility.
	seedRng := rand.New(rand.NewSource(m.Seed))
	seeds := make([]int64, m.NumTrees)
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	for t := 0; t < m.NumTrees; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			rng := rand.New(rand.NewSource(seeds[t]))
			// Bootstrap sample.
			n := x.Rows()
			idx := make([]int, n)
			for i := range idx {
				idx[i] = rng.Intn(n)
			}
			xb, err := x.SelectRows(idx)
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			lb := make([]int, n)
			for i, p := range idx {
				lb[i] = labels[p]
			}
			tree := &DecisionTree{
				MaxDepth:       m.MaxDepth,
				MinSamplesLeaf: m.MinSamplesLeaf,
				MaxFeatures:    maxFeatures,
				Seed:           seeds[t],
			}
			if err := tree.Fit(xb, lb, classes); err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			m.trees[t] = tree
		}(t)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// Predict implements Classifier via soft voting over leaf distributions.
func (m *RandomForest) Predict(x *tensor.Matrix) ([]int, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotFitted
	}
	out := make([]int, x.Rows())
	votes := make([]float64, m.classes)
	for i := range out {
		row := x.Row(i)
		for c := range votes {
			votes[c] = 0
		}
		for _, tree := range m.trees {
			for c, p := range tree.PredictProba(row) {
				votes[c] += p
			}
		}
		best, bestV := 0, math.Inf(-1)
		for c, v := range votes {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[i] = best
	}
	return out, nil
}

// PredictBatch implements Classifier: the mean of the trees' leaf
// distributions (soft voting), so each row sums to 1.
func (m *RandomForest) PredictBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotFitted
	}
	out := tensor.New(x.Rows(), m.classes)
	inv := 1 / float64(len(m.trees))
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		dst := out.Row(i)
		for _, tree := range m.trees {
			for c, p := range tree.PredictProba(row) {
				dst[c] += p * inv
			}
		}
	}
	return out, nil
}

// Classes implements Classifier.
func (m *RandomForest) Classes() int { return m.classes }
