package baselines

import (
	"errors"
	"math"
	"testing"
)

// TestClassifierConformance pins down the contract every Classifier must
// satisfy so the serving BaselineBackend can adapt any of them blindly:
// Classes is 0 before Fit and the fitted class count after; PredictBatch
// errors with ErrNotFitted before Fit and afterwards returns a rows x
// Classes() matrix whose rows are probability distributions consistent with
// Predict's argmax.
func TestClassifierConformance(t *testing.T) {
	const classes = 3
	x, labels := blobs(11, 240, classes, 5, 0.5)
	models := []func() Classifier{
		func() Classifier { return NewLogisticRegression() },
		func() Classifier { return NewLinearSVM() },
		func() Classifier { return NewDecisionTree() },
		func() Classifier { return NewRandomForest() },
		func() Classifier { return NewGradientBoosting() },
	}
	for _, mk := range models {
		m := mk()
		t.Run(m.Name(), func(t *testing.T) {
			if got := m.Classes(); got != 0 {
				t.Fatalf("Classes() before Fit = %d, want 0", got)
			}
			if _, err := m.PredictBatch(x); !errors.Is(err, ErrNotFitted) {
				t.Fatalf("PredictBatch before Fit: %v, want ErrNotFitted", err)
			}
			if err := m.Fit(x, labels, classes); err != nil {
				t.Fatal(err)
			}
			if got := m.Classes(); got != classes {
				t.Fatalf("Classes() after Fit = %d, want %d", got, classes)
			}

			probs, err := m.PredictBatch(x)
			if err != nil {
				t.Fatal(err)
			}
			if probs.Rows() != x.Rows() || probs.Cols() != classes {
				t.Fatalf("PredictBatch shape %dx%d, want %dx%d",
					probs.Rows(), probs.Cols(), x.Rows(), classes)
			}
			preds, err := m.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			correct := 0
			for i := 0; i < probs.Rows(); i++ {
				row := probs.Row(i)
				sum := 0.0
				for _, p := range row {
					if p < 0 || p > 1+1e-9 || math.IsNaN(p) {
						t.Fatalf("row %d: probability %v out of [0,1]", i, p)
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-6 {
					t.Fatalf("row %d: probabilities sum to %v", i, sum)
				}
				// Predict and PredictBatch must agree on a clear winner; allow
				// exact ties to resolve either way.
				if probs.At(i, preds[i]) < probs.At(i, probs.ArgMaxRow(i))-1e-12 {
					t.Fatalf("row %d: Predict chose class %d but PredictBatch prefers %d",
						i, preds[i], probs.ArgMaxRow(i))
				}
				if preds[i] == labels[i] {
					correct++
				}
			}
			if acc := float64(correct) / float64(len(labels)); acc < 0.85 {
				t.Fatalf("train accuracy %v on separable blobs", acc)
			}
		})
	}
}
