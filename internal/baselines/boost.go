package baselines

import (
	"math"
	"sort"

	"mobiledl/internal/tensor"
)

// GradientBoosting is an XGBoost-style tree-boosting classifier [47]:
// per-round, per-class regression trees fit to the first- and second-order
// gradients of the softmax cross-entropy objective, with L2 leaf
// regularization (lambda), minimum split gain (gamma) and shrinkage (eta).
type GradientBoosting struct {
	Rounds         int
	MaxDepth       int
	Eta            float64
	Lambda         float64
	Gamma          float64
	MinChildWeight float64

	trees     [][]*regTree // [round][class]
	classes   int
	baseScore float64
}

var _ Classifier = (*GradientBoosting)(nil)

// NewGradientBoosting returns boosting with XGBoost-like defaults.
func NewGradientBoosting() *GradientBoosting {
	return &GradientBoosting{
		Rounds:         40,
		MaxDepth:       4,
		Eta:            0.3,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
	}
}

// Name implements Classifier.
func (m *GradientBoosting) Name() string { return "XGBoost" }

// Fit implements Classifier.
func (m *GradientBoosting) Fit(x *tensor.Matrix, labels []int, classes int) error {
	if err := validateFit(x, labels, classes); err != nil {
		return err
	}
	m.classes = classes
	n := x.Rows()
	logits := tensor.New(n, classes)
	m.trees = m.trees[:0]

	// Pre-sort feature orderings once; reused by every tree.
	sorted := presortFeatures(x)

	grad := make([]float64, n)
	hess := make([]float64, n)
	for round := 0; round < m.Rounds; round++ {
		probs := tensor.Softmax(logits)
		roundTrees := make([]*regTree, classes)
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				p := probs.At(i, c)
				y := 0.0
				if labels[i] == c {
					y = 1.0
				}
				grad[i] = p - y
				hess[i] = math.Max(p*(1-p), 1e-16)
			}
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			tree := m.growReg(x, sorted, grad, hess, idx, 0)
			roundTrees[c] = tree
			for i := 0; i < n; i++ {
				logits.Set(i, c, logits.At(i, c)+m.Eta*tree.predict(x.Row(i)))
			}
		}
		m.trees = append(m.trees, roundTrees)
	}
	return nil
}

// regTree is a regression tree over (gradient, hessian) statistics.
type regTree struct {
	feature   int
	threshold float64
	left      *regTree
	right     *regTree
	leaf      bool
	weight    float64
}

func (t *regTree) predict(row []float64) float64 {
	for !t.leaf {
		if row[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.weight
}

// presortFeatures returns, per feature, sample indices sorted by value.
func presortFeatures(x *tensor.Matrix) [][]int {
	out := make([][]int, x.Cols())
	for f := 0; f < x.Cols(); f++ {
		idx := make([]int, x.Rows())
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x.At(idx[a], f) < x.At(idx[b], f) })
		out[f] = idx
	}
	return out
}

func (m *GradientBoosting) growReg(x *tensor.Matrix, sorted [][]int, grad, hess []float64, idx []int, depth int) *regTree {
	var gSum, hSum float64
	for _, i := range idx {
		gSum += grad[i]
		hSum += hess[i]
	}
	leafWeight := -gSum / (hSum + m.Lambda)
	if depth >= m.MaxDepth || len(idx) < 2 {
		return &regTree{leaf: true, weight: leafWeight}
	}

	parentScore := gSum * gSum / (hSum + m.Lambda)
	inSet := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		inSet[i] = struct{}{}
	}

	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0
	for f := 0; f < x.Cols(); f++ {
		var gl, hl float64
		var prev float64
		first := true
		for _, i := range sorted[f] {
			if _, ok := inSet[i]; !ok {
				continue
			}
			v := x.At(i, f)
			if !first && v != prev && hl >= m.MinChildWeight && (hSum-hl) >= m.MinChildWeight {
				gr := gSum - gl
				hr := hSum - hl
				gain := 0.5*(gl*gl/(hl+m.Lambda)+gr*gr/(hr+m.Lambda)-parentScore) - m.Gamma
				if gain > bestGain {
					bestGain = gain
					bestFeature = f
					bestThreshold = (prev + v) / 2
				}
			}
			gl += grad[i]
			hl += hess[i]
			prev = v
			first = false
		}
	}
	if bestFeature < 0 || bestGain <= 0 {
		return &regTree{leaf: true, weight: leafWeight}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, bestFeature) <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &regTree{leaf: true, weight: leafWeight}
	}
	return &regTree{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      m.growReg(x, sorted, grad, hess, leftIdx, depth+1),
		right:     m.growReg(x, sorted, grad, hess, rightIdx, depth+1),
	}
}

// Predict implements Classifier.
func (m *GradientBoosting) Predict(x *tensor.Matrix) ([]int, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotFitted
	}
	out := make([]int, x.Rows())
	scores := make([]float64, m.classes)
	for i := range out {
		m.scoreRow(x.Row(i), scores)
		best, bestV := 0, math.Inf(-1)
		for c, v := range scores {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[i] = best
	}
	return out, nil
}

// PredictBatch implements Classifier: softmax over the ensemble logits.
func (m *GradientBoosting) PredictBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotFitted
	}
	logits := tensor.New(x.Rows(), m.classes)
	for i := 0; i < x.Rows(); i++ {
		m.scoreRow(x.Row(i), logits.Row(i))
	}
	return tensor.Softmax(logits), nil
}

// Classes implements Classifier.
func (m *GradientBoosting) Classes() int { return m.classes }

// scoreRow accumulates the ensemble's per-class logits for one sample into
// scores (len m.classes, overwritten).
func (m *GradientBoosting) scoreRow(row []float64, scores []float64) {
	for c := range scores {
		scores[c] = 0
	}
	for _, round := range m.trees {
		for c, tree := range round {
			scores[c] += m.Eta * tree.predict(row)
		}
	}
}
