package baselines

import (
	"math"
	"math/rand"
	"sort"

	"mobiledl/internal/tensor"
)

// DecisionTree is a CART classifier using Gini impurity and exact greedy
// splits over sorted feature values.
type DecisionTree struct {
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures limits the features considered per split (0 = all);
	// the random forest sets it to sqrt(features).
	MaxFeatures int
	Seed        int64

	root    *treeNode
	classes int
}

var _ Classifier = (*DecisionTree)(nil)

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// leaf prediction: class index and class distribution
	leaf  bool
	class int
	dist  []float64
}

// NewDecisionTree returns a CART tree with defaults matching common library
// settings (unbounded-ish depth, leaf size 2).
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{MaxDepth: 12, MinSamplesLeaf: 2, Seed: 1}
}

// Name implements Classifier.
func (m *DecisionTree) Name() string { return "Decision Tree" }

// Fit implements Classifier.
func (m *DecisionTree) Fit(x *tensor.Matrix, labels []int, classes int) error {
	if err := validateFit(x, labels, classes); err != nil {
		return err
	}
	m.classes = classes
	idx := make([]int, x.Rows())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.root = m.grow(rng, x, labels, idx, 0)
	return nil
}

func (m *DecisionTree) grow(rng *rand.Rand, x *tensor.Matrix, labels, idx []int, depth int) *treeNode {
	dist := make([]float64, m.classes)
	for _, i := range idx {
		dist[labels[i]]++
	}
	majority, pure := majorityClass(dist, len(idx))
	if pure || depth >= m.MaxDepth || len(idx) < 2*m.MinSamplesLeaf {
		return &treeNode{leaf: true, class: majority, dist: normalize(dist, len(idx))}
	}

	feature, threshold, gain := m.bestSplit(rng, x, labels, idx)
	if gain <= 1e-12 {
		return &treeNode{leaf: true, class: majority, dist: normalize(dist, len(idx))}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, feature) <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < m.MinSamplesLeaf || len(rightIdx) < m.MinSamplesLeaf {
		return &treeNode{leaf: true, class: majority, dist: normalize(dist, len(idx))}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      m.grow(rng, x, labels, leftIdx, depth+1),
		right:     m.grow(rng, x, labels, rightIdx, depth+1),
	}
}

// bestSplit scans candidate features for the split maximizing Gini gain.
func (m *DecisionTree) bestSplit(rng *rand.Rand, x *tensor.Matrix, labels, idx []int) (feature int, threshold, gain float64) {
	nFeat := x.Cols()
	features := make([]int, nFeat)
	for i := range features {
		features[i] = i
	}
	if m.MaxFeatures > 0 && m.MaxFeatures < nFeat {
		rng.Shuffle(nFeat, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:m.MaxFeatures]
	}

	parentDist := make([]float64, m.classes)
	for _, i := range idx {
		parentDist[labels[i]]++
	}
	n := float64(len(idx))
	parentGini := gini(parentDist, n)

	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0

	order := make([]int, len(idx))
	leftDist := make([]float64, m.classes)
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x.At(order[a], f) < x.At(order[b], f) })
		for c := range leftDist {
			leftDist[c] = 0
		}
		rightDist := make([]float64, m.classes)
		copy(rightDist, parentDist)
		for pos := 0; pos < len(order)-1; pos++ {
			l := labels[order[pos]]
			leftDist[l]++
			rightDist[l]--
			v, next := x.At(order[pos], f), x.At(order[pos+1], f)
			if v == next {
				continue
			}
			nl, nr := float64(pos+1), n-float64(pos+1)
			g := parentGini - (nl/n)*gini(leftDist, nl) - (nr/n)*gini(rightDist, nr)
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThreshold = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0
	}
	return bestFeature, bestThreshold, bestGain
}

func gini(dist []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range dist {
		p := c / n
		g -= p * p
	}
	return g
}

func majorityClass(dist []float64, n int) (class int, pure bool) {
	best, bestC := -1.0, 0
	for c, v := range dist {
		if v > best {
			best, bestC = v, c
		}
	}
	return bestC, best == float64(n)
}

func normalize(dist []float64, n int) []float64 {
	out := make([]float64, len(dist))
	if n == 0 {
		return out
	}
	for i, v := range dist {
		out[i] = v / float64(n)
	}
	return out
}

// Predict implements Classifier.
func (m *DecisionTree) Predict(x *tensor.Matrix) ([]int, error) {
	if m.root == nil {
		return nil, ErrNotFitted
	}
	out := make([]int, x.Rows())
	for i := range out {
		out[i] = m.predictRow(x.Row(i))
	}
	return out, nil
}

// PredictBatch implements Classifier: each row gets its leaf's class
// distribution.
func (m *DecisionTree) PredictBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if m.root == nil {
		return nil, ErrNotFitted
	}
	out := tensor.New(x.Rows(), m.classes)
	for i := 0; i < x.Rows(); i++ {
		copy(out.Row(i), m.PredictProba(x.Row(i)))
	}
	return out, nil
}

// Classes implements Classifier.
func (m *DecisionTree) Classes() int { return m.classes }

// PredictProba returns per-class leaf distributions (used by the forest).
func (m *DecisionTree) PredictProba(row []float64) []float64 {
	node := m.root
	for !node.leaf {
		if row[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.dist
}

func (m *DecisionTree) predictRow(row []float64) int {
	node := m.root
	for !node.leaf {
		if row[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.class
}

// Depth returns the depth of the fitted tree (0 for a stump/leaf).
func (m *DecisionTree) Depth() int { return nodeDepth(m.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	return 1 + int(math.Max(float64(nodeDepth(n.left)), float64(nodeDepth(n.right))))
}
