// Package baselines implements the classical machine-learning comparators of
// the paper's Table I and Section IV-A: multinomial logistic regression, a
// linear one-vs-rest SVM, a CART decision tree, a random forest, and an
// XGBoost-style second-order gradient-boosted tree ensemble. All are
// from-scratch, stdlib-only implementations.
//
// Every model satisfies the shared Classifier interface (Fit, PredictBatch,
// Classes, Predict, Name), which is the seam the serving runtime's
// BaselineBackend adapts: any fitted Classifier can be registered and served
// through the same batcher/executor path as the neural models.
package baselines

import (
	"errors"
	"fmt"

	"mobiledl/internal/tensor"
)

// ErrNotFitted is returned by Predict/PredictBatch before Fit has been called.
var ErrNotFitted = errors.New("baselines: model not fitted")

// ErrInput reports invalid training input.
var ErrInput = errors.New("baselines: invalid input")

// Classifier is the common interface over all baseline models — the single
// seam batch consumers (experiments tables, the serving BaselineBackend)
// program against.
type Classifier interface {
	// Fit trains on x (samples x features) with integer labels in [0, classes).
	Fit(x *tensor.Matrix, labels []int, classes int) error
	// PredictBatch returns per-row class scores as a freshly allocated
	// x.Rows() x Classes() matrix. Each row is a probability distribution
	// (non-negative, summing to 1); margin models (SVM, boosting) report a
	// softmax over their raw scores, so treat those as uncalibrated
	// confidences rather than true posteriors.
	PredictBatch(x *tensor.Matrix) (*tensor.Matrix, error)
	// Classes returns the class count fixed at Fit time (0 before Fit).
	Classes() int
	// Predict returns the predicted (argmax) class per row of x.
	Predict(x *tensor.Matrix) ([]int, error)
	// Name returns the display name used in reproduced tables.
	Name() string
}

func validateFit(x *tensor.Matrix, labels []int, classes int) error {
	if x.Rows() == 0 || x.Rows() != len(labels) {
		return fmt.Errorf("%w: %d rows vs %d labels", ErrInput, x.Rows(), len(labels))
	}
	if classes < 2 {
		return fmt.Errorf("%w: %d classes", ErrInput, classes)
	}
	for i, l := range labels {
		if l < 0 || l >= classes {
			return fmt.Errorf("%w: label %d at row %d out of [0,%d)", ErrInput, l, i, classes)
		}
	}
	return nil
}
