package baselines

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/metrics"
	"mobiledl/internal/tensor"
)

// blobs builds a linearly separable-ish multi-class dataset.
func blobs(seed int64, n, classes, dim int, spread float64) (*tensor.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 3
		}
	}
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = centers[c][j] + spread*rng.NormFloat64()
		}
	}
	return x, labels
}

// xorData builds the classic non-linearly-separable XOR pattern.
func xorData(seed int64, n int) (*tensor.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		labels[i] = a ^ b
		x.Set(i, 0, float64(a)+0.2*rng.NormFloat64())
		x.Set(i, 1, float64(b)+0.2*rng.NormFloat64())
	}
	return x, labels
}

func fitAndScore(t *testing.T, m Classifier, x *tensor.Matrix, labels []int, classes int) float64 {
	t.Helper()
	if err := m.Fit(x, labels, classes); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	preds, err := m.Predict(x)
	if err != nil {
		t.Fatalf("%s predict: %v", m.Name(), err)
	}
	acc, err := metrics.Accuracy(preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestAllClassifiersOnBlobs(t *testing.T) {
	x, labels := blobs(1, 300, 4, 6, 0.5)
	for _, m := range []Classifier{
		NewLogisticRegression(),
		NewLinearSVM(),
		NewDecisionTree(),
		NewRandomForest(),
		NewGradientBoosting(),
	} {
		t.Run(m.Name(), func(t *testing.T) {
			if acc := fitAndScore(t, m, x, labels, 4); acc < 0.9 {
				t.Fatalf("%s accuracy %v on separable blobs", m.Name(), acc)
			}
		})
	}
}

func TestTreesBeatLinearOnXOR(t *testing.T) {
	// XOR is the canonical case where linear models fail and trees succeed;
	// this mirrors the paper's observation that LR/SVM underperform on
	// structured tasks while tree ensembles do well.
	x, labels := xorData(2, 400)
	lrAcc := fitAndScore(t, NewLogisticRegression(), x, labels, 2)
	treeAcc := fitAndScore(t, NewDecisionTree(), x, labels, 2)
	boostAcc := fitAndScore(t, NewGradientBoosting(), x, labels, 2)
	if treeAcc < 0.9 || boostAcc < 0.9 {
		t.Fatalf("tree=%v boost=%v on XOR, want >= 0.9", treeAcc, boostAcc)
	}
	if lrAcc > 0.75 {
		t.Fatalf("LR accuracy %v on XOR; should be near chance", lrAcc)
	}
	if treeAcc <= lrAcc || boostAcc <= lrAcc {
		t.Fatal("trees should beat linear models on XOR")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	x := tensor.New(2, 2)
	for _, m := range []Classifier{
		NewLogisticRegression(),
		NewLinearSVM(),
		NewDecisionTree(),
		NewRandomForest(),
		NewGradientBoosting(),
	} {
		if _, err := m.Predict(x); !errors.Is(err, ErrNotFitted) {
			t.Fatalf("%s: want ErrNotFitted, got %v", m.Name(), err)
		}
	}
}

func TestFitValidation(t *testing.T) {
	x, labels := blobs(3, 20, 2, 3, 0.3)
	m := NewDecisionTree()
	if err := m.Fit(x, labels[:10], 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for label length mismatch, got %v", err)
	}
	if err := m.Fit(x, labels, 1); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for 1 class, got %v", err)
	}
	bad := append([]int(nil), labels...)
	bad[0] = 9
	if err := m.Fit(x, bad, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("want ErrInput for out-of-range label, got %v", err)
	}
}

func TestForestDeterminism(t *testing.T) {
	x, labels := blobs(4, 150, 3, 5, 0.6)
	a := NewRandomForest()
	b := NewRandomForest()
	if err := a.Fit(x, labels, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, labels, 3); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predict(x)
	pb, _ := b.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed gave different forest predictions")
		}
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	// With high spread and held-out data, bagging should not lose to a
	// single deep tree (variance reduction).
	xTrain, yTrain := blobs(5, 300, 3, 8, 2.2)
	xTest, yTest := blobs(6, 300, 3, 8, 2.2)
	_ = xTest
	_ = yTest
	// Use same centers: regenerate test from same seed's centers by reusing
	// seed 5 with different noise is not possible here, so evaluate on train
	// fit quality instead via a fresh split of one dataset.
	half := 150
	xTr, _ := xTrain.SliceRows(0, half)
	xTe, _ := xTrain.SliceRows(half, 300)
	yTr, yTe := yTrain[:half], yTrain[half:]

	tree := NewDecisionTree()
	if err := tree.Fit(xTr, yTr, 3); err != nil {
		t.Fatal(err)
	}
	forest := NewRandomForest()
	if err := forest.Fit(xTr, yTr, 3); err != nil {
		t.Fatal(err)
	}
	tp, _ := tree.Predict(xTe)
	fp, _ := forest.Predict(xTe)
	ta, _ := metrics.Accuracy(tp, yTe)
	fa, _ := metrics.Accuracy(fp, yTe)
	if fa+0.02 < ta {
		t.Fatalf("forest (%v) materially worse than single tree (%v)", fa, ta)
	}
}

func TestTreeDepthRespected(t *testing.T) {
	x, labels := blobs(7, 200, 4, 5, 1.0)
	tree := &DecisionTree{MaxDepth: 3, MinSamplesLeaf: 1, Seed: 1}
	if err := tree.Fit(x, labels, 4); err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Fatalf("tree depth %d exceeds MaxDepth 3", d)
	}
}

func TestBoostingImprovesWithRounds(t *testing.T) {
	x, labels := xorData(8, 300)
	weak := &GradientBoosting{Rounds: 1, MaxDepth: 2, Eta: 0.3, Lambda: 1, MinChildWeight: 1}
	strong := &GradientBoosting{Rounds: 30, MaxDepth: 2, Eta: 0.3, Lambda: 1, MinChildWeight: 1}
	weakAcc := fitAndScore(t, weak, x, labels, 2)
	strongAcc := fitAndScore(t, strong, x, labels, 2)
	if strongAcc <= weakAcc {
		t.Fatalf("boosting did not improve with rounds: %v -> %v", weakAcc, strongAcc)
	}
}
