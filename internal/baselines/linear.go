package baselines

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/tensor"
)

// LogisticRegression is multinomial (softmax) logistic regression trained by
// full-batch gradient descent with L2 regularization.
type LogisticRegression struct {
	LR     float64
	Epochs int
	L2     float64
	Seed   int64

	w       *tensor.Matrix // (features+1) x classes, last row is bias
	classes int
}

var _ Classifier = (*LogisticRegression)(nil)

// NewLogisticRegression returns LR with sensible defaults for the
// standardized features used in this repository.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{LR: 0.1, Epochs: 300, L2: 1e-4, Seed: 1}
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "LR" }

// Fit implements Classifier.
func (m *LogisticRegression) Fit(x *tensor.Matrix, labels []int, classes int) error {
	if err := validateFit(x, labels, classes); err != nil {
		return err
	}
	m.classes = classes
	xb := appendBias(x)
	rng := rand.New(rand.NewSource(m.Seed))
	m.w = tensor.RandNormal(rng, xb.Cols(), classes, 0, 0.01)
	n := float64(xb.Rows())
	oneHot := tensor.New(xb.Rows(), classes)
	for i, l := range labels {
		oneHot.Set(i, l, 1)
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		logits, err := tensor.MatMul(xb, m.w)
		if err != nil {
			return fmt.Errorf("logreg fit: %w", err)
		}
		probs := tensor.Softmax(logits)
		diff, err := tensor.Sub(probs, oneHot)
		if err != nil {
			return err
		}
		grad, err := tensor.TMatMul(xb, diff)
		if err != nil {
			return err
		}
		grad.ScaleInPlace(1 / n)
		if err := tensor.AxpyInPlace(grad, m.L2, m.w); err != nil {
			return err
		}
		if err := tensor.AxpyInPlace(m.w, -m.LR, grad); err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(x *tensor.Matrix) ([]int, error) {
	if m.w == nil {
		return nil, ErrNotFitted
	}
	logits, err := tensor.MatMul(appendBias(x), m.w)
	if err != nil {
		return nil, err
	}
	return argmaxRows(logits), nil
}

// PredictBatch implements Classifier: softmax class posteriors.
func (m *LogisticRegression) PredictBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if m.w == nil {
		return nil, ErrNotFitted
	}
	logits, err := tensor.MatMul(appendBias(x), m.w)
	if err != nil {
		return nil, err
	}
	return tensor.Softmax(logits), nil
}

// Classes implements Classifier.
func (m *LogisticRegression) Classes() int { return m.classes }

// LinearSVM is a one-vs-rest linear support vector machine trained with
// SGD on the L2-regularized hinge loss (Pegasos-style).
type LinearSVM struct {
	Lambda float64
	Epochs int
	Seed   int64

	w       *tensor.Matrix // (features+1) x classes
	classes int
}

var _ Classifier = (*LinearSVM)(nil)

// NewLinearSVM returns an SVM with defaults tuned for standardized features.
func NewLinearSVM() *LinearSVM {
	return &LinearSVM{Lambda: 1e-3, Epochs: 120, Seed: 1}
}

// Name implements Classifier.
func (m *LinearSVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (m *LinearSVM) Fit(x *tensor.Matrix, labels []int, classes int) error {
	if err := validateFit(x, labels, classes); err != nil {
		return err
	}
	m.classes = classes
	xb := appendBias(x)
	rng := rand.New(rand.NewSource(m.Seed))
	m.w = tensor.New(xb.Cols(), classes)
	n := xb.Rows()
	t := 0
	order := rng.Perm(n)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			eta := 1 / (m.Lambda * float64(t))
			row := xb.Row(i)
			for c := 0; c < classes; c++ {
				y := -1.0
				if labels[i] == c {
					y = 1.0
				}
				var score float64
				for j, v := range row {
					score += v * m.w.At(j, c)
				}
				// w <- (1 - eta*lambda) w [+ eta*y*x if margin violated]
				decay := 1 - eta*m.Lambda
				for j := range row {
					m.w.Set(j, c, m.w.At(j, c)*decay)
				}
				if y*score < 1 {
					for j, v := range row {
						m.w.Set(j, c, m.w.At(j, c)+eta*y*v)
					}
				}
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *LinearSVM) Predict(x *tensor.Matrix) ([]int, error) {
	if m.w == nil {
		return nil, ErrNotFitted
	}
	scores, err := tensor.MatMul(appendBias(x), m.w)
	if err != nil {
		return nil, err
	}
	return argmaxRows(scores), nil
}

// PredictBatch implements Classifier: softmax over the per-class margins
// (argmax-preserving, but not calibrated posteriors).
func (m *LinearSVM) PredictBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if m.w == nil {
		return nil, ErrNotFitted
	}
	scores, err := tensor.MatMul(appendBias(x), m.w)
	if err != nil {
		return nil, err
	}
	return tensor.Softmax(scores), nil
}

// Classes implements Classifier.
func (m *LinearSVM) Classes() int { return m.classes }

func appendBias(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows(), x.Cols()+1)
	for i := 0; i < x.Rows(); i++ {
		row := out.Row(i)
		copy(row, x.Row(i))
		row[x.Cols()] = 1
	}
	return out
}

func argmaxRows(m *tensor.Matrix) []int {
	out := make([]int, m.Rows())
	for i := range out {
		out[i] = m.ArgMaxRow(i)
	}
	return out
}
