// Package leakcheck asserts that a test leaves no goroutines behind. The
// serving stack leans on background goroutines with explicit shutdown
// contracts — batcher flush loops, coordinator training loops, cluster
// gossip tickers — and a leaked one is exactly the kind of bug the race
// detector misses: everything still passes, the process just accretes
// stuck goroutines. Check snapshots the live goroutine set and registers a
// cleanup that fails the test if new goroutines survive shutdown.
//
// Zero dependencies: the snapshot is runtime.Stack(buf, true) parsed by
// hand, the same source `go test -timeout` dumps come from.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredSubstrings marks goroutines outside the test's control: runtime
// housekeeping, the testing framework itself, and net/http's keep-alive
// pool, whose connection goroutines linger by design after a client
// request finishes.
var ignoredSubstrings = []string{
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).dialConn",
	"net/http/httptest.(*Server).goServe",
	"net/http.(*Server).Serve",
	"os/signal.signal_recv",
	"runtime.ReadMemStats",
	"testing.(*T).Run",
	"testing.runTests",
	"testing.(*M).",
}

// Check snapshots the current goroutines and, at test cleanup, verifies the
// test did not add any. Detection retries with backoff for about two
// seconds so goroutines that are mid-exit (closed channel received, return
// in progress) do not count as leaks.
func Check(t testing.TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		leaked := settle(before)
		if len(leaked) == 0 {
			return
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// settle polls until no new goroutines remain or the retry budget (~2s)
// runs out, returning the stacks still unaccounted for.
func settle(before map[string]bool) []string {
	delay := 1 * time.Millisecond
	var leaked []string
	for i := 0; i < 20; i++ {
		leaked = diff(before)
		if len(leaked) == 0 {
			return nil
		}
		time.Sleep(delay)
		if delay < 256*time.Millisecond {
			delay *= 2
		}
	}
	return leaked
}

// snapshot captures the live goroutine set keyed by goroutine ID
// ("goroutine 42"), value true; the caller only needs membership.
func snapshot() map[string]bool {
	out := make(map[string]bool)
	for _, rec := range records() {
		out[goroutineID(rec)] = true
	}
	return out
}

// diff returns the stack records of goroutines live now but not in before
// and not on the ignore list.
func diff(before map[string]bool) []string {
	var leaked []string
	for _, rec := range records() {
		if before[goroutineID(rec)] || ignorable(rec) {
			continue
		}
		leaked = append(leaked, rec)
	}
	return leaked
}

// records returns one stack record per live goroutine, including the
// caller's own (the caller is in `before` anyway, so it nets out).
func records() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var recs []string
	for _, rec := range strings.Split(string(buf), "\n\n") {
		rec = strings.TrimSpace(rec)
		if rec != "" {
			recs = append(recs, rec)
		}
	}
	return recs
}

// goroutineID extracts the "goroutine N" prefix of a record; IDs are never
// reused within a process, so membership in a snapshot identifies a
// goroutine across time.
func goroutineID(rec string) string {
	header, _, _ := strings.Cut(rec, " [")
	return header
}

// ignorable reports whether the record belongs to runtime/stdlib machinery
// the test cannot be expected to shut down.
func ignorable(rec string) bool {
	for _, s := range ignoredSubstrings {
		if strings.Contains(rec, s) {
			return true
		}
	}
	return false
}
