package leakcheck

import (
	"testing"
	"time"
)

// TestDiffDetectsAndDrains pins both halves of the contract: a goroutine
// parked on a channel shows up in the diff, and once released the settle
// loop sees it drain.
func TestDiffDetectsAndDrains(t *testing.T) {
	before := snapshot()

	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-block
	}()

	// The parked goroutine must register as a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(diff(before)) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked goroutine never appeared in diff")
		}
		time.Sleep(time.Millisecond)
	}

	close(block)
	<-done
	if leaked := settle(before); len(leaked) != 0 {
		t.Fatalf("goroutine exited but settle still reports %d leaks:\n%s", len(leaked), leaked[0])
	}
}

// TestCheckPassesOnCleanTest exercises the public entry point on a test
// that spawns and joins a goroutine — the cleanup must stay quiet.
func TestCheckPassesOnCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestIgnorable keeps stdlib machinery off the leak report.
func TestIgnorable(t *testing.T) {
	rec := "goroutine 9 [IO wait]:\nnet/http.(*persistConn).readLoop(0xc0001)\n\tnet/http/transport.go:2218"
	if !ignorable(rec) {
		t.Error("http keep-alive reader should be ignorable")
	}
	if ignorable("goroutine 7 [chan receive]:\nmobiledl/internal/serve.(*Batcher).loop(...)") {
		t.Error("application goroutines must not be ignorable")
	}
}

// TestGoroutineID parses the record header.
func TestGoroutineID(t *testing.T) {
	if got := goroutineID("goroutine 42 [running]:\nmain.main()"); got != "goroutine 42" {
		t.Errorf("goroutineID = %q, want %q", got, "goroutine 42")
	}
}
