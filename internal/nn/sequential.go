package nn

import (
	"fmt"

	"mobiledl/internal/tensor"
)

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a sequential container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Layers returns the contained layers (aliasing the internal slice is
// intentional: the compression package rewrites layers in place).
func (s *Sequential) Layers() []Layer { return s.layers }

// SetLayer replaces layer i; used by compression transforms.
func (s *Sequential) SetLayer(i int, l Layer) error {
	if i < 0 || i >= len(s.layers) {
		return fmt.Errorf("nn: SetLayer index %d of %d layers", i, len(s.layers))
	}
	s.layers[i] = l
	return nil
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	var err error
	for i, l := range s.layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return x, nil
}

// Backward implements Layer.
func (s *Sequential) Backward(gradOut *tensor.Matrix) (*tensor.Matrix, error) {
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		gradOut, err = s.layers[i].Backward(gradOut)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return gradOut, nil
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// InferPooled runs an inference forward pass (train=false), recycling every
// intermediate activation through the shared tensor pool as soon as the next
// layer has consumed it. It relies on the Layer inference contract — each
// layer returns a freshly allocated output and retains no reference to its
// input outside train mode — which every layer in this package satisfies.
// The returned matrix is freshly allocated and owned by the caller (callers
// on a hot path may Put it when done).
func (s *Sequential) InferPooled(x *tensor.Matrix) (*tensor.Matrix, error) {
	cur := x
	for i, l := range s.layers {
		next, err := l.Forward(cur, false)
		if err != nil {
			if cur != x {
				tensor.Put(cur)
			}
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		if cur != x && next != cur {
			tensor.Put(cur)
		}
		cur = next
	}
	if cur == x {
		// Empty (or fully identity) chain: the caller owns the result, so it
		// must not alias the input.
		return x.Clone(), nil
	}
	return cur, nil
}

// Predict runs inference (train=false) and returns the per-row argmax class.
func (s *Sequential) Predict(x *tensor.Matrix) ([]int, error) {
	out, err := s.Forward(x, false)
	if err != nil {
		return nil, err
	}
	preds := make([]int, out.Rows())
	for i := range preds {
		preds[i] = out.ArgMaxRow(i)
	}
	return preds, nil
}

// PredictProba runs inference and returns row-wise softmax probabilities.
func (s *Sequential) PredictProba(x *tensor.Matrix) (*tensor.Matrix, error) {
	out, err := s.Forward(x, false)
	if err != nil {
		return nil, err
	}
	return tensor.Softmax(out), nil
}
