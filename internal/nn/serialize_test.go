package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mobiledl/internal/tensor"
)

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewSequential(NewDense(rng, 4, 6), NewTanh(), NewDense(rng, 6, 2))
	dst := NewSequential(NewDense(rng, 4, 6), NewTanh(), NewDense(rng, 6, 2))

	var buf bytes.Buffer
	if err := SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !dst.Params()[i].Value.Equal(p.Value, 0) {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
	// The two models must now produce identical outputs.
	x := tensor.RandNormal(rng, 3, 4, 0, 1)
	a, err := src.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Fatal("loaded model disagrees with source model")
	}
}

func TestLoadWeightsArchitectureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewSequential(NewDense(rng, 4, 6))
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}

	// Wrong parameter count.
	bigger := NewSequential(NewDense(rng, 4, 6), NewDense(rng, 6, 2))
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), bigger.Params()); err == nil {
		t.Fatal("want error for parameter-count mismatch")
	}

	// Wrong shape (same count, same layer kind).
	wrongShape := NewSequential(NewDense(rng, 4, 8))
	err := LoadWeights(bytes.NewReader(buf.Bytes()), wrongShape.Params())
	if err == nil {
		t.Fatal("want error for shape mismatch")
	}
	if !strings.Contains(err.Error(), "param") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestLoadWeightsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := NewSequential(NewDense(rng, 2, 2))
	if err := LoadWeights(bytes.NewReader([]byte("not gob")), model.Params()); err == nil {
		t.Fatal("want error for corrupt stream")
	}
}
