package nn

import (
	"math"
	"math/rand"

	"mobiledl/internal/tensor"
)

// Activation is an elementwise activation layer. The derivative is expressed
// in terms of the cached *output* y, which suffices for the activations used
// here and avoids caching the input as well.
type Activation struct {
	name       string
	fn         func(float64) float64
	derivFromY func(float64) float64
	y          *tensor.Matrix
}

var _ Layer = (*Activation)(nil)

// NewReLU returns a rectified-linear activation layer.
func NewReLU() *Activation {
	return &Activation{
		name: "relu",
		fn:   func(v float64) float64 { return math.Max(0, v) },
		derivFromY: func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewSigmoid returns a logistic-sigmoid activation layer.
func NewSigmoid() *Activation {
	return &Activation{
		name:       "sigmoid",
		fn:         Sigmoid,
		derivFromY: func(y float64) float64 { return y * (1 - y) },
	}
}

// NewTanh returns a hyperbolic-tangent activation layer.
func NewTanh() *Activation {
	return &Activation{
		name:       "tanh",
		fn:         math.Tanh,
		derivFromY: func(y float64) float64 { return 1 - y*y },
	}
}

// Sigmoid is the numerically stable logistic function.
func Sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Name returns the activation's name.
func (a *Activation) Name() string { return a.name }

// Forward implements Layer. The output is cached for Backward only in train
// mode, so inference (train=false) is pure and safe for concurrent callers.
func (a *Activation) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	y := tensor.Apply(x, a.fn)
	if train {
		a.y = y
	}
	return y, nil
}

// Backward implements Layer.
func (a *Activation) Backward(gradOut *tensor.Matrix) (*tensor.Matrix, error) {
	if a.y == nil {
		return nil, ErrNotReady
	}
	dx := gradOut.Clone()
	yd := a.y.Data()
	dd := dx.Data()
	for i := range dd {
		dd[i] *= a.derivFromY(yd[i])
	}
	return dx, nil
}

// Params implements Layer.
func (a *Activation) Params() []*Param { return nil }

// Dropout zeroes activations with probability Rate during training and
// scales the survivors by 1/(1-Rate) ("inverted dropout"), so inference
// needs no rescaling.
type Dropout struct {
	rate float64
	rng  *rand.Rand
	mask *tensor.Matrix
}

var _ Layer = (*Dropout)(nil)

// NewDropout creates a dropout layer with the given drop probability in [0,1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	return &Dropout{rate: rate, rng: rng}
}

// Forward implements Layer. Inference (train=false) writes no state, so it
// is safe for concurrent callers.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	if !train {
		return x, nil
	}
	if d.rate == 0 {
		d.mask = nil
		return x, nil
	}
	keep := 1 - d.rate
	d.mask = tensor.New(x.Rows(), x.Cols())
	md := d.mask.Data()
	for i := range md {
		if d.rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	out, err := tensor.Mul(x, d.mask)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Matrix) (*tensor.Matrix, error) {
	if d.mask == nil {
		return gradOut, nil
	}
	return tensor.Mul(gradOut, d.mask)
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
