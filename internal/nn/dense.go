package nn

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/tensor"
)

// Dense is a fully connected layer computing y = xW + b.
type Dense struct {
	w, b *Param
	x    *tensor.Matrix // cached input from the last Forward
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with Glorot-uniform weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		w: NewParam(fmt.Sprintf("dense_w_%dx%d", in, out), tensor.GlorotUniform(rng, in, out)),
		b: NewParam(fmt.Sprintf("dense_b_%d", out), tensor.New(1, out)),
	}
}

// NewDenseFrom builds a dense layer from existing weight and bias matrices,
// used by the compression package to reconstruct factorized models.
func NewDenseFrom(w, b *tensor.Matrix) (*Dense, error) {
	if b.Rows() != 1 || b.Cols() != w.Cols() {
		return nil, fmt.Errorf("%w: dense bias %dx%d for weights %dx%d",
			tensor.ErrShape, b.Rows(), b.Cols(), w.Rows(), w.Cols())
	}
	return &Dense{w: NewParam("dense_w", w), b: NewParam("dense_b", b)}, nil
}

// In returns the input dimension.
func (d *Dense) In() int { return d.w.Value.Rows() }

// Out returns the output dimension.
func (d *Dense) Out() int { return d.w.Value.Cols() }

// Weights returns the weight parameter (in x out).
func (d *Dense) Weights() *Param { return d.w }

// Bias returns the bias parameter (1 x out).
func (d *Dense) Bias() *Param { return d.b }

// Forward implements Layer. The input is cached for Backward only in train
// mode, so inference (train=false) is pure and safe for concurrent callers.
// The matmul and the bias broadcast are fused into one output buffer, so the
// whole pass costs a single allocation (the returned matrix, which the
// caller owns).
func (d *Dense) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	y := tensor.New(x.Rows(), d.Out())
	if err := tensor.MatMulInto(y, x, d.w.Value); err != nil {
		return nil, fmt.Errorf("dense forward: %w", err)
	}
	if err := tensor.AddRowVectorInto(y, y, d.b.Value); err != nil {
		return nil, fmt.Errorf("dense forward bias: %w", err)
	}
	if train {
		d.x = x
	}
	return y, nil
}

// Backward implements Layer. Gradient temporaries come from the shared
// tensor pool and are returned before Backward exits; only dx (owned by the
// caller) is freshly allocated.
func (d *Dense) Backward(gradOut *tensor.Matrix) (*tensor.Matrix, error) {
	if d.x == nil {
		return nil, ErrNotReady
	}
	dw := tensor.Get(d.In(), d.Out())
	err := tensor.TMatMulInto(dw, d.x, gradOut)
	if err == nil {
		err = d.w.AccumulateGrad(dw)
	}
	tensor.Put(dw)
	if err != nil {
		return nil, fmt.Errorf("dense backward dW: %w", err)
	}
	db := tensor.Get(1, d.Out())
	err = tensor.SumRowsInto(db, gradOut)
	if err == nil {
		err = d.b.AccumulateGrad(db)
	}
	tensor.Put(db)
	if err != nil {
		return nil, err
	}
	dx := tensor.New(gradOut.Rows(), d.In())
	if err := tensor.MatMulTInto(dx, gradOut, d.w.Value); err != nil {
		return nil, fmt.Errorf("dense backward dX: %w", err)
	}
	return dx, nil
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }
