package nn

import (
	"math"
	"math/rand"
	"testing"

	"mobiledl/internal/tensor"
)

// numericalGrad perturbs each parameter element and measures the change in
// lossFn to approximate dLoss/dParam with central differences.
func numericalGrad(t *testing.T, p *Param, lossFn func() float64) *tensor.Matrix {
	t.Helper()
	const h = 1e-5
	grad := tensor.New(p.Value.Rows(), p.Value.Cols())
	data := p.Value.Data()
	gd := grad.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + h
		lp := lossFn()
		data[i] = orig - h
		lm := lossFn()
		data[i] = orig
		gd[i] = (lp - lm) / (2 * h)
	}
	return grad
}

func maxAbsDiff(a, b *tensor.Matrix) float64 {
	var m float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if d := math.Abs(ad[i] - bd[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(rng, 4, 3)
	loss := NewSoftmaxCrossEntropy()
	x := tensor.RandNormal(rng, 5, 4, 0, 1)
	y, err := OneHot([]int{0, 1, 2, 1, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}

	lossFn := func() float64 {
		out, err := layer.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		l, err := loss.Forward(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	ZeroGrads(layer.Params())
	lossFn()
	g, err := loss.Backward()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := layer.Backward(g); err != nil {
		t.Fatal(err)
	}

	for _, p := range layer.Params() {
		num := numericalGrad(t, p, lossFn)
		if d := maxAbsDiff(p.Grad, num); d > 1e-6 {
			t.Errorf("param %s analytic/numeric gradient diff %v", p.Name, d)
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewSequential(
		NewDense(rng, 3, 6),
		NewTanh(),
		NewDense(rng, 6, 4),
		NewReLU(),
		NewDense(rng, 4, 2),
	)
	loss := NewSoftmaxCrossEntropy()
	x := tensor.RandNormal(rng, 4, 3, 0, 1)
	y, _ := OneHot([]int{0, 1, 1, 0}, 2)

	lossFn := func() float64 {
		out, err := model.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		l, err := loss.Forward(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	ZeroGrads(model.Params())
	lossFn()
	g, _ := loss.Backward()
	if _, err := model.Backward(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range model.Params() {
		num := numericalGrad(t, p, lossFn)
		if d := maxAbsDiff(p.Grad, num); d > 1e-5 {
			t.Errorf("param %s analytic/numeric gradient diff %v", p.Name, d)
		}
	}
}

func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gru := NewGRU(rng, 3, 4)
	head := NewDense(rng, 4, 2)
	loss := NewSoftmaxCrossEntropy()
	seq := tensor.RandNormal(rng, 6, 3, 0, 1)
	y, _ := OneHot([]int{1}, 2)

	lossFn := func() float64 {
		h, err := gru.ForwardSeq(seq)
		if err != nil {
			t.Fatal(err)
		}
		out, err := head.Forward(h, true)
		if err != nil {
			t.Fatal(err)
		}
		l, err := loss.Forward(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	allParams := append(gru.Params(), head.Params()...)
	ZeroGrads(allParams)
	lossFn()
	g, _ := loss.Backward()
	dh, err := head.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gru.BackwardLast(dh); err != nil {
		t.Fatal(err)
	}
	for _, p := range allParams {
		num := numericalGrad(t, p, lossFn)
		if d := maxAbsDiff(p.Grad, num); d > 1e-5 {
			t.Errorf("param %s analytic/numeric gradient diff %v", p.Name, d)
		}
	}
}

func TestGRUInputGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gru := NewGRU(rng, 2, 3)
	seq := tensor.RandNormal(rng, 4, 2, 0, 1)
	// Loss = sum of final hidden state, so dLast is all ones.
	lossFn := func() float64 {
		h, err := gru.ForwardSeq(seq)
		if err != nil {
			t.Fatal(err)
		}
		return h.Sum()
	}
	ZeroGrads(gru.Params())
	lossFn()
	dLast := tensor.New(1, 3)
	dLast.Fill(1)
	dSeq, err := gru.BackwardLast(dLast)
	if err != nil {
		t.Fatal(err)
	}
	// Numerical input gradient.
	const h = 1e-5
	data := seq.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + h
		lp := lossFn()
		data[i] = orig - h
		lm := lossFn()
		data[i] = orig
		num := (lp - lm) / (2 * h)
		if d := math.Abs(num - dSeq.Data()[i]); d > 1e-6 {
			t.Fatalf("input grad element %d: analytic %v numeric %v", i, dSeq.Data()[i], num)
		}
	}
}

func TestBiGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bi := NewBiGRU(rng, 2, 3)
	head := NewDense(rng, 6, 2)
	loss := NewSoftmaxCrossEntropy()
	seq := tensor.RandNormal(rng, 5, 2, 0, 1)
	y, _ := OneHot([]int{0}, 2)

	lossFn := func() float64 {
		hcat, err := bi.ForwardSeq(seq)
		if err != nil {
			t.Fatal(err)
		}
		out, err := head.Forward(hcat, true)
		if err != nil {
			t.Fatal(err)
		}
		l, err := loss.Forward(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	all := append(bi.Params(), head.Params()...)
	ZeroGrads(all)
	lossFn()
	g, _ := loss.Backward()
	dh, err := head.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bi.BackwardLast(dh); err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		num := numericalGrad(t, p, lossFn)
		if d := maxAbsDiff(p.Grad, num); d > 1e-5 {
			t.Errorf("param %s analytic/numeric gradient diff %v", p.Name, d)
		}
	}
}

func TestMSEGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := NewDense(rng, 3, 2)
	loss := NewMSE()
	x := tensor.RandNormal(rng, 4, 3, 0, 1)
	y := tensor.RandNormal(rng, 4, 2, 0, 1)

	lossFn := func() float64 {
		out, _ := layer.Forward(x, true)
		l, _ := loss.Forward(out, y)
		return l
	}
	ZeroGrads(layer.Params())
	lossFn()
	g, _ := loss.Backward()
	if _, err := layer.Backward(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range layer.Params() {
		num := numericalGrad(t, p, lossFn)
		if d := maxAbsDiff(p.Grad, num); d > 1e-6 {
			t.Errorf("param %s analytic/numeric gradient diff %v", p.Name, d)
		}
	}
}
