package nn

import (
	"fmt"
	"math"

	"mobiledl/internal/tensor"
)

// Loss computes a scalar training loss and its gradient w.r.t. the model
// output (logits or predictions, depending on the loss).
type Loss interface {
	// Forward returns the mean loss over the batch.
	Forward(pred *tensor.Matrix, target *tensor.Matrix) (float64, error)
	// Backward returns dLoss/dPred for the inputs of the last Forward call.
	Backward() (*tensor.Matrix, error)
}

// SoftmaxCrossEntropy fuses a row-wise softmax with categorical
// cross-entropy. Targets are one-hot rows (or general distributions).
// The fused backward is the standard (softmax - target) / batch.
type SoftmaxCrossEntropy struct {
	probs  *tensor.Matrix
	target *tensor.Matrix
}

var _ Loss = (*SoftmaxCrossEntropy)(nil)

// NewSoftmaxCrossEntropy returns a fused softmax + cross-entropy loss.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward implements Loss. pred holds raw logits.
func (l *SoftmaxCrossEntropy) Forward(pred, target *tensor.Matrix) (float64, error) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		return 0, fmt.Errorf("%w: cross-entropy %dx%d vs %dx%d",
			tensor.ErrShape, pred.Rows(), pred.Cols(), target.Rows(), target.Cols())
	}
	l.probs = tensor.Softmax(pred)
	l.target = target
	const eps = 1e-12
	var loss float64
	pd := l.probs.Data()
	td := target.Data()
	for i, t := range td {
		if t != 0 {
			loss -= t * math.Log(pd[i]+eps)
		}
	}
	return loss / float64(pred.Rows()), nil
}

// Backward implements Loss.
func (l *SoftmaxCrossEntropy) Backward() (*tensor.Matrix, error) {
	if l.probs == nil {
		return nil, ErrNotReady
	}
	grad, err := tensor.Sub(l.probs, l.target)
	if err != nil {
		return nil, err
	}
	grad.ScaleInPlace(1 / float64(grad.Rows()))
	return grad, nil
}

// MSE is the mean squared error loss, averaged over all elements.
type MSE struct {
	pred, target *tensor.Matrix
}

var _ Loss = (*MSE)(nil)

// NewMSE returns a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// Forward implements Loss.
func (l *MSE) Forward(pred, target *tensor.Matrix) (float64, error) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		return 0, fmt.Errorf("%w: mse %dx%d vs %dx%d",
			tensor.ErrShape, pred.Rows(), pred.Cols(), target.Rows(), target.Cols())
	}
	l.pred, l.target = pred, target
	var s float64
	pd, td := pred.Data(), target.Data()
	for i := range pd {
		d := pd[i] - td[i]
		s += d * d
	}
	return s / float64(len(pd)), nil
}

// Backward implements Loss.
func (l *MSE) Backward() (*tensor.Matrix, error) {
	if l.pred == nil {
		return nil, ErrNotReady
	}
	grad, err := tensor.Sub(l.pred, l.target)
	if err != nil {
		return nil, err
	}
	grad.ScaleInPlace(2 / float64(grad.Size()))
	return grad, nil
}

// DistillationLoss is the knowledge-distillation objective of Hinton et al.
// [37]: a convex combination of cross-entropy against the hard labels and
// KL-style cross-entropy against temperature-softened teacher logits.
type DistillationLoss struct {
	// T is the softmax temperature applied to both student and teacher logits.
	T float64
	// Alpha weights the soft-target term; (1-Alpha) weights the hard term.
	Alpha float64

	hard *SoftmaxCrossEntropy
	soft *SoftmaxCrossEntropy
}

var _ Loss = (*DistillationLoss)(nil)

// NewDistillationLoss builds the distillation objective with temperature t
// and soft-target weight alpha in [0,1].
func NewDistillationLoss(t, alpha float64) *DistillationLoss {
	return &DistillationLoss{
		T:     t,
		Alpha: alpha,
		hard:  NewSoftmaxCrossEntropy(),
		soft:  NewSoftmaxCrossEntropy(),
	}
}

// ForwardDistill computes the combined loss. studentLogits and teacherLogits
// are raw logits; hardTarget is one-hot.
func (l *DistillationLoss) ForwardDistill(studentLogits, teacherLogits, hardTarget *tensor.Matrix) (float64, error) {
	hardLoss, err := l.hard.Forward(studentLogits, hardTarget)
	if err != nil {
		return 0, fmt.Errorf("distill hard term: %w", err)
	}
	softenedStudent := tensor.Scale(studentLogits, 1/l.T)
	teacherProbs := tensor.Softmax(tensor.Scale(teacherLogits, 1/l.T))
	softLoss, err := l.soft.Forward(softenedStudent, teacherProbs)
	if err != nil {
		return 0, fmt.Errorf("distill soft term: %w", err)
	}
	return (1-l.Alpha)*hardLoss + l.Alpha*softLoss*l.T*l.T, nil
}

// Forward implements Loss for the hard-label-only case (teacher absent).
func (l *DistillationLoss) Forward(pred, target *tensor.Matrix) (float64, error) {
	return l.hard.Forward(pred, target)
}

// Backward implements Loss, combining both terms' gradients. The soft-term
// gradient picks up the conventional T^2 * (1/T) = T factor.
func (l *DistillationLoss) Backward() (*tensor.Matrix, error) {
	hardGrad, err := l.hard.Backward()
	if err != nil {
		return nil, err
	}
	if l.soft.probs == nil { // no distillation term this step
		return hardGrad, nil
	}
	softGrad, err := l.soft.Backward()
	if err != nil {
		return nil, err
	}
	grad := tensor.Scale(hardGrad, 1-l.Alpha)
	if err := tensor.AxpyInPlace(grad, l.Alpha*l.T, softGrad); err != nil {
		return nil, err
	}
	return grad, nil
}
