// Package nn implements the neural-network substrate used throughout this
// repository: dense layers, activations, dropout, GRU recurrent layers
// (Eq. 1 of the paper), losses, and a minibatch training loop. Gradients are
// computed by hand-written backpropagation; correctness is validated against
// numerical differentiation in the test suite.
package nn

import (
	"errors"
	"fmt"

	"mobiledl/internal/tensor"
)

// ErrNotReady is returned when Backward is called before Forward.
var ErrNotReady = errors.New("nn: backward called before forward")

// Param is a trainable parameter: a value matrix and its accumulated
// gradient. Optimizers mutate Value in place and read/zero Grad.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam wraps a freshly initialized value matrix with a zero gradient.
func NewParam(name string, value *tensor.Matrix) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Rows(), value.Cols()),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// AccumulateGrad adds g into the parameter's gradient buffer.
func (p *Param) AccumulateGrad(g *tensor.Matrix) error {
	if err := tensor.AddInPlace(p.Grad, g); err != nil {
		return fmt.Errorf("param %s: %w", p.Name, err)
	}
	return nil
}

// ZeroGrads clears the gradients of every parameter in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// Optimizer updates parameters from their accumulated gradients.
// Implementations live in package opt; the interface is declared here so that
// training helpers in this package do not depend on the optimizer package.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in params
	// and then leaves the gradients untouched (callers zero them).
	Step(params []*Param) error
}

// Layer is a differentiable module. Forward with train=true caches whatever
// Backward needs, so a layer instance is not safe for concurrent training.
// Forward with train=false must not mutate layer state: inference on a
// shared instance is safe for concurrent callers (the serving runtime's
// worker pool relies on this).
type Layer interface {
	// Forward computes the layer output for input x (batch x features).
	// train enables training-only behavior such as dropout and the state
	// caching Backward depends on.
	Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error)
	// Backward consumes the gradient of the loss w.r.t. the layer output,
	// accumulates parameter gradients, and returns the gradient w.r.t. the
	// layer input.
	Backward(gradOut *tensor.Matrix) (*tensor.Matrix, error)
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}
