package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"mobiledl/internal/tensor"
)

// TrainConfig configures the minibatch training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Loss      Loss
	Rng       *rand.Rand
	// OnEpoch, if non-nil, is invoked after each epoch with the mean batch loss.
	OnEpoch func(epoch int, loss float64)
}

func (c *TrainConfig) validate() error {
	switch {
	case c.Epochs <= 0:
		return errors.New("nn: TrainConfig.Epochs must be positive")
	case c.BatchSize <= 0:
		return errors.New("nn: TrainConfig.BatchSize must be positive")
	case c.Optimizer == nil:
		return errors.New("nn: TrainConfig.Optimizer is required")
	case c.Loss == nil:
		return errors.New("nn: TrainConfig.Loss is required")
	case c.Rng == nil:
		return errors.New("nn: TrainConfig.Rng is required")
	}
	return nil
}

// Train fits model on (x, y) with shuffled minibatches and returns the mean
// loss per epoch. y rows are loss targets (one-hot rows for classification).
func Train(model Layer, x, y *tensor.Matrix, cfg TrainConfig) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if x.Rows() != y.Rows() {
		return nil, fmt.Errorf("%w: %d samples vs %d targets", tensor.ErrShape, x.Rows(), y.Rows())
	}
	n := x.Rows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	params := model.Params()
	losses := make([]float64, 0, cfg.Epochs)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx := order[start:end]
			xb, err := x.SelectRows(idx)
			if err != nil {
				return nil, err
			}
			yb, err := y.SelectRows(idx)
			if err != nil {
				return nil, err
			}
			loss, err := TrainStep(model, xb, yb, cfg.Loss, cfg.Optimizer)
			if err != nil {
				return nil, fmt.Errorf("epoch %d: %w", epoch, err)
			}
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		losses = append(losses, epochLoss)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, epochLoss)
		}
	}
	_ = params
	return losses, nil
}

// TrainStep runs a single forward/backward/update step on one batch and
// returns the batch loss.
func TrainStep(model Layer, xb, yb *tensor.Matrix, loss Loss, optimizer Optimizer) (float64, error) {
	params := model.Params()
	ZeroGrads(params)
	out, err := model.Forward(xb, true)
	if err != nil {
		return 0, fmt.Errorf("forward: %w", err)
	}
	l, err := loss.Forward(out, yb)
	if err != nil {
		return 0, fmt.Errorf("loss: %w", err)
	}
	grad, err := loss.Backward()
	if err != nil {
		return 0, fmt.Errorf("loss backward: %w", err)
	}
	if _, err := model.Backward(grad); err != nil {
		return 0, fmt.Errorf("backward: %w", err)
	}
	if err := optimizer.Step(params); err != nil {
		return 0, fmt.Errorf("optimizer: %w", err)
	}
	return l, nil
}

// GradientsOn computes parameter gradients for one batch without updating,
// returning the loss. Used by the federated and privacy packages, which
// aggregate raw gradients rather than stepping locally.
func GradientsOn(model Layer, xb, yb *tensor.Matrix, loss Loss) (float64, error) {
	ZeroGrads(model.Params())
	out, err := model.Forward(xb, true)
	if err != nil {
		return 0, fmt.Errorf("forward: %w", err)
	}
	l, err := loss.Forward(out, yb)
	if err != nil {
		return 0, fmt.Errorf("loss: %w", err)
	}
	grad, err := loss.Backward()
	if err != nil {
		return 0, err
	}
	if _, err := model.Backward(grad); err != nil {
		return 0, fmt.Errorf("backward: %w", err)
	}
	return l, nil
}

// OneHot encodes integer class labels as a len(labels) x classes matrix.
func OneHot(labels []int, classes int) (*tensor.Matrix, error) {
	out := tensor.New(len(labels), classes)
	for i, l := range labels {
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("nn: label %d out of range [0,%d)", l, classes)
		}
		out.Set(i, l, 1)
	}
	return out, nil
}

// CopyWeights copies parameter values from src to dst; the two parameter
// lists must have identical shapes in identical order.
func CopyWeights(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyWeights %d params vs %d", len(dst), len(src))
	}
	for i := range dst {
		if err := dst[i].Value.CopyFrom(src[i].Value); err != nil {
			return fmt.Errorf("param %d (%s): %w", i, dst[i].Name, err)
		}
	}
	return nil
}
