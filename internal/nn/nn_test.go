package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiledl/internal/tensor"
)

func TestOneHot(t *testing.T) {
	y, err := OneHot([]int{2, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 2) != 1 || y.At(1, 0) != 1 || y.Sum() != 2 {
		t.Fatalf("OneHot wrong: %v", y)
	}
	if _, err := OneHot([]int{3}, 3); err == nil {
		t.Fatal("want error for out-of-range label")
	}
}

func TestSigmoidBoundsProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		s := Sigmoid(v)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGRUHiddenStateBoundedProperty(t *testing.T) {
	// GRU hidden state is a convex combination of the previous state (which
	// starts at 0) and a tanh candidate, so |h| <= 1 always.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gru := NewGRU(rng, 3, 5)
		seq := tensor.RandNormal(rng, 1+rng.Intn(10), 3, 0, 3)
		h, err := gru.ForwardSeq(seq)
		if err != nil {
			return false
		}
		for _, v := range h.Data() {
			if math.Abs(v) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGRURejectsWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gru := NewGRU(rng, 3, 4)
	if _, err := gru.ForwardSeq(tensor.New(5, 2)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := gru.ForwardSeq(tensor.New(0, 3)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for empty sequence, got %v", err)
	}
}

func TestBackwardBeforeForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 2)
	if _, err := d.Backward(tensor.New(1, 2)); !errors.Is(err, ErrNotReady) {
		t.Fatalf("want ErrNotReady, got %v", err)
	}
	g := NewGRU(rng, 2, 2)
	if _, err := g.BackwardLast(tensor.New(1, 2)); !errors.Is(err, ErrNotReady) {
		t.Fatalf("want ErrNotReady, got %v", err)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(rng, 0.5)
	x := tensor.New(10, 10)
	x.Fill(1)
	evalOut, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !evalOut.Equal(x, 0) {
		t.Fatal("dropout must be identity at eval time")
	}
	trainOut, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range trainOut.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // 1 / keep-prob scaling
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || zeros == trainOut.Size() {
		t.Fatalf("dropout zeroed %d of %d values; expected a mixture", zeros, trainOut.Size())
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDropout(rng, 0.3)
	x := tensor.New(200, 200)
	x.Fill(1)
	out, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if m := out.Mean(); math.Abs(m-1) > 0.02 {
		t.Fatalf("inverted dropout mean %v, want ~1", m)
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	// Uniform logits over 4 classes -> loss = ln(4).
	pred := tensor.New(1, 4)
	y, _ := OneHot([]int{2}, 4)
	l, err := loss.Forward(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %v, want ln(4) = %v", l, math.Log(4))
	}
}

func TestSequentialPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewSequential(NewDense(rng, 2, 3))
	preds, err := model.Predict(tensor.RandNormal(rng, 5, 2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 5 {
		t.Fatalf("got %d predictions, want 5", len(preds))
	}
	probs, err := model.PredictProba(tensor.RandNormal(rng, 5, 2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < probs.Rows(); i++ {
		var s float64
		for _, v := range probs.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d probabilities sum to %v", i, s)
		}
	}
}

func TestCopyWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewSequential(NewDense(rng, 3, 2))
	b := NewSequential(NewDense(rng, 3, 2))
	if err := CopyWeights(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		if !b.Params()[i].Value.Equal(p.Value, 0) {
			t.Fatal("weights not copied")
		}
	}
	c := NewSequential(NewDense(rng, 4, 2))
	if err := CopyWeights(c.Params(), a.Params()); err == nil {
		t.Fatal("want shape error copying mismatched weights")
	}
}

func TestTrainConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewSequential(NewDense(rng, 2, 2))
	x := tensor.New(4, 2)
	y := tensor.New(4, 2)
	if _, err := Train(model, x, y, TrainConfig{}); err == nil {
		t.Fatal("want validation error for zero config")
	}
}

func TestParamAccumulate(t *testing.T) {
	p := NewParam("p", tensor.New(2, 2))
	g, _ := tensor.FromSlice(2, 2, []float64{1, 1, 1, 1})
	if err := p.AccumulateGrad(g); err != nil {
		t.Fatal(err)
	}
	if err := p.AccumulateGrad(g); err != nil {
		t.Fatal(err)
	}
	if p.Grad.Sum() != 8 {
		t.Fatalf("grad sum %v, want 8", p.Grad.Sum())
	}
	p.ZeroGrad()
	if p.Grad.Sum() != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
	if err := p.AccumulateGrad(tensor.New(1, 1)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewSequential(NewDense(rng, 10, 5), NewReLU(), NewDense(rng, 5, 2))
	// 10*5 + 5 + 5*2 + 2 = 67
	if n := NumParams(model.Params()); n != 67 {
		t.Fatalf("NumParams = %d, want 67", n)
	}
}
