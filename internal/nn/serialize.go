package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"mobiledl/internal/tensor"
)

// weightsWire is the on-disk format of a parameter set: names are stored so
// a mismatched architecture fails loudly at load time.
type weightsWire struct {
	Names  []string
	Values []*tensor.Matrix
}

// SaveWeights serializes the parameter values (not gradients) to w with gob.
// Architectures are code, not data: only the weights travel, and LoadWeights
// checks that the destination model's parameter list matches.
func SaveWeights(w io.Writer, params []*Param) error {
	wire := weightsWire{
		Names:  make([]string, len(params)),
		Values: make([]*tensor.Matrix, len(params)),
	}
	for i, p := range params {
		wire.Names[i] = p.Name
		wire.Values[i] = p.Value
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("save weights: %w", err)
	}
	return nil
}

// ParamSource is anything exposing an ordered trainable-parameter list;
// every Layer is one, as are composite servables outside this package.
type ParamSource interface {
	Params() []*Param
}

// EncodeWeights returns the SaveWeights encoding of a model's parameters as
// a byte slice, the unit of exchange for model registries and checkpoints.
func EncodeWeights(model ParamSource) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveWeights(&buf, model.Params()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeWeights loads an EncodeWeights blob into the model's parameters.
func DecodeWeights(model ParamSource, b []byte) error {
	return LoadWeights(bytes.NewReader(b), model.Params())
}

// LoadWeights reads weights produced by SaveWeights into params, verifying
// parameter count, names, and shapes.
func LoadWeights(r io.Reader, params []*Param) error {
	var wire weightsWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return fmt.Errorf("load weights: %w", err)
	}
	if len(wire.Values) != len(params) {
		return fmt.Errorf("load weights: %d stored params, model has %d", len(wire.Values), len(params))
	}
	for i, p := range params {
		if wire.Names[i] != p.Name {
			return fmt.Errorf("load weights: param %d is %q, model expects %q", i, wire.Names[i], p.Name)
		}
		if err := p.Value.CopyFrom(wire.Values[i]); err != nil {
			return fmt.Errorf("load weights: param %q: %w", p.Name, err)
		}
	}
	return nil
}
