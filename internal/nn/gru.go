package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/tensor"
)

// GRU is a gated recurrent unit layer implementing Eq. (1) of the paper
// (Cho et al. [41]), processing one sequence at a time:
//
//	r_k = sigmoid(Wr x_k + Ur h_{k-1} + br)
//	z_k = sigmoid(Wz x_k + Uz h_{k-1} + bz)
//	h~_k = tanh(W x_k + U (r_k ⊙ h_{k-1}) + bh)
//	h_k = z_k ⊙ h_{k-1} + (1 - z_k) ⊙ h~_k
//
// ForwardSeq caches per-step activations; BackwardLast runs full
// backpropagation through time from a gradient on the final hidden state,
// which is the only state DeepMood/DEEPSERVICE consume.
//
// The step cache doubles as preallocated scratch: successive ForwardSeq
// calls rewrite the same matrices via the tensor Into kernels instead of
// allocating ~10 temporaries per timestep, so a warm GRU runs a whole
// sequence with O(1) allocations. The cache also makes a GRU inherently
// single-goroutine — one instance must not run concurrent ForwardSeq or
// BackwardLast calls (unlike Dense, whose inference path is stateless).
type GRU struct {
	inDim, hidden int

	wr, ur, br *Param
	wz, uz, bz *Param
	wh, uh, bh *Param

	steps []gruStep
	h0    *tensor.Matrix // zero initial state, reused across calls
	live  int            // steps valid for BackwardLast after the last ForwardSeq
}

// gruStep holds one timestep's activations. hPrev aliases the previous
// step's h (or the shared h0 for step 0); the rest are owned by the step and
// overwritten in place on the next ForwardSeq.
type gruStep struct {
	x, hPrev, r, z, hCand, h *tensor.Matrix
}

// NewGRU creates a GRU with Glorot-initialized kernels and zero biases.
func NewGRU(rng *rand.Rand, inDim, hidden int) *GRU {
	newKernel := func(name string, rows int) *Param {
		return NewParam(name, tensor.GlorotUniform(rng, rows, hidden))
	}
	newBias := func(name string) *Param {
		return NewParam(name, tensor.New(1, hidden))
	}
	return &GRU{
		inDim:  inDim,
		hidden: hidden,
		wr:     newKernel("gru_wr", inDim), ur: newKernel("gru_ur", hidden), br: newBias("gru_br"),
		wz: newKernel("gru_wz", inDim), uz: newKernel("gru_uz", hidden), bz: newBias("gru_bz"),
		wh: newKernel("gru_wh", inDim), uh: newKernel("gru_uh", hidden), bh: newBias("gru_bh"),
	}
}

// InDim returns the input feature dimension.
func (g *GRU) InDim() int { return g.inDim }

// Hidden returns the hidden-state dimension.
func (g *GRU) Hidden() int { return g.hidden }

// Params returns all nine trainable parameter matrices.
func (g *GRU) Params() []*Param {
	return []*Param{g.wr, g.ur, g.br, g.wz, g.uz, g.bz, g.wh, g.uh, g.bh}
}

// ensureSteps grows the step cache to cover T timesteps, wiring each step's
// hPrev to the previous step's h so the recurrence never copies state.
func (g *GRU) ensureSteps(T int) {
	if g.h0 == nil {
		g.h0 = tensor.New(1, g.hidden)
	}
	for len(g.steps) < T {
		prev := g.h0
		if n := len(g.steps); n > 0 {
			prev = g.steps[n-1].h
		}
		g.steps = append(g.steps, gruStep{
			x:     tensor.New(1, g.inDim),
			hPrev: prev,
			r:     tensor.New(1, g.hidden),
			z:     tensor.New(1, g.hidden),
			hCand: tensor.New(1, g.hidden),
			h:     tensor.New(1, g.hidden),
		})
	}
}

// gateInto computes dst = act(x@wx + h@wh + b) with zero allocation, fusing
// the two matmuls through the accumulate kernel.
func gateInto(dst, x, h *tensor.Matrix, wx, wh, b *Param, act func(float64) float64) error {
	if err := tensor.MatMulInto(dst, x, wx.Value); err != nil {
		return err
	}
	if err := tensor.MatMulAccInto(dst, h, wh.Value); err != nil {
		return err
	}
	if err := tensor.AddRowVectorInto(dst, dst, b.Value); err != nil {
		return err
	}
	dst.ApplyInPlace(act)
	return nil
}

// ForwardSeq consumes a T x inDim sequence and returns the final hidden
// state (1 x hidden, owned by the caller). The per-step cache is retained
// for BackwardLast and recycled by the next ForwardSeq call.
func (g *GRU) ForwardSeq(seq *tensor.Matrix) (*tensor.Matrix, error) {
	if seq.Cols() != g.inDim {
		return nil, fmt.Errorf("%w: GRU input dim %d, want %d", tensor.ErrShape, seq.Cols(), g.inDim)
	}
	if seq.Rows() == 0 {
		return nil, fmt.Errorf("%w: GRU empty sequence", tensor.ErrShape)
	}
	T := seq.Rows()
	g.ensureSteps(T)
	g.live = 0
	g.h0.Zero()
	h := g.h0
	rh := tensor.Get(1, g.hidden)
	defer tensor.Put(rh)
	for k := 0; k < T; k++ {
		st := &g.steps[k]
		copy(st.x.Data(), seq.Row(k))
		st.hPrev = h
		if err := gateInto(st.r, st.x, h, g.wr, g.ur, g.br, Sigmoid); err != nil {
			return nil, fmt.Errorf("gru step %d reset gate: %w", k, err)
		}
		if err := gateInto(st.z, st.x, h, g.wz, g.uz, g.bz, Sigmoid); err != nil {
			return nil, fmt.Errorf("gru step %d update gate: %w", k, err)
		}
		if err := tensor.MulInto(rh, st.r, h); err != nil {
			return nil, err
		}
		if err := gateInto(st.hCand, st.x, rh, g.wh, g.uh, g.bh, math.Tanh); err != nil {
			return nil, fmt.Errorf("gru step %d candidate: %w", k, err)
		}
		// h = z ⊙ hPrev + (1-z) ⊙ hCand
		hn, zd, hp, hc := st.h.Data(), st.z.Data(), h.Data(), st.hCand.Data()
		for i := range hn {
			hn[i] = zd[i]*hp[i] + (1-zd[i])*hc[i]
		}
		h = st.h
	}
	g.live = T
	return h.Clone(), nil
}

// BackwardLast backpropagates through time from dLast, the gradient of the
// loss w.r.t. the final hidden state, accumulating parameter gradients.
// It returns the gradient w.r.t. the input sequence (T x inDim). All
// per-step temporaries come from the shared tensor pool and are hoisted out
// of the time loop, so a full BPTT pass allocates only the returned matrix.
func (g *GRU) BackwardLast(dLast *tensor.Matrix) (*tensor.Matrix, error) {
	if g.live == 0 {
		return nil, ErrNotReady
	}
	if dLast.Rows() != 1 || dLast.Cols() != g.hidden {
		return nil, fmt.Errorf("%w: GRU dLast %dx%d, want 1x%d",
			tensor.ErrShape, dLast.Rows(), dLast.Cols(), g.hidden)
	}
	hid := g.hidden
	dSeq := tensor.New(g.live, g.inDim)

	scratch := []*tensor.Matrix{}
	get := func(rows, cols int) *tensor.Matrix {
		m := tensor.Get(rows, cols)
		scratch = append(scratch, m)
		return m
	}
	defer func() {
		for _, m := range scratch {
			tensor.Put(m)
		}
	}()

	dh := get(1, hid)
	copy(dh.Data(), dLast.Data())
	dhPrev := get(1, hid)
	daR, daZ, daH := get(1, hid), get(1, hid), get(1, hid)
	dRH := get(1, hid)
	rh := get(1, hid)
	dwxScr := get(g.inDim, hid)
	dwhScr := get(hid, hid)
	dxRow := get(1, g.inDim)

	for k := g.live - 1; k >= 0; k-- {
		st := &g.steps[k]
		dhPrev.Zero()

		dhd := dh.Data()
		zd, rd := st.z.Data(), st.r.Data()
		hpd, hcd := st.hPrev.Data(), st.hCand.Data()
		dhp, dar, daz, dah := dhPrev.Data(), daR.Data(), daZ.Data(), daH.Data()

		for i := 0; i < hid; i++ {
			// h = z*hPrev + (1-z)*hCand
			dz := dhd[i] * (hpd[i] - hcd[i])
			dhc := dhd[i] * (1 - zd[i])
			dhp[i] += dhd[i] * zd[i]
			// candidate pre-activation: tanh'
			dah[i] = dhc * (1 - hcd[i]*hcd[i])
			// update gate pre-activation: sigmoid'
			daz[i] = dz * zd[i] * (1 - zd[i])
		}

		// Candidate path: aH = x@Wh + (r ⊙ hPrev)@Uh + bh
		if err := tensor.MatMulTInto(dRH, daH, g.uh.Value); err != nil {
			return nil, err
		}
		drh := dRH.Data()
		for i := 0; i < hid; i++ {
			dr := drh[i] * hpd[i]
			dhp[i] += drh[i] * rd[i]
			dar[i] = dr * rd[i] * (1 - rd[i])
		}

		// Accumulate parameter gradients for the three gates.
		if err := tensor.MulInto(rh, st.r, st.hPrev); err != nil {
			return nil, err
		}
		type gateGrad struct {
			da     *tensor.Matrix
			wx, wh *Param
			b      *Param
			hIn    *tensor.Matrix
		}
		for _, gg := range []gateGrad{
			{da: daR, wx: g.wr, wh: g.ur, b: g.br, hIn: st.hPrev},
			{da: daZ, wx: g.wz, wh: g.uz, b: g.bz, hIn: st.hPrev},
			{da: daH, wx: g.wh, wh: g.uh, b: g.bh, hIn: rh},
		} {
			if err := tensor.TMatMulInto(dwxScr, st.x, gg.da); err != nil {
				return nil, err
			}
			if err := gg.wx.AccumulateGrad(dwxScr); err != nil {
				return nil, err
			}
			if err := tensor.TMatMulInto(dwhScr, gg.hIn, gg.da); err != nil {
				return nil, err
			}
			if err := gg.wh.AccumulateGrad(dwhScr); err != nil {
				return nil, err
			}
			if err := gg.b.AccumulateGrad(gg.da); err != nil {
				return nil, err
			}
		}

		// Input gradient: dx = daR@Wr^T + daZ@Wz^T + daH@Wh^T.
		if err := tensor.MatMulTInto(dxRow, daR, g.wr.Value); err != nil {
			return nil, err
		}
		if err := tensor.MatMulTAccInto(dxRow, daZ, g.wz.Value); err != nil {
			return nil, err
		}
		if err := tensor.MatMulTAccInto(dxRow, daH, g.wh.Value); err != nil {
			return nil, err
		}
		copy(dSeq.Row(k), dxRow.Row(0))

		// Hidden-state gradient flowing to step k-1 also passes through the
		// recurrent kernels of the r and z gates.
		if err := tensor.MatMulTAccInto(dhPrev, daR, g.ur.Value); err != nil {
			return nil, err
		}
		if err := tensor.MatMulTAccInto(dhPrev, daZ, g.uz.Value); err != nil {
			return nil, err
		}
		dh, dhPrev = dhPrev, dh
	}
	return dSeq, nil
}

// BiGRU runs two independent GRUs over a sequence and its reversal and
// concatenates their final hidden states, matching the paper's optional
// bidirectional configuration (d = 2 * m * d_h).
type BiGRU struct {
	fwd, bwd *GRU
	lastSeq  *tensor.Matrix
	revScr   *tensor.Matrix // reused reversed-sequence buffer
}

// NewBiGRU creates a bidirectional GRU pair.
func NewBiGRU(rng *rand.Rand, inDim, hidden int) *BiGRU {
	return &BiGRU{fwd: NewGRU(rng, inDim, hidden), bwd: NewGRU(rng, inDim, hidden)}
}

// Hidden returns the concatenated output dimension (2 x hidden).
func (b *BiGRU) Hidden() int { return 2 * b.fwd.hidden }

// Params returns the parameters of both directions.
func (b *BiGRU) Params() []*Param { return append(b.fwd.Params(), b.bwd.Params()...) }

// ForwardSeq returns the concatenation [h_fwd ; h_bwd] (1 x 2*hidden).
func (b *BiGRU) ForwardSeq(seq *tensor.Matrix) (*tensor.Matrix, error) {
	hf, err := b.fwd.ForwardSeq(seq)
	if err != nil {
		return nil, err
	}
	if b.revScr == nil || b.revScr.Rows() != seq.Rows() || b.revScr.Cols() != seq.Cols() {
		b.revScr = tensor.New(seq.Rows(), seq.Cols())
	}
	reverseRowsInto(b.revScr, seq)
	hb, err := b.bwd.ForwardSeq(b.revScr)
	if err != nil {
		return nil, err
	}
	b.lastSeq = seq
	return tensor.HStack(hf, hb)
}

// BackwardLast splits the gradient across both directions and returns the
// combined input-sequence gradient.
func (b *BiGRU) BackwardLast(dLast *tensor.Matrix) (*tensor.Matrix, error) {
	if b.lastSeq == nil {
		return nil, ErrNotReady
	}
	h := b.fwd.hidden
	df, err := dLast.SliceCols(0, h)
	if err != nil {
		return nil, err
	}
	db, err := dLast.SliceCols(h, 2*h)
	if err != nil {
		return nil, err
	}
	dSeqF, err := b.fwd.BackwardLast(df)
	if err != nil {
		return nil, err
	}
	dSeqB, err := b.bwd.BackwardLast(db)
	if err != nil {
		return nil, err
	}
	dSeqBRev := tensor.Get(dSeqB.Rows(), dSeqB.Cols())
	reverseRowsInto(dSeqBRev, dSeqB)
	err = tensor.AddInPlace(dSeqF, dSeqBRev)
	tensor.Put(dSeqBRev)
	if err != nil {
		return nil, err
	}
	return dSeqF, nil
}

func reverseRowsInto(dst, m *tensor.Matrix) {
	for i := 0; i < m.Rows(); i++ {
		copy(dst.Row(m.Rows()-1-i), m.Row(i))
	}
}
