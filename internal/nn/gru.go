package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/tensor"
)

// GRU is a gated recurrent unit layer implementing Eq. (1) of the paper
// (Cho et al. [41]), processing one sequence at a time:
//
//	r_k = sigmoid(Wr x_k + Ur h_{k-1} + br)
//	z_k = sigmoid(Wz x_k + Uz h_{k-1} + bz)
//	h~_k = tanh(W x_k + U (r_k ⊙ h_{k-1}) + bh)
//	h_k = z_k ⊙ h_{k-1} + (1 - z_k) ⊙ h~_k
//
// Forward caches per-step activations; BackwardLast runs full
// backpropagation through time from a gradient on the final hidden state,
// which is the only state DeepMood/DEEPSERVICE consume.
type GRU struct {
	inDim, hidden int

	wr, ur, br *Param
	wz, uz, bz *Param
	wh, uh, bh *Param

	steps []gruStep
}

type gruStep struct {
	x, hPrev, r, z, hCand, h *tensor.Matrix
}

// NewGRU creates a GRU with Glorot-initialized kernels and zero biases.
func NewGRU(rng *rand.Rand, inDim, hidden int) *GRU {
	newKernel := func(name string, rows int) *Param {
		return NewParam(name, tensor.GlorotUniform(rng, rows, hidden))
	}
	newBias := func(name string) *Param {
		return NewParam(name, tensor.New(1, hidden))
	}
	return &GRU{
		inDim:  inDim,
		hidden: hidden,
		wr:     newKernel("gru_wr", inDim), ur: newKernel("gru_ur", hidden), br: newBias("gru_br"),
		wz: newKernel("gru_wz", inDim), uz: newKernel("gru_uz", hidden), bz: newBias("gru_bz"),
		wh: newKernel("gru_wh", inDim), uh: newKernel("gru_uh", hidden), bh: newBias("gru_bh"),
	}
}

// InDim returns the input feature dimension.
func (g *GRU) InDim() int { return g.inDim }

// Hidden returns the hidden-state dimension.
func (g *GRU) Hidden() int { return g.hidden }

// Params returns all nine trainable parameter matrices.
func (g *GRU) Params() []*Param {
	return []*Param{g.wr, g.ur, g.br, g.wz, g.uz, g.bz, g.wh, g.uh, g.bh}
}

// gate computes sigmoid_or_tanh(x@Wx + h@Wh + b) for a single step.
func (g *GRU) gate(x, h *tensor.Matrix, wx, wh, b *Param, act func(float64) float64) (*tensor.Matrix, error) {
	xa, err := tensor.MatMul(x, wx.Value)
	if err != nil {
		return nil, err
	}
	ha, err := tensor.MatMul(h, wh.Value)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(xa, ha); err != nil {
		return nil, err
	}
	out, err := tensor.AddRowVector(xa, b.Value)
	if err != nil {
		return nil, err
	}
	out.ApplyInPlace(act)
	return out, nil
}

// ForwardSeq consumes a T x inDim sequence and returns the final hidden
// state (1 x hidden). The per-step cache is retained for BackwardLast.
func (g *GRU) ForwardSeq(seq *tensor.Matrix) (*tensor.Matrix, error) {
	if seq.Cols() != g.inDim {
		return nil, fmt.Errorf("%w: GRU input dim %d, want %d", tensor.ErrShape, seq.Cols(), g.inDim)
	}
	if seq.Rows() == 0 {
		return nil, fmt.Errorf("%w: GRU empty sequence", tensor.ErrShape)
	}
	g.steps = g.steps[:0]
	h := tensor.New(1, g.hidden)
	for k := 0; k < seq.Rows(); k++ {
		x := tensor.RowVector(seq.Row(k))
		r, err := g.gate(x, h, g.wr, g.ur, g.br, Sigmoid)
		if err != nil {
			return nil, fmt.Errorf("gru step %d reset gate: %w", k, err)
		}
		z, err := g.gate(x, h, g.wz, g.uz, g.bz, Sigmoid)
		if err != nil {
			return nil, fmt.Errorf("gru step %d update gate: %w", k, err)
		}
		rh, err := tensor.Mul(r, h)
		if err != nil {
			return nil, err
		}
		hCand, err := g.gate(x, rh, g.wh, g.uh, g.bh, math.Tanh)
		if err != nil {
			return nil, fmt.Errorf("gru step %d candidate: %w", k, err)
		}
		// h = z ⊙ hPrev + (1-z) ⊙ hCand
		hNext := tensor.New(1, g.hidden)
		hn, zd, hp, hc := hNext.Data(), z.Data(), h.Data(), hCand.Data()
		for i := range hn {
			hn[i] = zd[i]*hp[i] + (1-zd[i])*hc[i]
		}
		g.steps = append(g.steps, gruStep{x: x, hPrev: h, r: r, z: z, hCand: hCand, h: hNext})
		h = hNext
	}
	return h.Clone(), nil
}

// BackwardLast backpropagates through time from dLast, the gradient of the
// loss w.r.t. the final hidden state, accumulating parameter gradients.
// It returns the gradient w.r.t. the input sequence (T x inDim).
func (g *GRU) BackwardLast(dLast *tensor.Matrix) (*tensor.Matrix, error) {
	if len(g.steps) == 0 {
		return nil, ErrNotReady
	}
	if dLast.Rows() != 1 || dLast.Cols() != g.hidden {
		return nil, fmt.Errorf("%w: GRU dLast %dx%d, want 1x%d",
			tensor.ErrShape, dLast.Rows(), dLast.Cols(), g.hidden)
	}
	dSeq := tensor.New(len(g.steps), g.inDim)
	dh := dLast.Clone()

	for k := len(g.steps) - 1; k >= 0; k-- {
		st := g.steps[k]
		hid := g.hidden

		dhPrev := tensor.New(1, hid)
		daR := tensor.New(1, hid)
		daZ := tensor.New(1, hid)
		daH := tensor.New(1, hid)

		dhd := dh.Data()
		zd, rd := st.z.Data(), st.r.Data()
		hpd, hcd := st.hPrev.Data(), st.hCand.Data()
		dhp, dar, daz, dah := dhPrev.Data(), daR.Data(), daZ.Data(), daH.Data()

		for i := 0; i < hid; i++ {
			// h = z*hPrev + (1-z)*hCand
			dz := dhd[i] * (hpd[i] - hcd[i])
			dhc := dhd[i] * (1 - zd[i])
			dhp[i] += dhd[i] * zd[i]
			// candidate pre-activation: tanh'
			dah[i] = dhc * (1 - hcd[i]*hcd[i])
			// update gate pre-activation: sigmoid'
			daz[i] = dz * zd[i] * (1 - zd[i])
		}

		// Candidate path: aH = x@Wh + (r ⊙ hPrev)@Uh + bh
		dRH, err := tensor.MatMulT(daH, g.uh.Value)
		if err != nil {
			return nil, err
		}
		drh := dRH.Data()
		for i := 0; i < hid; i++ {
			dr := drh[i] * hpd[i]
			dhp[i] += drh[i] * rd[i]
			dar[i] = dr * rd[i] * (1 - rd[i])
		}

		// Accumulate parameter gradients for the three gates.
		rh, err := tensor.Mul(st.r, st.hPrev)
		if err != nil {
			return nil, err
		}
		type gateGrad struct {
			da     *tensor.Matrix
			wx, wh *Param
			b      *Param
			hIn    *tensor.Matrix
		}
		for _, gg := range []gateGrad{
			{da: daR, wx: g.wr, wh: g.ur, b: g.br, hIn: st.hPrev},
			{da: daZ, wx: g.wz, wh: g.uz, b: g.bz, hIn: st.hPrev},
			{da: daH, wx: g.wh, wh: g.uh, b: g.bh, hIn: rh},
		} {
			dwx, err := tensor.TMatMul(st.x, gg.da)
			if err != nil {
				return nil, err
			}
			if err := gg.wx.AccumulateGrad(dwx); err != nil {
				return nil, err
			}
			dwh, err := tensor.TMatMul(gg.hIn, gg.da)
			if err != nil {
				return nil, err
			}
			if err := gg.wh.AccumulateGrad(dwh); err != nil {
				return nil, err
			}
			if err := gg.b.AccumulateGrad(gg.da); err != nil {
				return nil, err
			}
		}

		// Input gradient: dx = daR@Wr^T + daZ@Wz^T + daH@Wh^T.
		dx, err := tensor.MatMulT(daR, g.wr.Value)
		if err != nil {
			return nil, err
		}
		dxz, err := tensor.MatMulT(daZ, g.wz.Value)
		if err != nil {
			return nil, err
		}
		if err := tensor.AddInPlace(dx, dxz); err != nil {
			return nil, err
		}
		dxh, err := tensor.MatMulT(daH, g.wh.Value)
		if err != nil {
			return nil, err
		}
		if err := tensor.AddInPlace(dx, dxh); err != nil {
			return nil, err
		}
		copy(dSeq.Row(k), dx.Row(0))

		// Hidden-state gradient flowing to step k-1 also passes through the
		// recurrent kernels of the r and z gates.
		dhR, err := tensor.MatMulT(daR, g.ur.Value)
		if err != nil {
			return nil, err
		}
		if err := tensor.AddInPlace(dhPrev, dhR); err != nil {
			return nil, err
		}
		dhZ, err := tensor.MatMulT(daZ, g.uz.Value)
		if err != nil {
			return nil, err
		}
		if err := tensor.AddInPlace(dhPrev, dhZ); err != nil {
			return nil, err
		}
		dh = dhPrev
	}
	return dSeq, nil
}

// BiGRU runs two independent GRUs over a sequence and its reversal and
// concatenates their final hidden states, matching the paper's optional
// bidirectional configuration (d = 2 * m * d_h).
type BiGRU struct {
	fwd, bwd *GRU
	lastSeq  *tensor.Matrix
}

// NewBiGRU creates a bidirectional GRU pair.
func NewBiGRU(rng *rand.Rand, inDim, hidden int) *BiGRU {
	return &BiGRU{fwd: NewGRU(rng, inDim, hidden), bwd: NewGRU(rng, inDim, hidden)}
}

// Hidden returns the concatenated output dimension (2 x hidden).
func (b *BiGRU) Hidden() int { return 2 * b.fwd.hidden }

// Params returns the parameters of both directions.
func (b *BiGRU) Params() []*Param { return append(b.fwd.Params(), b.bwd.Params()...) }

// ForwardSeq returns the concatenation [h_fwd ; h_bwd] (1 x 2*hidden).
func (b *BiGRU) ForwardSeq(seq *tensor.Matrix) (*tensor.Matrix, error) {
	hf, err := b.fwd.ForwardSeq(seq)
	if err != nil {
		return nil, err
	}
	rev := reverseRows(seq)
	hb, err := b.bwd.ForwardSeq(rev)
	if err != nil {
		return nil, err
	}
	b.lastSeq = seq
	return tensor.HStack(hf, hb)
}

// BackwardLast splits the gradient across both directions and returns the
// combined input-sequence gradient.
func (b *BiGRU) BackwardLast(dLast *tensor.Matrix) (*tensor.Matrix, error) {
	if b.lastSeq == nil {
		return nil, ErrNotReady
	}
	h := b.fwd.hidden
	df, err := dLast.SliceCols(0, h)
	if err != nil {
		return nil, err
	}
	db, err := dLast.SliceCols(h, 2*h)
	if err != nil {
		return nil, err
	}
	dSeqF, err := b.fwd.BackwardLast(df)
	if err != nil {
		return nil, err
	}
	dSeqB, err := b.bwd.BackwardLast(db)
	if err != nil {
		return nil, err
	}
	dSeqBRev := reverseRows(dSeqB)
	if err := tensor.AddInPlace(dSeqF, dSeqBRev); err != nil {
		return nil, err
	}
	return dSeqF, nil
}

func reverseRows(m *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		copy(out.Row(m.Rows()-1-i), m.Row(i))
	}
	return out
}
