// Package cluster turns N mobiledlserve processes into one logical serving
// service. It is deliberately zero-dependency (stdlib plus the in-repo trace
// and metrics packages) and couples to the serving layer only through
// callbacks and an http.Handler wrapper, so the serving runtime never imports
// it.
//
// Three mechanisms compose:
//
//   - A consistent-hash ring (ring.go) maps each model name onto an ordered
//     sequence of nodes. 128 virtual nodes per member keep key shares within
//     ~1.6x of each other and make membership changes move only ~1/N of the
//     keys.
//
//   - Gossip membership (gossip.go) converges who is in the cluster and what
//     each node can serve: every interval a node bumps its own heartbeat,
//     snapshots its model inventory and load, and push-pull exchanges full
//     state with a couple of random peers over POST /v1/cluster/gossip.
//     Per-member state merges by highest heartbeat; a member whose heartbeat
//     stops advancing for SuspectAfter is considered dead and drops out of
//     the routing ring until it is heard from again.
//
//   - Peer-scored forwarding (forward.go, scorer.go) makes any node a valid
//     entry point: a /v1/predict for a model this node does not own is
//     transparently proxied to the best owner. Candidates are the alive
//     ring-ordered nodes whose gossiped inventory includes the model, ranked
//     by a per-peer score (EWMA forward latency, error rate, gossip
//     freshness) bucketed so healthy clusters keep deterministic ring order
//     while slow or failing peers get demoted. Retries are bounded, hops are
//     capped via the X-MobileDL-Hops header (a stale-ring routing cycle is
//     broken with a 502 instead of an infinite proxy loop), and the W3C
//     traceparent header rides every hop so a cross-node predict is one
//     trace.
//
// A node can also gate its own serving capacity (Config.LocalRPS): locally
// served predicts pass a token bucket and shed 429 beyond it, which both
// models per-node provisioning when several processes share one machine and
// feeds the load signal gossiped to peers. Forwarded (proxied) requests do
// not consume local capacity — proxying is cheap; the gate models compute.
package cluster
