package cluster

import (
	"testing"
	"time"
)

func TestScorerUnobservedPeerIsNeutral(t *testing.T) {
	p := &peerScore{}
	now := time.Now()
	p.heard(now)
	// Unprobed but freshly gossiped: latency/error components score neutral,
	// freshness is full, so the peer sits at the top score.
	if s := p.score(now, time.Second); s < 0.99 {
		t.Fatalf("fresh unobserved peer score = %.3f, want ~1.0", s)
	}
	// Never heard from at all: only freshness is missing.
	q := &peerScore{}
	want := scoreWeightLatency + scoreWeightErrors
	if s := q.score(now, time.Second); s < want-0.01 || s > want+0.01 {
		t.Fatalf("never-heard peer score = %.3f, want ~%.2f", s, want)
	}
}

func TestScorerErrorsDragScoreDown(t *testing.T) {
	now := time.Now()
	healthy := &peerScore{}
	failing := &peerScore{}
	healthy.heard(now)
	failing.heard(now)
	for i := 0; i < 10; i++ {
		healthy.observe(5*time.Millisecond, false)
		failing.observe(5*time.Millisecond, true)
	}
	hs, fs := healthy.score(now, time.Second), failing.score(now, time.Second)
	if hs <= fs {
		t.Fatalf("healthy score %.3f <= failing score %.3f", hs, fs)
	}
	// Ten straight failures should cross at least one bucket boundary — that
	// is what actually demotes a peer in candidate ordering.
	if bucket(hs) <= bucket(fs) {
		t.Fatalf("bucket(healthy)=%.2f not above bucket(failing)=%.2f", bucket(hs), bucket(fs))
	}
}

func TestScorerLatencyComponent(t *testing.T) {
	now := time.Now()
	fast := &peerScore{}
	slow := &peerScore{}
	fast.heard(now)
	slow.heard(now)
	for i := 0; i < 10; i++ {
		fast.observe(time.Millisecond, false)
		slow.observe(500*time.Millisecond, false)
	}
	if fs, ss := fast.score(now, time.Second), slow.score(now, time.Second); fs <= ss {
		t.Fatalf("fast peer %.3f <= slow peer %.3f", fs, ss)
	}
}

func TestScorerRecovers(t *testing.T) {
	now := time.Now()
	p := &peerScore{}
	p.heard(now)
	for i := 0; i < 10; i++ {
		p.observe(5*time.Millisecond, true)
	}
	bad := p.score(now, time.Second)
	for i := 0; i < 20; i++ {
		p.observe(5*time.Millisecond, false)
	}
	good := p.score(now, time.Second)
	if good <= bad {
		t.Fatalf("score did not recover: %.3f -> %.3f", bad, good)
	}
	if good < 0.9 {
		t.Fatalf("recovered score %.3f, want > 0.9 (EWMA, not lifetime average)", good)
	}
}

func TestScorerFreshnessDecays(t *testing.T) {
	base := time.Now()
	p := &peerScore{}
	p.heard(base)
	suspect := time.Second
	s0 := p.score(base, suspect)
	s1 := p.score(base.Add(500*time.Millisecond), suspect)
	s2 := p.score(base.Add(2*time.Second), suspect)
	if !(s0 > s1 && s1 > s2) {
		t.Fatalf("freshness did not decay: %.3f, %.3f, %.3f", s0, s1, s2)
	}
	// Past suspectAfter the freshness component is exactly zero, not negative.
	if want := scoreWeightLatency + scoreWeightErrors; s2 < want-0.01 || s2 > want+0.01 {
		t.Fatalf("stale score = %.3f, want ~%.2f", s2, want)
	}
}

func TestBucketQuantizes(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.0, 1.0}, {0.99, 0.75}, {0.76, 0.75}, {0.74, 0.5}, {0.1, 0.0}, {0.0, 0.0},
	}
	for _, c := range cases {
		if got := bucket(c.in); got != c.want {
			t.Errorf("bucket(%.2f) = %.2f, want %.2f", c.in, got, c.want)
		}
	}
}
