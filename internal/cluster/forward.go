package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mobiledl/internal/trace"
)

// Forwarding headers. Hops counts how many times a request has been proxied
// (absent = 0); Origin and Node are diagnostics: which node first forwarded
// the request, and which node finally served it.
const (
	hopsHeader   = "X-MobileDL-Hops"
	originHeader = "X-MobileDL-Origin"
	nodeHeader   = "X-MobileDL-Node"
)

// maxForwardAttempts bounds retries: at most this many peers are tried per
// request before the forwarder gives up (a local fallback may still apply).
const maxForwardAttempts = 2

// maxPredictBody mirrors the serving layer's /v1/predict body cap so the
// model sniff never buffers more than the handler behind it would accept.
const maxPredictBody = 8 << 20

// Handler wraps the serving mux with the cluster's routing layer: it mounts
// the gossip and state endpoints and intercepts POST /v1/predict — requests
// for models owned elsewhere are proxied to the owner, everything else
// passes through (with the node capacity gate applied to locally served
// predicts).
func (n *Node) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/gossip", n.handleGossip)
	mux.HandleFunc("/v1/cluster/state", n.handleState)
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		n.routePredict(w, r, next)
	})
	mux.Handle("/", next)
	return mux
}

// admit passes one locally served predict through the capacity gate.
func (n *Node) admit() bool {
	if n.gate != nil && !n.gate.allow() {
		return false
	}
	n.localAdmits.Add(1)
	return true
}

// serveLocal hands the (possibly re-buffered) request to the serving layer.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, next http.Handler) {
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	w.Header().Set(nodeHeader, n.cfg.NodeID)
	next.ServeHTTP(w, r)
}

// shed429 answers a capacity-gated rejection the same way the batcher's
// overload path does, so clients need one backoff strategy.
func (n *Node) shed429(w http.ResponseWriter) {
	n.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	clusterError(w, http.StatusTooManyRequests,
		fmt.Errorf("node %s at capacity (cluster gate)", n.cfg.NodeID))
}

// routePredict decides where one /v1/predict runs. The decision walks the
// model's candidate list (alive ring-ordered holders, score-bucketed):
// self serves locally through the capacity gate, peers are tried with
// bounded retries, and the hop cap breaks routing cycles a stale ring could
// otherwise loop forever.
func (n *Node) routePredict(w http.ResponseWriter, r *http.Request, next http.Handler) {
	if r.Method != http.MethodPost {
		next.ServeHTTP(w, r) // serve's handler owns the 405 wording
		return
	}
	hops := 0
	if h := r.Header.Get(hopsHeader); h != "" {
		v, err := strconv.Atoi(h)
		if err != nil || v < 0 {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("bad %s header %q", hopsHeader, h))
			return
		}
		hops = v
	}
	if hops > n.cfg.MaxHops {
		n.hopRejects.Add(1)
		clusterError(w, http.StatusBadGateway,
			fmt.Errorf("forwarding loop: request exceeded the %d-hop cluster cap", n.cfg.MaxHops))
		return
	}
	if n.solo() {
		if !n.admit() {
			n.shed429(w)
			return
		}
		n.serveLocal(w, r, nil, next)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var sniff struct {
		Model string `json:"model"`
	}
	if json.Unmarshal(body, &sniff) != nil || sniff.Model == "" {
		// Malformed or model-less body: the serving layer owns that 4xx.
		if !n.admit() {
			n.shed429(w)
			return
		}
		n.serveLocal(w, r, body, next)
		return
	}

	now := time.Now()
	cands := n.candidates(sniff.Model, now)
	if len(cands) == 0 {
		// Nobody in the cluster claims the model; serve locally so the
		// registry's 404 (or a just-installed model gossip hasn't spread
		// yet) answers.
		if !n.admit() {
			n.shed429(w)
			return
		}
		n.serveLocal(w, r, body, next)
		return
	}

	var sp trace.Span
	spStarted := false
	startSpan := func() trace.Span {
		if !spStarted {
			sp = n.forwardSpan(r, sniff.Model, hops)
			spStarted = true
			if sp.Active() {
				w.Header().Set("traceparent", sp.Traceparent())
			}
		}
		return sp
	}

	localShed := false
	sawPeer := false
	attempts := 0
	for _, c := range cands {
		if c.ID == n.cfg.NodeID {
			if n.admit() {
				if spStarted && sp.Active() {
					// Reached after a failed forward attempt: hand the serving
					// layer our trace identity so its spans join this trace.
					r.Header.Set("traceparent", sp.Traceparent())
					sp.End(trace.Str("served_by", "local"))
				}
				n.serveLocal(w, r, body, next)
				return
			}
			// Local capacity exhausted: overflow to the remaining replicas
			// instead of shedding outright.
			localShed = true
			continue
		}
		sawPeer = true
		if hops >= n.cfg.MaxHops || attempts >= maxForwardAttempts {
			continue
		}
		attempts++
		if n.forwardTo(w, r, body, c, hops, startSpan()) {
			sp.End()
			return
		}
	}

	switch {
	case localShed:
		if spStarted {
			sp.EndErr(errors.New("local capacity shed"))
		}
		n.shed429(w)
	case sawPeer && hops >= n.cfg.MaxHops:
		// Every holder is remote and the hop budget is spent: a stale ring
		// has routed the request in a circle. Break the loop.
		n.hopRejects.Add(1)
		err := fmt.Errorf("forwarding loop: model %q not local after %d hops (stale ring?)", sniff.Model, hops)
		if spStarted {
			sp.EndErr(err)
		}
		clusterError(w, http.StatusBadGateway, err)
	default:
		err := fmt.Errorf("no reachable owner for model %q (%d forward attempts failed)", sniff.Model, attempts)
		if spStarted {
			sp.EndErr(err)
		}
		clusterError(w, http.StatusBadGateway, err)
	}
}

// solo reports whether this node is routing for itself only.
func (n *Node) solo() bool {
	if len(n.cfg.Peers) > 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.members) == 1
}

// forwardSpan opens the trace for a forwarded predict: an inbound sampled
// traceparent joins the caller's trace (so client -> entry node -> owner is
// ONE trace), otherwise the tracer head-samples.
func (n *Node) forwardSpan(r *http.Request, model string, hops int) trace.Span {
	t := n.cfg.Tracer
	if t == nil {
		return trace.Span{}
	}
	attrs := []trace.Attr{
		trace.Str("model", model),
		trace.Str("node_id", n.cfg.NodeID),
		trace.Num("hops_in", float64(hops)),
	}
	if id, parent, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		if !sampled {
			return trace.Span{}
		}
		return t.StartRemote("cluster.predict", id, parent, attrs...)
	}
	if !t.Sample() {
		return trace.Span{}
	}
	return t.Start("cluster.predict", attrs...)
}

// forwardTo proxies the request to one peer. Returns true when a response
// was written (success or a non-retryable client fault); false means the
// attempt failed and the caller may try the next candidate. Each attempt is
// a fwd.remote child span carrying the peer identity, and the remote node's
// root span id (echoed in its response traceparent) is annotated back so the
// cross-node trace joins up.
func (n *Node) forwardTo(w http.ResponseWriter, r *http.Request, body []byte, peer candidate, hops int, sp trace.Span) bool {
	n.forwards.Add(1)
	child := sp.Child("fwd.remote",
		trace.Str("peer", peer.ID),
		trace.Str("peer_addr", peer.Addr),
		trace.Num("hop", float64(hops+1)))
	start := time.Now()

	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+peer.Addr+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		child.EndErr(err)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(hopsHeader, strconv.Itoa(hops+1))
	req.Header.Set(originHeader, n.cfg.NodeID)
	// Propagate trace identity: our span when tracing, else the caller's
	// inbound header verbatim so an untraced hop still joins end to end.
	if child.Active() {
		req.Header.Set("traceparent", child.Traceparent())
	} else if tp := r.Header.Get("traceparent"); tp != "" {
		req.Header.Set("traceparent", tp)
	}

	resp, err := n.cfg.Client.Do(req)
	lat := time.Since(start)
	if err != nil {
		peer.score.observe(lat, true)
		n.forwardErrors.Add(1)
		n.cfg.Logger.Warn("cluster forward failed",
			"node", n.cfg.NodeID, "peer", peer.ID, "addr", peer.Addr, "err", err)
		child.EndErr(err)
		return false
	}
	defer resp.Body.Close()
	if retryableStatus(resp.StatusCode) {
		peer.score.observe(lat, true)
		n.forwardErrors.Add(1)
		child.EndErr(fmt.Errorf("peer %s answered %d", peer.ID, resp.StatusCode),
			trace.Num("status", float64(resp.StatusCode)))
		return false
	}
	peer.score.observe(lat, false)
	if remoteID, remoteRoot, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent")); ok {
		child.Annotate(trace.Str("remote_span", remoteRoot.String()),
			trace.Str("remote_trace", remoteID.String()))
	}
	for _, h := range []string{"Content-Type", "Retry-After", nodeHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(originHeader, n.cfg.NodeID)
	w.WriteHeader(resp.StatusCode)
	_, cpErr := io.Copy(w, resp.Body)
	child.EndErr(cpErr, trace.Num("status", float64(resp.StatusCode)))
	return true
}

// retryableStatus reports whether a peer's answer means "try the next
// replica": the peer is overloaded, mid-drain, timed out, or its inventory
// was stale (404). Client faults (400/413) and model answers pass through.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusNotFound, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// tokenBucket is the node capacity gate: LocalRPS sustained, with a small
// burst so batched client arrivals are not shed spuriously.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	burst := rate / 4
	if burst < 8 {
		burst = 8
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (tb *tokenBucket) allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens = math.Min(tb.burst, tb.tokens+now.Sub(tb.last).Seconds()*tb.rate)
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
