package cluster

import (
	"fmt"
	"testing"
)

// syntheticKeys returns n distinct model-name-like keys.
func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	return keys
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return ids
}

// TestRingBalance: at 128 vnodes the key share of the most and least loaded
// node stays within 1.6x of each other for every cluster size from 3 to 16.
func TestRingBalance(t *testing.T) {
	keys := syntheticKeys(20000)
	for nodes := 3; nodes <= 16; nodes++ {
		r := buildRing(nodeIDs(nodes), defaultVNodes)
		counts := make(map[string]int, nodes)
		for _, k := range keys {
			counts[r.owner(k)]++
		}
		if len(counts) != nodes {
			t.Fatalf("%d nodes: only %d received keys", nodes, len(counts))
		}
		minC, maxC := len(keys), 0
		for _, c := range counts {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		ratio := float64(maxC) / float64(minC)
		if ratio >= 1.6 {
			t.Errorf("%d nodes: max/min key share = %d/%d = %.2fx, want < 1.6x", nodes, maxC, minC, ratio)
		}
	}
}

// TestRingMinimalMovementOnJoin: adding one node to an N-node ring moves
// fewer than 2/(N+1) of the keys (ideal is 1/(N+1)), and every moved key
// moves TO the new node — consistent hashing's defining property.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := syntheticKeys(20000)
	for nodes := 3; nodes <= 16; nodes++ {
		before := buildRing(nodeIDs(nodes), defaultVNodes)
		joined := append(nodeIDs(nodes), "node-joining")
		after := buildRing(joined, defaultVNodes)
		moved := 0
		for _, k := range keys {
			oldOwner, newOwner := before.owner(k), after.owner(k)
			if oldOwner != newOwner {
				moved++
				if newOwner != "node-joining" {
					t.Fatalf("%d nodes: key %q moved %s->%s, not to the joining node", nodes, k, oldOwner, newOwner)
				}
			}
		}
		bound := 2.0 / float64(nodes+1) * float64(len(keys))
		if float64(moved) >= bound {
			t.Errorf("join at %d nodes moved %d/%d keys, want < %.0f (2/N)", nodes, moved, len(keys), bound)
		}
	}
}

// TestRingMinimalMovementOnLeave: removing one node moves exactly that
// node's keys (every key it owned, no key anyone else owned).
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := syntheticKeys(20000)
	for nodes := 3; nodes <= 16; nodes++ {
		ids := nodeIDs(nodes)
		before := buildRing(ids, defaultVNodes)
		after := buildRing(ids[:nodes-1], defaultVNodes) // last node leaves
		leaver := ids[nodes-1]
		moved := 0
		for _, k := range keys {
			oldOwner, newOwner := before.owner(k), after.owner(k)
			if oldOwner == leaver {
				if newOwner == leaver {
					t.Fatalf("leaver %s still owns %q", leaver, k)
				}
				moved++
				continue
			}
			if oldOwner != newOwner {
				t.Fatalf("%d nodes: key %q owned by %s moved to %s though only %s left", nodes, k, oldOwner, newOwner, leaver)
			}
		}
		bound := 2.0 / float64(nodes) * float64(len(keys))
		if float64(moved) >= bound {
			t.Errorf("leave at %d nodes moved %d/%d keys, want < %.0f (2/N)", nodes, moved, len(keys), bound)
		}
	}
}

// TestRingOwnersDistinctAndStable: owners returns distinct nodes in a
// deterministic order, and the full ownership sequence covers the cluster.
func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := buildRing(nodeIDs(5), defaultVNodes)
	a := r.owners("some-model", 5)
	b := r.owners("some-model", 5)
	if len(a) != 5 {
		t.Fatalf("owners returned %d nodes, want 5", len(a))
	}
	seen := make(map[string]bool)
	for i, id := range a {
		if seen[id] {
			t.Fatalf("duplicate owner %s", id)
		}
		seen[id] = true
		if b[i] != id {
			t.Fatalf("owners not deterministic: %v vs %v", a, b)
		}
	}
	if got := r.owners("some-model", 2); len(got) != 2 || got[0] != a[0] || got[1] != a[1] {
		t.Fatalf("owners(2) = %v, want prefix of %v", got, a)
	}
}

// TestRingEmpty: lookups on an empty ring are nil/"" rather than panics.
func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, defaultVNodes)
	if o := r.owner("m"); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
	if o := r.owners("m", 3); o != nil {
		t.Fatalf("empty ring owners = %v", o)
	}
	var nilRing *ring
	if o := nilRing.owners("m", 3); o != nil {
		t.Fatalf("nil ring owners = %v", o)
	}
}
