package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// gossipFanout is how many peers one tick exchanges with. Two keeps
// convergence O(log N) rounds while a 3-node cluster converges in one.
const gossipFanout = 2

// maxGossipBody bounds an inbound gossip payload (membership is small;
// anything bigger is a confused or hostile caller).
const maxGossipBody = 1 << 20

// wireState is one member's gossiped state. Liveness is derived locally
// from heartbeat *advances*, never from remote clocks, so nodes with skewed
// clocks still converge.
type wireState struct {
	ID        string         `json:"id"`
	Addr      string         `json:"addr"`
	Gen       uint64         `json:"gen"`
	Heartbeat uint64         `json:"heartbeat"`
	Load      float64        `json:"load"`
	Models    map[string]int `json:"models"`
}

// gossipMsg is the push-pull payload: the sender's full membership view.
// The response is the receiver's view in the same shape.
type gossipMsg struct {
	From  string      `json:"from"`
	Nodes []wireState `json:"nodes"`
}

// gossipLoop ticks until Stop: refresh self, pick up to gossipFanout dial
// targets (alive peers, unseen seeds, and dead members — probing the dead is
// what lets a restarted node rejoin), exchange, merge.
func (n *Node) gossipLoop() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	// First exchange immediately: a 3-node cluster is routable within one
	// interval of the last node starting, not two.
	n.gossipOnce()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.gossipOnce()
		}
	}
}

// gossipOnce runs one tick of the loop: all targets are dialed concurrently,
// each with its own deadline of one GossipInterval (well under SuspectAfter),
// so a blackholed or partitioned peer cannot stall the tick and starve the
// exchanges with healthy peers into staleness.
func (n *Node) gossipOnce() {
	now := time.Now()
	n.refreshSelf(now)
	var wg sync.WaitGroup
	for _, addr := range n.pickTargets() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.GossipInterval)
			defer cancel()
			if err := n.exchange(ctx, addr); err != nil {
				n.gossipFails.Add(1)
				n.cfg.Logger.Debug("gossip exchange failed", "node", n.cfg.NodeID, "peer", addr, "err", err)
				return
			}
			n.gossipRounds.Add(1)
			n.mu.Lock()
			n.exchanged = true
			n.mu.Unlock()
		}(addr)
	}
	wg.Wait()
}

// pickTargets chooses the tick's dial addresses: every configured seed not
// yet in the membership (joining must converge), then a random sample of
// known peer addresses (alive and dead alike).
func (n *Node) pickTargets() []string {
	n.mu.Lock()
	known := make(map[string]struct{}, len(n.members))
	var memberAddrs []string
	for id, m := range n.members {
		known[m.Addr] = struct{}{}
		if id != n.cfg.NodeID {
			memberAddrs = append(memberAddrs, m.Addr)
		}
	}
	n.mu.Unlock()
	var targets []string
	for _, seed := range n.cfg.Peers {
		if _, ok := known[seed]; !ok {
			targets = append(targets, seed)
		}
	}
	rand.Shuffle(len(memberAddrs), func(i, j int) {
		memberAddrs[i], memberAddrs[j] = memberAddrs[j], memberAddrs[i]
	})
	for _, a := range memberAddrs {
		if len(targets) >= gossipFanout {
			break
		}
		targets = append(targets, a)
	}
	return targets
}

// exchange performs one push-pull with a peer: POST our view, merge theirs.
func (n *Node) exchange(ctx context.Context, addr string) error {
	body, err := json.Marshal(gossipMsg{From: n.cfg.NodeID, Nodes: n.snapshotWire()})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/cluster/gossip", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gossip peer %s answered %d", addr, resp.StatusCode)
	}
	var msg gossipMsg
	if err := json.NewDecoder(http.MaxBytesReader(nil, resp.Body, maxGossipBody)).Decode(&msg); err != nil {
		return fmt.Errorf("gossip peer %s: bad response: %w", addr, err)
	}
	n.merge(msg.Nodes)
	return nil
}

// snapshotWire renders the membership for the wire.
func (n *Node) snapshotWire() []wireState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]wireState, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, wireState{
			ID: m.ID, Addr: m.Addr, Gen: m.Gen, Heartbeat: m.Heartbeat,
			Load: m.Load, Models: m.Models,
		})
	}
	return out
}

// merge folds a remote view into the membership: per node id a higher
// incarnation (Gen, one per process boot) wins outright, and within an
// incarnation the higher heartbeat wins; an advance stamps lastAdvance with
// the LOCAL clock (the liveness reference). Incarnation-first ordering is
// what lets a restarted node — heartbeat back at 1 while peers remember its
// old high counter — rejoin within a gossip round instead of having to
// outrun its previous uptime. Self is authoritative locally and never
// merged.
func (n *Node) merge(nodes []wireState) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ws := range nodes {
		if ws.ID == "" || ws.ID == n.cfg.NodeID {
			continue
		}
		m, ok := n.members[ws.ID]
		if !ok {
			m = &member{ID: ws.ID, score: &peerScore{}}
			n.members[ws.ID] = m
			n.cfg.Logger.Info("cluster member joined", "node", n.cfg.NodeID, "peer", ws.ID, "addr", ws.Addr)
		}
		if ws.Gen < m.Gen || (ws.Gen == m.Gen && ws.Heartbeat <= m.Heartbeat) {
			continue
		}
		if ok && ws.Gen > m.Gen && m.Gen > 0 {
			n.cfg.Logger.Info("cluster member restarted", "node", n.cfg.NodeID, "peer", ws.ID, "addr", ws.Addr)
		}
		m.Gen = ws.Gen
		m.Heartbeat = ws.Heartbeat
		m.Addr = ws.Addr
		m.Load = ws.Load
		m.Models = ws.Models
		m.lastAdvance = now
		m.score.heard(now)
	}
}

// handleGossip is POST /v1/cluster/gossip: merge the caller's view, answer
// with ours (the pull half of push-pull).
func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		clusterError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var msg gossipMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGossipBody)).Decode(&msg); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("bad gossip body: %w", err))
		return
	}
	n.refreshSelf(time.Now())
	n.merge(msg.Nodes)
	// Being gossiped AT is as good as gossiping out for "have we ever
	// exchanged": a node whose seeds dial it first is joined, not joining.
	n.mu.Lock()
	n.exchanged = true
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(gossipMsg{From: n.cfg.NodeID, Nodes: n.snapshotWire()})
}

// handleState is GET /v1/cluster/state: this node's membership + routes.
func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		clusterError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.State())
}

func clusterError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
