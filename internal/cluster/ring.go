package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per member. 128 points per node
// keeps the max/min key share under 1.6x from 3 through 16 nodes (see
// ring_test.go) while a membership change still only rebuilds a few KB of
// sorted points.
const defaultVNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a member.
type ringPoint struct {
	hash uint64
	node string
}

// ring is an immutable consistent-hash ring over a member set. Build one
// with buildRing; lookups walk clockwise from the key's hash.
type ring struct {
	points []ringPoint
}

// hashKey positions a key (a model name, or a node#vnode label) on the
// circle: FNV-64a followed by a 64-bit avalanche finalizer (murmur3's
// fmix64). FNV alone leaves short sequential labels like "node#0".."node#127"
// correlated in the high bits, which skews vnode placement badly; the
// finalizer restores uniform dispersion.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing places vnodes points per node on the circle. Ties (vanishingly
// rare with 64-bit hashes) break by node id so the ring is deterministic
// across processes given the same member set.
func buildRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	points := make([]ringPoint, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			points = append(points, ringPoint{hash: hashKey(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node
	})
	return &ring{points: points}
}

// owners returns up to max distinct nodes in ring order starting at the
// key's position — the key's primary owner first, then its replica
// candidates. An empty ring returns nil.
func (r *ring) owners(key string, max int) []string {
	if r == nil || len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, max)
	out := make([]string, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// owner returns the key's primary owner ("" on an empty ring).
func (r *ring) owner(key string) string {
	o := r.owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
