package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobiledl/internal/leakcheck"
	"mobiledl/internal/metrics"
	"mobiledl/internal/trace"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func staticInventory(models ...string) func() map[string]int {
	return func() map[string]int {
		inv := make(map[string]int, len(models))
		for _, m := range models {
			inv[m] = 1
		}
		return inv
	}
}

// capture is a race-safe string slot for values observed inside handler
// goroutines (the race detector does not see happens-before through the
// loopback socket).
type capture struct {
	mu sync.Mutex
	v  string
}

func (c *capture) set(v string) { c.mu.Lock(); c.v = v; c.mu.Unlock() }
func (c *capture) get() string  { c.mu.Lock(); defer c.mu.Unlock(); return c.v }

// testNode is one in-process cluster participant: a Node fronting a fake
// serving handler over a real listener, so forwards travel real HTTP.
type testNode struct {
	n    *Node
	ts   *httptest.Server
	addr string
}

// startTestNode builds a node whose AdvertiseAddr is the real bound port
// (listener first, then config — the same order cmd/mobiledlserve uses).
func startTestNode(t *testing.T, id string, inv func() map[string]int, local http.Handler, tweak func(*Config)) *testNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	cfg := Config{
		NodeID:         id,
		AdvertiseAddr:  ln.Addr().String(),
		GossipInterval: time.Minute, // tests drive gossip explicitly unless tweaked
		Inventory:      inv,
		Logger:         quietLogger(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	if local == nil {
		local = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "no local handler", http.StatusNotFound)
		})
	}
	ts := httptest.NewUnstartedServer(n.Handler(local))
	_ = ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		n.Stop()
	})
	return &testNode{n: n, ts: ts, addr: ln.Addr().String()}
}

// fakeServe answers like the serving layer would: 200 with a model/version
// body, echoing which node ran it.
func fakeServe(nodeID string, version int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Model string `json:"model"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"model": req.Model, "version": version, "served_by": nodeID,
		})
	})
}

func predict(t *testing.T, addr, model string, hdr map[string]string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"model":%q,"features":[1,2,3]}`, model)
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("predict %s on %s: %v", model, addr, err)
	}
	return resp
}

// inject makes peer p a live member of n's view with the given inventory,
// without running gossip (tests control the topology exactly).
func inject(n *Node, id, addr string, models map[string]int) {
	n.merge([]wireState{{ID: id, Addr: addr, Heartbeat: 100, Models: models}})
}

// TestForwardToOwnerJoinsTrace: a predict for a model held only by a peer is
// proxied there, the client sees the peer's answer, and the whole path —
// client traceparent in, cluster.predict root, fwd.remote child with peer
// attrs, remote serve — is ONE trace.
func TestForwardToOwnerJoinsTrace(t *testing.T) {
	var remoteTP capture
	b := startTestNode(t, "node-b", staticInventory("m"),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			remoteTP.set(r.Header.Get("traceparent"))
			// Echo a response traceparent like the serving layer does, so the
			// forwarder can annotate the remote span id.
			w.Header().Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-aaaaaaaaaaaaaaaa-01")
			fakeServe("node-b", 1).ServeHTTP(w, r)
		}), nil)

	tr := trace.New(trace.Config{Sample: 1})
	a := startTestNode(t, "node-a", staticInventory(), nil, func(c *Config) {
		c.Tracer = tr
	})
	inject(a.n, "node-b", b.addr, map[string]int{"m": 1})

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	resp := predict(t, a.addr, "m", map[string]string{
		"traceparent": "00-" + traceID + "-00f067aa0ba902b7-01",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out["served_by"] != "node-b" {
		t.Fatalf("served_by = %v, want node-b", out["served_by"])
	}
	if got := resp.Header.Get(nodeHeader); got != "node-b" {
		t.Fatalf("%s = %q, want node-b", nodeHeader, got)
	}
	if got := resp.Header.Get(originHeader); got != "node-a" {
		t.Fatalf("%s = %q, want node-a", originHeader, got)
	}

	// The forwarded request carried the SAME trace id downstream.
	if id, _, sampled, ok := trace.ParseTraceparent(remoteTP.get()); !ok || id.String() != traceID || !sampled {
		t.Fatalf("peer saw traceparent %q, want sampled trace %s", remoteTP.get(), traceID)
	}
	// And the response advertises it back to the client.
	if id, _, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent")); !ok || id.String() != traceID {
		t.Fatalf("response traceparent %q, want trace %s", resp.Header.Get("traceparent"), traceID)
	}

	td := tr.Get(traceID)
	if td == nil {
		t.Fatalf("trace %s not retained on the entry node", traceID)
	}
	var root, fwd *trace.SpanData
	for i := range td.Spans {
		switch td.Spans[i].Name {
		case "cluster.predict":
			root = &td.Spans[i]
		case "fwd.remote":
			fwd = &td.Spans[i]
		}
	}
	if root == nil || fwd == nil {
		t.Fatalf("trace spans = %+v, want cluster.predict + fwd.remote", td.Spans)
	}
	if fwd.Parent != root.ID {
		t.Fatalf("fwd.remote parent = %d, want cluster.predict (%d)", fwd.Parent, root.ID)
	}
	if fwd.Attrs["peer"] != "node-b" || fwd.Attrs["peer_addr"] != b.addr {
		t.Fatalf("fwd.remote attrs = %v, want peer=node-b addr=%s", fwd.Attrs, b.addr)
	}
	if fwd.Attrs["remote_span"] != "aaaaaaaaaaaaaaaa" {
		t.Fatalf("fwd.remote remote_span = %v, want the peer's echoed span id", fwd.Attrs["remote_span"])
	}
}

// TestHopCapRejects: a request arriving over the hop cap is answered 502
// with a JSON error naming the cap, and counted.
func TestHopCapRejects(t *testing.T) {
	a := startTestNode(t, "node-a", staticInventory("m"), fakeServe("node-a", 1), nil)
	resp := predict(t, a.addr, "m", map[string]string{hopsHeader: "3"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("502 body missing error field (err=%v)", err)
	}
	if !strings.Contains(body.Error, "hop") {
		t.Fatalf("error %q does not mention the hop cap", body.Error)
	}
	if a.n.hopRejects.Load() != 1 {
		t.Fatalf("hopRejects = %d, want 1", a.n.hopRejects.Load())
	}
}

// TestHopCycleBreaks is the stale-ring regression: A believes only B holds
// the model, B believes only A does. The request must terminate with a 502
// after a bounded number of forwards, with the loop detected and counted at
// the node where the hop budget ran out — not ping-pong forever.
func TestHopCycleBreaks(t *testing.T) {
	serveNothing := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request leaked through to a local handler that owns nothing")
	})
	a := startTestNode(t, "node-a", staticInventory(), serveNothing, nil)
	b := startTestNode(t, "node-b", staticInventory(), serveNothing, nil)
	// Mutually stale views: each thinks the OTHER holds "m".
	inject(a.n, "node-b", b.addr, map[string]int{"m": 1})
	inject(b.n, "node-a", a.addr, map[string]int{"m": 1})

	resp := predict(t, a.addr, "m", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("502 body missing error field (err=%v)", err)
	}
	rejects := a.n.hopRejects.Load() + b.n.hopRejects.Load()
	if rejects == 0 {
		t.Fatal("no hop rejection counted on either node — the loop was not detected")
	}
	// Total forwards across the pair must be bounded by the hop cap, not the
	// retry budget compounding per hop.
	if total := a.n.forwards.Load() + b.n.forwards.Load(); total > 4 {
		t.Fatalf("cycle generated %d forwards, want a small bounded number", total)
	}
}

// TestRoutesAroundUnreachablePeer: when the ring's first choice for a model
// does not answer, the forwarder retries the next replica and the request
// still succeeds; the failure lands in the dead peer's score.
func TestRoutesAroundUnreachablePeer(t *testing.T) {
	// Reserve an address that refuses connections: listen, grab the port,
	// close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()

	// Pick peer ids so the UNREACHABLE one is the ring's first owner —
	// otherwise the retry path under test never runs.
	owners := buildRing([]string{"node-a", "peer-1", "peer-2"}, defaultVNodes).owners("m", 3)
	var firstPeer, secondPeer string
	for _, id := range owners {
		if id == "node-a" {
			continue
		}
		if firstPeer == "" {
			firstPeer = id
		} else {
			secondPeer = id
		}
	}

	live := startTestNode(t, secondPeer, staticInventory("m"), fakeServe(secondPeer, 1), nil)
	a := startTestNode(t, "node-a", staticInventory(), nil, func(cfg *Config) {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	})
	inject(a.n, firstPeer, deadAddr, map[string]int{"m": 1})
	inject(a.n, secondPeer, live.addr, map[string]int{"m": 1})

	resp := predict(t, a.addr, "m", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via the second replica", resp.StatusCode)
	}
	if got := resp.Header.Get(nodeHeader); got != secondPeer {
		t.Fatalf("%s = %q, want %s", nodeHeader, got, secondPeer)
	}
	if a.n.forwardErrors.Load() == 0 {
		t.Fatal("dead-peer attempt not counted as a forward error")
	}
	// The failure must show up in the dead peer's score so future routing
	// demotes it below the healthy replica.
	now := time.Now()
	a.n.mu.Lock()
	deadScore := a.n.members[firstPeer].score.score(now, a.n.cfg.SuspectAfter)
	liveScore := a.n.members[secondPeer].score.score(now, a.n.cfg.SuspectAfter)
	a.n.mu.Unlock()
	if deadScore >= liveScore {
		t.Fatalf("dead peer score %.3f not below live peer score %.3f", deadScore, liveScore)
	}
}

// TestCapacityGateSheds: a solo node with a tiny LocalRPS admits its burst
// and sheds the rest 429 with Retry-After, counting them.
func TestCapacityGateSheds(t *testing.T) {
	a := startTestNode(t, "node-a", staticInventory("m"), fakeServe("node-a", 1), func(c *Config) {
		c.LocalRPS = 0.001 // burst floor (8) admits, refill is negligible
	})
	ok, shed := 0, 0
	for i := 0; i < 40; i++ {
		resp := predict(t, a.addr, "m", nil)
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d, want the burst admitted and the rest shed", ok, shed)
	}
	if ok > 10 {
		t.Fatalf("admitted %d requests, want roughly the burst floor (8)", ok)
	}
	if a.n.shed.Load() != uint64(shed) {
		t.Fatalf("shed counter = %d, want %d", a.n.shed.Load(), shed)
	}
}

// TestLocalOverflowSpillsToReplica: a node that holds the model but is out of
// capacity forwards to a replica instead of shedding.
func TestLocalOverflowSpillsToReplica(t *testing.T) {
	// Pick a model name node-a owns first on the ring, so the local-overflow
	// branch (not plain forwarding) is what runs.
	r := buildRing([]string{"node-a", "node-b"}, defaultVNodes)
	model := ""
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("spill-%d", i)
		if r.owner(name) == "node-a" {
			model = name
			break
		}
	}
	if model == "" {
		t.Fatal("no model name hashing to node-a in 100 tries")
	}

	b := startTestNode(t, "node-b", staticInventory(model), fakeServe("node-b", 1), nil)
	a := startTestNode(t, "node-a", staticInventory(model), fakeServe("node-a", 1), func(c *Config) {
		c.LocalRPS = 0.001
	})
	inject(a.n, "node-b", b.addr, map[string]int{model: 1})
	// Drain A's burst allowance.
	a.n.gate.mu.Lock()
	a.n.gate.tokens = 0
	a.n.gate.mu.Unlock()

	resp := predict(t, a.addr, model, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 spilled to the replica", resp.StatusCode)
	}
	if got := resp.Header.Get(nodeHeader); got != "node-b" {
		t.Fatalf("served by %q, want node-b (A was at capacity)", got)
	}
}

// TestStatusTransitions walks solo -> joining -> ok -> partitioned on real
// gossiping nodes.
func TestStatusTransitions(t *testing.T) {
	leakcheck.Check(t)
	solo := startTestNode(t, "solo", staticInventory("m"), fakeServe("solo", 1), nil)
	if got := solo.n.Status(); got != StatusSolo {
		t.Fatalf("no-peer node status = %q, want %q", got, StatusSolo)
	}

	b := startTestNode(t, "node-b", staticInventory("m2"), fakeServe("node-b", 1), func(c *Config) {
		c.GossipInterval = 25 * time.Millisecond
		c.SuspectAfter = 150 * time.Millisecond
	})
	a := startTestNode(t, "node-a", staticInventory("m1"), fakeServe("node-a", 1), func(c *Config) {
		c.Peers = []string{b.addr}
		c.GossipInterval = 25 * time.Millisecond
		c.SuspectAfter = 150 * time.Millisecond
	})
	if got := a.n.Status(); got != StatusJoining {
		t.Fatalf("pre-gossip status = %q, want %q", got, StatusJoining)
	}

	a.n.Start()
	b.n.Start()
	waitFor(t, 2*time.Second, func() bool {
		return a.n.Status() == StatusOK && b.n.Status() == StatusOK
	}, "both nodes reaching status ok")

	// Inventory converged: A can route m2 to B.
	waitFor(t, 2*time.Second, func() bool {
		cands := a.n.candidates("m2", time.Now())
		return len(cands) == 1 && cands[0].ID == "node-b"
	}, "A learning B's inventory")

	// Kill B; A's view of it goes stale past SuspectAfter -> partitioned.
	b.ts.Close()
	b.n.Stop()
	waitFor(t, 2*time.Second, func() bool {
		return a.n.Status() == StatusPartitioned
	}, "A detecting the dead peer")
	// And the dead peer drops out of routing.
	if cands := a.n.candidates("m2", time.Now()); len(cands) != 0 {
		t.Fatalf("dead peer still routed: %v", cands[0].ID)
	}
}

// TestThreeNodeConvergenceAndFailover: three real nodes with chained seeds
// (c -> b -> a) converge to full membership; every model is then servable
// from any entry node; killing one node keeps every model that has a
// surviving replica servable.
func TestThreeNodeConvergenceAndFailover(t *testing.T) {
	tweak := func(peers ...string) func(*Config) {
		return func(c *Config) {
			c.Peers = peers
			c.GossipInterval = 25 * time.Millisecond
			c.SuspectAfter = 150 * time.Millisecond
			c.Client = &http.Client{Timeout: 2 * time.Second}
		}
	}
	// Replication factor 2: every model lives on two nodes.
	a := startTestNode(t, "node-a", staticInventory("alpha", "beta"), fakeServe("node-a", 1), tweak())
	b := startTestNode(t, "node-b", staticInventory("beta", "gamma"), fakeServe("node-b", 1), tweak(a.addr))
	c := startTestNode(t, "node-c", staticInventory("gamma", "alpha"), fakeServe("node-c", 1), tweak(b.addr))
	nodes := []*testNode{a, b, c}
	for _, n := range nodes {
		n.n.Start()
	}
	waitFor(t, 3*time.Second, func() bool {
		for _, n := range nodes {
			n.n.mu.Lock()
			members := len(n.n.members)
			n.n.mu.Unlock()
			if members != 3 || n.n.Status() != StatusOK {
				return false
			}
		}
		return true
	}, "3-node membership convergence")

	models := []string{"alpha", "beta", "gamma"}
	for _, entry := range nodes {
		for _, m := range models {
			resp := predict(t, entry.addr, m, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("model %s via %s: status %d", m, entry.n.cfg.NodeID, resp.StatusCode)
			}
			resp.Body.Close()
		}
	}

	// Kill node-b. alpha/beta/gamma all survive on {a, c}.
	b.ts.Close()
	b.n.Stop()
	waitFor(t, 2*time.Second, func() bool {
		for _, n := range []*testNode{a, c} {
			for _, m := range models {
				ok := false
				for _, cand := range n.n.candidates(m, time.Now()) {
					if cand.ID != "node-b" {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}, "routing tables dropping the dead node")
	for _, entry := range []*testNode{a, c} {
		for _, m := range models {
			resp := predict(t, entry.addr, m, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("after failover, model %s via %s: status %d", m, entry.n.cfg.NodeID, resp.StatusCode)
			}
			if served := resp.Header.Get(nodeHeader); served == "node-b" {
				t.Fatalf("dead node reported as server for %s", m)
			}
			resp.Body.Close()
		}
	}
}

// TestStateEndpoint: /v1/cluster/state exposes membership and per-model
// routes.
func TestStateEndpoint(t *testing.T) {
	b := startTestNode(t, "node-b", staticInventory("m"), fakeServe("node-b", 1), nil)
	a := startTestNode(t, "node-a", staticInventory("local"), fakeServe("node-a", 1), nil)
	inject(a.n, "node-b", b.addr, map[string]int{"m": 2})

	resp, err := http.Get("http://" + a.addr + "/v1/cluster/state")
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	defer resp.Body.Close()
	var sv StateView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatalf("decode state: %v", err)
	}
	if sv.NodeID != "node-a" || len(sv.Members) != 2 {
		t.Fatalf("state = %+v, want node-a with 2 members", sv)
	}
	if route := sv.Routes["m"]; len(route) != 1 || route[0] != "node-b" {
		t.Fatalf("route for m = %v, want [node-b]", route)
	}
	if route := sv.Routes["local"]; len(route) != 1 || route[0] != "node-a" {
		t.Fatalf("route for local = %v, want [node-a]", route)
	}
}

// TestWriteMetrics asserts the satellite-specified metric families render.
func TestWriteMetrics(t *testing.T) {
	a := startTestNode(t, "node-a", staticInventory("m"), fakeServe("node-a", 1), func(c *Config) {
		c.LocalRPS = 100
	})
	inject(a.n, "node-b", "127.0.0.1:1", map[string]int{"m": 1})
	a.n.forwards.Add(3)
	a.n.forwardErrors.Add(1)

	var buf bytes.Buffer
	pw := metrics.NewPromWriter(&buf)
	a.n.WriteMetrics(pw)
	if err := pw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`mobiledl_cluster_peers{node="node-a"} 1`,
		`mobiledl_cluster_forwards_total{node="node-a"} 3`,
		`mobiledl_cluster_forward_errors_total{node="node-a"} 1`,
		`mobiledl_cluster_hop_rejects_total{node="node-a"} 0`,
		`mobiledl_cluster_peer_score{node="node-a",peer="node-b"}`,
		`mobiledl_cluster_load{node="node-a"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

// TestMalformedHopsHeader: garbage in the hop header is a 400, not a panic
// or a forward.
func TestMalformedHopsHeader(t *testing.T) {
	a := startTestNode(t, "node-a", staticInventory("m"), fakeServe("node-a", 1), nil)
	resp := predict(t, a.addr, "m", map[string]string{hopsHeader: "banana"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestModellessBodyPassesThrough: bodies the sniffer can't route go to the
// local serving layer, whose 4xx wording is authoritative.
func TestModellessBodyPassesThrough(t *testing.T) {
	var gotBody capture
	a := startTestNode(t, "node-a", staticInventory("m"),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			gotBody.set(string(body))
			http.Error(w, "model required", http.StatusBadRequest)
		}), nil)
	inject(a.n, "node-b", "127.0.0.1:1", map[string]int{"m": 1})

	req, _ := http.NewRequest(http.MethodPost, "http://"+a.addr+"/v1/predict",
		strings.NewReader(`{"features":[1,2,3]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want the local handler's 400", resp.StatusCode)
	}
	if !strings.Contains(gotBody.get(), "features") {
		t.Fatalf("local handler got body %q, want the re-buffered original", gotBody.get())
	}
}

// TestRestartedNodeRejoins: a rebooted peer comes back with its heartbeat
// reset to 1 but a higher incarnation; merge must accept its fresh state
// immediately instead of waiting for the new counter to outrun the old
// uptime — and stale gossip about the old incarnation must not resurrect it.
func TestRestartedNodeRejoins(t *testing.T) {
	a := startTestNode(t, "node-a", staticInventory(), nil, nil)
	// Long-lived first incarnation of node-b.
	a.n.merge([]wireState{{ID: "node-b", Addr: "127.0.0.1:1", Gen: 50, Heartbeat: 100000, Models: map[string]int{"old": 1}}})
	// Reboot: incarnation up, heartbeat restarted, new addr and inventory.
	a.n.merge([]wireState{{ID: "node-b", Addr: "127.0.0.1:2", Gen: 51, Heartbeat: 1, Models: map[string]int{"new": 2}}})
	a.n.mu.Lock()
	m := a.n.members["node-b"]
	addr, hb, models := m.Addr, m.Heartbeat, m.Models
	a.n.mu.Unlock()
	if addr != "127.0.0.1:2" || hb != 1 || models["new"] != 2 {
		t.Fatalf("restarted peer not accepted: addr=%s heartbeat=%d models=%v", addr, hb, models)
	}
	// Third-hand gossip still carrying the dead incarnation loses.
	a.n.merge([]wireState{{ID: "node-b", Addr: "127.0.0.1:1", Gen: 50, Heartbeat: 100001, Models: map[string]int{"old": 1}}})
	a.n.mu.Lock()
	addr = a.n.members["node-b"].Addr
	a.n.mu.Unlock()
	if addr != "127.0.0.1:2" {
		t.Fatalf("stale incarnation overwrote the restarted peer: addr=%s", addr)
	}
}

// TestRestartedNodeRejoinsOverGossip drives the same scenario through real
// gossip: node-b restarts as a fresh process (same id, new port, heartbeat
// back at 1) and node-a must route to the new instance promptly, not after
// the new heartbeat outruns the old one.
func TestRestartedNodeRejoinsOverGossip(t *testing.T) {
	leakcheck.Check(t)
	a := startTestNode(t, "node-a", staticInventory("m1"), fakeServe("node-a", 1), func(c *Config) {
		c.GossipInterval = 25 * time.Millisecond
		c.SuspectAfter = 150 * time.Millisecond
	})
	tweakB := func(c *Config) {
		c.Peers = []string{a.addr}
		c.GossipInterval = 25 * time.Millisecond
		c.SuspectAfter = 150 * time.Millisecond
	}
	b1 := startTestNode(t, "node-b", staticInventory("m2"), fakeServe("node-b", 1), tweakB)
	// Fake a long uptime so the old heartbeat dwarfs anything a fresh boot
	// reaches during the test.
	b1.n.mu.Lock()
	b1.n.members["node-b"].Heartbeat = 1_000_000
	b1.n.mu.Unlock()
	a.n.Start()
	b1.n.Start()
	waitFor(t, 2*time.Second, func() bool {
		cands := a.n.candidates("m2", time.Now())
		return len(cands) == 1 && cands[0].Addr == b1.addr
	}, "A learning the first incarnation of B")

	b1.ts.Close()
	b1.n.Stop()
	b2 := startTestNode(t, "node-b", staticInventory("m2"), fakeServe("node-b", 2), tweakB)
	b2.n.Start()
	waitFor(t, 2*time.Second, func() bool {
		cands := a.n.candidates("m2", time.Now())
		return len(cands) == 1 && cands[0].Addr == b2.addr
	}, "A accepting the restarted incarnation of B")
}

// TestGossipTickSurvivesBlackholedPeer: one peer that accepts connections
// but never answers must not stall the tick past the per-exchange deadline
// or starve the exchange with the healthy peer.
func TestGossipTickSurvivesBlackholedPeer(t *testing.T) {
	hang, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = hang.Close() })

	healthy := startTestNode(t, "node-h", staticInventory("m"), fakeServe("node-h", 1), nil)
	a := startTestNode(t, "node-a", staticInventory(), nil, func(c *Config) {
		c.GossipInterval = 50 * time.Millisecond
	})
	inject(a.n, "node-dead", hang.Addr().String(), nil)
	inject(a.n, "node-h", healthy.addr, nil)

	start := time.Now()
	a.n.gossipOnce()
	if el := time.Since(start); el > time.Second {
		t.Fatalf("gossip tick took %v with a blackholed peer, want ~one GossipInterval", el)
	}
	if a.n.gossipRounds.Load() == 0 {
		t.Fatal("no successful exchange — the blackholed peer starved the healthy one")
	}
	if a.n.gossipFails.Load() == 0 {
		t.Fatal("the blackholed exchange did not fail — its deadline never fired")
	}
}

// TestPickTargetsCapsFanout: once every seed is a member, one tick dials at
// most gossipFanout peers, not all of them.
func TestPickTargetsCapsFanout(t *testing.T) {
	seeds := []string{"127.0.0.1:11", "127.0.0.1:12", "127.0.0.1:13", "127.0.0.1:14"}
	a := startTestNode(t, "node-a", staticInventory(), nil, func(c *Config) {
		c.Peers = seeds
	})
	for i, seed := range seeds {
		inject(a.n, fmt.Sprintf("peer-%d", i), seed, nil)
	}
	if targets := a.n.pickTargets(); len(targets) > gossipFanout {
		t.Fatalf("pickTargets dialed %d peers %v, want at most the fanout of %d", len(targets), targets, gossipFanout)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
