package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/metrics"
	"mobiledl/internal/trace"
)

// Cluster health states surfaced on /healthz ("cluster" field) and
// /v1/cluster/state.
const (
	// StatusSolo: no peers configured; the node is a cluster of one.
	StatusSolo = "solo"
	// StatusJoining: peers are configured but no gossip exchange has
	// succeeded yet.
	StatusJoining = "joining"
	// StatusOK: at least one peer is alive.
	StatusOK = "ok"
	// StatusPartitioned: the node has known peers but currently none of them
	// are alive — it is serving what it has, cut off from the rest.
	StatusPartitioned = "partitioned"
)

// Config wires a Node to its process and its peers.
type Config struct {
	// NodeID names this node in the ring and in gossip. Must be non-empty
	// and unique across the cluster.
	NodeID string
	// AdvertiseAddr is the host:port peers dial to reach this node's HTTP
	// listener. Must be non-empty (the bound listener address in practice).
	AdvertiseAddr string
	// Peers are seed addresses (host:port) gossiped to until their nodes are
	// members. Empty means a solo cluster.
	Peers []string
	// GossipInterval paces the gossip loop (default 1s).
	GossipInterval time.Duration
	// SuspectAfter is how long a member's heartbeat may stall before the
	// member is considered dead and dropped from routing (default
	// 3*GossipInterval).
	SuspectAfter time.Duration
	// VNodes is the virtual-node count per member on the ring (default 128).
	VNodes int
	// MaxHops caps forwarding chain length: a request arriving with more
	// than MaxHops recorded hops, or needing to exceed it, is answered 502
	// (default 2).
	MaxHops int
	// LocalRPS, when positive, gates locally served predicts through a token
	// bucket: beyond it the node sheds 429. This models fixed per-node
	// serving capacity (and is the gossiped load signal's denominator).
	// Forwarded requests are exempt — proxying is not compute.
	LocalRPS float64
	// Inventory snapshots what this node can serve right now: model name ->
	// current version. Called from the gossip loop and the routing path;
	// must be cheap and safe for concurrent use.
	Inventory func() map[string]int
	// Tracer, when set, traces forwarded predicts (fwd.remote spans joined
	// to the inbound traceparent). Nil disables at near-zero cost.
	Tracer *trace.Tracer
	// Logger receives membership transitions and forward failures; nil
	// means slog.Default().
	Logger *slog.Logger
	// Client performs forwarding and gossip HTTP calls; nil gets a default
	// with a 10s timeout (individual calls still honor request contexts).
	Client *http.Client
}

func (c *Config) fill() error {
	if c.NodeID == "" {
		return fmt.Errorf("cluster: config needs a NodeID")
	}
	if c.AdvertiseAddr == "" {
		return fmt.Errorf("cluster: config needs an AdvertiseAddr")
	}
	if c.Inventory == nil {
		return fmt.Errorf("cluster: config needs an Inventory callback")
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.GossipInterval
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 2
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return nil
}

// member is one known node's gossiped state plus local bookkeeping.
type member struct {
	ID   string
	Addr string
	// Gen is the node's incarnation: seeded from its boot clock, so each
	// restart gossips a strictly higher value. A higher Gen wins a merge
	// outright — heartbeats only order states within one incarnation.
	Gen       uint64
	Heartbeat uint64
	Load      float64
	Models    map[string]int
	// lastAdvance is the local clock when Heartbeat last increased — the
	// liveness reference (never compare remote clocks).
	lastAdvance time.Time
	score       *peerScore
}

func (m *member) alive(now time.Time, suspectAfter time.Duration) bool {
	return now.Sub(m.lastAdvance) <= suspectAfter
}

// Node is one cluster participant. Create with New, start gossip with
// Start, mount Handler in front of the serving mux, Stop at shutdown.
type Node struct {
	cfg  Config
	gate *tokenBucket

	mu      sync.Mutex
	members map[string]*member // by node id, self included
	// ring caches the hash ring for the current alive set; ringKey is the
	// alive set it was built from.
	ring    *ring
	ringKey string
	// exchanged is set after the first successful gossip exchange.
	exchanged bool

	started  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}

	// counters for /metrics.
	forwards      atomic.Uint64
	forwardErrors atomic.Uint64
	hopRejects    atomic.Uint64
	shed          atomic.Uint64
	gossipRounds  atomic.Uint64
	gossipFails   atomic.Uint64
	// localAdmits feeds the gossiped load signal (admitted-per-interval /
	// LocalRPS*interval).
	localAdmits atomic.Uint64
	loadGauge   atomic.Uint64 // math.Float64bits of the last computed load
}

// New validates the config and builds a stopped Node (membership = self).
func New(cfg Config) (*Node, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		members: make(map[string]*member),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.LocalRPS > 0 {
		n.gate = newTokenBucket(cfg.LocalRPS)
	}
	n.members[cfg.NodeID] = &member{
		ID: cfg.NodeID, Addr: cfg.AdvertiseAddr,
		Gen: uint64(time.Now().UnixNano()), Heartbeat: 1,
		Models: cfg.Inventory(), lastAdvance: time.Now(), score: &peerScore{},
	}
	return n, nil
}

// Start launches the gossip loop. Safe to skip for solo nodes (the local
// inventory is still refreshed lazily on the routing path). Idempotent.
func (n *Node) Start() {
	if n.started.Swap(true) {
		return
	}
	go n.gossipLoop()
}

// Stop terminates the gossip loop and waits for it to exit. Idempotent and
// safe on a never-started node.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	if n.started.Load() {
		<-n.done
	}
}

// Status derives the cluster health state (see the Status* constants).
func (n *Node) Status() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.cfg.Peers) == 0 && len(n.members) == 1 {
		return StatusSolo
	}
	if !n.exchanged {
		return StatusJoining
	}
	now := time.Now()
	alivePeers := 0
	for id, m := range n.members {
		if id == n.cfg.NodeID {
			continue
		}
		if m.alive(now, n.cfg.SuspectAfter) {
			alivePeers++
		}
	}
	if alivePeers == 0 {
		return StatusPartitioned
	}
	return StatusOK
}

// refreshSelf re-snapshots the local inventory and load into the membership
// table and bumps the heartbeat. Called each gossip tick (and before serving
// state) so peers always see current truth.
func (n *Node) refreshSelf(now time.Time) {
	inv := n.cfg.Inventory()
	load := n.computeLoad()
	n.mu.Lock()
	self := n.members[n.cfg.NodeID]
	self.Heartbeat++
	self.Models = inv
	self.Load = load
	self.lastAdvance = now
	n.mu.Unlock()
}

// computeLoad turns the admitted-request counter into a utilization in
// [0, 1+] against the node's configured capacity over one gossip interval.
// Uncapped nodes report 0 (no capacity model to be utilized against).
func (n *Node) computeLoad() float64 {
	admitted := n.localAdmits.Swap(0)
	if n.cfg.LocalRPS <= 0 {
		return 0
	}
	capacity := n.cfg.LocalRPS * n.cfg.GossipInterval.Seconds()
	if capacity <= 0 {
		return 0
	}
	load := float64(admitted) / capacity
	n.loadGauge.Store(floatBits(load))
	return load
}

// aliveLocked snapshots the alive member set (self always included) under
// n.mu.
func (n *Node) aliveLocked(now time.Time) []*member {
	out := make([]*member, 0, len(n.members))
	for id, m := range n.members {
		if id == n.cfg.NodeID || m.alive(now, n.cfg.SuspectAfter) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// candidate is one routing choice for a model: a copy of a member's identity
// taken while n.mu was held, so request goroutines never touch mutable
// member fields the gossip merge rewrites concurrently. The score handle is
// safe to share — it is internally locked and never reassigned after the
// member is created.
type candidate struct {
	ID    string
	Addr  string
	score *peerScore
}

// candidates returns the alive nodes that can serve model, in ring order
// reordered by score bucket (healthy cluster: pure ring order; degraded
// peers demoted). Self's inventory is consulted live so routing never trusts
// a stale self snapshot. The ring is rebuilt only when the alive set
// changed, and everything mutable is copied out under n.mu — *member
// pointers never escape the lock.
func (n *Node) candidates(model string, now time.Time) []candidate {
	localInv := n.cfg.Inventory()
	_, localHas := localInv[model]

	n.mu.Lock()
	alive := n.aliveLocked(now)
	ids := make([]string, len(alive))
	byID := make(map[string]*member, len(alive))
	for i, m := range alive {
		ids[i] = m.ID
		byID[m.ID] = m
	}
	key := strings.Join(ids, "\x00")
	if n.ring == nil || key != n.ringKey {
		n.ring = buildRing(ids, n.cfg.VNodes)
		n.ringKey = key
	}
	ordered := n.ring.owners(model, len(byID))
	cands := make([]candidate, 0, len(ordered))
	for _, id := range ordered {
		m := byID[id]
		if m == nil {
			continue
		}
		if id == n.cfg.NodeID {
			if !localHas {
				continue
			}
		} else if _, ok := m.Models[model]; !ok {
			continue
		}
		cands = append(cands, candidate{ID: m.ID, Addr: m.Addr, score: m.score})
	}
	n.mu.Unlock()

	if len(cands) > 1 {
		// Stable sort by quantized score, descending: ties (the healthy
		// common case) keep ring order, so sharding stays deterministic.
		buckets := make(map[string]float64, len(cands))
		for _, c := range cands {
			if c.ID == n.cfg.NodeID {
				buckets[c.ID] = 1 // never demote self on self-score
				continue
			}
			buckets[c.ID] = bucket(c.score.score(now, n.cfg.SuspectAfter))
		}
		sort.SliceStable(cands, func(i, j int) bool {
			return buckets[cands[i].ID] > buckets[cands[j].ID]
		})
	}
	return cands
}

// MemberView is one row of the /v1/cluster/state listing.
type MemberView struct {
	ID        string         `json:"id"`
	Addr      string         `json:"addr"`
	Self      bool           `json:"self,omitempty"`
	Alive     bool           `json:"alive"`
	Gen       uint64         `json:"gen"`
	Heartbeat uint64         `json:"heartbeat"`
	Load      float64        `json:"load"`
	Models    map[string]int `json:"models"`
	AgeMs     float64        `json:"age_ms"`
	Score     float64        `json:"score"`
}

// StateView is the /v1/cluster/state payload: membership plus the routing
// table (model -> candidate node ids in attempt order).
type StateView struct {
	NodeID  string              `json:"node_id"`
	Status  string              `json:"status"`
	Members []MemberView        `json:"members"`
	Routes  map[string][]string `json:"routes"`
}

// State snapshots the node's view of the cluster.
func (n *Node) State() StateView {
	now := time.Now()
	n.refreshSelf(now)
	sv := StateView{NodeID: n.cfg.NodeID, Status: n.Status(), Routes: make(map[string][]string)}
	n.mu.Lock()
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	models := make(map[string]struct{})
	for _, id := range ids {
		m := n.members[id]
		mv := MemberView{
			ID: m.ID, Addr: m.Addr, Self: id == n.cfg.NodeID,
			Alive:     id == n.cfg.NodeID || m.alive(now, n.cfg.SuspectAfter),
			Gen:       m.Gen,
			Heartbeat: m.Heartbeat, Load: m.Load, Models: m.Models,
			AgeMs: float64(now.Sub(m.lastAdvance)) / float64(time.Millisecond),
			Score: m.score.score(now, n.cfg.SuspectAfter),
		}
		sv.Members = append(sv.Members, mv)
		for name := range m.Models {
			models[name] = struct{}{}
		}
	}
	n.mu.Unlock()
	for name := range models {
		cands := n.candidates(name, now)
		route := make([]string, len(cands))
		for i, c := range cands {
			route[i] = c.ID
		}
		sv.Routes[name] = route
	}
	return sv
}

// WriteMetrics exports the cluster gauges and counters for /metrics (wired
// via serve.Server.AddMetricsSource).
func (n *Node) WriteMetrics(pw *metrics.PromWriter) {
	now := time.Now()
	n.mu.Lock()
	alivePeers := 0
	type peerRow struct {
		id    string
		score float64
	}
	rows := make([]peerRow, 0, len(n.members))
	total := len(n.members)
	for id, m := range n.members {
		if id == n.cfg.NodeID {
			continue
		}
		if m.alive(now, n.cfg.SuspectAfter) {
			alivePeers++
		}
		rows = append(rows, peerRow{id: id, score: m.score.score(now, n.cfg.SuspectAfter)})
	}
	n.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	node := metrics.Label{Name: "node", Value: n.cfg.NodeID}
	pw.Gauge("mobiledl_cluster_peers", "Alive peers (membership excluding this node).", float64(alivePeers), node)
	pw.Gauge("mobiledl_cluster_members", "Known members including this node, alive or suspect.", float64(total), node)
	pw.Counter("mobiledl_cluster_forwards_total", "Predict requests proxied to a peer owner.", float64(n.forwards.Load()), node)
	pw.Counter("mobiledl_cluster_forward_errors_total", "Forward attempts that failed (transport error or retryable status).", float64(n.forwardErrors.Load()), node)
	pw.Counter("mobiledl_cluster_hop_rejects_total", "Requests rejected for exceeding the forwarding hop cap (routing loop broken).", float64(n.hopRejects.Load()), node)
	pw.Counter("mobiledl_cluster_shed_total", "Locally served predicts shed 429 by the node capacity gate.", float64(n.shed.Load()), node)
	pw.Counter("mobiledl_cluster_gossip_rounds_total", "Successful gossip exchanges initiated by this node.", float64(n.gossipRounds.Load()), node)
	pw.Counter("mobiledl_cluster_gossip_failures_total", "Failed gossip exchanges initiated by this node.", float64(n.gossipFails.Load()), node)
	if n.cfg.LocalRPS > 0 {
		pw.Gauge("mobiledl_cluster_load", "Local serving utilization against the configured LocalRPS capacity over the last gossip interval.", floatFromBits(n.loadGauge.Load()), node)
	}
	for _, row := range rows {
		pw.Gauge("mobiledl_cluster_peer_score",
			"Per-peer routing score in [0,1]: EWMA forward latency + error rate + gossip freshness; higher is better.",
			row.score, node, metrics.Label{Name: "peer", Value: row.id})
	}
}
