package cluster

import (
	"math"
	"sync"
	"time"
)

// Scorer constants. Weights sum to 1; the score lands in [0, 1], higher is
// better. The shape follows the eth2 beacon-chain peer scorers: an EWMA over
// recent interactions, not a lifetime average, so a peer that recovers
// climbs back quickly.
const (
	// ewmaAlpha is the weight of the newest observation.
	ewmaAlpha = 0.3
	// latencyHalfScale is the forward latency at which the latency component
	// scores 0.5 (score = scale/(scale+latency)).
	latencyHalfScale = 50 * time.Millisecond
	// scoreWeightLatency, scoreWeightErrors, scoreWeightFresh weight the
	// three components: forwarding latency, forwarding error rate, and how
	// recently gossip has heard from the peer.
	scoreWeightLatency = 0.3
	scoreWeightErrors  = 0.5
	scoreWeightFresh   = 0.2
	// scoreBucket quantizes scores for candidate ordering: peers within the
	// same bucket keep deterministic ring order, so a healthy cluster shards
	// stably and only a clearly degraded peer is demoted.
	scoreBucket = 0.25
)

// peerScore is one peer's EWMA health: written by the forwarder after every
// attempt and by the gossip loop after every exchange.
type peerScore struct {
	mu sync.Mutex
	// latEWMA is the smoothed forward latency in seconds (0 until observed).
	latEWMA float64
	// errEWMA is the smoothed error rate in [0, 1] (1 = every recent attempt
	// failed).
	errEWMA float64
	// observed is set after the first forward observation; until then the
	// latency/error components score neutral (1) so an un-probed peer is not
	// penalized.
	observed bool
	// lastHeard is when gossip last advanced this peer's heartbeat.
	lastHeard time.Time
}

// observe folds one forwarding attempt into the EWMAs. Failed attempts carry
// the latency of the failure (a timeout is slow AND broken).
func (p *peerScore) observe(lat time.Duration, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := lat.Seconds()
	e := 0.0
	if failed {
		e = 1.0
	}
	if !p.observed {
		p.observed = true
		p.latEWMA = l
		p.errEWMA = e
		return
	}
	p.latEWMA = ewmaAlpha*l + (1-ewmaAlpha)*p.latEWMA
	p.errEWMA = ewmaAlpha*e + (1-ewmaAlpha)*p.errEWMA
}

// heard records a gossip update from (or about) the peer.
func (p *peerScore) heard(now time.Time) {
	p.mu.Lock()
	p.lastHeard = now
	p.mu.Unlock()
}

// score combines the components at a point in time. suspectAfter calibrates
// the freshness decay: a peer not heard from for suspectAfter scores 0 on
// freshness (and is likely dead anyway).
func (p *peerScore) score(now time.Time, suspectAfter time.Duration) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	latComp, errComp := 1.0, 1.0
	if p.observed {
		scale := latencyHalfScale.Seconds()
		latComp = scale / (scale + p.latEWMA)
		errComp = 1 - p.errEWMA
	}
	fresh := 0.0
	if !p.lastHeard.IsZero() && suspectAfter > 0 {
		age := now.Sub(p.lastHeard).Seconds()
		fresh = 1 - age/suspectAfter.Seconds()
		fresh = math.Max(0, math.Min(1, fresh))
	}
	return scoreWeightLatency*latComp + scoreWeightErrors*errComp + scoreWeightFresh*fresh
}

// bucket quantizes a score for ordering (see scoreBucket).
func bucket(score float64) float64 {
	return math.Floor(score/scoreBucket) * scoreBucket
}
