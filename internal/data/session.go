// Package data generates the synthetic mobile-sensing corpora used by every
// experiment. The paper's datasets (the BiAffect bipolar-study keyboard
// corpus and the DEEPSERVICE volunteer keystroke corpus) are proprietary;
// these generators reproduce their *schema and statistical structure* —
// session-level multi-view time series of alphanumeric keypress dynamics,
// sparse special-key events, and dense accelerometer samples, with per-user
// biometric signatures and per-mood-state behavioral shifts — so that the
// learning problems have the same shape. See DESIGN.md ("Reproduction bands
// and substitutions").
package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/tensor"
)

// ErrConfig reports an invalid generator configuration.
var ErrConfig = errors.New("data: invalid configuration")

// Mood states carried by a session, following the paper's binary
// depression-score framing (IV-A).
const (
	MoodEuthymic  = 0 // baseline mood
	MoodDepressed = 1
	NumMoods      = 2
)

// Special-key channels (one-hot), matching the paper's list: auto-correct,
// backspace, space, suggestion, switching-keyboard and other.
const (
	SpecialAutoCorrect = iota
	SpecialBackspace
	SpecialSpace
	SpecialSuggestion
	SpecialSwitchKeyboard
	SpecialOther
	NumSpecialKeys
)

// Feature dimensions of the three views.
const (
	AlphanumericDim  = 4 // duration, time since last key, dx, dy
	SpecialDim       = NumSpecialKeys
	AccelerometerDim = 3 // x, y, z
)

// Session is one phone-usage session: three variable-length views plus the
// user identity and mood-state labels (which label is used depends on the
// task — identification vs mood inference).
type Session struct {
	UserID int
	Mood   int

	// Alphanumeric is T1 x 4: keypress duration (s), time since last key (s),
	// and distance from the previous key along two axes (key widths).
	Alphanumeric *tensor.Matrix
	// Special is T2 x 6: one-hot special-key events.
	Special *tensor.Matrix
	// Accelerometer is T3 x 3: accelerometer samples at 60 ms intervals.
	Accelerometer *tensor.Matrix
}

// userProfile is the latent biometric signature of one synthetic user. It is
// what makes users identifiable from their typing dynamics (IV-B).
type userProfile struct {
	meanDuration float64    // mean keypress duration (s)
	meanInterKey float64    // mean inter-key time (s)
	reach        float64    // typical key-to-key distance scale
	sessionKeys  float64    // mean keypresses per session
	specialRates []float64  // per-channel special-key intensity
	holdAngle    [3]float64 // mean accelerometer vector (device hold posture)
	tremor       float64    // accelerometer noise scale

	// Typing rhythm: a user-specific periodic modulation of inter-key times
	// and finger travel. Crucially this is *sequential* structure — summary
	// statistics (means/stds) barely distinguish phases and periods, but a
	// recurrent encoder can, which is why the deep models of Section IV
	// outperform flattened-feature baselines.
	rhythmPeriod float64
	rhythmPhase  float64
	rhythmAmp    float64

	// Mood expression style: how strongly this user's depressed state shows
	// in each behavioral channel. Users express mood differently, so a model
	// needs *this user's* sessions to predict their mood well — the
	// mechanism behind the paper's Fig. 5 accuracy-vs-sessions trend.
	moodPauseW float64
	moodBackW  float64
	moodMoveW  float64
}

func newUserProfile(rng *rand.Rand) *userProfile {
	p := &userProfile{
		// Mean-level traits are deliberately kept in narrow, overlapping
		// ranges so no single summary statistic identifies a user.
		meanDuration: 0.08 + 0.04*rng.Float64(),
		meanInterKey: 0.28 + 0.14*rng.Float64(),
		reach:        1.2 + 0.6*rng.Float64(),
		sessionKeys:  28 + 16*rng.Float64(),
		specialRates: make([]float64, NumSpecialKeys),
		tremor:       0.10 + 0.15*rng.Float64(),
		rhythmPeriod: 2 + 6*rng.Float64(),
		rhythmPhase:  2 * math.Pi * rng.Float64(),
		rhythmAmp:    0.45 + 0.15*rng.Float64(),
		moodPauseW:   0.25 + 0.75*rng.Float64(),
		moodBackW:    0.25 + 0.75*rng.Float64(),
		moodMoveW:    0.25 + 0.75*rng.Float64(),
	}
	for i := range p.specialRates {
		p.specialRates[i] = 0.4 + 1.0*rng.Float64()
	}
	// Device hold posture: gravity (≈9.8 m/s^2) split across axes.
	theta := rng.Float64() * math.Pi / 3
	phi := rng.Float64() * 2 * math.Pi
	p.holdAngle = [3]float64{
		9.8 * math.Sin(theta) * math.Cos(phi),
		9.8 * math.Sin(theta) * math.Sin(phi),
		9.8 * math.Cos(theta),
	}
	return p
}

// KeystrokeConfig configures the synthetic corpus generator.
type KeystrokeConfig struct {
	NumUsers        int
	SessionsPerUser int
	// MoodEffect in [0,1] scales how strongly a depressed mood shifts typing
	// dynamics (slower, more backspacing, less movement). 0 disables the
	// mood signal entirely.
	MoodEffect float64
	// DepressedFraction is the per-user fraction of sessions generated in
	// the depressed state (default 0.5 when unset).
	DepressedFraction float64
	Seed              int64
}

func (c *KeystrokeConfig) validate() error {
	if c.NumUsers <= 0 {
		return fmt.Errorf("%w: NumUsers=%d", ErrConfig, c.NumUsers)
	}
	if c.SessionsPerUser <= 0 {
		return fmt.Errorf("%w: SessionsPerUser=%d", ErrConfig, c.SessionsPerUser)
	}
	if c.MoodEffect < 0 || c.MoodEffect > 1 {
		return fmt.Errorf("%w: MoodEffect=%v", ErrConfig, c.MoodEffect)
	}
	if c.DepressedFraction < 0 || c.DepressedFraction > 1 {
		return fmt.Errorf("%w: DepressedFraction=%v", ErrConfig, c.DepressedFraction)
	}
	return nil
}

// Corpus is a generated collection of sessions.
type Corpus struct {
	Sessions []*Session
	NumUsers int
}

// GenerateKeystrokeCorpus builds a deterministic synthetic corpus: NumUsers
// users, SessionsPerUser sessions each, half (or DepressedFraction) of each
// user's sessions generated under the depressed-mood shift.
func GenerateKeystrokeCorpus(cfg KeystrokeConfig) (*Corpus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	depFrac := cfg.DepressedFraction
	if depFrac == 0 {
		depFrac = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	profiles := make([]*userProfile, cfg.NumUsers)
	for u := range profiles {
		profiles[u] = newUserProfile(rng)
	}
	corpus := &Corpus{NumUsers: cfg.NumUsers}
	for u := 0; u < cfg.NumUsers; u++ {
		for s := 0; s < cfg.SessionsPerUser; s++ {
			mood := MoodEuthymic
			if rng.Float64() < depFrac {
				mood = MoodDepressed
			}
			sess := generateSession(rng, u, mood, profiles[u], cfg.MoodEffect)
			corpus.Sessions = append(corpus.Sessions, sess)
		}
	}
	return corpus, nil
}

// generateSession synthesizes one session for the given user and mood.
//
// Mood shifts (scaled by effect) mirror the clinical literature the paper
// cites: depressed typing is mildly slower on average, markedly burstier
// (long hesitation pauses), uses backspace more, produces shorter sessions,
// and shows less device movement. The burstiness is sequential structure
// that favors the recurrent models.
func generateSession(rng *rand.Rand, userID, mood int, p *userProfile, effect float64) *Session {
	slow := 1.0
	backspaceBoost := 1.0
	lengthScale := 1.0
	moveScale := 1.0
	// Everyone hesitates occasionally; depression makes hesitations both more
	// frequent and *clustered* into runs — temporal structure no summary
	// statistic captures but a recurrent encoder can.
	// Hesitation structure: euthymic typing has isolated slow keys; depressed
	// typing concentrates the *same expected number* of slow keys into
	// sustained runs. The marginal distribution of inter-key times barely
	// moves (so summary statistics stay ambiguous) while the temporal
	// arrangement — which only a sequence model sees — changes sharply.
	pauseProb := 0.04
	pauseRunMax := 1
	if mood == MoodDepressed {
		slow = 1 + 0.1*effect*p.moodPauseW
		backspaceBoost = 1 + 0.7*effect*p.moodBackW
		lengthScale = 1 - 0.15*effect*p.moodBackW
		moveScale = 1 - 0.3*effect*p.moodMoveW
		pauseProb = 0.04 + 0.14*effect*p.moodPauseW
		pauseRunMax = 1 + int(3*effect*p.moodPauseW+0.5)
	}

	// Session-level context drift: typing speed, grip orientation and
	// special-key tendencies all vary between sessions of the same user,
	// which keeps flattened summary features ambiguous (the reason the
	// paper's sequence models beat the shallow baselines).
	speed := math.Exp(0.18 * rng.NormFloat64())
	var sessionAngle [3]float64
	var mag float64
	for d := 0; d < 3; d++ {
		sessionAngle[d] = p.holdAngle[d] + 2.2*rng.NormFloat64()
		mag += sessionAngle[d] * sessionAngle[d]
	}
	mag = math.Sqrt(mag)
	for d := 0; d < 3; d++ {
		sessionAngle[d] *= 9.8 / mag
	}

	nKeys := int(p.sessionKeys*lengthScale*(0.7+0.6*rng.Float64())) + 4
	alpha := tensor.New(nKeys, AlphanumericDim)
	var sessionSeconds float64
	pauseRun := 0
	for k := 0; k < nKeys; k++ {
		rhythm := 1 + p.rhythmAmp*math.Sin(2*math.Pi*float64(k)/p.rhythmPeriod+p.rhythmPhase)
		duration := math.Max(0.02, p.meanDuration*slow*speed*(1+0.25*rng.NormFloat64()))
		interKey := 0.0
		if k > 0 {
			interKey = math.Max(0.01, p.meanInterKey*slow*speed*rhythm*(1+0.25*rng.NormFloat64()))
			switch {
			case pauseRun > 0:
				interKey *= 3
				pauseRun--
			case rng.Float64() < pauseProb:
				interKey *= 3 + 2*rng.Float64() // hesitation
				if pauseRunMax > 1 {
					pauseRun = 1 + rng.Intn(pauseRunMax)
				}
			}
		}
		// Finger travel carries the same rhythm (signature digraph motion).
		dx := p.reach * (0.6*rhythm + 0.4*rng.NormFloat64())
		dy := p.reach * 0.5 * rng.NormFloat64()
		alpha.Set(k, 0, duration)
		alpha.Set(k, 1, interKey)
		alpha.Set(k, 2, dx)
		alpha.Set(k, 3, dy)
		sessionSeconds += duration + interKey
	}

	// Special keys: Poisson-thinned per channel, at least one event so the
	// view is never empty.
	var specials []int
	for ch := 0; ch < NumSpecialKeys; ch++ {
		rate := p.specialRates[ch] * math.Exp(0.3*rng.NormFloat64())
		if ch == SpecialBackspace {
			rate *= backspaceBoost
		}
		count := poisson(rng, rate*float64(nKeys)/30)
		for i := 0; i < count; i++ {
			specials = append(specials, ch)
		}
	}
	if len(specials) == 0 {
		specials = append(specials, SpecialOther)
	}
	rng.Shuffle(len(specials), func(i, j int) { specials[i], specials[j] = specials[j], specials[i] })
	special := tensor.New(len(specials), SpecialDim)
	for i, ch := range specials {
		special.Set(i, ch, 1)
	}

	// Accelerometer: one sample per 60 ms of session time, gravity vector
	// plus user tremor plus a slow sinusoidal hand-movement component.
	nAcc := int(sessionSeconds/0.060) + 2
	const maxAccSamples = 400 // cap density so experiments stay fast
	if nAcc > maxAccSamples {
		nAcc = maxAccSamples
	}
	acc := tensor.New(nAcc, AccelerometerDim)
	freq := 0.5 + rng.Float64()
	for i := 0; i < nAcc; i++ {
		tSec := float64(i) * 0.060
		sway := 0.4 * moveScale * math.Sin(2*math.Pi*freq*tSec)
		for d := 0; d < 3; d++ {
			noise := p.tremor * moveScale * rng.NormFloat64()
			acc.Set(i, d, sessionAngle[d]+sway+noise)
		}
	}

	return &Session{
		UserID:        userID,
		Mood:          mood,
		Alphanumeric:  alpha,
		Special:       special,
		Accelerometer: acc,
	}
}

// poisson draws from Poisson(lambda) via Knuth's method (adequate for the
// small rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // guard against pathological lambda
			return k
		}
	}
}

// SplitSessions shuffles and splits sessions into train/test with the given
// train fraction, stratified per user so every user appears in both splits.
func SplitSessions(rng *rand.Rand, sessions []*Session, trainFrac float64) (train, test []*Session, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("%w: trainFrac=%v", ErrConfig, trainFrac)
	}
	byUser := make(map[int][]*Session)
	for _, s := range sessions {
		byUser[s.UserID] = append(byUser[s.UserID], s)
	}
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	// Deterministic user ordering for reproducibility.
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			if users[j] < users[i] {
				users[i], users[j] = users[j], users[i]
			}
		}
	}
	for _, u := range users {
		ss := byUser[u]
		rng.Shuffle(len(ss), func(i, j int) { ss[i], ss[j] = ss[j], ss[i] })
		cut := int(float64(len(ss)) * trainFrac)
		if cut == 0 {
			cut = 1
		}
		if cut == len(ss) {
			cut = len(ss) - 1
		}
		train = append(train, ss[:cut]...)
		test = append(test, ss[cut:]...)
	}
	return train, test, nil
}

// FilterUsers returns only the sessions belonging to users [0, n).
func FilterUsers(sessions []*Session, n int) []*Session {
	var out []*Session
	for _, s := range sessions {
		if s.UserID < n {
			out = append(out, s)
		}
	}
	return out
}
