package data

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testCorpus(t *testing.T, users, sessions int, moodEffect float64) *Corpus {
	t.Helper()
	c, err := GenerateKeystrokeCorpus(KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      moodEffect,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateKeystrokeCorpusShape(t *testing.T) {
	c := testCorpus(t, 5, 10, 0.8)
	if len(c.Sessions) != 50 {
		t.Fatalf("got %d sessions, want 50", len(c.Sessions))
	}
	for _, s := range c.Sessions {
		if s.Alphanumeric.Cols() != AlphanumericDim {
			t.Fatalf("alphanumeric cols %d", s.Alphanumeric.Cols())
		}
		if s.Special.Cols() != SpecialDim {
			t.Fatalf("special cols %d", s.Special.Cols())
		}
		if s.Accelerometer.Cols() != AccelerometerDim {
			t.Fatalf("accelerometer cols %d", s.Accelerometer.Cols())
		}
		if s.Alphanumeric.Rows() == 0 || s.Special.Rows() == 0 || s.Accelerometer.Rows() == 0 {
			t.Fatal("empty view generated")
		}
		if s.UserID < 0 || s.UserID >= 5 {
			t.Fatalf("bad user id %d", s.UserID)
		}
		if s.Mood != MoodEuthymic && s.Mood != MoodDepressed {
			t.Fatalf("bad mood %d", s.Mood)
		}
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a := testCorpus(t, 3, 5, 0.5)
	b := testCorpus(t, 3, 5, 0.5)
	for i := range a.Sessions {
		if !a.Sessions[i].Alphanumeric.Equal(b.Sessions[i].Alphanumeric, 0) {
			t.Fatal("same seed produced different corpora")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []KeystrokeConfig{
		{NumUsers: 0, SessionsPerUser: 5},
		{NumUsers: 5, SessionsPerUser: 0},
		{NumUsers: 5, SessionsPerUser: 5, MoodEffect: 2},
		{NumUsers: 5, SessionsPerUser: 5, DepressedFraction: -0.1},
	}
	for _, cfg := range bad {
		if _, err := GenerateKeystrokeCorpus(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %+v: want ErrConfig, got %v", cfg, err)
		}
	}
}

func TestMoodShiftsTypingDynamics(t *testing.T) {
	// With a strong mood effect, depressed sessions must on average have
	// longer inter-key intervals and more backspaces — the signal DeepMood
	// learns from.
	c := testCorpus(t, 8, 60, 1.0)
	var depInterKey, eutInterKey, depBack, eutBack float64
	var nDep, nEut int
	for _, s := range c.Sessions {
		var interKey float64
		for i := 0; i < s.Alphanumeric.Rows(); i++ {
			interKey += s.Alphanumeric.At(i, 1)
		}
		interKey /= float64(s.Alphanumeric.Rows())
		backs := float64(SpecialKeyCounts(s)[SpecialBackspace])
		if s.Mood == MoodDepressed {
			depInterKey += interKey
			depBack += backs
			nDep++
		} else {
			eutInterKey += interKey
			eutBack += backs
			nEut++
		}
	}
	if nDep == 0 || nEut == 0 {
		t.Fatal("corpus missing a mood class")
	}
	if depInterKey/float64(nDep) <= eutInterKey/float64(nEut) {
		t.Fatal("depressed sessions should have longer inter-key intervals")
	}
	if depBack/float64(nDep) <= eutBack/float64(nEut) {
		t.Fatal("depressed sessions should have more backspaces")
	}
}

func TestSessionFeaturesDim(t *testing.T) {
	c := testCorpus(t, 2, 3, 0.5)
	for _, s := range c.Sessions {
		f := SessionFeatures(s)
		if len(f) != SessionFeatureDim {
			t.Fatalf("feature dim %d, want %d", len(f), SessionFeatureDim)
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d is %v", i, v)
			}
		}
	}
}

func TestFeatureMatrixLabels(t *testing.T) {
	c := testCorpus(t, 3, 4, 0.5)
	x, byUser, err := FeatureMatrix(c.Sessions, true)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 12 || x.Cols() != SessionFeatureDim {
		t.Fatalf("X is %dx%d", x.Rows(), x.Cols())
	}
	_, byMood, err := FeatureMatrix(c.Sessions, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range byUser {
		if byUser[i] != c.Sessions[i].UserID || byMood[i] != c.Sessions[i].Mood {
			t.Fatal("labels do not match sessions")
		}
	}
	if _, _, err := FeatureMatrix(nil, true); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for empty sessions, got %v", err)
	}
}

func TestScalerStandardizes(t *testing.T) {
	c := testCorpus(t, 4, 20, 0.5)
	x, _, err := FeatureMatrix(c.Sessions, true)
	if err != nil {
		t.Fatal(err)
	}
	s := FitScaler(x)
	z := s.Transform(x)
	for j := 0; j < z.Cols(); j++ {
		mean, std := columnMeanStd(z, j)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v after scaling", j, mean)
		}
		if std > 1e-9 && math.Abs(std-1) > 1e-9 {
			t.Fatalf("column %d std %v after scaling", j, std)
		}
	}
}

func TestSplitSessionsStratified(t *testing.T) {
	c := testCorpus(t, 5, 10, 0.5)
	rng := rand.New(rand.NewSource(1))
	train, test, err := SplitSessions(rng, c.Sessions, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != len(c.Sessions) {
		t.Fatalf("split lost sessions: %d + %d != %d", len(train), len(test), len(c.Sessions))
	}
	trainUsers := map[int]bool{}
	testUsers := map[int]bool{}
	for _, s := range train {
		trainUsers[s.UserID] = true
	}
	for _, s := range test {
		testUsers[s.UserID] = true
	}
	for u := 0; u < 5; u++ {
		if !trainUsers[u] || !testUsers[u] {
			t.Fatalf("user %d missing from a split", u)
		}
	}
	if _, _, err := SplitSessions(rng, c.Sessions, 1.5); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestFilterUsers(t *testing.T) {
	c := testCorpus(t, 6, 2, 0.5)
	got := FilterUsers(c.Sessions, 3)
	if len(got) != 6 {
		t.Fatalf("got %d sessions, want 6", len(got))
	}
	for _, s := range got {
		if s.UserID >= 3 {
			t.Fatalf("user %d leaked through filter", s.UserID)
		}
	}
}

func TestNormalizeSessionViews(t *testing.T) {
	c := testCorpus(t, 1, 1, 0)
	orig := c.Sessions[0]
	norm := NormalizeSessionViews(orig)
	// Accelerometer magnitudes should be ~1 (gravity units).
	var mag float64
	for i := 0; i < norm.Accelerometer.Rows(); i++ {
		row := norm.Accelerometer.Row(i)
		mag += math.Sqrt(row[0]*row[0] + row[1]*row[1] + row[2]*row[2])
	}
	mag /= float64(norm.Accelerometer.Rows())
	if mag < 0.5 || mag > 2 {
		t.Fatalf("normalized accel magnitude %v, want ~1", mag)
	}
	// Original must be untouched.
	if norm.Alphanumeric.Equal(orig.Alphanumeric, 0) {
		t.Fatal("normalization did not change a copy (or changed nothing)")
	}
}

func TestSummarizeUserPatterns(t *testing.T) {
	c := testCorpus(t, 5, 20, 0.5)
	sums := SummarizeUserPatterns(c.Sessions, []int{0, 1, 2, 3, 4})
	if len(sums) != 5 {
		t.Fatalf("got %d summaries", len(sums))
	}
	// Users must have distinct typing signatures: check mean durations differ.
	for i := 0; i < len(sums); i++ {
		if sums[i].Sessions != 20 {
			t.Fatalf("user %d has %d sessions in summary", i, sums[i].Sessions)
		}
		for j := i + 1; j < len(sums); j++ {
			if math.Abs(sums[i].MeanDuration-sums[j].MeanDuration) < 1e-6 &&
				math.Abs(sums[i].MeanKeysPerSess-sums[j].MeanKeysPerSess) < 1e-6 {
				t.Fatalf("users %d and %d have identical signatures", i, j)
			}
		}
	}
}

func TestGenerateFedBench(t *testing.T) {
	fb, err := GenerateFedBench(FedBenchConfig{Samples: 200, Classes: 4, Dim: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fb.X.Rows() != 200 || fb.X.Cols() != 10 || len(fb.Labels) != 200 {
		t.Fatal("wrong benchmark shape")
	}
	counts := map[int]int{}
	for _, l := range fb.Labels {
		counts[l]++
	}
	if len(counts) != 4 {
		t.Fatalf("got %d classes, want 4", len(counts))
	}
	if _, err := GenerateFedBench(FedBenchConfig{Samples: 0, Classes: 2, Dim: 1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestFedBenchSplit(t *testing.T) {
	fb, _ := GenerateFedBench(FedBenchConfig{Samples: 100, Classes: 2, Dim: 4, Seed: 2})
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if trX.Rows() != 80 || teX.Rows() != 20 || len(trY) != 80 || len(teY) != 20 {
		t.Fatal("wrong split sizes")
	}
}

func TestShardIID(t *testing.T) {
	fb, _ := GenerateFedBench(FedBenchConfig{Samples: 300, Classes: 5, Dim: 4, Seed: 3})
	rng := rand.New(rand.NewSource(1))
	shards, err := ShardIID(rng, fb.X, fb.Labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.Size()
		// IID shards of 30 samples over 5 classes should see most classes.
		if s.DistinctLabels() < 3 {
			t.Fatalf("IID shard saw only %d classes", s.DistinctLabels())
		}
	}
	if total != 300 {
		t.Fatalf("shards hold %d samples, want 300", total)
	}
}

func TestShardNonIID(t *testing.T) {
	fb, _ := GenerateFedBench(FedBenchConfig{Samples: 500, Classes: 10, Dim: 4, Seed: 4})
	rng := rand.New(rand.NewSource(1))
	shards, err := ShardNonIID(rng, fb.X, fb.Labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	maxLabels := 0
	for _, s := range shards {
		if s.DistinctLabels() > maxLabels {
			maxLabels = s.DistinctLabels()
		}
	}
	// Each client gets 2 contiguous label shards -> at most ~4 distinct labels.
	if maxLabels > 4 {
		t.Fatalf("non-IID shard saw %d classes; sharding is not skewed", maxLabels)
	}
	if _, err := ShardNonIID(rng, fb.X, fb.Labels, 300); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for too many clients, got %v", err)
	}
}

func TestPoissonProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := rng.Float64() * 5
		n := 200
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / float64(n)
		// Loose CLT bound: mean within 5 sigma of lambda.
		return math.Abs(mean-lambda) < 5*math.Sqrt(lambda/float64(n))+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
