package data

import (
	"fmt"
	"math"

	"mobiledl/internal/tensor"
)

// SessionFeatureDim is the dimension of the flat summary-statistic vector
// SessionFeatures produces for the classical baselines in Table I.
const SessionFeatureDim = 4*4 + NumSpecialKeys + 1 + 3*2 + 3 + 1

// SessionFeatures flattens a session into summary statistics, the standard
// featurization for the non-sequential baselines (LR, SVM, trees): per-view
// means/stds, special-key counts, accelerometer moments and correlations,
// and session length.
func SessionFeatures(s *Session) []float64 {
	f := make([]float64, 0, SessionFeatureDim)

	// Alphanumeric: mean and std of each of the 4 channels, plus min/max of
	// duration and inter-key (8 + 8 = 16 values).
	for ch := 0; ch < AlphanumericDim; ch++ {
		mean, std := columnMeanStd(s.Alphanumeric, ch)
		lo, hi := columnMinMax(s.Alphanumeric, ch)
		f = append(f, mean, std, lo, hi)
	}

	// Special keys: per-channel counts plus total (6 + 1).
	counts := SpecialKeyCounts(s)
	total := 0.0
	for _, c := range counts {
		f = append(f, float64(c))
		total += float64(c)
	}
	f = append(f, total)

	// Accelerometer: per-axis mean and std (6), pairwise correlations (3).
	for ch := 0; ch < AccelerometerDim; ch++ {
		mean, std := columnMeanStd(s.Accelerometer, ch)
		f = append(f, mean, std)
	}
	f = append(f,
		columnCorrelation(s.Accelerometer, 0, 1),
		columnCorrelation(s.Accelerometer, 0, 2),
		columnCorrelation(s.Accelerometer, 1, 2),
	)

	// Session length in keypresses.
	f = append(f, float64(s.Alphanumeric.Rows()))
	return f
}

// SpecialKeyCounts returns the per-channel event counts of the special view.
func SpecialKeyCounts(s *Session) [NumSpecialKeys]int {
	var counts [NumSpecialKeys]int
	for i := 0; i < s.Special.Rows(); i++ {
		row := s.Special.Row(i)
		for ch, v := range row {
			if v > 0 {
				counts[ch]++
			}
		}
	}
	return counts
}

// FeatureMatrix builds the baseline design matrix X and label slice for the
// given sessions, labeled either by user or by mood.
func FeatureMatrix(sessions []*Session, labelByUser bool) (*tensor.Matrix, []int, error) {
	if len(sessions) == 0 {
		return nil, nil, fmt.Errorf("%w: no sessions", ErrConfig)
	}
	rows := make([][]float64, len(sessions))
	labels := make([]int, len(sessions))
	for i, s := range sessions {
		rows[i] = SessionFeatures(s)
		if labelByUser {
			labels[i] = s.UserID
		} else {
			labels[i] = s.Mood
		}
	}
	x, err := tensor.FromRows(rows)
	if err != nil {
		return nil, nil, err
	}
	return x, labels, nil
}

// Scaler standardizes features to zero mean, unit variance, fit on training
// data and applied to both splits.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-column mean/std over x.
func FitScaler(x *tensor.Matrix) *Scaler {
	cols := x.Cols()
	s := &Scaler{Mean: make([]float64, cols), Std: make([]float64, cols)}
	n := float64(x.Rows())
	for i := 0; i < x.Rows(); i++ {
		for j, v := range x.Row(i) {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for i := 0; i < x.Rows(); i++ {
		for j, v := range x.Row(i) {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-9 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// TransformSession standardizes a session's views in place using per-view
// global statistics (used before feeding sequences to GRUs). The scaling
// constants are fixed rather than fit: they bring each channel to O(1).
func NormalizeSessionViews(s *Session) *Session {
	alpha := s.Alphanumeric.Clone()
	for i := 0; i < alpha.Rows(); i++ {
		row := alpha.Row(i)
		row[0] = row[0] / 0.1 // durations ~0.1 s
		row[1] = row[1] / 0.4 // inter-key ~0.4 s
		row[2] = row[2] / 2.0 // key distances ~2 key widths
		row[3] = row[3] / 1.0
	}
	acc := s.Accelerometer.Clone()
	for i := 0; i < acc.Rows(); i++ {
		row := acc.Row(i)
		for d := range row {
			row[d] /= 9.8 // gravity units
		}
	}
	return &Session{
		UserID:        s.UserID,
		Mood:          s.Mood,
		Alphanumeric:  alpha,
		Special:       s.Special.Clone(),
		Accelerometer: acc,
	}
}

func columnMeanStd(m *tensor.Matrix, col int) (mean, std float64) {
	n := m.Rows()
	if n == 0 {
		return 0, 0
	}
	for i := 0; i < n; i++ {
		mean += m.At(i, col)
	}
	mean /= float64(n)
	for i := 0; i < n; i++ {
		d := m.At(i, col) - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(n))
}

func columnMinMax(m *tensor.Matrix, col int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows(); i++ {
		v := m.At(i, col)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if m.Rows() == 0 {
		return 0, 0
	}
	return lo, hi
}

func columnCorrelation(m *tensor.Matrix, a, b int) float64 {
	n := m.Rows()
	if n < 2 {
		return 0
	}
	ma, sa := columnMeanStd(m, a)
	mb, sb := columnMeanStd(m, b)
	if sa < 1e-12 || sb < 1e-12 {
		return 0
	}
	var cov float64
	for i := 0; i < n; i++ {
		cov += (m.At(i, a) - ma) * (m.At(i, b) - mb)
	}
	return cov / float64(n) / (sa * sb)
}

// UserPatternSummary captures the per-user multi-view statistics of Fig. 6:
// alphanumeric dynamics, frequent/infrequent special-key usage, and
// accelerometer correlation structure.
type UserPatternSummary struct {
	UserID            int
	Sessions          int
	MeanDuration      float64
	MeanTimeSinceLast float64
	MeanKeysPerSess   float64
	SpecialPerSession [NumSpecialKeys]float64
	AccelCorrXY       float64
	AccelCorrXZ       float64
	AccelCorrYZ       float64
}

// SummarizeUserPatterns computes Fig. 6-style per-user pattern summaries for
// the given user IDs.
func SummarizeUserPatterns(sessions []*Session, users []int) []UserPatternSummary {
	out := make([]UserPatternSummary, 0, len(users))
	for _, u := range users {
		sum := UserPatternSummary{UserID: u}
		var durTotal, tslTotal, keyTotal float64
		var corrXY, corrXZ, corrYZ float64
		for _, s := range sessions {
			if s.UserID != u {
				continue
			}
			sum.Sessions++
			md, _ := columnMeanStd(s.Alphanumeric, 0)
			mt, _ := columnMeanStd(s.Alphanumeric, 1)
			durTotal += md
			tslTotal += mt
			keyTotal += float64(s.Alphanumeric.Rows())
			counts := SpecialKeyCounts(s)
			for ch, c := range counts {
				sum.SpecialPerSession[ch] += float64(c)
			}
			corrXY += columnCorrelation(s.Accelerometer, 0, 1)
			corrXZ += columnCorrelation(s.Accelerometer, 0, 2)
			corrYZ += columnCorrelation(s.Accelerometer, 1, 2)
		}
		if sum.Sessions == 0 {
			out = append(out, sum)
			continue
		}
		n := float64(sum.Sessions)
		sum.MeanDuration = durTotal / n
		sum.MeanTimeSinceLast = tslTotal / n
		sum.MeanKeysPerSess = keyTotal / n
		for ch := range sum.SpecialPerSession {
			sum.SpecialPerSession[ch] /= n
		}
		sum.AccelCorrXY = corrXY / n
		sum.AccelCorrXZ = corrXZ / n
		sum.AccelCorrYZ = corrYZ / n
		out = append(out, sum)
	}
	return out
}
