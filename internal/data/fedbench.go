package data

import (
	"fmt"
	"math/rand"
	"sort"

	"mobiledl/internal/tensor"
)

// FedBench is a synthetic multi-class classification benchmark used by the
// federated-training and compression experiments. It plays the role of the
// MNIST-style workloads in [16, 18, 22]: Gaussian class clusters in feature
// space with optional within-class structure so the task is learnable but
// not trivial.
type FedBench struct {
	X       *tensor.Matrix
	Labels  []int
	Classes int
	Dim     int
}

// FedBenchConfig configures the synthetic benchmark.
type FedBenchConfig struct {
	Samples int
	Classes int
	Dim     int
	// Spread is the within-class noise std relative to unit class separation
	// (larger = harder task). Defaults to 0.35 when unset.
	Spread float64
	Seed   int64
}

// GenerateFedBench builds a deterministic synthetic classification dataset.
func GenerateFedBench(cfg FedBenchConfig) (*FedBench, error) {
	if cfg.Samples <= 0 || cfg.Classes <= 1 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("%w: FedBench samples=%d classes=%d dim=%d",
			ErrConfig, cfg.Samples, cfg.Classes, cfg.Dim)
	}
	spread := cfg.Spread
	if spread == 0 {
		spread = 0.35
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]*tensor.Matrix, cfg.Classes)
	for c := range centers {
		centers[c] = tensor.RandNormal(rng, 1, cfg.Dim, 0, 1)
	}
	x := tensor.New(cfg.Samples, cfg.Dim)
	labels := make([]int, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		labels[i] = c
		row := x.Row(i)
		center := centers[c].Row(0)
		for j := range row {
			row[j] = center[j] + spread*rng.NormFloat64()
		}
	}
	// Shuffle so class labels are not ordered.
	perm := rng.Perm(cfg.Samples)
	xs := tensor.New(cfg.Samples, cfg.Dim)
	ls := make([]int, cfg.Samples)
	for i, p := range perm {
		copy(xs.Row(i), x.Row(p))
		ls[i] = labels[p]
	}
	return &FedBench{X: xs, Labels: ls, Classes: cfg.Classes, Dim: cfg.Dim}, nil
}

// Split partitions the benchmark into train/test at the given fraction.
func (f *FedBench) Split(trainFrac float64) (trainX *tensor.Matrix, trainY []int, testX *tensor.Matrix, testY []int, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("%w: trainFrac=%v", ErrConfig, trainFrac)
	}
	cut := int(float64(f.X.Rows()) * trainFrac)
	trainX, err = f.X.SliceRows(0, cut)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	testX, err = f.X.SliceRows(cut, f.X.Rows())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	trainY = append([]int(nil), f.Labels[:cut]...)
	testY = append([]int(nil), f.Labels[cut:]...)
	return trainX, trainY, testX, testY, nil
}

// ClientShard is the local dataset of one federated participant.
type ClientShard struct {
	X      *tensor.Matrix
	Labels []int
}

// Size returns the number of local samples (n_k in the paper's notation).
func (c *ClientShard) Size() int { return len(c.Labels) }

// ShardIID partitions samples uniformly at random across n clients,
// the IID setting of McMahan et al. [18].
func ShardIID(rng *rand.Rand, x *tensor.Matrix, labels []int, n int) ([]*ClientShard, error) {
	if n <= 0 || n > x.Rows() {
		return nil, fmt.Errorf("%w: %d clients for %d samples", ErrConfig, n, x.Rows())
	}
	perm := rng.Perm(x.Rows())
	shards := make([]*ClientShard, n)
	per := x.Rows() / n
	for c := 0; c < n; c++ {
		lo := c * per
		hi := lo + per
		if c == n-1 {
			hi = x.Rows()
		}
		idx := perm[lo:hi]
		xc, err := x.SelectRows(idx)
		if err != nil {
			return nil, err
		}
		lc := make([]int, len(idx))
		for i, p := range idx {
			lc[i] = labels[p]
		}
		shards[c] = &ClientShard{X: xc, Labels: lc}
	}
	return shards, nil
}

// ShardNonIID partitions samples in the pathological non-IID fashion of
// McMahan et al. [18]: sort by label, slice into 2n contiguous shards, and
// deal each client two shards, so most clients see only 1-2 classes.
func ShardNonIID(rng *rand.Rand, x *tensor.Matrix, labels []int, n int) ([]*ClientShard, error) {
	if n <= 0 || 2*n > x.Rows() {
		return nil, fmt.Errorf("%w: %d clients for %d samples", ErrConfig, n, x.Rows())
	}
	order := make([]int, x.Rows())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return labels[order[a]] < labels[order[b]] })

	numShards := 2 * n
	per := x.Rows() / numShards
	shardIdx := rng.Perm(numShards)
	shards := make([]*ClientShard, n)
	for c := 0; c < n; c++ {
		var idx []int
		for _, s := range shardIdx[2*c : 2*c+2] {
			lo := s * per
			hi := lo + per
			if s == numShards-1 {
				hi = x.Rows()
			}
			idx = append(idx, order[lo:hi]...)
		}
		xc, err := x.SelectRows(idx)
		if err != nil {
			return nil, err
		}
		lc := make([]int, len(idx))
		for i, p := range idx {
			lc[i] = labels[p]
		}
		shards[c] = &ClientShard{X: xc, Labels: lc}
	}
	return shards, nil
}

// DistinctLabels returns the number of distinct labels in the shard, used by
// tests to verify the non-IID property.
func (c *ClientShard) DistinctLabels() int {
	seen := make(map[int]struct{})
	for _, l := range c.Labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
