package federated

import (
	"fmt"
	"math/rand"
)

// DeviceState is the simulated condition of one mobile device at a round.
type DeviceState struct {
	Idle     bool
	Charging bool
	OnWiFi   bool
}

// Eligible reports whether the device satisfies Google's federated-training
// participation constraint: "training happens only when the mobile device is
// idle, plugged in, and on a free wireless connection" (Section II-B).
func (s DeviceState) Eligible() bool { return s.Idle && s.Charging && s.OnWiFi }

// Scheduler simulates per-device availability across rounds. Each device's
// state re-randomizes every round with the configured marginal
// probabilities, which models the diurnal churn real federated systems see.
type Scheduler struct {
	rng        *rand.Rand
	probIdle   float64
	probCharge float64
	probWiFi   float64
	states     []DeviceState
}

// NewScheduler creates a scheduler for n devices. The probabilities are the
// per-round marginals of each eligibility condition.
func NewScheduler(rng *rand.Rand, n int, probIdle, probCharge, probWiFi float64) (*Scheduler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d devices", ErrConfig, n)
	}
	for _, p := range []float64{probIdle, probCharge, probWiFi} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("%w: probability %v", ErrConfig, p)
		}
	}
	s := &Scheduler{
		rng:        rng,
		probIdle:   probIdle,
		probCharge: probCharge,
		probWiFi:   probWiFi,
		states:     make([]DeviceState, n),
	}
	s.Advance()
	return s, nil
}

// Eligible reports whether device k may participate this round.
func (s *Scheduler) Eligible(k int) bool {
	if k < 0 || k >= len(s.states) {
		return false
	}
	return s.states[k].Eligible()
}

// EligibleCount returns how many devices are currently eligible.
func (s *Scheduler) EligibleCount() int {
	n := 0
	for _, st := range s.states {
		if st.Eligible() {
			n++
		}
	}
	return n
}

// State returns device k's current state.
func (s *Scheduler) State(k int) DeviceState { return s.states[k] }

// Advance re-randomizes all device states for the next round.
func (s *Scheduler) Advance() {
	for i := range s.states {
		s.states[i] = DeviceState{
			Idle:     s.rng.Float64() < s.probIdle,
			Charging: s.rng.Float64() < s.probCharge,
			OnWiFi:   s.rng.Float64() < s.probWiFi,
		}
	}
}
