package federated

import (
	"mobiledl/internal/data"
	"mobiledl/internal/tensor"
)

// ClientTrainer is the identity-aware extension of Trainer: it receives the
// dispatching round and the client's index alongside the shard, so an
// implementation can vary behavior per client and per round — the seam
// scenario simulators use to inject heterogeneous device profiles, churn,
// stragglers, and faulty or adversarial updates without the aggregation
// layer knowing. Values passed as a coordinator's Trainer are probed for
// this interface; plain Trainers keep the identity-free path.
//
// The same contract as Trainer applies: implementations must be safe for
// concurrent calls, and all randomness must derive from (round, k, seed) so
// results are independent of goroutine scheduling.
type ClientTrainer interface {
	Trainer
	TrainRoundClient(round, k int, shard *data.ClientShard, global []*tensor.Matrix, seed int64) (ClientResult, error)
}

// ClientFunc adapts a function to ClientTrainer. The plain TrainClient path
// calls the function with round and client -1 (identity unknown).
type ClientFunc func(round, k int, shard *data.ClientShard, global []*tensor.Matrix, seed int64) (ClientResult, error)

var _ ClientTrainer = (ClientFunc)(nil)

// TrainRoundClient implements ClientTrainer.
func (f ClientFunc) TrainRoundClient(round, k int, shard *data.ClientShard, global []*tensor.Matrix, seed int64) (ClientResult, error) {
	return f(round, k, shard, global, seed)
}

// TrainClient implements Trainer.
func (f ClientFunc) TrainClient(shard *data.ClientShard, global []*tensor.Matrix, seed int64) (ClientResult, error) {
	return f(-1, -1, shard, global, seed)
}
