package federated

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/tensor"
)

// ClientResult is one client's locally-trained contribution to a round.
type ClientResult struct {
	// Weights are the post-training parameter values, aligned index-by-index
	// with the global parameter list. They alias the client's throwaway local
	// model, so aggregators may consume them destructively.
	Weights []*tensor.Matrix
	// N is the client's local sample count (n_k in the paper's notation).
	N int
	// Loss is the final local training loss.
	Loss float64
}

// Trainer turns the current global parameter values into one client's round
// contribution. Implementations must be safe for concurrent TrainClient
// calls: FanOut invokes them from every worker of the round pool, and all
// randomness must derive from the per-call seed so results are independent
// of goroutine scheduling.
type Trainer interface {
	TrainClient(shard *data.ClientShard, global []*tensor.Matrix, seed int64) (ClientResult, error)
}

// SGDTrainer is the reference Trainer: copy the global weights into a fresh
// factory-built model, run E local epochs of minibatch SGD, return the
// resulting weights. It is the client-side step of both FedAvg and DP-FedAvg.
type SGDTrainer struct {
	Factory ModelFactory
	Classes int
	Epochs  int
	// Batch is the local minibatch size (<= 0 means full batch).
	Batch int
	LR    float64
}

var _ Trainer = (*SGDTrainer)(nil)

// TrainClient implements Trainer.
func (t *SGDTrainer) TrainClient(shard *data.ClientShard, global []*tensor.Matrix, seed int64) (ClientResult, error) {
	local, err := t.Factory()
	if err != nil {
		return ClientResult{}, err
	}
	if err := SetWeights(local.Params(), global); err != nil {
		return ClientResult{}, err
	}
	y, err := nn.OneHot(shard.Labels, t.Classes)
	if err != nil {
		return ClientResult{}, err
	}
	batch := t.Batch
	if batch <= 0 || batch > shard.Size() {
		batch = shard.Size()
	}
	losses, err := nn.Train(local, shard.X, y, nn.TrainConfig{
		Epochs:    t.Epochs,
		BatchSize: batch,
		Optimizer: opt.NewSGD(t.LR),
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Rng:       rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return ClientResult{}, err
	}
	return ClientResult{Weights: ParamValues(local.Params()), N: shard.Size(), Loss: losses[len(losses)-1]}, nil
}

// ParamValues extracts the value matrices of a parameter list, the form
// Trainer consumes (values only — client training never sees server-side
// gradients).
func ParamValues(params []*nn.Param) []*tensor.Matrix {
	vals := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		vals[i] = p.Value
	}
	return vals
}

// SetWeights copies the value matrices into the parameter list, shape-checked
// index-by-index (the inverse of ParamValues for a factory-aligned model).
func SetWeights(params []*nn.Param, vals []*tensor.Matrix) error {
	if len(params) != len(vals) {
		return fmt.Errorf("%w: %d values for %d params", ErrConfig, len(vals), len(params))
	}
	for i, p := range params {
		if err := p.Value.CopyFrom(vals[i]); err != nil {
			return fmt.Errorf("param %q: %w", p.Name, err)
		}
	}
	return nil
}

// FanOut trains one round's selected clients concurrently across a bounded
// worker pool and returns their results in selection order: result i is
// always client selected[i] trained from seeds[i], so the output is
// independent of goroutine scheduling and a parallel round reproduces the
// sequential one bit-for-bit. workers <= 0 sizes the pool to GOMAXPROCS.
// The first client error (lowest selection index) is returned.
func FanOut(t Trainer, shards []*data.ClientShard, selected []int, global []*tensor.Matrix, seeds []int64, workers int) ([]ClientResult, error) {
	if len(selected) != len(seeds) {
		return nil, fmt.Errorf("%w: %d selected clients, %d seeds", ErrConfig, len(selected), len(seeds))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	results := make([]ClientResult, len(selected))
	errs := make([]error, len(selected))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				k := selected[i]
				if k < 0 || k >= len(shards) {
					errs[i] = fmt.Errorf("%w: client index %d of %d shards", ErrConfig, k, len(shards))
					continue
				}
				results[i], errs[i] = t.TrainClient(shards[k], global, seeds[i])
			}
		}()
	}
	for i := range selected {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", selected[i], err)
		}
	}
	return results, nil
}
