package federated

import (
	"errors"
	"fmt"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// ErrConfig reports an invalid federated configuration.
var ErrConfig = errors.New("federated: invalid configuration")

// BytesPerValue is the wire size of one parameter or gradient value
// (float64). Selective uploads additionally pay BytesPerIndex per value.
const (
	BytesPerValue = 8
	BytesPerIndex = 4
)

// ModelFactory constructs a fresh model with the reference architecture.
// Every client and the server instantiate through the same factory so
// parameter lists align index-by-index.
type ModelFactory func() (*nn.Sequential, error)

// RoundStats records one communication round of a federated run.
type RoundStats struct {
	Round     int
	TrainLoss float64
	// Accuracy is the evaluation result for this round (NaN if the round
	// was not evaluated; see Config.EvalEvery).
	Accuracy float64
	// CumulativeUpBytes / CumulativeDownBytes count all client-server
	// traffic up to and including this round.
	CumulativeUpBytes   int64
	CumulativeDownBytes int64
	ParticipatingUsers  int
}

// FedAvgConfig configures a federated-averaging run (McMahan et al. [18]).
type FedAvgConfig struct {
	Rounds int
	// ClientFraction is C: the fraction of eligible clients sampled per round.
	ClientFraction float64
	// LocalEpochs is E: local passes per round. E=1 with full-batch clients
	// degenerates to naive distributed SGD (FedSGD), the paper's baseline.
	LocalEpochs int
	// LocalBatch is B: the local minibatch size (0 = full batch).
	LocalBatch int
	LocalLR    float64
	Seed       int64
	// Workers sizes the client-training worker pool (0 = GOMAXPROCS). Round
	// stats are identical for any worker count: per-client seeds are drawn
	// before the fan-out and results aggregate in selection order.
	Workers int
	// Eval, if non-nil, scores the global model; it runs every EvalEvery
	// rounds (default 1) and on the final round.
	Eval      func(model *nn.Sequential) (float64, error)
	EvalEvery int
	// TargetAccuracy stops the run early once Eval reaches it (0 = run all
	// rounds). Used to measure rounds/bytes-to-target.
	TargetAccuracy float64
	// Scheduler, if non-nil, gates which clients are eligible each round.
	Scheduler *Scheduler
}

func (c *FedAvgConfig) validate(numClients int) error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("%w: Rounds=%d", ErrConfig, c.Rounds)
	case c.ClientFraction <= 0 || c.ClientFraction > 1:
		return fmt.Errorf("%w: ClientFraction=%v", ErrConfig, c.ClientFraction)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("%w: LocalEpochs=%d", ErrConfig, c.LocalEpochs)
	case c.LocalLR <= 0:
		return fmt.Errorf("%w: LocalLR=%v", ErrConfig, c.LocalLR)
	case numClients == 0:
		return fmt.Errorf("%w: no client shards", ErrConfig)
	}
	return nil
}

// trainer builds the SGD client trainer matching the config.
func (c *FedAvgConfig) trainer(factory ModelFactory, classes int) *SGDTrainer {
	return &SGDTrainer{
		Factory: factory,
		Classes: classes,
		Epochs:  c.LocalEpochs,
		Batch:   c.LocalBatch,
		LR:      c.LocalLR,
	}
}

// SelectRound draws one round's cohort: gate eligibility through the
// scheduler (advancing it), sample a ClientFraction-sized subset, and
// pre-draw each selected client's training seed from rng. An empty selection
// means no device was eligible this round.
func SelectRound(rng *rand.Rand, numClients int, fraction float64, sched *Scheduler) (selected []int, seeds []int64) {
	eligible := make([]int, 0, numClients)
	for k := 0; k < numClients; k++ {
		if sched == nil || sched.Eligible(k) {
			eligible = append(eligible, k)
		}
	}
	if sched != nil {
		sched.Advance()
	}
	if len(eligible) == 0 {
		return nil, nil
	}
	m := int(fraction * float64(len(eligible)))
	if m < 1 {
		m = 1
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	selected = eligible[:m]
	// Deterministic per-client seeds drawn before the concurrent phase.
	seeds = make([]int64, len(selected))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return selected, seeds
}

// RunFedAvg executes federated averaging over the client shards and returns
// the final global model plus per-round statistics. It is a thin synchronous
// wrapper over the Trainer/FanOut machinery: each round selects a cohort,
// trains it in parallel across the worker pool, and merges the weighted
// average at a barrier.
func RunFedAvg(factory ModelFactory, shards []*data.ClientShard, classes int, cfg FedAvgConfig) (*nn.Sequential, []RoundStats, error) {
	if err := cfg.validate(len(shards)); err != nil {
		return nil, nil, err
	}
	global, err := factory()
	if err != nil {
		return nil, nil, fmt.Errorf("build global model: %w", err)
	}
	globalParams := global.Params()
	globalVals := ParamValues(globalParams)
	paramBytes := int64(nn.NumParams(globalParams)) * BytesPerValue
	trainer := cfg.trainer(factory, classes)

	rng := rand.New(rand.NewSource(cfg.Seed))
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	var stats []RoundStats
	var upBytes, downBytes int64

	for round := 0; round < cfg.Rounds; round++ {
		selected, seeds := SelectRound(rng, len(shards), cfg.ClientFraction, cfg.Scheduler)
		if len(selected) == 0 {
			stats = append(stats, RoundStats{
				Round: round, TrainLoss: 0, Accuracy: -1,
				CumulativeUpBytes: upBytes, CumulativeDownBytes: downBytes,
			})
			continue
		}
		m := len(selected)

		updates, err := FanOut(trainer, shards, selected, globalVals, seeds, cfg.Workers)
		if err != nil {
			return nil, nil, fmt.Errorf("round %d: %w", round, err)
		}

		roundLoss, err := MergeWeighted(globalVals, updates)
		if err != nil {
			return nil, nil, err
		}

		downBytes += int64(m) * paramBytes // model broadcast
		upBytes += int64(m) * paramBytes   // full-model uploads

		st := RoundStats{
			Round:               round,
			TrainLoss:           roundLoss,
			Accuracy:            -1,
			CumulativeUpBytes:   upBytes,
			CumulativeDownBytes: downBytes,
			ParticipatingUsers:  m,
		}
		if cfg.Eval != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			acc, err := cfg.Eval(global)
			if err != nil {
				return nil, nil, fmt.Errorf("round %d eval: %w", round, err)
			}
			st.Accuracy = acc
			stats = append(stats, st)
			if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy {
				return global, stats, nil
			}
			continue
		}
		stats = append(stats, st)
	}
	return global, stats, nil
}

// MergeWeighted overwrites the global parameter values with the n_k/n
// weighted average of the client results — the FedAvg server step,
// w_{t+1} = sum_k (n_k / n) w^k_{t+1} — accumulating in place so the merge
// allocates nothing. It returns the sample-weighted mean training loss.
func MergeWeighted(global []*tensor.Matrix, updates []ClientResult) (float64, error) {
	var totalN int
	var loss float64
	for _, u := range updates {
		totalN += u.N
		loss += u.Loss * float64(u.N)
	}
	if totalN == 0 {
		return 0, fmt.Errorf("%w: merge with no samples", ErrConfig)
	}
	loss /= float64(totalN)
	for pi, gv := range global {
		gv.Zero()
		for _, u := range updates {
			if err := tensor.AxpyInPlace(gv, float64(u.N)/float64(totalN), u.Weights[pi]); err != nil {
				return 0, err
			}
		}
	}
	return loss, nil
}

// AccuracyEval builds an Eval callback scoring classification accuracy on a
// held-out set. It runs every training round, so the forward pass recycles
// its activations through the shared tensor pool (InferPooled) instead of
// allocating per layer per round.
func AccuracyEval(x *tensor.Matrix, labels []int) func(*nn.Sequential) (float64, error) {
	return func(m *nn.Sequential) (float64, error) {
		out, err := m.InferPooled(x)
		if err != nil {
			return 0, err
		}
		correct := 0
		for i := range labels {
			if out.ArgMaxRow(i) == labels[i] {
				correct++
			}
		}
		tensor.Put(out)
		return float64(correct) / float64(len(labels)), nil
	}
}
