// Package federated implements the two distributed-training schemes of
// Section II: the distributed selective SGD of Shokri & Shmatikov [16]
// (Fig. 1) with a global parameter server and top-|g| selective gradient
// exchange, and Google's federated averaging [17, 18] with client sampling,
// multiple local epochs, and n_k/n-weighted aggregation. Both account for
// communicated bytes so the paper's 10-100x communication-saving claim
// (Section II-B) can be reproduced, and a device-eligibility scheduler
// models the "idle, plugged in, on WiFi" participation constraint.
package federated

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/tensor"
)

// ErrConfig reports an invalid federated configuration.
var ErrConfig = errors.New("federated: invalid configuration")

// BytesPerValue is the wire size of one parameter or gradient value
// (float64). Selective uploads additionally pay BytesPerIndex per value.
const (
	BytesPerValue = 8
	BytesPerIndex = 4
)

// ModelFactory constructs a fresh model with the reference architecture.
// Every client and the server instantiate through the same factory so
// parameter lists align index-by-index.
type ModelFactory func() (*nn.Sequential, error)

// RoundStats records one communication round of a federated run.
type RoundStats struct {
	Round     int
	TrainLoss float64
	// Accuracy is the evaluation result for this round (NaN if the round
	// was not evaluated; see Config.EvalEvery).
	Accuracy float64
	// CumulativeUpBytes / CumulativeDownBytes count all client-server
	// traffic up to and including this round.
	CumulativeUpBytes   int64
	CumulativeDownBytes int64
	ParticipatingUsers  int
}

// FedAvgConfig configures a federated-averaging run (McMahan et al. [18]).
type FedAvgConfig struct {
	Rounds int
	// ClientFraction is C: the fraction of eligible clients sampled per round.
	ClientFraction float64
	// LocalEpochs is E: local passes per round. E=1 with full-batch clients
	// degenerates to naive distributed SGD (FedSGD), the paper's baseline.
	LocalEpochs int
	// LocalBatch is B: the local minibatch size (0 = full batch).
	LocalBatch int
	LocalLR    float64
	Seed       int64
	// Workers bounds client-training concurrency (0 = one per client).
	Workers int
	// Eval, if non-nil, scores the global model; it runs every EvalEvery
	// rounds (default 1) and on the final round.
	Eval      func(model *nn.Sequential) (float64, error)
	EvalEvery int
	// TargetAccuracy stops the run early once Eval reaches it (0 = run all
	// rounds). Used to measure rounds/bytes-to-target.
	TargetAccuracy float64
	// Scheduler, if non-nil, gates which clients are eligible each round.
	Scheduler *Scheduler
}

func (c *FedAvgConfig) validate(numClients int) error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("%w: Rounds=%d", ErrConfig, c.Rounds)
	case c.ClientFraction <= 0 || c.ClientFraction > 1:
		return fmt.Errorf("%w: ClientFraction=%v", ErrConfig, c.ClientFraction)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("%w: LocalEpochs=%d", ErrConfig, c.LocalEpochs)
	case c.LocalLR <= 0:
		return fmt.Errorf("%w: LocalLR=%v", ErrConfig, c.LocalLR)
	case numClients == 0:
		return fmt.Errorf("%w: no client shards", ErrConfig)
	}
	return nil
}

// clientUpdate is one client's contribution to a round.
type clientUpdate struct {
	weights []*tensor.Matrix
	n       int // local sample count (n_k)
	loss    float64
	err     error
}

// RunFedAvg executes federated averaging over the client shards and returns
// the final global model plus per-round statistics.
func RunFedAvg(factory ModelFactory, shards []*data.ClientShard, classes int, cfg FedAvgConfig) (*nn.Sequential, []RoundStats, error) {
	if err := cfg.validate(len(shards)); err != nil {
		return nil, nil, err
	}
	global, err := factory()
	if err != nil {
		return nil, nil, fmt.Errorf("build global model: %w", err)
	}
	globalParams := global.Params()
	paramBytes := int64(nn.NumParams(globalParams)) * BytesPerValue

	rng := rand.New(rand.NewSource(cfg.Seed))
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	var stats []RoundStats
	var upBytes, downBytes int64

	for round := 0; round < cfg.Rounds; round++ {
		eligible := make([]int, 0, len(shards))
		for k := range shards {
			if cfg.Scheduler == nil || cfg.Scheduler.Eligible(k) {
				eligible = append(eligible, k)
			}
		}
		if cfg.Scheduler != nil {
			cfg.Scheduler.Advance()
		}
		if len(eligible) == 0 {
			stats = append(stats, RoundStats{
				Round: round, TrainLoss: 0, Accuracy: -1,
				CumulativeUpBytes: upBytes, CumulativeDownBytes: downBytes,
			})
			continue
		}
		m := int(cfg.ClientFraction * float64(len(eligible)))
		if m < 1 {
			m = 1
		}
		rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
		selected := eligible[:m]

		// Deterministic per-client seeds drawn before the concurrent phase.
		seeds := make([]int64, len(selected))
		for i := range seeds {
			seeds[i] = rng.Int63()
		}

		updates := make([]clientUpdate, len(selected))
		workers := cfg.Workers
		if workers <= 0 {
			workers = len(selected)
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, k := range selected {
			wg.Add(1)
			go func(i, k int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				updates[i] = trainClient(factory, globalParams, shards[k], classes, cfg, seeds[i])
			}(i, k)
		}
		wg.Wait()

		var totalN int
		var roundLoss float64
		for _, u := range updates {
			if u.err != nil {
				return nil, nil, fmt.Errorf("round %d client: %w", round, u.err)
			}
			totalN += u.n
			roundLoss += u.loss * float64(u.n)
		}
		roundLoss /= float64(totalN)

		// Weighted average: w_{t+1} = sum_k (n_k / n) w^k_{t+1}.
		for pi, gp := range globalParams {
			gp.Value.Zero()
			for _, u := range updates {
				if err := tensor.AxpyInPlace(gp.Value, float64(u.n)/float64(totalN), u.weights[pi]); err != nil {
					return nil, nil, err
				}
			}
		}

		downBytes += int64(m) * paramBytes // model broadcast
		upBytes += int64(m) * paramBytes   // full-model uploads

		st := RoundStats{
			Round:               round,
			TrainLoss:           roundLoss,
			Accuracy:            -1,
			CumulativeUpBytes:   upBytes,
			CumulativeDownBytes: downBytes,
			ParticipatingUsers:  m,
		}
		if cfg.Eval != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			acc, err := cfg.Eval(global)
			if err != nil {
				return nil, nil, fmt.Errorf("round %d eval: %w", round, err)
			}
			st.Accuracy = acc
			stats = append(stats, st)
			if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy {
				return global, stats, nil
			}
			continue
		}
		stats = append(stats, st)
	}
	return global, stats, nil
}

// trainClient copies the global weights into a fresh local model, runs E
// local epochs of SGD, and returns the resulting weights.
func trainClient(factory ModelFactory, globalParams []*nn.Param, shard *data.ClientShard, classes int, cfg FedAvgConfig, seed int64) clientUpdate {
	local, err := factory()
	if err != nil {
		return clientUpdate{err: err}
	}
	if err := nn.CopyWeights(local.Params(), globalParams); err != nil {
		return clientUpdate{err: err}
	}
	y, err := nn.OneHot(shard.Labels, classes)
	if err != nil {
		return clientUpdate{err: err}
	}
	batch := cfg.LocalBatch
	if batch <= 0 || batch > shard.Size() {
		batch = shard.Size()
	}
	losses, err := nn.Train(local, shard.X, y, nn.TrainConfig{
		Epochs:    cfg.LocalEpochs,
		BatchSize: batch,
		Optimizer: opt.NewSGD(cfg.LocalLR),
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Rng:       rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return clientUpdate{err: err}
	}
	params := local.Params()
	weights := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		weights[i] = p.Value
	}
	return clientUpdate{weights: weights, n: shard.Size(), loss: losses[len(losses)-1]}
}

// AccuracyEval builds an Eval callback scoring classification accuracy on a
// held-out set.
func AccuracyEval(x *tensor.Matrix, labels []int) func(*nn.Sequential) (float64, error) {
	return func(m *nn.Sequential) (float64, error) {
		preds, err := m.Predict(x)
		if err != nil {
			return 0, err
		}
		correct := 0
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(labels)), nil
	}
}
