package federated

import (
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// benchSetup builds a small federated task: synthetic classification data
// sharded over clients, a 2-layer MLP factory, and a held-out eval set.
func benchSetup(t testing.TB, clients int, iid bool) (ModelFactory, []*data.ClientShard, func(*nn.Sequential) (float64, error), int) {
	t.Helper()
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var shards []*data.ClientShard
	if iid {
		shards, err = data.ShardIID(rng, trX, trY, clients)
	} else {
		shards, err = data.ShardNonIID(rng, trX, trY, clients)
	}
	if err != nil {
		t.Fatal(err)
	}
	// The factory runs on concurrent client-training goroutines, so it must
	// not touch shared state.
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42)) // fixed init for weight alignment
		return nn.NewSequential(
			nn.NewDense(r, 8, 16),
			nn.NewReLU(),
			nn.NewDense(r, 16, 4),
		), nil
	}
	return factory, shards, AccuracyEval(teX, teY), 4
}

func TestFedAvgLearns(t *testing.T) {
	factory, shards, eval, classes := benchSetup(t, 8, true)
	model, stats, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
		Rounds:         15,
		ClientFraction: 0.5,
		LocalEpochs:    3,
		LocalBatch:     16,
		LocalLR:        0.1,
		Seed:           1,
		Workers:        4,
		Eval:           eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	if final.Accuracy < 0.85 {
		t.Fatalf("FedAvg final accuracy %v, want >= 0.85", final.Accuracy)
	}
	if final.CumulativeUpBytes <= 0 || final.CumulativeDownBytes <= 0 {
		t.Fatal("byte accounting missing")
	}
	if model == nil {
		t.Fatal("nil model")
	}
}

func TestFedAvgNonIIDStillLearns(t *testing.T) {
	factory, shards, eval, classes := benchSetup(t, 8, false)
	_, stats, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
		Rounds:         25,
		ClientFraction: 1.0,
		LocalEpochs:    3,
		LocalBatch:     16,
		LocalLR:        0.05,
		Seed:           2,
		Workers:        4,
		Eval:           eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := stats[len(stats)-1].Accuracy; acc < 0.7 {
		t.Fatalf("non-IID FedAvg accuracy %v, want >= 0.7", acc)
	}
}

func TestFedAvgTargetAccuracyStopsEarly(t *testing.T) {
	factory, shards, eval, classes := benchSetup(t, 6, true)
	_, stats, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
		Rounds:         50,
		ClientFraction: 1.0,
		LocalEpochs:    5,
		LocalBatch:     16,
		LocalLR:        0.1,
		Seed:           3,
		Eval:           eval,
		TargetAccuracy: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) >= 50 {
		t.Fatalf("run did not stop early (%d rounds)", len(stats))
	}
	if stats[len(stats)-1].Accuracy < 0.8 {
		t.Fatal("stopped before reaching target")
	}
}

func TestMoreLocalEpochsFewerRounds(t *testing.T) {
	// The paper's Section II-B claim: higher-quality local updates (more
	// local computation) reduce communication rounds to a target accuracy.
	target := 0.85
	run := func(localEpochs int) int {
		factory, shards, eval, classes := benchSetup(t, 8, true)
		_, stats, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
			Rounds:         60,
			ClientFraction: 1.0,
			LocalEpochs:    localEpochs,
			LocalBatch:     16,
			LocalLR:        0.05,
			Seed:           4,
			Eval:           eval,
			TargetAccuracy: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		return RoundsToTarget(stats, target)
	}
	fedSGDRounds := run(1)
	fedAvgRounds := run(10)
	if fedAvgRounds < 0 {
		t.Fatal("FedAvg never reached target")
	}
	if fedSGDRounds > 0 && fedAvgRounds >= fedSGDRounds {
		t.Fatalf("E=10 took %d rounds, E=1 took %d; expected fewer with more local work",
			fedAvgRounds, fedSGDRounds)
	}
}

func TestFedAvgConfigValidation(t *testing.T) {
	factory, shards, _, classes := benchSetup(t, 4, true)
	bad := []FedAvgConfig{
		{Rounds: 0, ClientFraction: 0.5, LocalEpochs: 1, LocalLR: 0.1},
		{Rounds: 1, ClientFraction: 0, LocalEpochs: 1, LocalLR: 0.1},
		{Rounds: 1, ClientFraction: 0.5, LocalEpochs: 0, LocalLR: 0.1},
		{Rounds: 1, ClientFraction: 0.5, LocalEpochs: 1, LocalLR: 0},
	}
	for _, cfg := range bad {
		if _, _, err := RunFedAvg(factory, shards, classes, cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %+v: want ErrConfig, got %v", cfg, err)
		}
	}
	if _, _, err := RunFedAvg(factory, nil, classes, FedAvgConfig{
		Rounds: 1, ClientFraction: 0.5, LocalEpochs: 1, LocalLR: 0.1,
	}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for empty shards")
	}
}

func TestSelectiveSGDLearns(t *testing.T) {
	factory, shards, eval, classes := benchSetup(t, 6, true)
	_, stats, err := RunSelectiveSGD(factory, shards, classes, SelectiveSGDConfig{
		Rounds:           15,
		Theta:            0.1,
		DownloadFraction: 1.0,
		LocalEpochs:      2,
		LocalBatch:       16,
		LocalLR:          0.1,
		Seed:             5,
		Eval:             eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := stats[len(stats)-1].Accuracy; acc < 0.8 {
		t.Fatalf("selective SGD (theta=0.1) accuracy %v, want >= 0.8", acc)
	}
}

func TestSelectiveSGDThetaControlsBytes(t *testing.T) {
	run := func(theta float64) int64 {
		factory, shards, _, classes := benchSetup(t, 4, true)
		_, stats, err := RunSelectiveSGD(factory, shards, classes, SelectiveSGDConfig{
			Rounds:           3,
			Theta:            theta,
			DownloadFraction: 1.0,
			LocalEpochs:      1,
			LocalBatch:       16,
			LocalLR:          0.1,
			Seed:             6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats[len(stats)-1].CumulativeUpBytes
	}
	full := run(1.0)
	tenth := run(0.1)
	if tenth >= full {
		t.Fatalf("theta=0.1 uploaded %d bytes, theta=1.0 uploaded %d; selective upload saves nothing", tenth, full)
	}
	ratio := float64(full) / float64(tenth)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("upload ratio %v, want ~10x", ratio)
	}
}

func TestSelectiveSGDValidation(t *testing.T) {
	factory, shards, _, classes := benchSetup(t, 4, true)
	if _, _, err := RunSelectiveSGD(factory, shards, classes, SelectiveSGDConfig{
		Rounds: 1, Theta: 0, DownloadFraction: 1, LocalEpochs: 1, LocalLR: 0.1,
	}); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for theta=0")
	}
}

func TestSchedulerEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewScheduler(rng, 100, 0.8, 0.8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Expected eligibility: 0.8^3 = 0.512. Check the realized count is in a
	// generous band.
	count := s.EligibleCount()
	if count < 30 || count > 75 {
		t.Fatalf("eligible count %d of 100 at p=0.512", count)
	}
	// All-zero probabilities: nobody eligible.
	s2, _ := NewScheduler(rng, 10, 0, 1, 1)
	if s2.EligibleCount() != 0 {
		t.Fatal("idle probability 0 should leave no eligible devices")
	}
	if s.Eligible(-1) || s.Eligible(1000) {
		t.Fatal("out-of-range device must not be eligible")
	}
	if _, err := NewScheduler(rng, 0, 1, 1, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for zero devices")
	}
	if _, err := NewScheduler(rng, 1, 2, 1, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("want ErrConfig for probability > 1")
	}
}

func TestFedAvgWithScheduler(t *testing.T) {
	factory, shards, eval, classes := benchSetup(t, 8, true)
	rng := rand.New(rand.NewSource(2))
	sched, err := NewScheduler(rng, len(shards), 0.9, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
		Rounds:         15,
		ClientFraction: 1.0,
		LocalEpochs:    3,
		LocalBatch:     16,
		LocalLR:        0.1,
		Seed:           7,
		Eval:           eval,
		Scheduler:      sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := stats[len(stats)-1].Accuracy; acc < 0.8 {
		t.Fatalf("scheduled FedAvg accuracy %v", acc)
	}
	// With eligibility gating, some rounds should have fewer participants
	// than the full population.
	sawPartial := false
	for _, s := range stats {
		if s.ParticipatingUsers > 0 && s.ParticipatingUsers < len(shards) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("scheduler never reduced participation")
	}
}

func TestRoundsAndBytesToTarget(t *testing.T) {
	stats := []RoundStats{
		{Round: 0, Accuracy: 0.5, CumulativeUpBytes: 100, CumulativeDownBytes: 100},
		{Round: 1, Accuracy: 0.9, CumulativeUpBytes: 200, CumulativeDownBytes: 200},
	}
	if RoundsToTarget(stats, 0.9) != 2 {
		t.Fatal("RoundsToTarget wrong")
	}
	if BytesToTarget(stats, 0.9) != 400 {
		t.Fatal("BytesToTarget wrong")
	}
	if RoundsToTarget(stats, 0.99) != -1 || BytesToTarget(stats, 0.99) != -1 {
		t.Fatal("unreached target should give -1")
	}
}

func TestWeightedAggregationMath(t *testing.T) {
	// Two clients with weights n=1 and n=3: the aggregate must be the
	// 0.25/0.75 weighted mean. Exercised through RunFedAvg with LR=tiny so
	// local training barely moves weights, then verified indirectly via
	// determinism of two identical runs.
	factory, shards, _, classes := benchSetup(t, 4, true)
	run := func() *tensor.Matrix {
		m, _, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
			Rounds: 2, ClientFraction: 1, LocalEpochs: 1, LocalBatch: 16, LocalLR: 0.05, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Params()[0].Value
	}
	a, b := run(), run()
	if !a.Equal(b, 0) {
		t.Fatal("FedAvg is not deterministic for a fixed seed")
	}
}
