package federated

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/tensor"
)

// SelectiveSGDConfig configures the distributed selective SGD of Shokri &
// Shmatikov [16] (Fig. 1): participants train locally and exchange only a
// θ-fraction of parameter updates with a global parameter server.
type SelectiveSGDConfig struct {
	Rounds int
	// Theta is the fraction of parameter updates uploaded per round,
	// selected by largest magnitude (the paper's "largest values" criterion).
	Theta float64
	// DownloadFraction is the fraction of global parameters each participant
	// refreshes before training (1 = full download).
	DownloadFraction float64
	LocalEpochs      int
	LocalBatch       int
	LocalLR          float64
	Seed             int64
	// Eval/EvalEvery/TargetAccuracy mirror FedAvgConfig.
	Eval           func(model *nn.Sequential) (float64, error)
	EvalEvery      int
	TargetAccuracy float64
}

func (c *SelectiveSGDConfig) validate(numClients int) error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("%w: Rounds=%d", ErrConfig, c.Rounds)
	case c.Theta <= 0 || c.Theta > 1:
		return fmt.Errorf("%w: Theta=%v", ErrConfig, c.Theta)
	case c.DownloadFraction <= 0 || c.DownloadFraction > 1:
		return fmt.Errorf("%w: DownloadFraction=%v", ErrConfig, c.DownloadFraction)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("%w: LocalEpochs=%d", ErrConfig, c.LocalEpochs)
	case c.LocalLR <= 0:
		return fmt.Errorf("%w: LocalLR=%v", ErrConfig, c.LocalLR)
	case numClients == 0:
		return fmt.Errorf("%w: no client shards", ErrConfig)
	}
	return nil
}

// participant is one selective-SGD worker with a persistent local model.
type participant struct {
	model *nn.Sequential
	shard *data.ClientShard
	y     *tensor.Matrix
	rng   *rand.Rand
	// before holds the pre-training parameter snapshot, allocated once and
	// rewritten in place every round (the round loop is a hot path; see the
	// pooling conventions in the root doc.go).
	before []*tensor.Matrix
}

// snapshotInto copies the participant's current parameter values into its
// reusable snapshot buffers.
func (p *participant) snapshotInto() error {
	params := p.model.Params()
	if p.before == nil {
		p.before = make([]*tensor.Matrix, len(params))
		for i, pr := range params {
			p.before[i] = tensor.New(pr.Value.Rows(), pr.Value.Cols())
		}
	}
	for i, pr := range params {
		if err := p.before[i].CopyFrom(pr.Value); err != nil {
			return err
		}
	}
	return nil
}

// RunSelectiveSGD executes distributed selective SGD: each round every
// participant (in deterministic order) downloads a fraction of the freshest
// global parameters, trains locally, and uploads the θ-fraction of updates
// with the largest magnitude, which the server adds to the global model.
//
// Unlike RunFedAvg, the participant loop is deliberately sequential: the
// algorithm's value comes from each participant seeing the freshest global
// parameters — including the uploads of participants earlier in the same
// round — so a parallel fan-out would change the scheme, not just its speed.
// Parallel client training lives in FanOut and the fedserve coordinator.
func RunSelectiveSGD(factory ModelFactory, shards []*data.ClientShard, classes int, cfg SelectiveSGDConfig) (*nn.Sequential, []RoundStats, error) {
	if err := cfg.validate(len(shards)); err != nil {
		return nil, nil, err
	}
	global, err := factory()
	if err != nil {
		return nil, nil, fmt.Errorf("build global model: %w", err)
	}
	globalParams := global.Params()
	totalParams := nn.NumParams(globalParams)

	rng := rand.New(rand.NewSource(cfg.Seed))
	parts := make([]*participant, len(shards))
	for k, shard := range shards {
		local, err := factory()
		if err != nil {
			return nil, nil, err
		}
		if err := nn.CopyWeights(local.Params(), globalParams); err != nil {
			return nil, nil, err
		}
		y, err := nn.OneHot(shard.Labels, classes)
		if err != nil {
			return nil, nil, err
		}
		parts[k] = &participant{
			model: local,
			shard: shard,
			y:     y,
			rng:   rand.New(rand.NewSource(rng.Int63())),
		}
	}

	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	uploadCount := int(math.Ceil(cfg.Theta * float64(totalParams)))
	downloadCount := int(math.Ceil(cfg.DownloadFraction * float64(totalParams)))

	var stats []RoundStats
	var upBytes, downBytes int64

	for round := 0; round < cfg.Rounds; round++ {
		var roundLoss float64
		for _, p := range parts {
			// Download: refresh a random fraction of local params from global.
			downloadParams(p.rng, p.model.Params(), globalParams, cfg.DownloadFraction)
			downBytes += int64(downloadCount) * (BytesPerValue + BytesPerIndex)

			// Snapshot (into the participant's reusable buffers), train
			// locally, compute deltas.
			if err := p.snapshotInto(); err != nil {
				return nil, nil, err
			}
			batch := cfg.LocalBatch
			if batch <= 0 || batch > p.shard.Size() {
				batch = p.shard.Size()
			}
			losses, err := nn.Train(p.model, p.shard.X, p.y, nn.TrainConfig{
				Epochs:    cfg.LocalEpochs,
				BatchSize: batch,
				Optimizer: opt.NewSGD(cfg.LocalLR),
				Loss:      nn.NewSoftmaxCrossEntropy(),
				Rng:       p.rng,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("round %d: %w", round, err)
			}
			roundLoss += losses[len(losses)-1]

			// Upload: apply the top-θ fraction of deltas to the global model.
			applyTopDeltas(p.model.Params(), p.before, globalParams, uploadCount)
			upBytes += int64(uploadCount) * (BytesPerValue + BytesPerIndex)
		}
		roundLoss /= float64(len(parts))

		st := RoundStats{
			Round:               round,
			TrainLoss:           roundLoss,
			Accuracy:            -1,
			CumulativeUpBytes:   upBytes,
			CumulativeDownBytes: downBytes,
			ParticipatingUsers:  len(parts),
		}
		if cfg.Eval != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			acc, err := cfg.Eval(global)
			if err != nil {
				return nil, nil, err
			}
			st.Accuracy = acc
			stats = append(stats, st)
			if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy {
				return global, stats, nil
			}
			continue
		}
		stats = append(stats, st)
	}
	return global, stats, nil
}

// downloadParams overwrites a random fraction of local parameter values with
// the global values (the paper's partial-download step).
func downloadParams(rng *rand.Rand, local []*nn.Param, global []*nn.Param, fraction float64) {
	if fraction >= 1 {
		for i := range local {
			copy(local[i].Value.Data(), global[i].Value.Data())
		}
		return
	}
	for i := range local {
		ld := local[i].Value.Data()
		gd := global[i].Value.Data()
		for j := range ld {
			if rng.Float64() < fraction {
				ld[j] = gd[j]
			}
		}
	}
}

// applyTopDeltas computes local-after minus local-before deltas, selects the
// uploadCount largest by magnitude across all parameters, and adds them to
// the global model.
func applyTopDeltas(local []*nn.Param, before []*tensor.Matrix, global []*nn.Param, uploadCount int) {
	type deltaRef struct {
		param, idx int
		value      float64
	}
	var deltas []deltaRef
	for pi := range local {
		ld := local[pi].Value.Data()
		bd := before[pi].Data()
		for j := range ld {
			d := ld[j] - bd[j]
			if d != 0 {
				deltas = append(deltas, deltaRef{param: pi, idx: j, value: d})
			}
		}
	}
	if uploadCount < len(deltas) {
		sort.Slice(deltas, func(a, b int) bool {
			return math.Abs(deltas[a].value) > math.Abs(deltas[b].value)
		})
		deltas = deltas[:uploadCount]
	}
	for _, d := range deltas {
		gd := global[d.param].Value.Data()
		gd[d.idx] += d.value
	}
}

// RoundsToTarget returns the 1-based round count at which stats first reach
// accuracy target, or -1 if never.
func RoundsToTarget(stats []RoundStats, target float64) int {
	for _, s := range stats {
		if s.Accuracy >= target {
			return s.Round + 1
		}
	}
	return -1
}

// BytesToTarget returns cumulative up+down traffic when accuracy target was
// first reached, or -1 if never.
func BytesToTarget(stats []RoundStats, target float64) int64 {
	for _, s := range stats {
		if s.Accuracy >= target {
			return s.CumulativeUpBytes + s.CumulativeDownBytes
		}
	}
	return -1
}
