package federated_test

import (
	"fmt"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/nn"
)

// ExampleRunFedAvg trains a small MLP with federated averaging over eight
// IID client shards, fanning client training out across four workers. For a
// fixed seed the result is identical at any worker count.
func ExampleRunFedAvg() {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: 600, Classes: 4, Dim: 8, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		panic(err)
	}
	shards, err := data.ShardIID(rand.New(rand.NewSource(9)), trX, trY, 8)
	if err != nil {
		panic(err)
	}
	// Every client and the server build through the same factory so
	// parameter lists align index-by-index.
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42))
		return nn.NewSequential(
			nn.NewDense(r, 8, 16), nn.NewReLU(), nn.NewDense(r, 16, 4),
		), nil
	}

	_, stats, err := federated.RunFedAvg(factory, shards, 4, federated.FedAvgConfig{
		Rounds:         15,
		ClientFraction: 0.5,
		LocalEpochs:    3,
		LocalBatch:     16,
		LocalLR:        0.1,
		Seed:           1,
		Workers:        4,
		Eval:           federated.AccuracyEval(teX, teY),
	})
	if err != nil {
		panic(err)
	}
	final := stats[len(stats)-1]
	fmt.Println("rounds run:", len(stats))
	fmt.Println("reached 85% held-out accuracy:", final.Accuracy >= 0.85)
	fmt.Println("tracked communication bytes:", final.CumulativeUpBytes > 0)
	// Output:
	// rounds run: 15
	// reached 85% held-out accuracy: true
	// tracked communication bytes: true
}
