// Package federated implements the two distributed-training schemes of
// Section II: the distributed selective SGD of Shokri & Shmatikov [16]
// (Fig. 1) with a global parameter server and top-|g| selective gradient
// exchange, and Google's federated averaging [17, 18] with client sampling,
// multiple local epochs, and n_k/n-weighted aggregation. Both account for
// communicated bytes so the paper's 10-100x communication-saving claim
// (Section II-B) can be reproduced, and a device-eligibility scheduler
// models the "idle, plugged in, on WiFi" participation constraint.
//
// # The Trainer seam
//
// Client-side local training is driven by the Trainer interface: given the
// current global parameter values and a deterministic seed, produce one
// client's round contribution (ClientResult). SGDTrainer is the reference
// implementation — fresh factory-built model, E local epochs of minibatch
// SGD — and FanOut runs one round's selected cohort concurrently across a
// GOMAXPROCS-bounded worker pool. Because every client's randomness derives
// from a pre-drawn seed and results merge in selection order, a parallel
// round reproduces the sequential one bit-for-bit (see
// TestFedAvgParallelMatchesSequential and BenchmarkFedRound).
//
// The synchronous entry points are thin wrappers over that machinery:
//
//   - RunFedAvg: per round, SelectRound draws the eligible cohort and seeds,
//     FanOut trains it in parallel, and MergeWeighted folds the n_k/n
//     weighted average into the global model at a barrier.
//   - RunSelectiveSGD: stays sequential by design — each participant must
//     see the freshest global parameters, including uploads from earlier in
//     the same round.
//
// Package privacy reuses the same seam for DP-FedAvg (clipped, noised
// deltas), and internal/fedserve builds the continuous train-to-serve
// coordinator on top of it: rounds run forever, accepted global models are
// hot-published into a serve.Registry. See ARCHITECTURE.md at the repository
// root for the full train → publish → serve loop.
package federated
