package federated

import (
	"fmt"
	"runtime"
	"testing"

	"mobiledl/internal/tensor"
)

// TestFedAvgParallelMatchesSequential: round stats and final weights must be
// bit-identical for any worker count — per-client seeds are drawn before the
// fan-out and merging runs in selection order.
func TestFedAvgParallelMatchesSequential(t *testing.T) {
	run := func(workers int) ([]RoundStats, []*tensor.Matrix) {
		factory, shards, eval, classes := benchSetup(t, 8, false)
		model, stats, err := RunFedAvg(factory, shards, classes, FedAvgConfig{
			Rounds:         8,
			ClientFraction: 0.5,
			LocalEpochs:    2,
			LocalBatch:     16,
			LocalLR:        0.1,
			Seed:           13,
			Workers:        workers,
			Eval:           eval,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, ParamValues(model.Params())
	}
	seqStats, seqW := run(1)
	parStats, parW := run(8)
	if len(seqStats) != len(parStats) {
		t.Fatalf("round counts differ: %d vs %d", len(seqStats), len(parStats))
	}
	for i := range seqStats {
		if seqStats[i] != parStats[i] {
			t.Fatalf("round %d stats differ:\nseq %+v\npar %+v", i, seqStats[i], parStats[i])
		}
	}
	for i := range seqW {
		if !seqW[i].Equal(parW[i], 0) {
			t.Fatalf("param %d differs between worker counts", i)
		}
	}
}

// BenchmarkFedRound measures one federated round's client fan-out at worker
// counts 1 (the sequential baseline) and GOMAXPROCS. On a multi-core box the
// parallel pool wins roughly linearly; results are identical either way (see
// TestFedAvgParallelMatchesSequential).
func BenchmarkFedRound(b *testing.B) {
	factory, shards, _, classes := benchSetup(b, 8, true)
	trainer := &SGDTrainer{Factory: factory, Classes: classes, Epochs: 3, Batch: 16, LR: 0.1}
	global, err := factory()
	if err != nil {
		b.Fatal(err)
	}
	globalVals := ParamValues(global.Params())
	selected := make([]int, len(shards))
	seeds := make([]int64, len(shards))
	for i := range shards {
		selected[i] = i
		seeds[i] = int64(i + 1)
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				updates, err := FanOut(trainer, shards, selected, globalVals, seeds, workers)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := MergeWeighted(globalVals, updates); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
