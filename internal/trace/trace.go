// Package trace is a zero-dependency request tracer for the serving and
// federated-training pipelines: W3C traceparent propagation at the HTTP
// boundary, a lock-free per-trace span builder, and a bounded in-process
// store with tail-based retention (error traces and the slowest N are always
// kept; the rest ride a recent ring until evicted).
//
// Design constraints, in priority order:
//
//  1. Disabled must be near-free. A nil *Tracer and the zero Span are valid
//     receivers whose every method is a no-op, so instrumented code never
//     branches on "is tracing on" — it just calls through.
//  2. Sampled traces must be cheap. Span slabs are pooled across traces and
//     span creation is a single atomic increment into the slab — no locks,
//     no per-span allocation.
//  3. Shared work must not race. Work executed once for many traces (a
//     coalesced tensor batch) is recorded into a BatchLog by the single
//     executing goroutine and materialized into each participant trace by
//     that trace's own submitter after the response arrives, so no goroutine
//     ever writes into a trace it does not own at that moment.
//
// Correctness contract: every span of a trace must End (with a
// happens-before edge) before the trace's root span Ends. Ending the root
// snapshots the trace into the retention store and recycles the slab; a
// Child started on a finished trace is safely dropped (returns the zero
// Span), but a concurrent Child racing the root End is the caller's bug.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the (invalid) all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is the 8-byte W3C parent/span identifier.
type SpanID [8]byte

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is the (invalid) all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// maxAttrs bounds the attributes one span can carry; extras are dropped.
const maxAttrs = 6

// Attr is one span attribute: a string or a number under a key.
type Attr struct {
	Key   string
	str   string
	num   float64
	isNum bool
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, str: v} }

// Num builds a numeric attribute.
func Num(k string, v float64) Attr { return Attr{Key: k, num: v, isNum: true} }

// Value returns the attribute's value as string or float64.
func (a Attr) Value() any {
	if a.isNum {
		return a.num
	}
	return a.str
}

// span is one slab entry. It is written only by the goroutine that created
// it (or, for the materialized BatchLog spans, by the trace's submitter) and
// read only after the trace finishes.
type span struct {
	name   string
	parent int32
	start  int64 // UnixNano
	end    int64 // UnixNano; 0 = not yet ended
	nattr  int32
	err    string
	attrs  [maxAttrs]Attr
}

// active is one in-flight trace: a fixed-capacity span slab plus the atomic
// cursor that makes concurrent span creation lock-free. Slabs are pooled;
// finish snapshots the spans into an immutable TraceData and recycles.
type active struct {
	tracer   *Tracer
	id       TraceID
	remote   SpanID // upstream parent from traceparent (zero if locally rooted)
	rootID   SpanID
	next     atomic.Int32
	errs     atomic.Int32
	finished atomic.Bool
	spans    []span
}

// Span is a handle onto one slab entry. The zero Span is a valid no-op:
// every method returns immediately, which is what keeps the disabled and
// sampled-out paths free of tracing branches.
type Span struct {
	tr  *active
	idx int32
}

// Active reports whether the span records anywhere (false for the zero Span).
func (s Span) Active() bool { return s.tr != nil }

// TraceID returns the owning trace's hex id ("" for the zero Span).
func (s Span) TraceID() string {
	if s.tr == nil {
		return ""
	}
	return s.tr.id.String()
}

// Traceparent renders the W3C traceparent header value that names this
// trace (with the trace's root span as parent-id and the sampled flag set).
func (s Span) Traceparent() string {
	if s.tr == nil {
		return ""
	}
	return FormatTraceparent(s.tr.id, s.tr.rootID, true)
}

// Child starts a live child span. Concurrent Child calls on one trace are
// safe and lock-free; a Child on a finished trace is dropped.
func (s Span) Child(name string, attrs ...Attr) Span {
	return s.childAt(name, time.Now().UnixNano(), 0, "", attrs)
}

// ChildAt records an already-measured child span from explicit timestamps —
// the seam through which work recorded elsewhere (BatchLog entries, worker
// timings carried over a channel) lands in a trace without the recording
// goroutine ever touching the slab.
func (s Span) ChildAt(name string, start time.Time, d time.Duration, attrs ...Attr) Span {
	st := start.UnixNano()
	if d < 0 {
		d = 0
	}
	return s.childAt(name, st, st+int64(d), "", attrs)
}

func (s Span) childAt(name string, start, end int64, errMsg string, attrs []Attr) Span {
	tr := s.tr
	if tr == nil || tr.finished.Load() {
		return Span{}
	}
	idx := tr.next.Add(1) - 1
	if int(idx) >= len(tr.spans) {
		// Slab full: the span is dropped (counted at snapshot time from the
		// cursor overshoot) rather than grown — growth would need a lock.
		return Span{}
	}
	sp := &tr.spans[idx]
	sp.name = name
	sp.parent = s.idx
	sp.start = start
	sp.end = end
	sp.err = errMsg
	sp.nattr = int32(copy(sp.attrs[:], attrs))
	if errMsg != "" {
		tr.errs.Add(1)
	}
	return Span{tr: tr, idx: idx}
}

// Annotate appends attributes to the span (dropped past the per-span cap).
func (s Span) Annotate(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	appendAttrs(&s.tr.spans[s.idx], attrs)
}

func appendAttrs(sp *span, attrs []Attr) {
	for _, a := range attrs {
		if sp.nattr >= maxAttrs {
			return
		}
		sp.attrs[sp.nattr] = a
		sp.nattr++
	}
}

// End closes the span, optionally appending final attributes. Ending the
// root span finishes the whole trace: it is snapshotted into the retention
// store and the slab returns to the pool.
func (s Span) End(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	sp := &s.tr.spans[s.idx]
	if sp.end == 0 {
		sp.end = time.Now().UnixNano()
	}
	appendAttrs(sp, attrs)
	if s.idx == 0 {
		s.tr.tracer.finish(s.tr)
	}
}

// EndErr is End recording a failure; err may be nil (then it is plain End).
// An errored span marks the whole trace as an error trace, which the store
// always retains.
func (s Span) EndErr(err error, attrs ...Attr) {
	if s.tr != nil && err != nil {
		sp := &s.tr.spans[s.idx]
		if sp.err == "" {
			sp.err = err.Error()
			s.tr.errs.Add(1)
		}
	}
	s.End(attrs...)
}

// AttachLog materializes a BatchLog's records as descendants of s,
// preserving the log's own parent/child structure. Safe to call with a nil
// log. This is how per-batch backend spans (recorded once by the executing
// worker) land in every participating request's trace: each submitter
// attaches the shared, by-then read-only log to its own span.
func (s Span) AttachLog(l *BatchLog) {
	if s.tr == nil || l == nil || len(l.recs) == 0 {
		return
	}
	made := make([]Span, len(l.recs))
	for i := range l.recs {
		rec := &l.recs[i]
		parent := s
		if rec.Parent >= 0 && rec.Parent < i {
			parent = made[rec.Parent]
		}
		st := rec.Start.UnixNano()
		made[i] = parent.childAt(rec.Name, st, st+int64(rec.Dur), rec.Err, rec.Attrs)
	}
}

// Config tunes a Tracer. Zero values take the documented defaults.
type Config struct {
	// Sample is the head-sampling probability consulted by Sample()
	// (default 1; set 0 to trace only explicitly forced requests).
	// Negative disables sampling entirely.
	Sample float64
	// MaxSpans caps one trace's span slab (default 256); spans past the cap
	// are dropped and counted in TraceData.DroppedSpans.
	MaxSpans int
	// Recent sizes the keep-latest retention ring (default 256).
	Recent int
	// Slow sizes the always-keep set of slowest traces (default 32).
	Slow int
	// Errors sizes the always-keep ring of error traces (default 64).
	Errors int
}

func (c *Config) fill() {
	if c.Sample == 0 {
		c.Sample = 1
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 256
	}
	if c.Recent <= 0 {
		c.Recent = 256
	}
	if c.Slow <= 0 {
		c.Slow = 32
	}
	if c.Errors <= 0 {
		c.Errors = 64
	}
}

// Stats is a Tracer's lifetime counters (for /metrics export).
type Stats struct {
	// Started counts traces begun; Finished counts traces whose root span
	// ended and that entered the retention store.
	Started  uint64
	Finished uint64
}

// Tracer builds traces and retains finished ones. All methods are safe for
// concurrent use, and safe on a nil receiver (everything no-ops), which is
// the "tracing disabled" representation.
type Tracer struct {
	cfg      Config
	pool     sync.Pool
	store    *store
	started  atomic.Uint64
	finished atomic.Uint64
}

// New builds a tracer with the given retention and sampling policy.
func New(cfg Config) *Tracer {
	cfg.fill()
	t := &Tracer{cfg: cfg, store: newStore(cfg.Recent, cfg.Slow, cfg.Errors)}
	t.pool.New = func() any {
		return &active{tracer: t, spans: make([]span, cfg.MaxSpans)}
	}
	return t
}

// Sample draws the head-sampling decision: true with probability
// Config.Sample. Nil tracers never sample.
func (t *Tracer) Sample() bool {
	if t == nil || t.cfg.Sample <= 0 {
		return false
	}
	return t.cfg.Sample >= 1 || rand.Float64() < t.cfg.Sample
}

// Start begins a locally-rooted trace with a fresh random id and returns its
// root span. Nil tracers return the zero Span.
func (t *Tracer) Start(name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], rand.Uint64())
	binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	return t.start(name, id, SpanID{}, attrs)
}

// StartRemote begins a trace continuing a remote one (id and parent from an
// incoming traceparent header), so the caller's distributed trace and the
// in-process span tree share an identity.
func (t *Tracer) StartRemote(name string, id TraceID, parent SpanID, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	if id.IsZero() {
		return t.Start(name, attrs...)
	}
	return t.start(name, id, parent, attrs)
}

func (t *Tracer) start(name string, id TraceID, parent SpanID, attrs []Attr) Span {
	tr := t.pool.Get().(*active)
	tr.id = id
	tr.remote = parent
	binary.BigEndian.PutUint64(tr.rootID[:], rand.Uint64())
	tr.next.Store(0)
	tr.errs.Store(0)
	tr.finished.Store(false)
	t.started.Add(1)
	// The root is its own slab entry at idx 0 with parent -1.
	return Span{tr: tr, idx: -1}.childAt(name, time.Now().UnixNano(), 0, "", attrs)
}

// finish snapshots a trace into the store and recycles its slab. Guarded by
// a CAS so a double root-End is harmless.
func (t *Tracer) finish(tr *active) {
	if !tr.finished.CompareAndSwap(false, true) {
		return
	}
	t.finished.Add(1)
	t.store.offer(tr.snapshot())
	t.pool.Put(tr)
}

// Get returns a retained trace by hex id, or nil.
func (t *Tracer) Get(id string) *TraceData {
	if t == nil {
		return nil
	}
	return t.store.get(id)
}

// Recent lists retained traces, newest first (recent ring plus the
// always-kept error and slowest sets, deduplicated).
func (t *Tracer) Recent() []TraceSummary {
	if t == nil {
		return nil
	}
	return t.store.list()
}

// Stats snapshots the tracer's lifetime counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{Started: t.started.Load(), Finished: t.finished.Load()}
}

// snapshot freezes the slab into an immutable TraceData.
func (tr *active) snapshot() *TraceData {
	n := int(tr.next.Load())
	dropped := 0
	if n > len(tr.spans) {
		dropped = n - len(tr.spans)
		n = len(tr.spans)
	}
	root := &tr.spans[0]
	td := &TraceData{
		TraceID:      tr.id.String(),
		Name:         root.name,
		Start:        time.Unix(0, root.start),
		DurationMs:   float64(root.end-root.start) / 1e6,
		Error:        tr.errs.Load() > 0,
		DroppedSpans: dropped,
		Spans:        make([]SpanData, n),
	}
	if !tr.remote.IsZero() {
		td.RemoteParent = tr.remote.String()
	}
	for i := 0; i < n; i++ {
		sp := &tr.spans[i]
		end := sp.end
		if end == 0 {
			// A span nobody ended (contract violation or abandoned request):
			// clamp to the root's end so durations stay sane.
			end = root.end
		}
		sd := SpanData{
			ID:         i,
			Parent:     int(sp.parent),
			Name:       sp.name,
			OffsetMs:   float64(sp.start-root.start) / 1e6,
			DurationMs: float64(end-sp.start) / 1e6,
			Error:      sp.err,
		}
		if sd.DurationMs < 0 {
			sd.DurationMs = 0
		}
		if sp.nattr > 0 {
			sd.Attrs = make(map[string]any, sp.nattr)
			for a := int32(0); a < sp.nattr; a++ {
				sd.Attrs[sp.attrs[a].Key] = sp.attrs[a].Value()
			}
		}
		td.Spans[i] = sd
	}
	return td
}
