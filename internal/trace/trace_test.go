package trace

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	id := TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	parent := SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(id, parent, sampled)
		if len(h) != 55 {
			t.Fatalf("traceparent %q is %d chars, want 55", h, len(h))
		}
		gid, gparent, gsampled, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("round-trip parse of %q failed", h)
		}
		if gid != id || gparent != parent || gsampled != sampled {
			t.Fatalf("round trip mangled %q: got id=%s parent=%s sampled=%v", h, gid, gparent, gsampled)
		}
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	bad := map[string]string{
		"empty":          "",
		"short":          valid[:54],
		"version ff":     "ff" + valid[2:],
		"zero trace id":  "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero parent id": "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"bad dashes":     strings.ReplaceAll(valid, "-", "_"),
		"non-hex id":     "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
	}
	if _, _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("control value rejected")
	}
	for name, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, h)
		}
	}
	// Unsampled flag parses fine but reports sampled=false.
	if _, _, sampled, ok := ParseTraceparent(valid[:53] + "00"); !ok || sampled {
		t.Fatalf("flags 00: ok=%v sampled=%v, want ok && !sampled", ok, sampled)
	}
}

func TestSpanTreeSnapshot(t *testing.T) {
	tr := New(Config{})
	root := tr.Start("req", Str("model", "m"))
	if !root.Active() {
		t.Fatal("root span inactive")
	}
	a := root.Child("a", Num("k", 3))
	b := a.Child("b")
	b.End()
	a.EndErr(errors.New("boom"))
	root.End()

	td := tr.Get(root.TraceID())
	if td == nil {
		t.Fatal("finished trace not retained")
	}
	if td.Name != "req" || len(td.Spans) != 3 {
		t.Fatalf("trace = %+v, want name req with 3 spans", td)
	}
	if !td.Error {
		t.Fatal("errored child did not mark the trace as an error trace")
	}
	spans := td.Spans
	if spans[0].Parent != -1 || spans[1].Parent != 0 || spans[2].Parent != 1 {
		t.Fatalf("parent chain %d/%d/%d, want -1/0/1", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	if spans[0].Attrs["model"] != "m" || spans[1].Attrs["k"] != 3.0 {
		t.Fatalf("attrs lost: %+v", spans)
	}
	if spans[1].Error != "boom" {
		t.Fatalf("span error = %q, want boom", spans[1].Error)
	}
	st := tr.Stats()
	if st.Started != 1 || st.Finished != 1 {
		t.Fatalf("stats %+v, want 1/1", st)
	}
}

func TestSlabOverflowDropsAndCounts(t *testing.T) {
	tr := New(Config{MaxSpans: 4})
	root := tr.Start("req")
	for i := 0; i < 10; i++ {
		c := root.Child("c")
		c.End()
	}
	root.End()
	td := tr.Get(root.TraceID())
	if td == nil {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != 4 {
		t.Fatalf("kept %d spans, want slab cap 4", len(td.Spans))
	}
	if td.DroppedSpans != 7 {
		t.Fatalf("DroppedSpans = %d, want 7 (11 allocations into a 4-slab)", td.DroppedSpans)
	}
}

func TestSlabPoolRecyclesClean(t *testing.T) {
	tr := New(Config{MaxSpans: 16})
	first := tr.Start("first")
	for i := 0; i < 10; i++ {
		first.Child("junk").End()
	}
	first.End()

	// The recycled slab still holds the first trace's entries; the second
	// trace's snapshot must only see its own.
	second := tr.Start("second")
	second.Child("only").End()
	second.End()
	td := tr.Get(second.TraceID())
	if td == nil {
		t.Fatal("second trace not retained")
	}
	if len(td.Spans) != 2 || td.Spans[1].Name != "only" {
		t.Fatalf("recycled slab leaked spans: %+v", td.Spans)
	}
	// Spans created after the root ended are dropped, not written into the
	// (possibly re-pooled) slab.
	if got := second.Child("late"); got.Active() {
		t.Fatal("Child on a finished trace returned a live span")
	}
}

func TestConcurrentChildrenRaceFree(t *testing.T) {
	tr := New(Config{MaxSpans: 2048})
	root := tr.Start("req")
	const workers, each = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c := root.Child("c", Num("w", float64(w)))
				c.End(Num("i", float64(i)))
			}
		}(w)
	}
	wg.Wait()
	root.End()
	td := tr.Get(root.TraceID())
	if td == nil {
		t.Fatal("trace not retained")
	}
	if want := 1 + workers*each; len(td.Spans) != want {
		t.Fatalf("got %d spans, want %d", len(td.Spans), want)
	}
	for _, sp := range td.Spans[1:] {
		if sp.Parent != 0 {
			t.Fatalf("span %d parented to %d, want root", sp.ID, sp.Parent)
		}
	}
}

func TestStoreTailRetentionUnderChurn(t *testing.T) {
	st := newStore(4, 2, 2)
	mk := func(i int, durMs float64, isErr bool) *TraceData {
		return &TraceData{
			TraceID:    fmt.Sprintf("%032d", i),
			Name:       "t",
			Start:      time.Unix(0, int64(i)),
			DurationMs: durMs,
			Error:      isErr,
		}
	}
	// Two early error traces, then heavy churn of fast traces with two slow
	// outliers in the middle.
	st.offer(mk(0, 1, true))
	st.offer(mk(1, 1, true))
	st.offer(mk(2, 500, false))
	st.offer(mk(3, 900, false))
	for i := 4; i < 40; i++ {
		st.offer(mk(i, 1, false))
	}

	// The error traces survive churn in the error ring.
	for _, id := range []int{0, 1} {
		if st.get(fmt.Sprintf("%032d", id)) == nil {
			t.Errorf("error trace %d evicted", id)
		}
	}
	// The slowest traces survive churn in the slow set.
	for _, id := range []int{2, 3} {
		if st.get(fmt.Sprintf("%032d", id)) == nil {
			t.Errorf("slow trace %d evicted", id)
		}
	}
	// A fast mid-churn trace aged out of the 4-deep recent ring.
	if st.get(fmt.Sprintf("%032d", 10)) != nil {
		t.Error("fast trace 10 unexpectedly retained")
	}
	// A faster new trace must not displace a slower retained one.
	st.offer(mk(99, 2, false))
	if st.get(fmt.Sprintf("%032d", 2)) == nil {
		t.Error("slow trace displaced by a faster one")
	}
	// Listing is deduplicated and newest-first.
	list := st.list()
	seen := map[string]bool{}
	for _, s := range list {
		if seen[s.TraceID] {
			t.Fatalf("trace %s listed twice", s.TraceID)
		}
		seen[s.TraceID] = true
	}
	for i := 1; i < len(list); i++ {
		if list[i].Start.After(list[i-1].Start) {
			t.Fatal("listing not newest-first")
		}
	}
}

func TestNilTracerAndZeroSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	sp := tr.Start("x")
	if sp.Active() || sp.TraceID() != "" || sp.Traceparent() != "" {
		t.Fatalf("nil tracer returned a live span: %+v", sp)
	}
	// Every method must be callable on the zero span.
	c := sp.Child("c")
	c.Annotate(Str("k", "v"))
	c.End()
	sp.EndErr(errors.New("x"))
	sp.AttachLog(NewBatchLog())
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer retained traces: %v", got)
	}
	if tr.Get("deadbeef") != nil {
		t.Fatal("nil tracer returned a trace")
	}
	// Sample <= 0 disables head sampling on a live tracer.
	if New(Config{Sample: -1}).Sample() {
		t.Fatal("negative sample rate sampled")
	}
}

func TestBatchLogNestingAndAttach(t *testing.T) {
	var nilLog *BatchLog
	if idx := nilLog.Begin("x"); idx != -1 {
		t.Fatalf("nil log Begin = %d, want -1", idx)
	}
	nilLog.End(0)
	nilLog.EndErr(0, errors.New("x"))

	l := NewBatchLog()
	exec := l.Begin("exec")
	dev := l.Begin("device")
	l.End(dev, Num("rows", 4))
	cloud := l.Begin("cloud")
	l.EndErr(cloud, errors.New("cloud down"))
	l.End(exec)

	recs := l.Recs()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	if recs[0].Parent != -1 || recs[1].Parent != 0 || recs[2].Parent != 0 {
		t.Fatalf("nesting %d/%d/%d, want -1/0/0", recs[0].Parent, recs[1].Parent, recs[2].Parent)
	}
	if recs[2].Err != "cloud down" {
		t.Fatalf("error lost: %+v", recs[2])
	}

	// Materialize into a trace: structure preserved under the attach point.
	tr := New(Config{})
	root := tr.Start("req")
	batch := root.Child("batch")
	batch.AttachLog(l)
	batch.End()
	root.End()
	td := tr.Get(root.TraceID())
	if td == nil {
		t.Fatal("trace not retained")
	}
	// root(0), batch(1), exec(2), device(3), cloud(4)
	if len(td.Spans) != 5 {
		t.Fatalf("%d spans, want 5: %+v", len(td.Spans), td.Spans)
	}
	if td.Spans[2].Parent != 1 || td.Spans[3].Parent != 2 || td.Spans[4].Parent != 2 {
		t.Fatalf("attached structure wrong: %+v", td.Spans)
	}
	if !td.Error || td.Spans[4].Error != "cloud down" {
		t.Fatal("attached error record did not mark the trace")
	}
	if td.Spans[3].Attrs["rows"] != 4.0 {
		t.Fatalf("attached attrs lost: %+v", td.Spans[3])
	}
}

func TestStartRemoteJoinsCallerTrace(t *testing.T) {
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, parent, sampled, ok := ParseTraceparent(h)
	if !ok || !sampled {
		t.Fatal("control header did not parse")
	}
	tr := New(Config{})
	sp := tr.StartRemote("req", id, parent)
	if sp.TraceID() != id.String() {
		t.Fatalf("trace id %s, want caller's %s", sp.TraceID(), id)
	}
	// The echoed traceparent names the same trace (new span id, sampled).
	eid, _, esampled, eok := ParseTraceparent(sp.Traceparent())
	if !eok || eid != id || !esampled {
		t.Fatalf("echoed traceparent %q does not continue the trace", sp.Traceparent())
	}
	sp.End()
	td := tr.Get(id.String())
	if td == nil {
		t.Fatal("remote-rooted trace not retained")
	}
	if td.RemoteParent != parent.String() {
		t.Fatalf("RemoteParent = %q, want %s", td.RemoteParent, parent)
	}
}

func TestChildAtRecordsExplicitWindow(t *testing.T) {
	tr := New(Config{})
	root := tr.Start("req")
	start := time.Now().Add(-10 * time.Millisecond)
	root.ChildAt("q", start, 4*time.Millisecond, Num("n", 1))
	root.End()
	td := tr.Get(root.TraceID())
	if td == nil || len(td.Spans) != 2 {
		t.Fatalf("trace wrong: %+v", td)
	}
	q := td.Spans[1]
	if q.DurationMs < 3.9 || q.DurationMs > 4.1 {
		t.Fatalf("ChildAt duration %.3fms, want ~4ms", q.DurationMs)
	}
	if q.OffsetMs > 0 {
		t.Fatalf("ChildAt offset %.3fms, want negative (started before root)", q.OffsetMs)
	}
}
