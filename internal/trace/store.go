package trace

import (
	"sort"
	"sync"
	"time"
)

// SpanData is one finished span in a retained trace. Parent is the slab
// index of the parent span (-1 for the root), so consumers can rebuild the
// tree without ids.
type SpanData struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Name   string `json:"name"`
	// OffsetMs is the span's start relative to the trace start.
	OffsetMs   float64        `json:"offset_ms"`
	DurationMs float64        `json:"duration_ms"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// TraceData is one finished, immutable trace.
type TraceData struct {
	TraceID string    `json:"trace_id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	// DurationMs is the root span's duration.
	DurationMs float64 `json:"duration_ms"`
	// Error reports whether any span in the trace failed.
	Error bool `json:"error"`
	// RemoteParent is the upstream W3C parent span id when the trace
	// continued an incoming traceparent.
	RemoteParent string `json:"remote_parent,omitempty"`
	// DroppedSpans counts spans lost to the per-trace slab cap.
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// TraceSummary is one line of the trace listing.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Error      bool      `json:"error"`
	Spans      int       `json:"spans"`
}

// store is the bounded retention set behind a Tracer: tail-based in that the
// keep decision is made after the trace finishes, when its duration and
// error status are known. Error traces ride their own ring, the slowest N
// are kept in a min-set, and everything else survives only as long as the
// recent ring does. One trace may be referenced by several sets; memory is
// bounded by recent+slow+errors regardless of traffic.
type store struct {
	mu     sync.Mutex
	recent []*TraceData // ring, nil until warm
	rpos   int
	errs   []*TraceData // ring of error traces
	epos   int
	slow   []*TraceData // unordered slowest-N set (linear min scan; N is small)
}

func newStore(recent, slow, errors int) *store {
	return &store{
		recent: make([]*TraceData, recent),
		errs:   make([]*TraceData, errors),
		slow:   make([]*TraceData, 0, slow),
	}
}

// offer retains a finished trace under the tail-retention policy.
func (st *store) offer(td *TraceData) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.recent[st.rpos] = td
	st.rpos = (st.rpos + 1) % len(st.recent)
	if td.Error {
		st.errs[st.epos] = td
		st.epos = (st.epos + 1) % len(st.errs)
		return
	}
	if len(st.slow) < cap(st.slow) {
		st.slow = append(st.slow, td)
		return
	}
	if len(st.slow) == 0 {
		return
	}
	min := 0
	for i, s := range st.slow {
		if s.DurationMs < st.slow[min].DurationMs {
			min = i
		}
	}
	if td.DurationMs > st.slow[min].DurationMs {
		st.slow[min] = td
	}
}

// get returns a retained trace by id, or nil.
func (st *store) get(id string) *TraceData {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, set := range [][]*TraceData{st.recent, st.errs, st.slow} {
		for _, td := range set {
			if td != nil && td.TraceID == id {
				return td
			}
		}
	}
	return nil
}

// list summarizes every retained trace, newest first, deduplicated across
// the retention sets.
func (st *store) list() []TraceSummary {
	st.mu.Lock()
	seen := make(map[*TraceData]bool)
	var out []TraceSummary
	for _, set := range [][]*TraceData{st.recent, st.errs, st.slow} {
		for _, td := range set {
			if td == nil || seen[td] {
				continue
			}
			seen[td] = true
			out = append(out, TraceSummary{
				TraceID:    td.TraceID,
				Name:       td.Name,
				Start:      td.Start,
				DurationMs: td.DurationMs,
				Error:      td.Error,
				Spans:      len(td.Spans),
			})
		}
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
