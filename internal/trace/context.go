package trace

import "context"

type spanKey struct{}
type logKey struct{}

// WithSpan returns a context carrying the span; inert spans leave the
// context untouched (so the disabled path never allocates a context link).
func WithSpan(ctx context.Context, s Span) context.Context {
	if !s.Active() {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the context's span (the zero Span when absent).
func SpanFrom(ctx context.Context) Span {
	s, _ := ctx.Value(spanKey{}).(Span)
	return s
}

// WithLog returns a context carrying a BatchLog for the executing backend to
// record into; a nil log leaves the context untouched.
func WithLog(ctx context.Context, l *BatchLog) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, logKey{}, l)
}

// LogFrom extracts the context's BatchLog (nil when absent — and nil is a
// valid no-op receiver for every BatchLog method).
func LogFrom(ctx context.Context) *BatchLog {
	l, _ := ctx.Value(logKey{}).(*BatchLog)
	return l
}
