package trace

import "time"

// BatchRec is one raw span record in a BatchLog: name, wall-clock window,
// structural parent (index into the log, -1 for top level), and attributes.
type BatchRec struct {
	Name   string
	Parent int
	Start  time.Time
	Dur    time.Duration
	Err    string
	Attrs  []Attr
}

// BatchLog collects raw span records for work executed once on behalf of
// many traces — a coalesced tensor batch run by a single batcher worker.
// The worker records into the log (single-goroutine, Begin/End nesting);
// after execution the log is read-only and every participating request's
// submitter attaches it to its own trace with Span.AttachLog. That split is
// what lets one backend execution produce child spans in N traces without
// any cross-goroutine span writes.
//
// A nil *BatchLog is a valid receiver: Begin returns -1 and End ignores it,
// so backends instrument unconditionally and untraced batches pay only a
// nil check.
type BatchLog struct {
	recs []BatchRec
	open []int // stack of indices with an outstanding Begin
}

// NewBatchLog returns an empty log.
func NewBatchLog() *BatchLog { return &BatchLog{} }

// Begin opens a record nested under the innermost still-open record and
// returns its index (-1 on a nil log).
func (l *BatchLog) Begin(name string) int {
	if l == nil {
		return -1
	}
	parent := -1
	if len(l.open) > 0 {
		parent = l.open[len(l.open)-1]
	}
	l.recs = append(l.recs, BatchRec{Name: name, Parent: parent, Start: time.Now()})
	idx := len(l.recs) - 1
	l.open = append(l.open, idx)
	return idx
}

// End closes the record at idx, stamping its duration and attributes.
func (l *BatchLog) End(idx int, attrs ...Attr) {
	if l == nil || idx < 0 || idx >= len(l.recs) {
		return
	}
	rec := &l.recs[idx]
	rec.Dur = time.Since(rec.Start)
	if len(attrs) > 0 {
		rec.Attrs = append(rec.Attrs, attrs...)
	}
	if n := len(l.open); n > 0 && l.open[n-1] == idx {
		l.open = l.open[:n-1]
	}
}

// EndErr is End recording a failure (nil err behaves like End).
func (l *BatchLog) EndErr(idx int, err error, attrs ...Attr) {
	if l != nil && idx >= 0 && idx < len(l.recs) && err != nil {
		l.recs[idx].Err = err.Error()
	}
	l.End(idx, attrs...)
}

// Recs exposes the recorded spans (read-only by convention once execution
// has finished).
func (l *BatchLog) Recs() []BatchRec {
	if l == nil {
		return nil
	}
	return l.recs
}
