package trace

import "encoding/hex"

// The W3C traceparent header (https://www.w3.org/TR/trace-context/):
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00   -  32 hex    -   16 hex    -    02 hex
//
// 55 characters total for version 00. Bit 0 of trace-flags is "sampled".

// ParseTraceparent decodes a traceparent header value. ok is false for a
// missing or malformed header; sampled reflects the caller's sampling flag.
func ParseTraceparent(h string) (id TraceID, parent SpanID, sampled, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return
	}
	if _, err := hex.Decode(id[:], []byte(h[3:35])); err != nil || id.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	return id, parent, flags[0]&1 == 1, true
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(id TraceID, span SpanID, sampled bool) string {
	buf := make([]byte, 55)
	buf[0], buf[1] = '0', '0'
	buf[2], buf[35], buf[52] = '-', '-', '-'
	hex.Encode(buf[3:35], id[:])
	hex.Encode(buf[36:52], span[:])
	buf[53] = '0'
	if sampled {
		buf[54] = '1'
	} else {
		buf[54] = '0'
	}
	return string(buf)
}
