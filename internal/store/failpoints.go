package store

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the root of every fault the Failpoints seam injects, so
// tests (and the degraded-mode plumbing) can tell injected faults from real
// I/O errors with errors.Is.
var ErrInjected = errors.New("store: injected fault")

// Injected fault classes. Torn and corrupt faults simulate a crash mid-write:
// they leave damaged bytes on disk on purpose, which is exactly what the
// recovery path must survive.
var (
	errInjectedWrite = fmt.Errorf("%w: frame write failed", ErrInjected)
	errInjectedTorn  = fmt.Errorf("%w: frame write torn mid-frame", ErrInjected)
	errInjectedFsync = fmt.Errorf("%w: fsync failed", ErrInjected)
	errInjectedFull  = fmt.Errorf("%w: disk full", ErrInjected)
)

// faultKind is the decision the write path asks Failpoints for.
type faultKind int

const (
	faultNone faultKind = iota
	// faultWrite: the frame write errors cleanly; nothing reaches disk.
	faultWrite
	// faultTorn: half the frame reaches disk, then the write errors — a
	// torn tail recovery must truncate. The store treats it as a crash of
	// the persistence layer: no undo, subsequent appends fail.
	faultTorn
	// faultCorrupt: the frame is written whole but with a corrupted
	// checksum. The write "succeeds"; the damage only surfaces at replay.
	faultCorrupt
	// faultFull: persistent failure (every write errors until cleared) —
	// the graceful-degradation drill.
	faultFull
)

// Failpoints injects storage faults at the store's I/O seam, the engine of
// the kill-recover test suite. Arm a fault with an N (the Nth matching
// operation from now, 1 = the next one), hand the struct to Options, and the
// store consults it on every frame write and fsync. All methods are safe for
// concurrent use; a nil *Failpoints injects nothing.
type Failpoints struct {
	mu       sync.Mutex
	writeN   int
	tornN    int
	corruptN int
	fsyncN   int
	diskFull bool

	// Fired counts how many faults actually triggered (test assertions).
	fired int
}

// FailWrite arms a clean write failure on the nth frame write from now:
// the append errors, nothing reaches disk.
func (f *Failpoints) FailWrite(n int) { f.set(&f.writeN, n) }

// TearWrite arms a torn write on the nth frame write from now: a prefix of
// the frame reaches disk, then the write errors and the store refuses
// further appends (simulating a crash mid-write). Recovery must truncate
// the torn tail.
func (f *Failpoints) TearWrite(n int) { f.set(&f.tornN, n) }

// CorruptCRC arms checksum corruption on the nth frame write from now: the
// frame lands on disk whole but invalid, and the append reports success —
// latent damage only replay can detect.
func (f *Failpoints) CorruptCRC(n int) { f.set(&f.corruptN, n) }

// FailFsync arms a failure of the nth fsync from now. The store undoes the
// un-synced frame (truncating back), so the append errors and the record is
// not durable.
func (f *Failpoints) FailFsync(n int) { f.set(&f.fsyncN, n) }

// SetDiskFull toggles a persistent write failure: every append errors until
// cleared, the runtime graceful-degradation scenario.
func (f *Failpoints) SetDiskFull(on bool) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.diskFull = on
	f.mu.Unlock()
}

// Fired reports how many armed faults have triggered so far.
func (f *Failpoints) Fired() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Reset disarms everything.
func (f *Failpoints) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.writeN, f.tornN, f.corruptN, f.fsyncN, f.diskFull = 0, 0, 0, 0, false
	f.mu.Unlock()
}

func (f *Failpoints) set(field *int, n int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	*field = n
	f.mu.Unlock()
}

// onWrite draws the fault decision for one frame write. Each armed one-shot
// counter ticks down per write; whichever reaches zero first fires.
func (f *Failpoints) onWrite() faultKind {
	if f == nil {
		return faultNone
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.diskFull {
		f.fired++
		return faultFull
	}
	kind := faultNone
	tick := func(field *int, k faultKind) {
		if *field <= 0 {
			return
		}
		*field--
		if *field == 0 && kind == faultNone {
			kind = k
		}
	}
	tick(&f.writeN, faultWrite)
	tick(&f.tornN, faultTorn)
	tick(&f.corruptN, faultCorrupt)
	if kind != faultNone {
		f.fired++
	}
	return kind
}

// onFsync reports whether this fsync should fail.
func (f *Failpoints) onFsync() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fsyncN <= 0 {
		return false
	}
	f.fsyncN--
	if f.fsyncN == 0 {
		f.fired++
		return true
	}
	return false
}
