package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobiledl/internal/serve"
)

func openT(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func pub(model string, version int, blob byte) serve.PublishRecord {
	return serve.PublishRecord{
		Model:   model,
		Version: version,
		Kind:    "test",
		Meta:    &serve.VersionMeta{Source: "test", Round: version},
		Weights: bytes.Repeat([]byte{blob}, 32),
		At:      time.Unix(int64(1700000000+version), 0),
	}
}

func mustAppend(t *testing.T, s *Store, rec serve.PublishRecord) {
	t.Helper()
	if err := s.AppendPublish(rec); err != nil {
		t.Fatalf("AppendPublish(%s v%d): %v", rec.Model, rec.Version, err)
	}
}

// versionsOf extracts the ascending version list for one model.
func versionsOf(recs []serve.PublishRecord, model string) []int {
	var out []int
	for _, r := range recs {
		if r.Model == model {
			out = append(out, r.Version)
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	mustAppend(t, s, pub("alpha", 1, 0xa1))
	mustAppend(t, s, pub("alpha", 2, 0xa2))
	mustAppend(t, s, pub("beta", 1, 0xb1))
	if err := s.SaveCheckpoint("fedserve/alpha", []byte("round-3")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, Options{Dir: dir})
	recs := r.Publishes()
	if got := versionsOf(recs, "alpha"); !sameInts(got, []int{1, 2}) {
		t.Fatalf("alpha versions after reopen = %v, want [1 2]", got)
	}
	if got := versionsOf(recs, "beta"); !sameInts(got, []int{1}) {
		t.Fatalf("beta versions after reopen = %v, want [1]", got)
	}
	for _, rec := range recs {
		if rec.Model == "alpha" && rec.Version == 2 {
			if !bytes.Equal(rec.Weights, bytes.Repeat([]byte{0xa2}, 32)) {
				t.Fatalf("alpha v2 weights corrupted across reopen")
			}
			if rec.Meta == nil || rec.Meta.Round != 2 {
				t.Fatalf("alpha v2 meta lost across reopen: %+v", rec.Meta)
			}
		}
	}
	ck, ok, err := r.LoadCheckpoint("fedserve/alpha")
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if string(ck) != "round-3" {
		t.Fatalf("checkpoint payload = %q, want round-3", ck)
	}
	if st := r.Stats(); st.RecoveredRecords != 4 {
		t.Fatalf("RecoveredRecords = %d, want 4", st.RecoveredRecords)
	}
}

func TestTornTailTruncatedAtBoot(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	mustAppend(t, s, pub("m", 1, 1))
	mustAppend(t, s, pub("m", 2, 2))
	s.Close()

	// Simulate a crash mid-append: a third frame's prefix lands on disk.
	walPath := filepath.Join(dir, walFile)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := encodeRecord(record{Class: classPublish, Key: "m", Version: 3, Payload: []byte{3}, At: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	fr := frame(payload)
	if err := os.WriteFile(walPath, append(intact, fr[:len(fr)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Options{Dir: dir})
	if got := versionsOf(r.Publishes(), "m"); !sameInts(got, []int{1, 2}) {
		t.Fatalf("versions after torn tail = %v, want [1 2]", got)
	}
	st := r.Stats()
	if st.TruncatedBytes == 0 {
		t.Fatal("expected truncated bytes reported after torn tail")
	}
	// The WAL must physically end at the intact prefix so new appends land
	// on clean bytes.
	if fi, _ := os.Stat(walPath); fi.Size() != int64(len(intact)) {
		t.Fatalf("wal size after recovery = %d, want %d", fi.Size(), len(intact))
	}
	mustAppend(t, r, pub("m", 3, 3))
	r.Close()
	rr := openT(t, Options{Dir: dir})
	if got := versionsOf(rr.Publishes(), "m"); !sameInts(got, []int{1, 2, 3}) {
		t.Fatalf("versions after post-recovery append = %v, want [1 2 3]", got)
	}
}

func TestMidFileCorruptionStopsReplayAtDamage(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	mustAppend(t, s, pub("m", 1, 1))
	off1, _ := os.Stat(filepath.Join(dir, walFile))
	mustAppend(t, s, pub("m", 2, 2))
	mustAppend(t, s, pub("m", 3, 3))
	s.Close()

	// Flip a checksum bit in the second frame: frames aren't
	// self-synchronizing, so replay keeps v1 and drops v2 and v3.
	walPath := filepath.Join(dir, walFile)
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	b[off1.Size()+4] ^= 0x01
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Options{Dir: dir})
	if got := versionsOf(r.Publishes(), "m"); !sameInts(got, []int{1}) {
		t.Fatalf("versions after mid-file corruption = %v, want [1]", got)
	}
}

func TestCompactionRetentionAndCrashOrder(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, CompactEvery: -1, RetainVersions: 2})
	for v := 1; v <= 5; v++ {
		mustAppend(t, s, pub("m", v, byte(v)))
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.WALBytes != 0 || st.Compactions != 1 {
		t.Fatalf("after compaction: WALBytes=%d Compactions=%d", st.WALBytes, st.Compactions)
	}
	if got := versionsOf(s.Publishes(), "m"); !sameInts(got, []int{4, 5}) {
		t.Fatalf("retained versions = %v, want [4 5]", got)
	}
	s.Close()

	// A crash between snapshot rename and WAL truncation leaves both files
	// populated; replay double-applies the WAL's records harmlessly. Rebuild
	// that state: reopen, append, then copy the WAL alongside the snapshot.
	r := openT(t, Options{Dir: dir})
	mustAppend(t, r, pub("m", 6, 6))
	r.Close()
	wal, _ := os.ReadFile(filepath.Join(dir, walFile))
	snap, _ := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), append(snap, wal...), 0o644); err != nil {
		t.Fatal(err)
	}
	rr := openT(t, Options{Dir: dir, RetainVersions: 2})
	if got := versionsOf(rr.Publishes(), "m"); !sameInts(got, []int{5, 6}) {
		t.Fatalf("versions after double-apply = %v, want [5 6]", got)
	}
}

func TestAutoCompactionOnCadence(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, CompactEvery: 3, RetainVersions: 10})
	for v := 1; v <= 7; v++ {
		mustAppend(t, s, pub("m", v, byte(v)))
	}
	st := s.Stats()
	if st.Compactions != 2 {
		t.Fatalf("Compactions = %d after 7 appends with CompactEvery=3, want 2", st.Compactions)
	}
	if got := versionsOf(s.Publishes(), "m"); len(got) != 7 {
		t.Fatalf("retained %v, want all 7 versions", got)
	}
}

func TestBackupRestoresIntoFreshDir(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	mustAppend(t, s, pub("m", 1, 1))
	mustAppend(t, s, pub("m", 2, 2))
	if err := s.SaveCheckpoint("ck", []byte("state")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.Backup(&buf)
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("Backup reported %d bytes, wrote %d", n, buf.Len())
	}

	// Restore runbook: the stream IS a snapshot file.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, snapshotFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r := openT(t, Options{Dir: dir2})
	if got := versionsOf(r.Publishes(), "m"); !sameInts(got, []int{1, 2}) {
		t.Fatalf("restored versions = %v, want [1 2]", got)
	}
	ck, ok, _ := r.LoadCheckpoint("ck")
	if !ok || string(ck) != "state" {
		t.Fatalf("restored checkpoint = %q ok=%v", ck, ok)
	}
}

func TestCheckpointLatestWins(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := s.SaveCheckpoint("k", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	r := openT(t, Options{Dir: dir})
	ck, ok, _ := r.LoadCheckpoint("k")
	if !ok || string(ck) != "c" {
		t.Fatalf("latest checkpoint = %q ok=%v, want \"c\"", ck, ok)
	}
	if _, ok, _ := r.LoadCheckpoint("missing"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestFailpointWriteIsCleanOneShot(t *testing.T) {
	fp := &Failpoints{}
	s := openT(t, Options{Dir: t.TempDir(), Failpoints: fp})
	mustAppend(t, s, pub("m", 1, 1))
	fp.FailWrite(1)
	if err := s.AppendPublish(pub("m", 2, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write failure returned %v", err)
	}
	// One-shot: the next append succeeds, and v2's slot is simply absent.
	mustAppend(t, s, pub("m", 3, 3))
	if got := versionsOf(s.Publishes(), "m"); !sameInts(got, []int{1, 3}) {
		t.Fatalf("versions = %v, want [1 3]", got)
	}
	if st := s.Stats(); st.AppendErrors != 1 || st.Appends != 2 {
		t.Fatalf("stats after failpoint: %+v", st)
	}
}

func TestFailpointFsyncUndoesFrame(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	s := openT(t, Options{Dir: dir, Failpoints: fp})
	mustAppend(t, s, pub("m", 1, 1))
	before, _ := os.Stat(filepath.Join(dir, walFile))
	fp.FailFsync(1)
	if err := s.AppendPublish(pub("m", 2, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed fsync failure returned %v", err)
	}
	// Undone: the WAL is back at the record boundary, nothing half-written.
	after, _ := os.Stat(filepath.Join(dir, walFile))
	if after.Size() != before.Size() {
		t.Fatalf("wal grew from %d to %d despite undone append", before.Size(), after.Size())
	}
	mustAppend(t, s, pub("m", 3, 3))
	s.Close()
	r := openT(t, Options{Dir: dir})
	if got := versionsOf(r.Publishes(), "m"); !sameInts(got, []int{1, 3}) {
		t.Fatalf("versions after reopen = %v, want [1 3]", got)
	}
}

func TestFailpointTornBricksAppends(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	s := openT(t, Options{Dir: dir, Failpoints: fp})
	mustAppend(t, s, pub("m", 1, 1))
	fp.TearWrite(1)
	if err := s.AppendPublish(pub("m", 2, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed torn write returned %v", err)
	}
	// The tail is damaged; appending past it would write unreachable frames.
	if err := s.AppendPublish(pub("m", 3, 3)); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after torn write returned %v, want ErrBroken", err)
	}
	s.Close()
	// Restart recovers: torn tail truncated, v1 intact, appends work again.
	r := openT(t, Options{Dir: dir})
	if got := versionsOf(r.Publishes(), "m"); !sameInts(got, []int{1}) {
		t.Fatalf("versions after torn-write restart = %v, want [1]", got)
	}
	if r.Stats().TruncatedBytes == 0 {
		t.Fatal("expected torn bytes truncated at boot")
	}
	mustAppend(t, r, pub("m", 2, 2))
}

func TestFailpointCorruptCRCIsLatent(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	s := openT(t, Options{Dir: dir, Failpoints: fp})
	mustAppend(t, s, pub("m", 1, 1))
	fp.CorruptCRC(1)
	// The damage is silent: the append reports success.
	mustAppend(t, s, pub("m", 2, 2))
	s.Close()
	r := openT(t, Options{Dir: dir})
	if got := versionsOf(r.Publishes(), "m"); !sameInts(got, []int{1}) {
		t.Fatalf("versions after latent corruption = %v, want [1]", got)
	}
}

func TestDiskFullDegradesAndRecovers(t *testing.T) {
	fp := &Failpoints{}
	s := openT(t, Options{Dir: t.TempDir(), Failpoints: fp})
	mustAppend(t, s, pub("m", 1, 1))
	fp.SetDiskFull(true)
	for v := 2; v <= 4; v++ {
		if err := s.AppendPublish(pub("m", v, byte(v))); !errors.Is(err, ErrInjected) {
			t.Fatalf("append with disk full returned %v", err)
		}
	}
	fp.SetDiskFull(false)
	// The disk came back; appends resume without a restart.
	mustAppend(t, s, pub("m", 5, 5))
	if got := versionsOf(s.Publishes(), "m"); !sameInts(got, []int{1, 5}) {
		t.Fatalf("versions = %v, want [1 5]", got)
	}
	if st := s.Stats(); st.AppendErrors != 3 {
		t.Fatalf("AppendErrors = %d, want 3", st.AppendErrors)
	}
}

func TestClosedStoreRefusesOperations(t *testing.T) {
	s := openT(t, Options{Dir: t.TempDir()})
	mustAppend(t, s, pub("m", 1, 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.AppendPublish(pub("m", 2, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store returned %v", err)
	}
	if _, err := s.Backup(&bytes.Buffer{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("backup on closed store returned %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}
