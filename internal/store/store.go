package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mobiledl/internal/metrics"
	"mobiledl/internal/serve"
	"mobiledl/internal/trace"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrBroken is returned once the store has witnessed a torn write (or failed
// to undo a bad one): the on-disk tail is no longer trustworthy, so further
// appends are refused until a restart replays and truncates it. Serving is
// unaffected — the registry degrades to RAM-only publishes.
var ErrBroken = errors.New("store: persistence broken by a torn write; restart recovers")

// File names inside the data dir. The WAL carries appends since the last
// compaction; the snapshot is the compacted prefix, replaced atomically
// (tmp + rename) so a crash mid-compaction leaves the previous snapshot
// intact.
const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.bin"
	snapshotTmp  = "snapshot.tmp"
)

// Options configures a Store. The zero value of every field takes the
// documented default.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// NoSync skips the fsync after each append — only for tests that don't
	// measure durability; a production store must sync.
	NoSync bool
	// CompactEvery triggers a snapshot compaction after this many appends
	// (default 64; negative disables compaction).
	CompactEvery int
	// RetainVersions bounds the publish history kept per model across
	// compactions (default 4, matching the registry's pinnable history).
	RetainVersions int
	// MaxRecordBytes caps one record's payload at replay (default 64 MiB),
	// so a garbage length header can't provoke a giant allocation.
	MaxRecordBytes int
	// Failpoints, when set, injects faults at the I/O seam (tests only).
	Failpoints *Failpoints
	// Tracer, when set, samples appends and the boot recovery into traces
	// (store.append / store.recover spans). Nil disables.
	Tracer *trace.Tracer
	// Logger receives structured store logs; nil means slog.Default().
	Logger *slog.Logger
}

func (o *Options) fill() {
	if o.CompactEvery == 0 {
		o.CompactEvery = 64
	}
	if o.RetainVersions <= 0 {
		o.RetainVersions = 4
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = defaultMaxRecordBytes
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
}

// checkpointEntry is the latest checkpoint retained under one key.
type checkpointEntry struct {
	payload []byte
	at      time.Time
}

// Stats is a point-in-time snapshot of the store's counters (the /metrics
// payload and test assertions).
type Stats struct {
	Appends             uint64
	AppendErrors        uint64
	Compactions         uint64
	CompactionErrors    uint64
	WALBytes            int64
	RetainedPublishes   int
	RetainedCheckpoints int
	// RecoveredRecords and TruncatedBytes describe the boot replay: how many
	// intact records were recovered and how many damaged tail bytes were cut.
	RecoveredRecords int
	TruncatedBytes   int64
	Broken           bool
}

// Store is the crash-safe persistence layer behind the serving registry and
// the fedserve coordinator: an append-only, CRC-framed, fsync'd write-ahead
// log plus periodically compacted snapshots in one data directory. It
// implements serve.Store (publish records, online backup) and the fedserve
// CheckpointStore seam (latest-wins round checkpoints). A record is durable
// exactly when its append returned nil: failed appends are undone (the WAL
// truncated back) so replay never resurrects a half-written record, and torn
// writes that cannot be undone brick appends (ErrBroken) rather than let
// later frames land beyond damage that replay will stop at.
type Store struct {
	opts   Options
	dir    string
	logger *slog.Logger

	mu           sync.Mutex
	wal          *os.File
	walSize      int64
	sinceCompact int
	broken       bool
	closed       bool

	pubs map[string][]serve.PublishRecord // per model, ascending version
	cks  map[string]checkpointEntry

	stats Stats
}

var _ serve.Store = (*Store)(nil)

// Open opens (or creates) the store in dir, replaying the snapshot and WAL
// into memory. Replay is damage-tolerant by construction: it walks intact
// frames and truncates the WAL at the first torn or corrupted one, so a
// crash mid-append costs at most the record being written — never the log.
func Open(opts Options) (*Store, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		opts:   opts,
		dir:    opts.Dir,
		logger: opts.Logger,
		pubs:   make(map[string][]serve.PublishRecord),
		cks:    make(map[string]checkpointEntry),
	}

	var sp trace.Span
	if opts.Tracer.Sample() {
		sp = opts.Tracer.Start("store.recover", trace.Str("dir", opts.Dir))
	}

	// Snapshot first: the compacted prefix of history. It was written via
	// tmp+rename so it is normally whole; a damaged one (torn by a dying
	// disk, not by our crash protocol) still yields its intact prefix.
	snapRecs := 0
	if b, err := os.ReadFile(filepath.Join(opts.Dir, snapshotFile)); err == nil {
		ss := sp.Child("store.snapshot")
		res := replay(b, opts.MaxRecordBytes)
		if res.torn {
			s.logger.Warn("store snapshot damaged; using intact prefix",
				"dir", opts.Dir, "records", len(res.recs), "why", res.why)
		}
		for _, rec := range res.recs {
			s.applyLocked(rec)
		}
		snapRecs = len(res.recs)
		ss.End(trace.Num("records", float64(snapRecs)))
	} else if !errors.Is(err, fs.ErrNotExist) {
		sp.EndErr(err)
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}

	// Then the WAL: appends since the last compaction. The torn tail, if
	// any, is truncated away so the append offset restarts on intact bytes.
	walPath := filepath.Join(opts.Dir, walFile)
	b, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		sp.EndErr(err)
		return nil, fmt.Errorf("store: read wal: %w", err)
	}
	ws := sp.Child("store.wal")
	res := replay(b, opts.MaxRecordBytes)
	for _, rec := range res.recs {
		s.applyLocked(rec)
	}
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		ws.EndErr(err)
		sp.EndErr(err)
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	if cut := int64(len(b)) - res.valid; cut > 0 {
		if err := f.Truncate(res.valid); err != nil {
			f.Close()
			ws.EndErr(err)
			sp.EndErr(err)
			return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
		if !opts.NoSync {
			if err := f.Sync(); err != nil {
				f.Close()
				ws.EndErr(err)
				sp.EndErr(err)
				return nil, fmt.Errorf("store: sync truncated wal: %w", err)
			}
		}
		s.stats.TruncatedBytes = cut
		s.logger.Warn("store truncated torn WAL tail",
			"dir", opts.Dir, "bytes", cut, "why", res.why)
	}
	ws.End(trace.Num("records", float64(len(res.recs))),
		trace.Num("truncated_bytes", float64(s.stats.TruncatedBytes)))

	s.wal = f
	s.walSize = res.valid
	s.stats.WALBytes = res.valid
	s.stats.RecoveredRecords = snapRecs + len(res.recs)
	sp.End(trace.Num("records", float64(s.stats.RecoveredRecords)),
		trace.Num("models", float64(len(s.pubs))),
		trace.Num("checkpoints", float64(len(s.cks))))
	return s, nil
}

// AppendPublish implements serve.Store: one durable frame per published
// version, fsync'd before returning.
func (s *Store) AppendPublish(rec serve.PublishRecord) error {
	if rec.Model == "" || rec.Version <= 0 {
		return fmt.Errorf("store: publish record needs a model and positive version (got %q v%d)", rec.Model, rec.Version)
	}
	if rec.At.IsZero() {
		rec.At = time.Now()
	}
	return s.append(record{
		Class: classPublish, Key: rec.Model, Version: rec.Version,
		Kind: rec.Kind, Meta: rec.Meta, Payload: rec.Weights, At: rec.At,
	})
}

// Publishes implements serve.Store: the retained publish records ordered by
// model then ascending version — the registry's boot replay stream.
func (s *Store) Publishes() []serve.PublishRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	models := make([]string, 0, len(s.pubs))
	for m := range s.pubs {
		models = append(models, m)
	}
	sort.Strings(models)
	var out []serve.PublishRecord
	for _, m := range models {
		out = append(out, s.pubs[m]...)
	}
	return out
}

// SaveCheckpoint durably records latest-wins state under a key — the
// fedserve coordinator's between-rounds checkpoint seam.
func (s *Store) SaveCheckpoint(key string, payload []byte) error {
	if key == "" {
		return errors.New("store: checkpoint needs a key")
	}
	return s.append(record{Class: classCheckpoint, Key: key, Payload: payload, At: time.Now()})
}

// LoadCheckpoint returns the latest checkpoint under key, and whether one
// exists.
func (s *Store) LoadCheckpoint(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	ck, ok := s.cks[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), ck.payload...), true, nil
}

// append frames, writes, syncs, and applies one record. Durability contract:
// a nil return means the record survives a crash; any error means it does
// not (the write was undone, or never happened).
func (s *Store) append(rec record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	fr := frame(payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.broken:
		s.stats.AppendErrors++
		return ErrBroken
	}
	var sp trace.Span
	if s.opts.Tracer.Sample() {
		sp = s.opts.Tracer.Start("store.append",
			trace.Str("key", rec.Key), trace.Num("bytes", float64(len(fr))))
	}
	err = s.writeDurable(fr)
	sp.EndErr(err)
	if err != nil {
		s.stats.AppendErrors++
		return err
	}
	s.applyLocked(rec)
	s.stats.Appends++
	s.sinceCompact++
	s.maybeCompactLocked()
	return nil
}

// writeDurable lands one frame at the WAL tail: consult failpoints, write,
// sync, advance the offset. A failed write or sync is undone by truncating
// back to the pre-append offset, so the on-disk log only ever ends at a
// record boundary; if even the undo fails the store bricks (ErrBroken on
// every later append) rather than write past damage replay would cut at.
func (s *Store) writeDurable(fr []byte) error {
	off := s.walSize
	switch s.opts.Failpoints.onWrite() {
	case faultFull:
		return errInjectedFull
	case faultWrite:
		return errInjectedWrite
	case faultTorn:
		// A crash mid-write: a prefix lands on disk and the process (from
		// the store's point of view) is gone. No undo runs — exactly the
		// state boot recovery must truncate.
		_, _ = s.wal.WriteAt(fr[:len(fr)/2], off)
		s.broken = true
		return errInjectedTorn
	case faultCorrupt:
		cf := append([]byte(nil), fr...)
		corruptChecksum(cf)
		fr = cf
	}
	if _, err := s.wal.WriteAt(fr, off); err != nil {
		s.undoLocked(off)
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := s.syncWAL(); err != nil {
		s.undoLocked(off)
		return fmt.Errorf("store: wal sync: %w", err)
	}
	s.walSize = off + int64(len(fr))
	s.stats.WALBytes = s.walSize
	return nil
}

func (s *Store) syncWAL() error {
	if s.opts.Failpoints.onFsync() {
		return errInjectedFsync
	}
	if s.opts.NoSync {
		return nil
	}
	return s.wal.Sync()
}

func (s *Store) undoLocked(off int64) {
	if err := s.wal.Truncate(off); err != nil {
		s.broken = true
		s.stats.Broken = true
		s.logger.Error("store cannot undo a failed append; refusing further writes until restart",
			"dir", s.dir, "err", err)
	}
}

// applyLocked folds one replayed or appended record into the retained state.
// Replay is idempotent: a publish re-applies by (model, version) and a
// checkpoint is latest-wins, so records present in both the snapshot and the
// WAL (a crash between rename and WAL truncation during compaction) are
// harmless.
func (s *Store) applyLocked(rec record) {
	switch rec.Class {
	case classPublish:
		pr := serve.PublishRecord{
			Model: rec.Key, Version: rec.Version, Kind: rec.Kind,
			Meta: rec.Meta, Weights: rec.Payload, At: rec.At,
		}
		list := s.pubs[rec.Key]
		i := sort.Search(len(list), func(i int) bool { return list[i].Version >= pr.Version })
		switch {
		case i < len(list) && list[i].Version == pr.Version:
			list[i] = pr
		default:
			list = append(list, serve.PublishRecord{})
			copy(list[i+1:], list[i:])
			list[i] = pr
		}
		if n := len(list) - s.opts.RetainVersions; n > 0 {
			list = append(list[:0:0], list[n:]...)
		}
		s.pubs[rec.Key] = list
	case classCheckpoint:
		s.cks[rec.Key] = checkpointEntry{payload: rec.Payload, at: rec.At}
	default:
		// Unknown class from a future version: retain nothing, lose nothing.
		s.logger.Warn("store skipping record of unknown class", "class", rec.Class, "key", rec.Key)
	}
}

// retainedLocked flattens the live state back into records, deterministic
// order (publishes by model then version, checkpoints by key) — the payload
// of both compaction and Backup.
func (s *Store) retainedLocked() []record {
	models := make([]string, 0, len(s.pubs))
	for m := range s.pubs {
		models = append(models, m)
	}
	sort.Strings(models)
	keys := make([]string, 0, len(s.cks))
	for k := range s.cks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var recs []record
	for _, m := range models {
		for _, pr := range s.pubs[m] {
			recs = append(recs, record{
				Class: classPublish, Key: pr.Model, Version: pr.Version,
				Kind: pr.Kind, Meta: pr.Meta, Payload: pr.Weights, At: pr.At,
			})
		}
	}
	for _, k := range keys {
		ck := s.cks[k]
		recs = append(recs, record{Class: classCheckpoint, Key: k, Payload: ck.payload, At: ck.at})
	}
	return recs
}

// maybeCompactLocked runs compaction on the append cadence. Compaction
// failure is logged and counted, never propagated: the append that triggered
// it is already durable, and the WAL simply keeps growing until a compaction
// succeeds.
func (s *Store) maybeCompactLocked() {
	if s.opts.CompactEvery <= 0 || s.sinceCompact < s.opts.CompactEvery {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.stats.CompactionErrors++
		s.logger.Warn("store compaction failed; WAL grows until one succeeds", "err", err)
	}
}

// Compact forces a snapshot compaction: the retained state is written to a
// fresh snapshot (tmp + rename + dir sync) and the WAL resets to empty. A
// crash at any point leaves either the old snapshot + full WAL or the new
// snapshot (+ a WAL whose records double-apply harmlessly).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := filepath.Join(s.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	for _, rec := range s.retainedLocked() {
		payload, err := encodeRecord(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(frame(payload)); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compact write: %w", err)
		}
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compact sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	if !s.opts.NoSync {
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("store: compact dir sync: %w", err)
		}
	}
	// The WAL's records are all inside the new snapshot now; reset it. Order
	// matters: rename first, truncate second — a crash in between re-applies
	// the WAL over the snapshot, which applyLocked absorbs.
	if err := s.wal.Truncate(0); err != nil {
		s.broken = true
		s.stats.Broken = true
		return fmt.Errorf("store: compact wal reset: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: compact wal sync: %w", err)
		}
	}
	s.walSize = 0
	s.stats.WALBytes = 0
	s.sinceCompact = 0
	s.stats.Compactions++
	return nil
}

// Backup implements serve.Store: it streams the retained state as a valid
// snapshot file. Restoring is copying the stream to <data-dir>/snapshot.bin
// in an empty data dir — the next Open boots from it. The record list is
// captured under the lock but encoded and written outside it, so a slow
// client never stalls appends.
func (s *Store) Backup(w io.Writer) (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	recs := s.retainedLocked()
	s.mu.Unlock()
	var total int64
	for _, rec := range recs {
		payload, err := encodeRecord(rec)
		if err != nil {
			return total, err
		}
		n, err := w.Write(frame(payload))
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("store: backup write: %w", err)
		}
	}
	return total, nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Broken = s.broken
	st.RetainedCheckpoints = len(s.cks)
	st.RetainedPublishes = 0
	for _, list := range s.pubs {
		st.RetainedPublishes += len(list)
	}
	return st
}

// WriteMetrics renders the store's counters as Prometheus series — wired
// into /metrics via serve.Server.AddMetricsSource. (The registry-level
// mobiledl_store_errors_total / mobiledl_store_degraded pair is emitted by
// the server itself; these are the store's internal mechanics.)
func (s *Store) WriteMetrics(w *metrics.PromWriter) {
	st := s.Stats()
	w.Counter("mobiledl_store_appends_total", "Records durably appended to the model store.", float64(st.Appends))
	w.Counter("mobiledl_store_append_failures_total", "Appends that failed and were undone (record not durable).", float64(st.AppendErrors))
	w.Counter("mobiledl_store_compactions_total", "Snapshot compactions completed.", float64(st.Compactions))
	w.Counter("mobiledl_store_compaction_errors_total", "Snapshot compactions that failed (WAL kept growing).", float64(st.CompactionErrors))
	w.Counter("mobiledl_store_recovered_records_total", "Records replayed from disk at boot.", float64(st.RecoveredRecords))
	w.Counter("mobiledl_store_truncated_bytes_total", "Damaged tail bytes truncated from the WAL at boot.", float64(st.TruncatedBytes))
	w.Gauge("mobiledl_store_wal_bytes", "Current WAL size in bytes (resets at compaction).", float64(st.WALBytes))
	w.Gauge("mobiledl_store_retained_publishes", "Publish records retained across all models.", float64(st.RetainedPublishes))
	w.Gauge("mobiledl_store_retained_checkpoints", "Checkpoint keys retained.", float64(st.RetainedCheckpoints))
}

// Close syncs and closes the WAL. Idempotent; the store refuses further
// operations afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.opts.NoSync && !s.broken {
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
