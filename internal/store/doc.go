// Package store is the crash-safe persistence layer for the serving stack:
// an append-only, CRC-32-framed, fsync'd write-ahead log plus periodically
// compacted snapshots in one data directory, zero dependencies beyond the
// standard library.
//
// Two record classes share the log. Publishes mirror the serving registry's
// model versions (bounded history per model, ascending replay order) and
// drive boot recovery via serve.Registry.RecoverFrom; checkpoints are
// latest-wins blobs under a key and carry the fedserve coordinator's round
// state across restarts.
//
// The durability contract is "durable iff the append returned nil": failed
// writes and fsyncs are undone by truncating the WAL back to the previous
// record boundary, torn writes that cannot be undone brick further appends
// (ErrBroken) instead of writing frames beyond damage, and boot replay
// truncates the torn tail a real crash leaves. Failpoints injects each of
// those faults deterministically for the kill-recover test suite.
package store
