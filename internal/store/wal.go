package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"time"

	"mobiledl/internal/serve"
)

// Record classes. A publish is one registry model version (bounded history
// retained per model); a checkpoint is latest-wins state under a key (the
// fedserve coordinator's round state).
const (
	classPublish    uint8 = 1
	classCheckpoint uint8 = 2
)

// record is the WAL's logical unit, gob-encoded into one frame. One struct
// covers both classes so the framing, replay, and compaction paths never
// branch on record shape.
type record struct {
	Class   uint8
	Key     string // model name (publish) or checkpoint key
	Version int
	Kind    string
	Meta    *serve.VersionMeta
	Payload []byte // weights blob (publish) or checkpoint payload
	At      time.Time
}

// frameHeader is the fixed prefix of every frame: payload length (uint32 LE)
// then CRC-32 (IEEE) of the payload. A frame is valid iff the length fits
// the remaining bytes and the checksum matches — anything else is a torn or
// corrupted tail and replay truncates there.
const frameHeader = 8

// defaultMaxRecordBytes rejects absurd lengths during replay so a garbage
// header can't provoke a giant allocation.
const defaultMaxRecordBytes = 64 << 20

func encodeRecord(rec record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRecord(b []byte) (record, error) {
	var rec record
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rec); err != nil {
		return record{}, fmt.Errorf("store: decode record: %w", err)
	}
	return rec, nil
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out
}

// corruptChecksum flips one checksum bit in a framed record — the
// CorruptCRC failpoint's damage, applied before the bytes hit disk.
func corruptChecksum(f []byte) {
	f[4] ^= 0x01
}

// replayResult is what walking a frame stream yields: the decoded records,
// how many bytes of intact frames precede the damage (the truncation
// offset), and why the walk stopped early, if it did.
type replayResult struct {
	recs  []record
	valid int64
	torn  bool
	why   string
}

// replay walks a byte buffer of frames until EOF or the first invalid frame.
// Truncating the file to .valid removes exactly the damaged tail: a frame
// whose length header overruns the buffer (torn write), whose checksum
// mismatches (corruption), or whose payload no longer decodes all stop the
// walk — everything before it is intact and everything after it is
// unreachable anyway (frames are not self-synchronizing by design; an
// append-only log's damage is always a tail).
func replay(b []byte, maxRecord int) replayResult {
	if maxRecord <= 0 {
		maxRecord = defaultMaxRecordBytes
	}
	res := replayResult{}
	off := int64(0)
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return res
		}
		if len(rest) < frameHeader {
			res.torn, res.why = true, "torn frame header"
			return res
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecord {
			res.torn, res.why = true, fmt.Sprintf("frame length %d exceeds cap", n)
			return res
		}
		if len(rest) < frameHeader+n {
			res.torn, res.why = true, "torn frame payload"
			return res
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			res.torn, res.why = true, "checksum mismatch"
			return res
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			res.torn, res.why = true, err.Error()
			return res
		}
		off += int64(frameHeader + n)
		res.recs = append(res.recs, rec)
		res.valid = off
	}
}
