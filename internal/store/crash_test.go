package store

import (
	"math/rand"
	"testing"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/fedserve"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
)

// The kill-recover suite: a registry (and coordinator) runs against a real
// WAL store while Failpoints kills persistence mid-publish, then a fresh
// process image (new store, new registry) boots from the same dir and must
// serve exactly the last durably-published version — no more, no less.

const crashModel = "crashmlp"

func crashFactory() (serve.Backend, error) {
	rng := rand.New(rand.NewSource(7))
	m := nn.NewSequential(nn.NewDense(rng, 4, 6), nn.NewReLU(), nn.NewDense(rng, 6, 3))
	return serve.NewDenseBackend(m)
}

// publishVersion installs version v of the crash model with its first weight
// stamped to v, so recovered weights identify exactly which version survived.
func publishVersion(t *testing.T, reg *serve.Registry, v int) {
	t.Helper()
	b, err := crashFactory()
	if err != nil {
		t.Fatal(err)
	}
	b.Params()[0].Value.Set(0, 0, float64(v))
	if _, err := reg.InstallWithMeta(crashModel, b, &serve.VersionMeta{Source: "test", Round: v}); err != nil {
		t.Fatalf("install v%d: %v", v, err)
	}
}

func newCrashRegistry(t *testing.T, st *Store) *serve.Registry {
	t.Helper()
	reg := serve.NewRegistry()
	if err := reg.Register(crashModel, crashFactory); err != nil {
		t.Fatal(err)
	}
	if st != nil {
		reg.SetStore(st)
	}
	return reg
}

// reopenAndRecover is "the restarted process": a fresh store over the same
// dir, a fresh registry, boot replay.
func reopenAndRecover(t *testing.T, dir string) (*Store, *serve.Registry) {
	t.Helper()
	st := openT(t, Options{Dir: dir})
	reg := newCrashRegistry(t, st)
	if _, _, err := reg.RecoverFrom(st); err != nil {
		t.Fatalf("RecoverFrom: %v", err)
	}
	return st, reg
}

func TestKillRecoverMatrix(t *testing.T) {
	const n = 4
	cases := []struct {
		name string
		arm  func(fp *Failpoints, point int)
		// wantCur is the version the restarted process must serve when the
		// fault fires on publish `point` of n.
		wantCur func(point int) int
		// wantErrs is whether the first process observes append failures
		// (latent CRC corruption it cannot), and wantFinal the store status
		// once all n publishes ran — degraded clears on the next good append,
		// so only the bricked torn-write store ends degraded.
		wantErrs  bool
		wantFinal string
	}{
		// A clean one-shot write failure loses exactly that publish; later
		// publishes land, so the restart serves the newest version.
		{"fail-write", func(fp *Failpoints, p int) { fp.FailWrite(p) },
			func(int) int { return n }, true, serve.StoreOK},
		// A failed fsync is undone (truncate back); same durable set.
		{"fail-fsync", func(fp *Failpoints, p int) { fp.FailFsync(p) },
			func(int) int { return n }, true, serve.StoreOK},
		// A torn write is a crash of the persistence layer: the tail is
		// damaged, subsequent appends refuse (ErrBroken), and the restart
		// serves the last version before the tear.
		{"tear-write", func(fp *Failpoints, p int) { fp.TearWrite(p) },
			func(p int) int { return p - 1 }, true, serve.StoreDegraded},
		// Latent CRC corruption: the first process sees every append succeed,
		// but replay stops at the bad frame — the corrupted publish AND the
		// good frames behind it are unreachable (frames are not
		// self-synchronizing). The restart serves the last version before it.
		{"corrupt-crc", func(fp *Failpoints, p int) { fp.CorruptCRC(p) },
			func(p int) int { return p - 1 }, false, serve.StoreOK},
	}
	for _, tc := range cases {
		for point := 2; point <= 3; point++ {
			t.Run(tc.name, func(t *testing.T) {
				dir := t.TempDir()
				fp := &Failpoints{}
				st := openT(t, Options{Dir: dir, Failpoints: fp})
				reg := newCrashRegistry(t, st)
				tc.arm(fp, point)
				for v := 1; v <= n; v++ {
					publishVersion(t, reg, v)
				}
				if fp.Fired() == 0 {
					t.Fatal("failpoint never fired")
				}
				// RAM serving never regresses, whatever the disk does.
				cur, err := reg.Get(crashModel)
				if err != nil || cur.Version != n {
					t.Fatalf("live process serves v%d (err %v), want v%d", cur.Version, err, n)
				}
				if got := reg.StoreErrors() > 0; got != tc.wantErrs {
					t.Fatalf("StoreErrors observed=%v (count %d), want %v", got, reg.StoreErrors(), tc.wantErrs)
				}
				if got := reg.StoreStatus(); got != tc.wantFinal {
					t.Fatalf("StoreStatus = %q after all publishes, want %q", got, tc.wantFinal)
				}
				st.Close()

				_, reg2 := reopenAndRecover(t, dir)
				want := tc.wantCur(point)
				cur2, err := reg2.Get(crashModel)
				if err != nil {
					t.Fatalf("restart serves nothing: %v", err)
				}
				if cur2.Version != want {
					t.Fatalf("restart serves v%d, want v%d (fault %s at publish %d)",
						cur2.Version, want, tc.name, point)
				}
				// The weights are the ones published under that version.
				if got := cur2.Backend.Params()[0].Value.At(0, 0); got != float64(want) {
					t.Fatalf("recovered v%d carries weight stamp %v, want %v", cur2.Version, got, want)
				}
				if cur2.Meta == nil || cur2.Meta.Round != want {
					t.Fatalf("recovered v%d lost provenance: %+v", cur2.Version, cur2.Meta)
				}
			})
		}
	}
}

// TestKillRecoverSkipsLostVersionInHistory pins down the clean-failure
// shape: the lost version is a hole in the recovered history, not a shifted
// numbering.
func TestKillRecoverSkipsLostVersionInHistory(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	st := openT(t, Options{Dir: dir, Failpoints: fp})
	reg := newCrashRegistry(t, st)
	fp.FailWrite(2)
	for v := 1; v <= 4; v++ {
		publishVersion(t, reg, v)
	}
	st.Close()

	_, reg2 := reopenAndRecover(t, dir)
	for _, v := range []int{1, 3, 4} {
		if _, err := reg2.GetVersion(crashModel, v); err != nil {
			t.Fatalf("durable v%d missing after restart: %v", v, err)
		}
	}
	if _, err := reg2.GetVersion(crashModel, 2); err == nil {
		t.Fatal("v2 was never durable but recovered anyway")
	}
}

// TestRegistryDegradesAndRecoversWithRealStore drives the runtime
// graceful-degradation drill end to end on the WAL store: the disk fills,
// publishes keep succeeding in RAM with the degraded flag up, the disk
// recovers, and the flag clears on the next good append — no restart.
func TestRegistryDegradesAndRecoversWithRealStore(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	st := openT(t, Options{Dir: dir, Failpoints: fp})
	reg := newCrashRegistry(t, st)

	publishVersion(t, reg, 1)
	if got := reg.StoreStatus(); got != serve.StoreOK {
		t.Fatalf("StoreStatus = %q, want ok", got)
	}
	fp.SetDiskFull(true)
	publishVersion(t, reg, 2)
	publishVersion(t, reg, 3)
	if got := reg.StoreStatus(); got != serve.StoreDegraded {
		t.Fatalf("StoreStatus = %q with disk full, want degraded", got)
	}
	if reg.StoreErrors() != 2 {
		t.Fatalf("StoreErrors = %d, want 2", reg.StoreErrors())
	}
	if cur, err := reg.Get(crashModel); err != nil || cur.Version != 3 {
		t.Fatalf("degraded registry serves v%d (err %v), want v3", cur.Version, err)
	}
	fp.SetDiskFull(false)
	publishVersion(t, reg, 4)
	if got := reg.StoreStatus(); got != serve.StoreOK {
		t.Fatalf("StoreStatus = %q after disk recovered, want ok", got)
	}
	st.Close()

	_, reg2 := reopenAndRecover(t, dir)
	cur, err := reg2.Get(crashModel)
	if err != nil || cur.Version != 4 {
		t.Fatalf("restart serves v%d (err %v), want v4", cur.Version, err)
	}
	// v2 and v3 were published into the outage; only v1 and v4 are durable.
	if _, err := reg2.GetVersion(crashModel, 2); err == nil {
		t.Fatal("v2 recovered despite the outage")
	}
}

// TestCoordinatorKillRecoverWithWALStore runs the federated coordinator
// against the real store, restarts everything from the data dir, and
// asserts the resumed run continues the round numbering (never round 0)
// with the recovered model still serving. Under -race this doubles as the
// store/registry/coordinator concurrency check.
func TestCoordinatorKillRecoverWithWALStore(t *testing.T) {
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: 400, Classes: 3, Dim: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.ShardIID(rand.New(rand.NewSource(12)), trX, trY, 4)
	if err != nil {
		t.Fatal(err)
	}
	factory := federated.ModelFactory(func() (*nn.Sequential, error) {
		rng := rand.New(rand.NewSource(13))
		return nn.NewSequential(nn.NewDense(rng, 6, 8), nn.NewReLU(), nn.NewDense(rng, 8, 3)), nil
	})
	cfg := func(reg *serve.Registry, st *Store, rounds int) fedserve.Config {
		return fedserve.Config{
			Factory: factory, Shards: shards, Classes: 3,
			EvalX: teX, EvalY: teY,
			Rounds: rounds, LocalEpochs: 1, LocalBatch: 16, LocalLR: 0.1,
			Seed: 14, Workers: 2,
			Registry: reg, Model: crashModel,
			Checkpoint: st,
		}
	}
	registerFed := func(t *testing.T, st *Store) *serve.Registry {
		reg := serve.NewRegistry()
		err := reg.Register(crashModel, func() (serve.Backend, error) {
			m, err := factory()
			if err != nil {
				return nil, err
			}
			return serve.NewDenseBackend(m)
		})
		if err != nil {
			t.Fatal(err)
		}
		reg.SetStore(st)
		return reg
	}

	dir := t.TempDir()
	st1 := openT(t, Options{Dir: dir})
	reg1 := registerFed(t, st1)
	coord1, err := fedserve.NewCoordinator(cfg(reg1, st1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord1.Start(); err != nil {
		t.Fatal(err)
	}
	coord1.Wait()
	coord1.Stop()
	st1close := st1.Close()
	if st1close != nil {
		t.Fatal(st1close)
	}

	st2 := openT(t, Options{Dir: dir})
	reg2 := registerFed(t, st2)
	if _, _, err := reg2.RecoverFrom(st2); err != nil {
		t.Fatalf("RecoverFrom: %v", err)
	}
	recovered, err := reg2.Get(crashModel)
	if err != nil {
		t.Fatalf("restart serves nothing: %v", err)
	}
	coord2, err := fedserve.NewCoordinator(cfg(reg2, st2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Stop()
	if sr := coord2.Status().StartRound; sr != 3 {
		t.Fatalf("resumed StartRound = %d, want 3 (never 0 when a checkpoint exists)", sr)
	}
	// The recovered version kept serving: construction did not republish.
	if cur, _ := reg2.Get(crashModel); cur.Version != recovered.Version {
		t.Fatalf("construction republished: v%d -> v%d", recovered.Version, cur.Version)
	}
	if err := coord2.Start(); err != nil {
		t.Fatal(err)
	}
	coord2.Wait()
	if r := coord2.Status().Round; r != 5 {
		t.Fatalf("resumed run ended at round %d, want 5", r)
	}
}
