// Package mobile simulates the execution environment of Section III: mobile
// devices with bounded compute, memory and battery, cloud servers, and the
// wireless networks between them. It provides the latency/energy cost model
// used to compare inference on the cloud server (Fig. 2), inference on the
// local device, and split inference (Fig. 3).
//
// The paper has no hardware testbed we can reuse, so the model is
// parameterized with public figures (per-MAC energy on mobile SoCs, radio
// J/byte, WiFi/LTE bandwidth and RTT); see DESIGN.md. The absolute numbers
// are indicative — the experiments depend on the *orderings* (e.g. deep
// models favor offloading on fast networks; offline forces local).
package mobile

import (
	"errors"
	"fmt"

	"mobiledl/internal/nn"
)

// ErrInfeasible is wrapped into plan costs whose placement cannot run at all
// (e.g. cloud inference while offline).
var ErrInfeasible = errors.New("mobile: placement infeasible")

// NetworkKind labels a connectivity state.
type NetworkKind int

// Connectivity states.
const (
	Offline NetworkKind = iota + 1
	WiFi
	LTE
)

func (k NetworkKind) String() string {
	switch k {
	case Offline:
		return "offline"
	case WiFi:
		return "wifi"
	case LTE:
		return "lte"
	default:
		return fmt.Sprintf("network(%d)", int(k))
	}
}

// Network models a wireless link between device and cloud.
type Network struct {
	Kind         NetworkKind
	UplinkMbps   float64
	DownlinkMbps float64
	RTTMillis    float64
	// Radio energy drawn by the device per transferred byte (J/byte).
	EnergyPerByteJ float64
}

// Standard network presets (public LTE/WiFi measurement ballpark figures).
func WiFiNetwork() Network {
	return Network{Kind: WiFi, UplinkMbps: 40, DownlinkMbps: 80, RTTMillis: 10, EnergyPerByteJ: 1e-7}
}

// LTENetwork returns a cellular link: slower, higher RTT, ~6x the radio
// energy per byte of WiFi.
func LTENetwork() Network {
	return Network{Kind: LTE, UplinkMbps: 8, DownlinkMbps: 25, RTTMillis: 50, EnergyPerByteJ: 6e-7}
}

// OfflineNetwork returns a disconnected state.
func OfflineNetwork() Network { return Network{Kind: Offline} }

// Connected reports whether any traffic can flow.
func (n Network) Connected() bool { return n.Kind != Offline }

// TransferMillis returns the one-way latency to move b bytes up or down.
func (n Network) TransferMillis(b int64, up bool) (float64, error) {
	if !n.Connected() {
		return 0, fmt.Errorf("%w: network offline", ErrInfeasible)
	}
	mbps := n.DownlinkMbps
	if up {
		mbps = n.UplinkMbps
	}
	if mbps <= 0 {
		return 0, fmt.Errorf("%w: zero bandwidth", ErrInfeasible)
	}
	seconds := float64(b) * 8 / (mbps * 1e6)
	return seconds*1000 + n.RTTMillis/2, nil
}

// TransferEnergyJ returns the device-side radio energy for b bytes.
func (n Network) TransferEnergyJ(b int64) float64 {
	return float64(b) * n.EnergyPerByteJ
}

// Device models a compute node (phone or cloud server).
type Device struct {
	Name string
	// MACsPerSec is effective multiply-accumulate throughput.
	MACsPerSec float64
	// EnergyPerMACJ is the energy per multiply-accumulate (0 for
	// wall-powered cloud machines, whose energy we do not bill to the
	// device battery).
	EnergyPerMACJ float64
	// MemoryBytes bounds the model size the device can hold.
	MemoryBytes int64
	// BatteryJ is the usable battery budget (0 = unlimited / wall power).
	BatteryJ float64
}

// Device presets. Mobile per-MAC energy follows the "off-chip memory
// dominated" figure the paper cites ([13, 14]): ~10 pJ/MAC effective.
func MidrangePhone() Device {
	return Device{Name: "midrange-phone", MACsPerSec: 2e9, EnergyPerMACJ: 2e-11, MemoryBytes: 512 << 20, BatteryJ: 4e4}
}

// FlagshipPhone returns a faster, more efficient handset.
func FlagshipPhone() Device {
	return Device{Name: "flagship-phone", MACsPerSec: 1e10, EnergyPerMACJ: 1e-11, MemoryBytes: 2 << 30, BatteryJ: 5e4}
}

// CloudServer returns a wall-powered accelerator-class server.
func CloudServer() Device {
	return Device{Name: "cloud-server", MACsPerSec: 5e12, EnergyPerMACJ: 0, MemoryBytes: 256 << 30}
}

// ComputeMillis returns the latency of macs multiply-accumulates.
func (d Device) ComputeMillis(macs float64) float64 {
	if d.MACsPerSec <= 0 {
		return 0
	}
	return macs / d.MACsPerSec * 1000
}

// ComputeEnergyJ returns the battery energy of macs multiply-accumulates.
func (d Device) ComputeEnergyJ(macs float64) float64 { return macs * d.EnergyPerMACJ }

// ModelMACs counts per-sample multiply-accumulates of a Sequential model
// (dense layers only; activations are negligible).
func ModelMACs(model *nn.Sequential) float64 {
	var macs float64
	for _, l := range model.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			macs += float64(d.In()) * float64(d.Out())
		}
	}
	return macs
}

// ModelBytes returns the float64 storage cost of all parameters.
func ModelBytes(model *nn.Sequential) int64 {
	return int64(nn.NumParams(model.Params())) * 8
}
