package mobile

import (
	"fmt"

	"mobiledl/internal/nn"
)

// Placement is an inference execution strategy (Section III).
type Placement int

// Placements compared by the paper: cloud (Fig. 2), local, split (Fig. 3).
const (
	PlaceLocal Placement = iota + 1
	PlaceCloud
	PlaceSplit
)

func (p Placement) String() string {
	switch p {
	case PlaceLocal:
		return "local"
	case PlaceCloud:
		return "cloud"
	case PlaceSplit:
		return "split"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// PlanCost is the estimated cost of running one inference under a placement.
type PlanCost struct {
	Placement Placement
	LatencyMs float64
	// EnergyJ is device-side (battery) energy only.
	EnergyJ   float64
	UpBytes   int64
	DownBytes int64
	Feasible  bool
	// Reason explains infeasibility.
	Reason string
}

// Workload describes one inference request for planning purposes.
type Workload struct {
	// TotalMACs is the full model's per-sample compute.
	TotalMACs float64
	// LocalMACs is the device-side share under the split placement.
	LocalMACs float64
	// ModelBytes is the full model size (for local memory feasibility).
	ModelBytes int64
	// InputBytes is the raw input payload (cloud placement uploads this).
	InputBytes int64
	// PayloadBytes is the transformed-representation payload uploaded under
	// the split placement (smaller than InputBytes per [30]).
	PayloadBytes int64
	// OutputBytes is the result payload downloaded from the cloud.
	OutputBytes int64
}

// WorkloadFor derives a per-sample Workload from a model: full-model MACs
// and bytes, raw float64 input/output payloads, and — when a local (device-
// side) prefix and its representation width are given — the device share of
// the compute and the transformed upload payload for the split placement.
// local may be nil for models served whole (repDim is then ignored).
func WorkloadFor(full *nn.Sequential, local *nn.Sequential, inputDim, classes, repDim int) Workload {
	w := Workload{
		TotalMACs:   ModelMACs(full),
		ModelBytes:  ModelBytes(full),
		InputBytes:  int64(inputDim) * 8,
		OutputBytes: int64(classes) * 8,
	}
	if local != nil {
		w.LocalMACs = ModelMACs(local)
		w.PayloadBytes = int64(repDim) * 8
	}
	return w
}

// EvaluateLocal costs on-device inference: no traffic, full compute and
// model residency on the device.
func EvaluateLocal(device Device, w Workload) PlanCost {
	cost := PlanCost{Placement: PlaceLocal, Feasible: true}
	if device.MemoryBytes > 0 && w.ModelBytes > device.MemoryBytes {
		return PlanCost{Placement: PlaceLocal, Feasible: false,
			Reason: fmt.Sprintf("model %d B exceeds device memory %d B", w.ModelBytes, device.MemoryBytes)}
	}
	cost.LatencyMs = device.ComputeMillis(w.TotalMACs)
	cost.EnergyJ = device.ComputeEnergyJ(w.TotalMACs)
	return cost
}

// EvaluateCloud costs cloud inference (Fig. 2): upload raw input, compute on
// the server, download the result.
func EvaluateCloud(device Device, cloud Device, net Network, w Workload) PlanCost {
	cost := PlanCost{Placement: PlaceCloud}
	upMs, err := net.TransferMillis(w.InputBytes, true)
	if err != nil {
		cost.Reason = err.Error()
		return cost
	}
	downMs, err := net.TransferMillis(w.OutputBytes, false)
	if err != nil {
		cost.Reason = err.Error()
		return cost
	}
	cost.Feasible = true
	cost.LatencyMs = upMs + cloud.ComputeMillis(w.TotalMACs) + downMs
	cost.EnergyJ = net.TransferEnergyJ(w.InputBytes + w.OutputBytes)
	cost.UpBytes = w.InputBytes
	cost.DownBytes = w.OutputBytes
	_ = device
	return cost
}

// EvaluateSplit costs the paper's cloud-based split solution (Fig. 3): the
// shallow local network runs on the device, the transformed (and perturbed)
// representation is uploaded, the deep remainder runs on the cloud.
func EvaluateSplit(device Device, cloud Device, net Network, w Workload) PlanCost {
	cost := PlanCost{Placement: PlaceSplit}
	upMs, err := net.TransferMillis(w.PayloadBytes, true)
	if err != nil {
		cost.Reason = err.Error()
		return cost
	}
	downMs, err := net.TransferMillis(w.OutputBytes, false)
	if err != nil {
		cost.Reason = err.Error()
		return cost
	}
	cloudMACs := w.TotalMACs - w.LocalMACs
	if cloudMACs < 0 {
		cloudMACs = 0
	}
	cost.Feasible = true
	cost.LatencyMs = device.ComputeMillis(w.LocalMACs) + upMs + cloud.ComputeMillis(cloudMACs) + downMs
	cost.EnergyJ = device.ComputeEnergyJ(w.LocalMACs) + net.TransferEnergyJ(w.PayloadBytes+w.OutputBytes)
	cost.UpBytes = w.PayloadBytes
	cost.DownBytes = w.OutputBytes
	return cost
}

// ComparePlacements evaluates all three placements and returns them with
// the lowest-latency feasible plan first.
func ComparePlacements(device Device, cloud Device, net Network, w Workload) []PlanCost {
	plans := []PlanCost{
		EvaluateLocal(device, w),
		EvaluateCloud(device, cloud, net, w),
		EvaluateSplit(device, cloud, net, w),
	}
	// Selection sort by (feasible desc, latency asc); 3 items.
	for i := 0; i < len(plans); i++ {
		best := i
		for j := i + 1; j < len(plans); j++ {
			if better(plans[j], plans[best]) {
				best = j
			}
		}
		plans[i], plans[best] = plans[best], plans[i]
	}
	return plans
}

func better(a, b PlanCost) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.LatencyMs < b.LatencyMs
}
