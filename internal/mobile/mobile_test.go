package mobile

import (
	"math/rand"
	"strings"
	"testing"

	"mobiledl/internal/nn"
)

func testWorkload(totalMACs float64) Workload {
	return Workload{
		TotalMACs:    totalMACs,
		LocalMACs:    totalMACs * 0.05,
		ModelBytes:   50 << 20,
		InputBytes:   600 << 10, // 600 KB image
		PayloadBytes: 64 << 10,  // 64 KB representation
		OutputBytes:  1 << 10,
	}
}

func TestNetworkTransfer(t *testing.T) {
	wifi := WiFiNetwork()
	ms, err := wifi.TransferMillis(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 {
		t.Fatalf("transfer latency %v", ms)
	}
	lte := LTENetwork()
	lteMs, err := lte.TransferMillis(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if lteMs <= ms {
		t.Fatal("LTE upload should be slower than WiFi")
	}
	if lte.TransferEnergyJ(1<<20) <= wifi.TransferEnergyJ(1<<20) {
		t.Fatal("LTE should cost more radio energy than WiFi")
	}
	if _, err := OfflineNetwork().TransferMillis(1, true); err == nil {
		t.Fatal("offline transfer must fail")
	}
}

func TestDeviceCompute(t *testing.T) {
	phone := MidrangePhone()
	cloud := CloudServer()
	macs := 1e9
	if phone.ComputeMillis(macs) <= cloud.ComputeMillis(macs) {
		t.Fatal("phone must be slower than cloud")
	}
	if phone.ComputeEnergyJ(macs) <= 0 {
		t.Fatal("phone compute must cost battery")
	}
	if cloud.ComputeEnergyJ(macs) != 0 {
		t.Fatal("cloud compute must not bill the device battery")
	}
}

func TestModelAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewSequential(nn.NewDense(rng, 10, 20), nn.NewReLU(), nn.NewDense(rng, 20, 5))
	if got := ModelMACs(m); got != 10*20+20*5 {
		t.Fatalf("ModelMACs %v", got)
	}
	// params: 200+20+100+5 = 325 -> 2600 bytes
	if got := ModelBytes(m); got != 325*8 {
		t.Fatalf("ModelBytes %v", got)
	}
}

func TestLocalInfeasibleWhenModelTooBig(t *testing.T) {
	phone := MidrangePhone()
	w := testWorkload(1e9)
	w.ModelBytes = phone.MemoryBytes + 1
	cost := EvaluateLocal(phone, w)
	if cost.Feasible {
		t.Fatal("oversized model must be infeasible locally")
	}
	if !strings.Contains(cost.Reason, "memory") {
		t.Fatalf("reason %q", cost.Reason)
	}
}

func TestCloudInfeasibleOffline(t *testing.T) {
	cost := EvaluateCloud(MidrangePhone(), CloudServer(), OfflineNetwork(), testWorkload(1e9))
	if cost.Feasible {
		t.Fatal("cloud inference offline must be infeasible")
	}
	split := EvaluateSplit(MidrangePhone(), CloudServer(), OfflineNetwork(), testWorkload(1e9))
	if split.Feasible {
		t.Fatal("split inference offline must be infeasible")
	}
}

func TestDeepModelFavorsOffloadOnWiFi(t *testing.T) {
	// A very deep model on a midrange phone over WiFi: cloud/split should
	// beat local on latency — the paper's motivation for Fig. 2.
	phone := MidrangePhone()
	cloud := CloudServer()
	w := testWorkload(5e9) // 5 GMACs, ~2.5 s on the phone
	local := EvaluateLocal(phone, w)
	remote := EvaluateCloud(phone, cloud, WiFiNetwork(), w)
	if !remote.Feasible {
		t.Fatal(remote.Reason)
	}
	if remote.LatencyMs >= local.LatencyMs {
		t.Fatalf("cloud (%v ms) should beat local (%v ms) for deep models on WiFi",
			remote.LatencyMs, local.LatencyMs)
	}
}

func TestTinyModelFavorsLocal(t *testing.T) {
	phone := FlagshipPhone()
	cloud := CloudServer()
	w := testWorkload(1e6) // 1 MMAC: 0.1 ms on the phone
	local := EvaluateLocal(phone, w)
	remote := EvaluateCloud(phone, cloud, LTENetwork(), w)
	if local.LatencyMs >= remote.LatencyMs {
		t.Fatalf("local (%v ms) should beat cloud (%v ms) for tiny models on LTE",
			local.LatencyMs, remote.LatencyMs)
	}
}

func TestSplitReducesUploadVersusCloud(t *testing.T) {
	phone := MidrangePhone()
	cloud := CloudServer()
	w := testWorkload(5e9)
	c := EvaluateCloud(phone, cloud, LTENetwork(), w)
	s := EvaluateSplit(phone, cloud, LTENetwork(), w)
	if !c.Feasible || !s.Feasible {
		t.Fatal("both placements should be feasible on LTE")
	}
	if s.UpBytes >= c.UpBytes {
		t.Fatal("split must upload less than raw-input cloud inference")
	}
	if s.EnergyJ >= c.EnergyJ {
		t.Fatalf("split energy %v should beat cloud energy %v on LTE (smaller payload)",
			s.EnergyJ, c.EnergyJ)
	}
}

func TestComparePlacementsOrdering(t *testing.T) {
	plans := ComparePlacements(MidrangePhone(), CloudServer(), OfflineNetwork(), testWorkload(1e9))
	if len(plans) != 3 {
		t.Fatalf("got %d plans", len(plans))
	}
	if !plans[0].Feasible || plans[0].Placement != PlaceLocal {
		t.Fatalf("offline best plan should be local, got %v (feasible=%v)",
			plans[0].Placement, plans[0].Feasible)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Feasible && !plans[i-1].Feasible {
			t.Fatal("feasible plans must sort before infeasible ones")
		}
	}
}

func TestPlacementStrings(t *testing.T) {
	if PlaceLocal.String() != "local" || PlaceCloud.String() != "cloud" || PlaceSplit.String() != "split" {
		t.Fatal("placement names wrong")
	}
	if WiFi.String() != "wifi" || Offline.String() != "offline" || LTE.String() != "lte" {
		t.Fatal("network names wrong")
	}
}
