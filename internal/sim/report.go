package sim

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RunMeta stamps a benchmark report.
type RunMeta struct {
	Date    string
	Full    bool
	Workers int
	Host    string
}

// WriteReport renders scenario results as the SIMBENCH markdown document:
// one summary table, then per-scenario accuracy trajectories and SLO
// verdicts — the artifact full-scale runs commit.
func WriteReport(w io.Writer, meta RunMeta, results []*Result) {
	mode := "short-mode"
	if meta.Full {
		mode = "full-scale"
	}
	fmt.Fprintf(w, "# Scenario simulation benchmark — %s\n\n", meta.Date)
	fmt.Fprintf(w, "Mode: %s. Coordinator workers: %d.", mode, meta.Workers)
	if meta.Host != "" {
		fmt.Fprintf(w, " Host: %s.", meta.Host)
	}
	fmt.Fprint(w, "\n\n")

	fmt.Fprintln(w, "| scenario | clients | rounds | rounds/sec | final acc | best acc | merged | failed | stale | peak RSS | SLO |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|")
	for _, r := range results {
		fmt.Fprintf(w, "| %s | %d | %d | %.2f | %.4f | %.4f | %d | %d | %d | %s | %s |\n",
			r.Scenario.Name, r.Scenario.Clients, r.Rounds, r.RoundsPerSec,
			r.FinalAccuracy, r.BestAccuracy,
			r.MergedUpdates, r.FailedClients, r.DroppedStale,
			fmtBytes(r.PeakRSSBytes), sloVerdict(r))
	}

	for _, r := range results {
		fmt.Fprintf(w, "\n## %s\n\n", r.Scenario.Name)
		fmt.Fprintf(w, "- population: %d clients over %d archetype shards, cohort %d, seed %d\n",
			r.Scenario.Clients, r.Scenario.Archetypes, r.Scenario.Cohort, r.Scenario.Seed)
		if f := faultLine(r.Scenario); f != "" {
			fmt.Fprintf(w, "- faults: %s\n", f)
		}
		fmt.Fprintf(w, "- training: %d rounds in %s (%.2f rounds/sec)\n",
			r.Rounds, r.TrainDuration.Round(time.Millisecond), r.RoundsPerSec)
		fmt.Fprintf(w, "- accuracy trajectory: %s\n", trajectory(r.Accuracies))
		if r.Scenario.Scored {
			fmt.Fprintf(w, "- selector reputation: honest mean %.3f, adversary mean %.3f\n",
				r.HonestScore, r.AdversaryScore)
		}
		for _, rep := range r.Replay {
			if rep == nil {
				continue
			}
			fmt.Fprintf(w, "- replay: %d sent (%d skipped client-side), statuses %v\n",
				rep.Sent, rep.Skipped, rep.Statuses)
			fmt.Fprintf(w, "- SLO: p99 %.1fms, shed rate %.4f, error rate %.4f — %s\n",
				rep.P99Ms, rep.ShedRate, rep.ErrorRate, passFail(rep.SLOPass))
			for _, v := range rep.Violations {
				fmt.Fprintf(w, "  - violation: %s\n", v)
			}
		}
	}
}

func faultLine(sc Scenario) string {
	var parts []string
	if sc.StragglerFrac > 0 {
		parts = append(parts, fmt.Sprintf("%.0f%% stragglers", 100*sc.StragglerFrac))
	}
	if sc.DropoutRate > 0 {
		parts = append(parts, fmt.Sprintf("%.0f%% dropout/round", 100*sc.DropoutRate))
	}
	if sc.PoisonFrac > 0 {
		parts = append(parts, fmt.Sprintf("%.0f%% poisoned (scale %.0f)", 100*sc.PoisonFrac, sc.PoisonScale))
	}
	if sc.StaleFrac > 0 {
		parts = append(parts, fmt.Sprintf("%.0f%% stale-base", 100*sc.StaleFrac))
	}
	if sc.Diurnal {
		parts = append(parts, fmt.Sprintf("diurnal participation (%.0f%% skewed)", 100*sc.SkewFrac))
	}
	return strings.Join(parts, ", ")
}

func trajectory(accs []float64) string {
	if len(accs) == 0 {
		return "(no evaluated rounds)"
	}
	parts := make([]string, len(accs))
	for i, a := range accs {
		parts[i] = fmt.Sprintf("%.3f", a)
	}
	return strings.Join(parts, " → ")
}

func sloVerdict(r *Result) string {
	if len(r.Replay) == 0 {
		return "n/a"
	}
	for _, rep := range r.Replay {
		if rep == nil || !rep.SLOPass {
			return "FAIL"
		}
	}
	return "pass"
}

func passFail(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

func fmtBytes(b int64) string {
	switch {
	case b <= 0:
		return "n/a"
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d KiB", b>>10)
	}
}
