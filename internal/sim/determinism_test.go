package sim

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// TestDeterminismAcrossWorkerCounts is the determinism regression: the same
// seed and scenario must produce bit-identical round outcomes — per-round
// stats AND the final published model bytes — no matter how many workers
// train clients in parallel, even with every fault class active (dropout,
// poisoning, stale bases, stragglers, scored selection). That is the
// property that makes simulated incidents replayable.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	sc := Scenario{
		Name: "determinism", Seed: 7,
		Clients: 3000, Archetypes: 16,
		Rounds: 5, Cohort: 32,
		StragglerFrac: 0.3, DropoutRate: 0.2, PoisonFrac: 0.1, StaleFrac: 0.2,
		Scored: true,
	}
	run := func(workers int) *Result {
		t.Helper()
		r, err := Run(context.Background(), sc, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	ref := run(1)
	if len(ref.ModelCheckpoint) == 0 {
		t.Fatal("reference run produced no model checkpoint")
	}
	for _, workers := range []int{4, 7} {
		got := run(workers)
		// History carries every per-round stat (loss, accuracy, bytes,
		// participants); compare via formatting so NaN == NaN.
		if want, have := fmt.Sprintf("%v", ref.History), fmt.Sprintf("%v", got.History); want != have {
			t.Fatalf("workers=%d diverged in round history:\nworkers=1: %s\nworkers=%d: %s",
				workers, want, workers, have)
		}
		if !bytes.Equal(ref.ModelCheckpoint, got.ModelCheckpoint) {
			t.Fatalf("workers=%d produced different published model bytes", workers)
		}
		if ref.FailedClients != got.FailedClients || ref.MergedUpdates != got.MergedUpdates {
			t.Fatalf("workers=%d accounting diverged: failed %d vs %d, merged %d vs %d",
				workers, ref.FailedClients, got.FailedClients, ref.MergedUpdates, got.MergedUpdates)
		}
	}
}

// TestDeterminismSameSeedTwice: re-running the identical configuration
// reproduces itself exactly (no hidden global state between runs).
func TestDeterminismSameSeedTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the worker-count sweep")
	}
	sc := Dropout30()
	sc.Clients = 2000
	sc.Rounds = 4
	a, err := Run(context.Background(), sc, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sc, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.ModelCheckpoint, b.ModelCheckpoint) {
		t.Fatal("identical runs produced different model bytes")
	}
}
