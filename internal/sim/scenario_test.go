package sim

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
)

// simClients scales the virtual population to the test mode: the full
// simcheck gate runs 100k clients, the default `go test` a fifth of that,
// and -short a quick smoke. Full scale (>= 500k) lives in cmd/fedsim -full.
func simClients(t *testing.T) int {
	t.Helper()
	if os.Getenv("MOBILEDL_SIMCHECK") == "1" {
		return 100_000
	}
	if testing.Short() {
		return 5_000
	}
	return 20_000
}

func runScenario(t *testing.T, sc Scenario) *Result {
	t.Helper()
	sc.Clients = simClients(t)
	r, err := Run(context.Background(), sc, Options{Workers: 4})
	if err != nil {
		t.Fatalf("scenario %s: %v", sc.Name, err)
	}
	if r.Rounds == 0 {
		t.Fatalf("scenario %s completed no rounds", sc.Name)
	}
	return r
}

// TestScenarioMatrix is the table-driven acceptance suite: every named
// training scenario must complete its rounds and converge, and each fault
// mix must leave its fingerprint in the run's accounting. (diurnal-burst,
// the replay scenario, is asserted in traffic_test.go.)
func TestScenarioMatrix(t *testing.T) {
	baseline := runScenario(t, Baseline())
	t.Run("baseline", func(t *testing.T) {
		if baseline.BestAccuracy < 0.8 {
			t.Fatalf("baseline best accuracy %.4f, want >= 0.8 (trajectory %v)",
				baseline.BestAccuracy, baseline.Accuracies)
		}
		if baseline.FailedClients != 0 {
			t.Fatalf("clean baseline counted %d failed clients", baseline.FailedClients)
		}
	})

	cases := []struct {
		sc    Scenario
		check func(t *testing.T, r *Result)
	}{
		{Dropout30(), func(t *testing.T, r *Result) {
			dispatched := r.Scenario.Rounds * r.Scenario.Cohort
			frac := float64(r.FailedClients) / float64(dispatched)
			if frac < 0.15 || frac > 0.45 {
				t.Fatalf("dropout fraction %.3f (%d/%d), want ~0.30", frac, r.FailedClients, dispatched)
			}
			if r.BestAccuracy < 0.75 {
				t.Fatalf("30%% dropout broke convergence: best %.4f (trajectory %v)",
					r.BestAccuracy, r.Accuracies)
			}
		}},
		{Poisoned10(), func(t *testing.T, r *Result) {
			// The scored selector must demonstrably down-weight adversaries...
			if r.AdversaryScore >= r.HonestScore-0.1 {
				t.Fatalf("selector did not separate adversaries: honest %.3f vs adversary %.3f",
					r.HonestScore, r.AdversaryScore)
			}
			// ...and keep the poisoned run within 5%% of the clean baseline.
			if r.BestAccuracy < baseline.BestAccuracy-0.05 {
				t.Fatalf("poisoned best %.4f more than 5%% below baseline %.4f (trajectory %v)",
					r.BestAccuracy, baseline.BestAccuracy, r.Accuracies)
			}
		}},
		{ClockSkew(), func(t *testing.T, r *Result) {
			if r.BestAccuracy < 0.75 {
				t.Fatalf("clock-skewed population failed to converge: best %.4f (trajectory %v)",
					r.BestAccuracy, r.Accuracies)
			}
			if r.MergedUpdates == 0 {
				t.Fatal("no updates merged under diurnal eligibility")
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.sc.Name, func(t *testing.T) {
			tc.check(t, runScenario(t, tc.sc))
		})
	}
}

// TestPopulationProfiles pins the hashed-profile mechanics: fractions land
// near their targets over a large population, and profiles are pure
// functions of (seed, client).
func TestPopulationProfiles(t *testing.T) {
	sc := Scenario{Name: "profiles", Seed: 11, Clients: 50_000,
		StragglerFrac: 0.3, PoisonFrac: 0.1, StaleFrac: 0.2, SkewFrac: 0.5, Diurnal: true}
	pop, err := BuildPopulation(sc)
	if err != nil {
		t.Fatal(err)
	}
	var stragglers, adversaries, stale, skewed int
	for k := 0; k < sc.Clients; k++ {
		pr := pop.Profile(k)
		if pr != pop.Profile(k) {
			t.Fatalf("profile of client %d not deterministic", k)
		}
		if pr.Straggler {
			stragglers++
		}
		if pr.Adversarial {
			adversaries++
		}
		if pr.Stale {
			stale++
		}
		if pr.SkewHours > 0 {
			skewed++
		}
	}
	checkFrac := func(name string, n int, want float64) {
		got := float64(n) / float64(sc.Clients)
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s fraction %.3f, want %.2f +/- 0.02", name, got, want)
		}
	}
	checkFrac("straggler", stragglers, 0.3)
	checkFrac("adversary", adversaries, 0.1)
	checkFrac("stale", stale, 0.2)
	checkFrac("skewed", skewed, 0.5)

	// Virtual clients alias archetype shards: a million-entry population
	// must reference exactly Archetypes distinct datasets.
	seen := map[any]bool{}
	for _, s := range pop.Shards {
		seen[s] = true
	}
	if len(seen) != 32 {
		t.Fatalf("population references %d distinct shards, want %d", len(seen), 32)
	}
}

// TestScenarioRegistry pins ByName and the report renderer end to end.
func TestScenarioRegistry(t *testing.T) {
	for _, sc := range Scenarios() {
		got, err := ByName(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Fatalf("ByName(%q) = %+v, %v", sc.Name, got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown scenario")
	}
}

// TestReportRenders smoke-tests the SIMBENCH writer on a synthetic result.
func TestReportRenders(t *testing.T) {
	var sb bytes.Buffer
	r := &Result{
		Scenario:      Poisoned10(),
		Rounds:        8,
		Accuracies:    []float64{0.5, 0.8, 0.9},
		FinalAccuracy: 0.9, BestAccuracy: 0.9,
		RoundsPerSec: 3.2, HonestScore: 0.98, AdversaryScore: 0.42,
		Replay: []*ReplayOutcome{{Sent: 100, Statuses: map[int]int{200: 98, 429: 2},
			P99Ms: 12, SLOPass: true}},
		PeakRSSBytes: 200 << 20,
	}
	r.Scenario.fill()
	WriteReport(&sb, RunMeta{Date: "2026-08-08", Workers: 4}, []*Result{r})
	out := sb.String()
	for _, want := range []string{"poisoned10", "0.9000", "adversary mean 0.420", "p99 12.0ms", "200.0 MiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
