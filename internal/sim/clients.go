package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/tensor"
)

// ErrDropout marks a dispatched client that vanished mid-round (simulated
// churn); the coordinator counts it as a failed client and moves on.
var ErrDropout = errors.New("sim: client dropped out")

// simTimeScale compresses simulated device latency into test-friendly real
// time: a straggler whose round costs N simulated ms sleeps N*simTimeScale
// real ms, capped at simSleepCap so pathological workloads cannot stall a
// round. The sleep shifts wall-clock only — under synchronous rounds it
// never changes outcomes, which is what keeps determinism intact.
const (
	simTimeScale = 10
	simSleepCap  = 2 * time.Millisecond
)

// clientSim is the pluggable client behavior: a federated.ClientTrainer that
// wraps the reference SGD trainer with the population's per-client faults —
// hash-deterministic dropout, straggler sleeps from the device cost model,
// stale-base training, and model-replacement poisoning. Every decision
// derives from (seed, round, k), so results are independent of goroutine
// scheduling.
type clientSim struct {
	pop   *Population
	inner *federated.SGDTrainer
	sleep bool

	// Stale-base rotation: the first job of each round deep-copies that
	// round's global weights; stale clients train from the previous round's
	// copy. Under synchronous rounds (Quorum=1) every job of round r
	// carries identical global values, so the rotation is deterministic no
	// matter which worker gets there first.
	mu       sync.Mutex
	curRound int
	curBase  []*tensor.Matrix
	prevBase []*tensor.Matrix
}

var _ federated.ClientTrainer = (*clientSim)(nil)

func newClientSim(pop *Population, sc Scenario) *clientSim {
	return &clientSim{
		pop:   pop,
		sleep: sc.StragglerFrac > 0,
		inner: &federated.SGDTrainer{
			Factory: pop.Factory,
			Classes: pop.Classes,
			Epochs:  sc.LocalEpochs,
			Batch:   sc.LocalBatch,
			LR:      sc.LocalLR,
		},
		curRound: -1,
	}
}

// observeRound rotates the stale-base snapshots on the first sighting of a
// new round and returns the base the client should train from.
func (t *clientSim) observeRound(round int, global []*tensor.Matrix, stale bool) []*tensor.Matrix {
	if t.pop.sc.StaleFrac <= 0 {
		return global
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if round != t.curRound {
		if round == t.curRound+1 {
			t.prevBase = t.curBase
		} else {
			t.prevBase = nil
		}
		t.curRound = round
		t.curBase = make([]*tensor.Matrix, len(global))
		for i, g := range global {
			t.curBase[i] = g.Clone()
		}
	}
	if stale && t.prevBase != nil {
		return t.prevBase
	}
	return global
}

// TrainRoundClient implements federated.ClientTrainer.
func (t *clientSim) TrainRoundClient(round, k int, shard *data.ClientShard, global []*tensor.Matrix, seed int64) (federated.ClientResult, error) {
	if round < 0 || k < 0 {
		return t.inner.TrainClient(shard, global, seed)
	}
	if t.pop.droppedOut(round, k) {
		return federated.ClientResult{}, fmt.Errorf("%w: client %d round %d", ErrDropout, k, round)
	}
	pr := t.pop.Profile(k)
	if t.sleep {
		cost := t.pop.TrainCostMs[0]
		if pr.Straggler {
			cost = t.pop.TrainCostMs[1]
		}
		d := time.Duration(cost * simTimeScale * float64(time.Millisecond))
		if d > simSleepCap {
			d = simSleepCap
		}
		if d > 0 {
			time.Sleep(d)
		}
	}
	base := t.observeRound(round, global, pr.Stale)
	res, err := t.inner.TrainClient(shard, base, seed)
	if err != nil {
		return res, err
	}
	if pr.Adversarial {
		poison(res.Weights, global, t.pop.sc.PoisonScale)
	}
	return res, nil
}

// TrainClient implements federated.Trainer (the identity-free path: plain
// honest SGD).
func (t *clientSim) TrainClient(shard *data.ClientShard, global []*tensor.Matrix, seed int64) (federated.ClientResult, error) {
	return t.inner.TrainClient(shard, global, seed)
}

// poison rewrites trained weights as a model-replacement attack: the honest
// delta is sign-flipped and boosted, w' = g - scale*(w - g), so the merged
// update drags the global model away from convergence. The boosted magnitude
// is exactly what the scored selector's norm-anomaly component detects.
func poison(weights, global []*tensor.Matrix, scale float64) {
	for i, w := range weights {
		wd, gd := w.Data(), global[i].Data()
		for j := range wd {
			wd[j] = gd[j] - scale*(wd[j]-gd[j])
		}
	}
}
