// Package sim is the million-client scenario harness: it drives a real
// fedserve.Coordinator (and optionally a real serve HTTP stack) with a
// simulated heterogeneous client population — device classes, non-IID data,
// churn, stragglers, clock skew, and faulty or adversarial updates — plus a
// diurnal traffic generator that replays load against /v1/predict and
// asserts SLOs from the server's own /metrics histograms.
//
// Everything is deterministic per scenario seed: client profiles are hashed,
// never drawn from shared mutable state, so the same scenario reproduces
// bit-identical round outcomes at any worker count (see the determinism
// regression test).
package sim

import (
	"fmt"
	"time"
)

// SLO is the service-level objective a traffic replay is judged against,
// evaluated from the /metrics deltas observed across the replay window.
type SLO struct {
	// P99Ms bounds the 99th-percentile request latency in milliseconds
	// (0 = not asserted).
	P99Ms float64
	// MaxShedRate bounds shed requests / total attempts.
	MaxShedRate float64
	// MaxErrorRate bounds (expired + errored) requests / total attempts.
	MaxErrorRate float64
}

// ReplaySpec describes one diurnal traffic replay against /v1/predict: the
// request rate follows a compressed day, ramping from BaseRPS at "night" to
// PeakRPS at "midday".
type ReplaySpec struct {
	// Duration is the wall-clock length of the compressed day.
	Duration time.Duration
	// BaseRPS / PeakRPS bound the diurnal rate curve.
	BaseRPS float64
	PeakRPS float64
	// Workers bounds concurrent in-flight requests (default 16).
	Workers int
	// TimeoutMs is the per-request deadline budget sent as timeout_ms
	// (0 = none; the server's DefaultTimeout still applies).
	TimeoutMs int
	// SLO is asserted over the replay window.
	SLO SLO
}

func (r *ReplaySpec) fill() {
	if r.Workers <= 0 {
		r.Workers = 16
	}
	if r.Duration <= 0 {
		r.Duration = 2 * time.Second
	}
}

// Scenario is one end-to-end simulation: a virtual population, its fault and
// adversary mix, the round schedule, and (optionally) a traffic replay.
type Scenario struct {
	Name string

	// Clients is the virtual population size. Virtual clients alias a small
	// set of real non-IID Archetypes shards (default 32), so a million-client
	// population costs a million slice entries, not a million datasets.
	Clients    int
	Archetypes int

	// Rounds / Cohort shape the round schedule: Cohort clients are selected
	// per round from the eligible population.
	Rounds int
	Cohort int
	Seed   int64

	// Local training knobs (defaults: 2 epochs, batch 16, lr 0.1).
	LocalEpochs int
	LocalBatch  int
	LocalLR     float64
	// Quorum passes through to the coordinator (default 1 = synchronous,
	// which keeps rounds deterministic).
	Quorum float64

	// StragglerFrac is the fraction of clients on slow midrange devices;
	// their simulated training cost (from mobile.WorkloadFor) is slept in
	// compressed time. The rest run flagship-class hardware.
	StragglerFrac float64
	// DropoutRate is the per-(round, client) probability that a dispatched
	// client vanishes mid-round (hash-deterministic churn).
	DropoutRate float64
	// PoisonFrac marks adversarial clients that submit model-replacement
	// updates: w' = global - PoisonScale*(w_trained - global), the
	// sign-flipped boosted delta (default scale 10).
	PoisonFrac  float64
	PoisonScale float64
	// StaleFrac marks clients that train from the previous round's global
	// weights (stale-base faults).
	StaleFrac float64

	// Diurnal gates per-round participation on each client's local hour
	// (clients are awake 06:00-24:00); SkewFrac spreads that fraction of
	// clients across time zones (uniform 0-24h offsets). HoursPerRound is
	// how much simulated clock advances per round (default 2).
	Diurnal       bool
	SkewFrac      float64
	HoursPerRound float64

	// Scored selects clients with a fedserve.ScoredSelector (reputation-
	// weighted sampling, anomaly-attenuated merging) instead of uniformly.
	Scored bool

	// Replay, if non-nil, runs a diurnal /v1/predict replay concurrently
	// with training and asserts its SLO.
	Replay *ReplaySpec
}

func (sc *Scenario) fill() {
	if sc.Clients <= 0 {
		sc.Clients = 20000
	}
	if sc.Archetypes <= 0 {
		sc.Archetypes = 32
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 8
	}
	if sc.Cohort <= 0 {
		sc.Cohort = 64
	}
	if sc.LocalEpochs <= 0 {
		sc.LocalEpochs = 2
	}
	if sc.LocalBatch <= 0 {
		sc.LocalBatch = 16
	}
	if sc.LocalLR <= 0 {
		sc.LocalLR = 0.1
	}
	if sc.PoisonScale <= 0 {
		sc.PoisonScale = 10
	}
	if sc.HoursPerRound <= 0 {
		sc.HoursPerRound = 2
	}
	if sc.Replay != nil {
		sc.Replay.fill()
	}
}

// Named scenarios. All share seed 1 and the same archetype dataset, so their
// accuracy trajectories are directly comparable (the poisoned-vs-baseline
// acceptance bound depends on this).

// Baseline is the clean population: no faults, uniform selection.
func Baseline() Scenario {
	return Scenario{Name: "baseline", Seed: 1, StragglerFrac: 0.3}
}

// Dropout30 loses 30% of dispatched clients every round.
func Dropout30() Scenario {
	return Scenario{Name: "dropout30", Seed: 1, StragglerFrac: 0.3, DropoutRate: 0.3}
}

// Poisoned10 gives 10% of the population to a model-replacement adversary,
// defended by the scored selector.
func Poisoned10() Scenario {
	return Scenario{Name: "poisoned10", Seed: 1, StragglerFrac: 0.3, PoisonFrac: 0.10, Scored: true}
}

// ClockSkew spreads half the population across time zones with diurnal
// participation, plus a slice of stale-base clients.
func ClockSkew() Scenario {
	return Scenario{Name: "clockskew", Seed: 1, StragglerFrac: 0.3,
		Diurnal: true, SkewFrac: 0.5, StaleFrac: 0.1}
}

// DiurnalBurst replays a compressed day of predict traffic — base load
// overnight, a burst at midday — against the serving stack while training
// runs, asserting the latency/shed/error SLO from /metrics.
func DiurnalBurst() Scenario {
	return Scenario{Name: "diurnal-burst", Seed: 1, StragglerFrac: 0.3,
		Diurnal: true, SkewFrac: 1,
		Replay: &ReplaySpec{
			Duration: 3 * time.Second,
			BaseRPS:  40, PeakRPS: 200,
			Workers:   32,
			TimeoutMs: 2000,
			SLO:       SLO{P99Ms: 500, MaxShedRate: 0.01, MaxErrorRate: 0.01},
		}}
}

// Scenarios lists every named scenario in presentation order.
func Scenarios() []Scenario {
	return []Scenario{Baseline(), Dropout30(), Poisoned10(), ClockSkew(), DiurnalBurst()}
}

// ByName resolves a named scenario.
func ByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("sim: unknown scenario %q", name)
}
