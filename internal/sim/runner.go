package sim

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mobiledl/internal/federated"
	"mobiledl/internal/fedserve"
	"mobiledl/internal/serve"
)

// Options tune one scenario run without changing its outcome-relevant shape.
type Options struct {
	// Workers sizes the coordinator's client-training pool (0 = GOMAXPROCS).
	// Synchronous scenarios produce identical results at any worker count.
	Workers int
	// ReplayTargets, when non-empty, aims the traffic replay at external
	// base URLs (cluster mode: each target gets its own replay) instead of
	// the in-process serving stack.
	ReplayTargets []string
	// ReplayModel / ReplayDim override the model name and feature width the
	// replay posts in cluster mode — external nodes serve their own models,
	// not the simulator's. Zero values mean the in-process "sim" model and
	// its benchmark dimensionality.
	ReplayModel string
	ReplayDim   int
}

// Result is everything one scenario run observed.
type Result struct {
	Scenario Scenario
	// Rounds is the number of completed rounds; Accuracies the per-round
	// eval trajectory (one entry per evaluated round).
	Rounds        int
	Accuracies    []float64
	FinalAccuracy float64
	BestAccuracy  float64
	// RoundsPerSec is completed rounds over the training wall time.
	RoundsPerSec  float64
	TrainDuration time.Duration

	MergedUpdates int
	DroppedStale  int
	FailedClients int

	// HonestScore / AdversaryScore are the mean selector reputations of
	// observed honest vs adversarial clients (scored scenarios only).
	HonestScore    float64
	AdversaryScore float64

	// Replay holds one outcome per replay target (nil when the scenario has
	// no replay).
	Replay []*ReplayOutcome

	// ModelCheckpoint is the published model's serialized bytes — the
	// bit-exact artifact determinism tests compare.
	ModelCheckpoint []byte
	// PeakRSSBytes is the process high-water RSS (VmHWM) after the run.
	PeakRSSBytes int64

	History []federated.RoundStats
}

// Run executes one scenario end to end: build the population, train through
// a real coordinator publishing into a real registry, optionally serve and
// replay diurnal traffic concurrently, and collect the evidence.
func Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	sc.fill()
	pop, err := BuildPopulation(sc)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry()
	defer reg.Close()
	trainer := newClientSim(pop, sc)

	cfg := fedserve.Config{
		Factory: pop.Factory,
		Shards:  pop.Shards,
		Classes: pop.Classes,
		EvalX:   pop.EvalX,
		EvalY:   pop.EvalY,
		Rounds:  sc.Rounds,
		Cohort:  sc.Cohort,
		Seed:    sc.Seed,
		Workers: opts.Workers,
		Trainer: trainer,
		Quorum:  sc.Quorum,
		// Tolerate transient regressions so poisoned runs still publish
		// recovered versions; the eval trajectory records every round.
		AccuracyDrop: 0.05,
		Registry:     reg,
		Model:        "sim",
	}
	if sc.Diurnal {
		cfg.Eligible = pop.Eligible
	}
	var selector *fedserve.ScoredSelector
	if sc.Scored {
		selector = fedserve.NewScoredSelector()
		cfg.Selector = selector
	}
	coord, err := fedserve.NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}

	// Serving stack + replay targets. Solo mode serves the coordinator's
	// registry over a real HTTP server on a loopback port; cluster mode
	// replays against the caller's running nodes.
	targets := opts.ReplayTargets
	var httpSrv *http.Server
	var serveSrv *serve.Server
	if sc.Replay != nil && len(targets) == 0 {
		serveSrv = serve.NewServerWith(reg, serve.ServerConfig{
			DefaultTimeout: 2 * time.Second,
		})
		rt, err := serve.NewRuntime(serve.RuntimeConfig{Registry: reg, Model: "sim"})
		if err != nil {
			return nil, err
		}
		serveSrv.Add(rt)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("sim: listen: %w", err)
		}
		httpSrv = &http.Server{Handler: serveSrv.Handler()}
		go httpSrv.Serve(ln)
		targets = []string{"http://" + ln.Addr().String()}
		defer func() {
			httpSrv.Close()
			serveSrv.Close()
		}()
	}

	// Stop the coordinator if the caller's context dies mid-run.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			coord.Stop()
		case <-watchDone:
		}
	}()

	res := &Result{Scenario: sc}
	var replayMu sync.Mutex
	var replayErr error
	var wg sync.WaitGroup
	if sc.Replay != nil {
		replayModel := opts.ReplayModel
		if replayModel == "" {
			replayModel = "sim"
		}
		features := pop.EvalX.Row(0)
		if opts.ReplayDim > 0 {
			features = make([]float64, opts.ReplayDim)
			for j := range features {
				features[j] = 0.3
			}
		}
		res.Replay = make([]*ReplayOutcome, len(targets))
		for i, target := range targets {
			wg.Add(1)
			go func(i int, target string) {
				defer wg.Done()
				out, err := runReplay(ctx, replayConfig{
					BaseURL:  target,
					Model:    replayModel,
					Features: features,
					Spec:     *sc.Replay,
				})
				replayMu.Lock()
				defer replayMu.Unlock()
				if err != nil {
					replayErr = fmt.Errorf("sim: replay %s: %w", target, err)
					return
				}
				res.Replay[i] = out
			}(i, target)
		}
	}

	began := time.Now()
	if err := coord.Start(); err != nil {
		return nil, err
	}
	coord.Wait()
	res.TrainDuration = time.Since(began)
	wg.Wait()
	if replayErr != nil {
		return nil, replayErr
	}

	st := coord.Status()
	res.Rounds = st.Round
	res.MergedUpdates = st.MergedUpdates
	res.DroppedStale = st.DroppedStale
	res.FailedClients = st.FailedClients
	res.FinalAccuracy = st.LastAccuracy
	res.BestAccuracy = st.BestAccuracy
	res.History = coord.History()
	for _, rs := range res.History {
		if !math.IsNaN(rs.Accuracy) {
			res.Accuracies = append(res.Accuracies, rs.Accuracy)
		}
	}
	if res.TrainDuration > 0 {
		res.RoundsPerSec = float64(res.Rounds) / res.TrainDuration.Seconds()
	}
	if selector != nil {
		res.HonestScore, res.AdversaryScore = scoreSplit(pop, selector)
	}
	if ckpt, err := reg.Checkpoint("sim"); err == nil {
		res.ModelCheckpoint = ckpt
	}
	res.PeakRSSBytes = peakRSS()
	return res, ctx.Err()
}

// scoreSplit averages the selector's reputations over observed honest vs
// adversarial clients.
func scoreSplit(pop *Population, sel *fedserve.ScoredSelector) (honest, adversary float64) {
	var hn, an int
	for k, score := range sel.Scores() {
		if pop.Profile(k).Adversarial {
			adversary += score
			an++
		} else {
			honest += score
			hn++
		}
	}
	if hn > 0 {
		honest /= float64(hn)
	}
	if an > 0 {
		adversary /= float64(an)
	}
	return honest, adversary
}

// peakRSS reads the process high-water RSS (VmHWM) in bytes; 0 when the
// platform does not expose /proc.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				return kb << 10
			}
		}
	}
	return 0
}
