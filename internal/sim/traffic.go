package sim

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"mobiledl/internal/metrics"
)

// ReplayOutcome is what one diurnal traffic replay observed: the client-side
// status mix and the server-side SLO verdict computed from /metrics deltas
// across the replay window.
type ReplayOutcome struct {
	// Sent counts requests dispatched; Skipped counts arrivals dropped
	// client-side because every replay worker was busy (closed-loop
	// backpressure, not a server fault).
	Sent    int
	Skipped int
	// Statuses maps HTTP status -> count (0 = transport error).
	Statuses map[int]int

	// Server-observed deltas over the replay window, from /metrics.
	Attempts  float64
	P99Ms     float64
	ShedRate  float64
	ErrorRate float64

	SLOPass    bool
	Violations []string
}

// replayConfig wires one replay: the target server, the model to query, one
// feature row to send, and the spec.
type replayConfig struct {
	BaseURL  string
	Model    string
	Features []float64
	Spec     ReplaySpec
	// OnScrape, if non-nil, receives a mid-replay /metrics scrape (taken
	// once, about halfway through) — the hook overload tests use to assert
	// shed counters are moving while the burst is live.
	OnScrape func(*metrics.Scrape)
}

// diurnalRate is the compressed-day request rate at elapsed fraction
// x in [0, 1]: base load overnight rising to peak at "midday" (x=0.5) on a
// sin^2 curve.
func diurnalRate(spec *ReplaySpec, x float64) float64 {
	s := math.Sin(math.Pi * x)
	return spec.BaseRPS + (spec.PeakRPS-spec.BaseRPS)*s*s
}

// runReplay replays the diurnal curve against POST {base}/v1/predict and
// judges the spec's SLO from the /metrics deltas bracketing the replay.
// Arrivals are open-loop (paced by the curve, not by responses) up to the
// worker cap; the server's own shedding is the backpressure under test.
func runReplay(ctx context.Context, cfg replayConfig) (*ReplayOutcome, error) {
	spec := cfg.Spec
	spec.fill()
	start, err := metrics.ScrapeURL(cfg.BaseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("sim: pre-replay scrape: %w", err)
	}

	body, err := predictBody(cfg.Model, cfg.Features, spec.TimeoutMs)
	if err != nil {
		return nil, err
	}
	out := &ReplayOutcome{Statuses: make(map[int]int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan struct{}, spec.Workers)
	client := &http.Client{}
	for i := 0; i < spec.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				status := 0
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.BaseURL+"/v1/predict", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				if resp, err := client.Do(req); err == nil {
					status = resp.StatusCode
					resp.Body.Close()
				}
				mu.Lock()
				out.Statuses[status]++
				mu.Unlock()
			}
		}()
	}

	began := time.Now()
	scraped := false
	for {
		elapsed := time.Since(began)
		if elapsed >= spec.Duration || ctx.Err() != nil {
			break
		}
		if !scraped && elapsed >= spec.Duration/2 {
			scraped = true
			if cfg.OnScrape != nil {
				if mid, err := metrics.ScrapeURL(cfg.BaseURL + "/metrics"); err == nil {
					cfg.OnScrape(mid)
				}
			}
		}
		rate := diurnalRate(&spec, float64(elapsed)/float64(spec.Duration))
		select {
		case jobs <- struct{}{}:
			out.Sent++
		default:
			out.Skipped++
		}
		time.Sleep(time.Duration(float64(time.Second) / rate))
	}
	close(jobs)
	wg.Wait()

	end, err := metrics.ScrapeURL(cfg.BaseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("sim: post-replay scrape: %w", err)
	}
	judgeSLO(out, &spec.SLO, start, end)
	return out, nil
}

// predictBody marshals the /v1/predict payload once; every replay request
// reuses it.
func predictBody(model string, features []float64, timeoutMs int) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(fmt.Sprintf(`{"model":%q,"features":[[`, model))
	for i, f := range features {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", f)
	}
	b.WriteString("]]")
	if timeoutMs > 0 {
		fmt.Fprintf(&b, `,"timeout_ms":%d`, timeoutMs)
	}
	b.WriteString("}")
	return b.Bytes(), nil
}

// judgeSLO fills the outcome's server-observed fields and verdict from the
// start/end scrape deltas. Latency quantiles come from the histogram bucket
// deltas (the window's own distribution, not lifetime), exactly what
// metrics.BucketQuantile exists for.
func judgeSLO(out *ReplayOutcome, slo *SLO, start, end *metrics.Scrape) {
	delta := func(name string) float64 { return end.Sum(name) - start.Sum(name) }
	served := delta("mobiledl_requests_total")
	shed := delta("mobiledl_requests_shed_total")
	expired := delta("mobiledl_requests_expired_total")
	errs := delta("mobiledl_request_errors_total")
	out.Attempts = served + shed + expired + errs
	if out.Attempts <= 0 {
		out.SLOPass = false
		out.Violations = append(out.Violations, "no server-observed traffic in the replay window")
		return
	}
	out.ShedRate = shed / out.Attempts
	out.ErrorRate = (expired + errs) / out.Attempts

	b0, c0 := start.HistogramBuckets("mobiledl_request_latency_ms")
	b1, c1 := end.HistogramBuckets("mobiledl_request_latency_ms")
	if len(b1) > 0 && len(b0) == len(b1) {
		dc := make([]float64, len(c1))
		for i := range c1 {
			dc[i] = c1[i] - c0[i]
		}
		if p99, err := metrics.BucketQuantile(0.99, b1, dc); err == nil {
			out.P99Ms = p99
		}
	}

	out.SLOPass = true
	violate := func(format string, args ...any) {
		out.SLOPass = false
		out.Violations = append(out.Violations, fmt.Sprintf(format, args...))
	}
	if slo.P99Ms > 0 && out.P99Ms > slo.P99Ms {
		violate("p99 latency %.1fms > %.1fms", out.P99Ms, slo.P99Ms)
	}
	if out.ShedRate > slo.MaxShedRate {
		violate("shed rate %.4f > %.4f", out.ShedRate, slo.MaxShedRate)
	}
	if out.ErrorRate > slo.MaxErrorRate {
		violate("error rate %.4f > %.4f", out.ErrorRate, slo.MaxErrorRate)
	}
}
