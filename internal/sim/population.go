package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// Hash salts, one per profile dimension, so the dimensions are independent
// draws from the same scenario seed.
const (
	saltDevice = iota + 1
	saltAdversary
	saltStale
	saltSkewGate
	saltSkewOffset
	saltDropout
)

// mix64 is the splitmix64 finalizer — the stateless hash every per-client
// profile bit derives from.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps (seed, a, b, salt) to a uniform float64 in [0, 1).
func hashUnit(seed int64, a, b, salt int) float64 {
	h := mix64(uint64(seed))
	h = mix64(h + uint64(int64(a)))
	h = mix64(h + uint64(int64(b)))
	h = mix64(h + uint64(int64(salt)))
	return float64(h>>11) / (1 << 53)
}

// Profile is one virtual client's hashed identity: everything the simulator
// needs to know about client k, computed on demand and never stored — the
// trick that keeps a million-client population at one slice entry per client.
type Profile struct {
	// Straggler clients run midrange hardware; others flagship.
	Straggler bool
	Device    mobile.Device
	// Adversarial clients submit model-replacement updates.
	Adversarial bool
	// Stale clients train from the previous round's global weights.
	Stale bool
	// SkewHours shifts the client's local clock (0 = coordinator time).
	SkewHours float64
}

// Population is the materialized scenario substrate: the aliased shard
// slice the coordinator trains over, the held-out eval set, and the model
// factory — plus the per-device simulated training costs derived from
// mobile.WorkloadFor.
type Population struct {
	sc      Scenario
	Shards  []*data.ClientShard
	Classes int
	EvalX   *tensor.Matrix
	EvalY   []int
	Factory federated.ModelFactory

	// TrainCostMs is the simulated per-round local-training latency for
	// [flagship, midrange] devices (compute only, per WorkloadFor +
	// EvaluateLocal, scaled by local samples and epochs).
	TrainCostMs [2]float64
}

// Benchmark dataset shape shared by every scenario: a 4-class, 8-dim
// synthetic task sharded non-IID across the archetypes.
const (
	benchSamples = 2400
	benchClasses = 4
	benchDim     = 8
	hiddenDim    = 16
)

// BuildPopulation materializes a scenario's client population: Clients
// virtual clients aliasing Archetypes real non-IID shards, profiles hashed
// from the scenario seed.
func BuildPopulation(sc Scenario) (*Population, error) {
	sc.fill()
	fb, err := data.GenerateFedBench(data.FedBenchConfig{
		Samples: benchSamples, Classes: benchClasses, Dim: benchDim, Seed: sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: generate benchmark: %w", err)
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return nil, err
	}
	arch, err := data.ShardNonIID(rand.New(rand.NewSource(sc.Seed+1)), trX, trY, sc.Archetypes)
	if err != nil {
		return nil, fmt.Errorf("sim: shard archetypes: %w", err)
	}
	// The virtual population: client k trains archetype k mod Archetypes's
	// data. A slice of aliased pointers is the entire per-client footprint.
	shards := make([]*data.ClientShard, sc.Clients)
	for k := range shards {
		shards[k] = arch[k%len(arch)]
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42))
		return nn.NewSequential(
			nn.NewDense(r, benchDim, hiddenDim),
			nn.NewReLU(),
			nn.NewDense(r, hiddenDim, benchClasses),
		), nil
	}
	p := &Population{
		sc: sc, Shards: shards, Classes: benchClasses,
		EvalX: teX, EvalY: teY, Factory: factory,
	}

	// Simulated local-training cost per device class: one inference's MACs
	// (mobile.WorkloadFor) costed on the device, scaled to a round's worth
	// of work (forward+backward ~ 3x inference, per sample, per epoch).
	full, err := factory()
	if err != nil {
		return nil, err
	}
	w := mobile.WorkloadFor(full, nil, benchDim, benchClasses, 0)
	perShard := float64(trX.Rows()) / float64(sc.Archetypes)
	roundMACs := 3 * perShard * float64(sc.LocalEpochs)
	for i, dev := range []mobile.Device{mobile.FlagshipPhone(), mobile.MidrangePhone()} {
		p.TrainCostMs[i] = mobile.EvaluateLocal(dev, w).LatencyMs * roundMACs
	}
	return p, nil
}

// Profile computes client k's hashed identity.
func (p *Population) Profile(k int) Profile {
	sc := &p.sc
	pr := Profile{
		Straggler:   hashUnit(sc.Seed, k, 0, saltDevice) < sc.StragglerFrac,
		Adversarial: hashUnit(sc.Seed, k, 0, saltAdversary) < sc.PoisonFrac,
		Stale:       hashUnit(sc.Seed, k, 0, saltStale) < sc.StaleFrac,
	}
	if pr.Straggler {
		pr.Device = mobile.MidrangePhone()
	} else {
		pr.Device = mobile.FlagshipPhone()
	}
	if sc.SkewFrac > 0 && hashUnit(sc.Seed, k, 0, saltSkewGate) < sc.SkewFrac {
		pr.SkewHours = 24 * hashUnit(sc.Seed, k, 0, saltSkewOffset)
	}
	return pr
}

// droppedOut reports whether client k vanishes in the given round
// (deterministic per-(round, client) churn).
func (p *Population) droppedOut(round, k int) bool {
	return p.sc.DropoutRate > 0 && hashUnit(p.sc.Seed, round, k, saltDropout) < p.sc.DropoutRate
}

// localHour is client k's local time-of-day in round r.
func (p *Population) localHour(round, k int) float64 {
	return math.Mod(float64(round)*p.sc.HoursPerRound+p.Profile(k).SkewHours, 24)
}

// Eligible is the coordinator's per-(round, client) participation gate:
// diurnal populations only contribute while their local clock is awake
// (06:00-24:00). Non-diurnal scenarios admit everyone.
func (p *Population) Eligible(round, k int) bool {
	if !p.sc.Diurnal {
		return true
	}
	return p.localHour(round, k) >= 6
}
