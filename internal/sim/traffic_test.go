package sim

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobiledl/internal/metrics"
	"mobiledl/internal/nn"
	"mobiledl/internal/serve"
	"mobiledl/internal/tensor"
)

// TestDiurnalBurstMeetsSLO runs the diurnal-burst scenario end to end:
// training publishes versions while the traffic generator replays a
// compressed day against the live serving stack, and the p99/shed/error SLO
// must hold on the /metrics deltas.
func TestDiurnalBurstMeetsSLO(t *testing.T) {
	sc := DiurnalBurst()
	sc.Clients = simClients(t)
	if testing.Short() {
		sc.Replay.Duration = 1500 * time.Millisecond
	}
	r, err := Run(context.Background(), sc, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Replay) != 1 || r.Replay[0] == nil {
		t.Fatalf("expected one replay outcome, got %+v", r.Replay)
	}
	rep := r.Replay[0]
	if rep.Statuses[200] == 0 {
		t.Fatalf("replay served no requests: statuses %v", rep.Statuses)
	}
	if !rep.SLOPass {
		t.Fatalf("SLO violated: %v (p99 %.1fms, shed %.4f, err %.4f, statuses %v)",
			rep.Violations, rep.P99Ms, rep.ShedRate, rep.ErrorRate, rep.Statuses)
	}
	if r.BestAccuracy < 0.75 {
		t.Fatalf("training under replay failed to converge: best %.4f", r.BestAccuracy)
	}
}

// slowBackend answers every batch after a fixed delay — the hard capacity
// ceiling the overload test saturates (one worker, 20ms/batch ~= 50 rps).
type slowBackend struct {
	dim   int
	delay time.Duration
}

func (b *slowBackend) Describe() serve.BackendInfo {
	return serve.BackendInfo{Kind: "dense", Algorithm: "slow", InputDim: b.dim, Classes: 2}
}
func (b *slowBackend) InputDim() int { return b.dim }
func (b *slowBackend) RunBatch(ctx context.Context, _ *serve.ExecEnv, batch *tensor.Matrix, _ serve.RequestOptions) (serve.BatchResult, error) {
	select {
	case <-time.After(b.delay):
	case <-ctx.Done():
		return serve.BatchResult{}, ctx.Err()
	}
	return serve.BatchResult{Results: make([]serve.Result, batch.Rows())}, nil
}
func (b *slowBackend) Params() []*nn.Param { return nil }
func (b *slowBackend) Close() error        { return nil }

// overloadStack builds a deliberately tiny-capacity serving stack: a slow
// backend behind one worker and a 40-deep admission window.
func overloadStack(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	reg := serve.NewRegistry()
	t.Cleanup(func() { reg.Close() })
	if _, err := reg.Install("sim", &slowBackend{dim: benchDim, delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServerWith(reg, serve.ServerConfig{DefaultTimeout: 500 * time.Millisecond})
	rt, err := serve.NewRuntime(serve.RuntimeConfig{
		Registry: reg, Model: "sim",
		Batch: serve.BatcherConfig{
			MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1,
			MaxInflight: 40, QueueCap: 40,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(rt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestOverloadContractUnderBurst is the serve-overload interplay test: a
// diurnal burst into a throttled stack must surface the full degradation
// contract — 429 with Retry-After at admission, 504 for expired deadlines,
// 503 once closed — with the shed/expired counters visibly rising in a
// mid-replay /metrics scrape.
func TestOverloadContractUnderBurst(t *testing.T) {
	ts, srv := overloadStack(t)
	row := make([]float64, benchDim)
	body, err := predictBody("sim", row, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Saturate admission with a concurrent volley and catch a 429: it must
	// carry Retry-After. (Runs before the replay, so its traffic lands in
	// the replay's baseline scrape, not its deltas.)
	var retryAfter atomic.Value
	var volley sync.WaitGroup
	for i := 0; i < 80; i++ {
		volley.Add(1)
		go func() {
			defer volley.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter.Store(resp.Header.Get("Retry-After"))
			}
		}()
	}
	volley.Wait()
	ra, _ := retryAfter.Load().(string)
	if ra == "" {
		t.Fatal("saturating volley produced no 429 with Retry-After")
	}

	// Replay a burst well past the ~50 rps ceiling and scrape mid-flight.
	var midShed, midExpired atomic.Uint64
	spec := ReplaySpec{
		Duration: 2 * time.Second,
		BaseRPS:  100, PeakRPS: 500,
		Workers: 64, TimeoutMs: 150,
	}
	if testing.Short() {
		spec.Duration = time.Second
	}
	out, err := runReplay(context.Background(), replayConfig{
		BaseURL: ts.URL, Model: "sim", Features: row, Spec: spec,
		OnScrape: func(s *metrics.Scrape) {
			midShed.Store(uint64(s.Sum("mobiledl_requests_shed_total")))
			midExpired.Store(uint64(s.Sum("mobiledl_requests_expired_total")))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The contract: only 200/429/504 under load (0 = client transport
	// error, tolerated but never the majority; no 5xx other than 504).
	for status, n := range out.Statuses {
		switch status {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout, 0:
		default:
			t.Errorf("unexpected status %d (%d times) under overload", status, n)
		}
	}
	if out.Statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("burst produced no 429s: %v", out.Statuses)
	}
	if out.Statuses[http.StatusGatewayTimeout] == 0 {
		t.Fatalf("burst produced no 504s: %v", out.Statuses)
	}
	if midShed.Load() == 0 {
		t.Fatal("mid-replay scrape saw no shed requests while the burst was live")
	}
	if out.ShedRate <= 0 {
		t.Fatalf("post-replay shed rate %.4f, want > 0", out.ShedRate)
	}
	if out.ErrorRate <= 0 {
		t.Fatalf("post-replay error rate %.4f, want > 0 (expired deadlines)", out.ErrorRate)
	}

	// Drain, then close: a drained server still answers, a closed one
	// sheds with 503.
	srv.StartDrain()
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", hz.StatusCode)
	}
	srv.Close()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict after close = %d, want 503", resp.StatusCode)
	}
}

// TestDiurnalRateCurve pins the traffic shape: base at the edges, peak at
// midday, symmetric.
func TestDiurnalRateCurve(t *testing.T) {
	spec := &ReplaySpec{BaseRPS: 10, PeakRPS: 110}
	if got := diurnalRate(spec, 0); got != 10 {
		t.Fatalf("rate(0) = %v, want base 10", got)
	}
	if got := diurnalRate(spec, 0.5); got != 110 {
		t.Fatalf("rate(0.5) = %v, want peak 110", got)
	}
	if a, b := diurnalRate(spec, 0.25), diurnalRate(spec, 0.75); math.Abs(a-b) > 1e-9 {
		t.Fatalf("curve asymmetric: %v vs %v", a, b)
	}
}
