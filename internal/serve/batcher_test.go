package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobiledl/internal/leakcheck"
	"mobiledl/internal/tensor"
)

// echoExec returns each row's first feature as its class and records the
// batch sizes and options it saw.
type echoExec struct {
	mu    sync.Mutex
	sizes []int
	opts  []RequestOptions
}

func (e *echoExec) run(_ context.Context, batch *tensor.Matrix, opts RequestOptions) ([]Result, error) {
	e.mu.Lock()
	e.sizes = append(e.sizes, batch.Rows())
	e.opts = append(e.opts, opts)
	e.mu.Unlock()
	out := make([]Result, batch.Rows())
	for i := range out {
		out[i] = Result{Class: int(batch.At(i, 0)), ModelVersion: opts.Version}
	}
	return out, nil
}

func (e *echoExec) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.sizes...)
}

func (e *echoExec) seenOpts() []RequestOptions {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]RequestOptions(nil), e.opts...)
}

func TestBatcherFullBatchFlush(t *testing.T) {
	exec := &echoExec{}
	// Long MaxDelay: only the size trigger can flush within the test.
	b, err := NewBatcher(2, BatcherConfig{MaxBatch: 4, MaxDelay: time.Minute, Workers: 1}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Submit(context.Background(), []float64{float64(i), 0}, RequestOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Class != i {
			t.Fatalf("row %d answered %d", i, res.Class)
		}
		if res.BatchSize != 4 {
			t.Fatalf("row %d ran in batch of %d, want 4 (size-triggered flush)", i, res.BatchSize)
		}
	}
	if sizes := exec.batchSizes(); len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("executor saw batches %v, want one batch of 4", sizes)
	}
}

func TestBatcherTimeoutFlush(t *testing.T) {
	exec := &echoExec{}
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 64, MaxDelay: 5 * time.Millisecond}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	start := time.Now()
	res, err := b.Submit(context.Background(), []float64{7}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 7 || res.BatchSize != 1 {
		t.Fatalf("got class=%d batch=%d, want a timed-out singleton batch", res.Class, res.BatchSize)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("flushed after %v, before the %v latency budget", elapsed, 5*time.Millisecond)
	}
	// The timer must re-arm for the next partial batch.
	if _, err := b.Submit(context.Background(), []float64{8}, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if sizes := exec.batchSizes(); len(sizes) != 2 {
		t.Fatalf("executor saw batches %v, want two timeout flushes", sizes)
	}
}

// TestBatcherSplitsMixedOptions pins down the grouping contract: rows with
// different execution-relevant options in one flush run as separate uniform
// exec calls, in arrival order of first appearance, while identical options
// stay coalesced.
func TestBatcherSplitsMixedOptions(t *testing.T) {
	exec := &echoExec{}
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 6, MaxDelay: time.Minute, Workers: 1}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// 6 submitters: rows 0,2,4 default options; rows 1,3,5 pinned to v2.
	var wg sync.WaitGroup
	results := make([]Result, 6)
	errs := make([]error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := RequestOptions{}
			if i%2 == 1 {
				opts.Version = 2
			}
			results[i], errs[i] = b.Submit(context.Background(), []float64{float64(i)}, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	for i, res := range results {
		if res.Class != i {
			t.Fatalf("row %d answered %d", i, res.Class)
		}
		wantVersion := 0
		if i%2 == 1 {
			wantVersion = 2
		}
		if res.ModelVersion != wantVersion {
			t.Fatalf("row %d executed under version %d, want %d", i, res.ModelVersion, wantVersion)
		}
		if res.BatchSize != 3 {
			t.Fatalf("row %d ran in sub-batch of %d, want 3", i, res.BatchSize)
		}
	}
	sizes := exec.batchSizes()
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 3 {
		t.Fatalf("executor saw batches %v, want two uniform groups of 3", sizes)
	}
	seen := exec.seenOpts()
	if seen[0] == seen[1] {
		t.Fatalf("both groups ran under the same options: %+v", seen)
	}
}

func TestBatcherValidationAndClose(t *testing.T) {
	leakcheck.Check(t)
	exec := &echoExec{}
	b, err := NewBatcher(3, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(context.Background(), []float64{1}, RequestOptions{}); !errors.Is(err, ErrRequest) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if _, err := b.Submit(context.Background(), []float64{1, 2, 3}, RequestOptions{TopK: -1}); !errors.Is(err, ErrRequest) {
		t.Fatalf("negative top_k: %v", err)
	}
	if _, err := b.Submit(context.Background(), []float64{1, 2, 3}, RequestOptions{Version: -2}); !errors.Is(err, ErrRequest) {
		t.Fatalf("negative version: %v", err)
	}
	if _, err := b.Submit(context.Background(), []float64{1, 2, 3}, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, err := b.Submit(context.Background(), []float64{1, 2, 3}, RequestOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestBatcherExecErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 2, MaxDelay: time.Minute, Workers: 1},
		func(context.Context, *tensor.Matrix, RequestOptions) ([]Result, error) { return nil, boom }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	var failures atomic.Int32
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), []float64{1}, RequestOptions{}); errors.Is(err, boom) {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 2 {
		t.Fatalf("%d of 2 submitters saw the executor error", failures.Load())
	}
}

// TestBatcherCloseCancelsExecContext pins the shutdown seam: a backend that
// honors the execution context unblocks when Close fires, so a hung
// external backend cannot wedge Close's wait.
func TestBatcherCloseCancelsExecContext(t *testing.T) {
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1},
		func(ctx context.Context, m *tensor.Matrix, _ RequestOptions) ([]Result, error) {
			<-ctx.Done() // a ctx-honoring backend stuck on external work
			return nil, ctx.Err()
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), []float64{1}, RequestOptions{})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the batch reach the stuck exec
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a ctx-honoring backend")
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted request error: %v", err)
	}
}

func TestBatcherContextCancel(t *testing.T) {
	block := make(chan struct{})
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1},
		func(_ context.Context, m *tensor.Matrix, _ RequestOptions) ([]Result, error) {
			<-block
			return make([]Result, m.Rows()), nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, []float64{1}, RequestOptions{})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit: %v", err)
	}
	close(block)
	b.Close()
}
