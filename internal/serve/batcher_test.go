package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobiledl/internal/tensor"
)

// echoExec returns each row's first feature as its class and records the
// batch sizes it saw.
type echoExec struct {
	mu    sync.Mutex
	sizes []int
}

func (e *echoExec) run(batch *tensor.Matrix) ([]Result, error) {
	e.mu.Lock()
	e.sizes = append(e.sizes, batch.Rows())
	e.mu.Unlock()
	out := make([]Result, batch.Rows())
	for i := range out {
		out[i] = Result{Class: int(batch.At(i, 0))}
	}
	return out, nil
}

func (e *echoExec) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.sizes...)
}

func TestBatcherFullBatchFlush(t *testing.T) {
	exec := &echoExec{}
	// Long MaxDelay: only the size trigger can flush within the test.
	b, err := NewBatcher(2, BatcherConfig{MaxBatch: 4, MaxDelay: time.Minute, Workers: 1}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Submit(context.Background(), []float64{float64(i), 0})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Class != i {
			t.Fatalf("row %d answered %d", i, res.Class)
		}
		if res.BatchSize != 4 {
			t.Fatalf("row %d ran in batch of %d, want 4 (size-triggered flush)", i, res.BatchSize)
		}
	}
	if sizes := exec.batchSizes(); len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("executor saw batches %v, want one batch of 4", sizes)
	}
}

func TestBatcherTimeoutFlush(t *testing.T) {
	exec := &echoExec{}
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 64, MaxDelay: 5 * time.Millisecond}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	start := time.Now()
	res, err := b.Submit(context.Background(), []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 7 || res.BatchSize != 1 {
		t.Fatalf("got class=%d batch=%d, want a timed-out singleton batch", res.Class, res.BatchSize)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("flushed after %v, before the %v latency budget", elapsed, 5*time.Millisecond)
	}
	// The timer must re-arm for the next partial batch.
	if _, err := b.Submit(context.Background(), []float64{8}); err != nil {
		t.Fatal(err)
	}
	if sizes := exec.batchSizes(); len(sizes) != 2 {
		t.Fatalf("executor saw batches %v, want two timeout flushes", sizes)
	}
}

func TestBatcherValidationAndClose(t *testing.T) {
	exec := &echoExec{}
	b, err := NewBatcher(3, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond}, exec.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(context.Background(), []float64{1}); !errors.Is(err, ErrRequest) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if _, err := b.Submit(context.Background(), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, err := b.Submit(context.Background(), []float64{1, 2, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestBatcherExecErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 2, MaxDelay: time.Minute, Workers: 1},
		func(*tensor.Matrix) ([]Result, error) { return nil, boom }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	var failures atomic.Int32
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), []float64{1}); errors.Is(err, boom) {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 2 {
		t.Fatalf("%d of 2 submitters saw the executor error", failures.Load())
	}
}

func TestBatcherContextCancel(t *testing.T) {
	block := make(chan struct{})
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1},
		func(m *tensor.Matrix) ([]Result, error) {
			<-block
			return make([]Result, m.Rows()), nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, []float64{1})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit: %v", err)
	}
	close(block)
	b.Close()
}
