package serve

import (
	"testing"
	"time"
)

// TestRateWindowSlides pins the ThroughputRPS fix: the reported rate covers
// only the sliding window, so it tracks current traffic and returns to zero
// after idling — instead of a lifetime average that decays forever.
func TestRateWindowSlides(t *testing.T) {
	var rw rateWindow
	base := time.Unix(1_000_000, 0)

	// 300 events spread over the 3 seconds just before "now".
	for s := 0; s < 3; s++ {
		for i := 0; i < 100; i++ {
			rw.record(base.Add(time.Duration(s) * time.Second))
		}
	}
	now := base.Add(2 * time.Second)

	// Long-uptime server: a lifetime average over 1000s would report 0.3
	// rps; the window reports the actual ~10 rps (300 events / 30s window).
	got := rw.rate(now, 1000)
	if got != 10 {
		t.Fatalf("windowed rate = %v, want 10", got)
	}

	// Young server: the divisor is the covered uptime, not the full window.
	if got := rw.rate(now, 3); got != 100 {
		t.Fatalf("young-uptime rate = %v, want 100", got)
	}

	// After a long idle period every slot ages out: the rate is zero, not a
	// slowly-decaying lifetime average.
	idle := now.Add(10 * time.Minute)
	if got := rw.rate(idle, 1000); got != 0 {
		t.Fatalf("post-idle rate = %v, want 0", got)
	}
}

// TestRateWindowSlotReuse checks that a slot left over from an earlier lap
// of the ring is reset, not accumulated into.
func TestRateWindowSlotReuse(t *testing.T) {
	var rw rateWindow
	base := time.Unix(2_000_000, 0)
	rw.record(base)
	// One full ring lap later the same slot holds a different second.
	later := base.Add(rateWindowSecs * time.Second)
	rw.record(later)
	rw.record(later)
	if got := rw.rate(later, 1000); got*rateWindowSecs != 2 {
		t.Fatalf("reused slot rate = %v, want 2 events over the window", got)
	}
}

// TestStatsSnapshotCountsShedExpiredErrors checks the new counters surface
// in the /v1/stats shape.
func TestStatsSnapshotCountsShedExpiredErrors(t *testing.T) {
	c := newCollector()
	c.shed.Add(3)
	c.expired.Add(2)
	c.errors.Add(1)
	s := c.snapshot(32, 7, 4)
	if s.Shed != 3 || s.Expired != 2 || s.Errors != 1 {
		t.Fatalf("counters %+v", s)
	}
	if s.Inflight != 7 || s.QueueDepth != 4 {
		t.Fatalf("gauges inflight=%d queue=%d", s.Inflight, s.QueueDepth)
	}
}
