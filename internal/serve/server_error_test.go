package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobiledl/internal/leakcheck"
)

// newErrorTestServer serves one dense model and returns the test server plus
// its runtime (for Close-path tests).
func newErrorTestServer(t *testing.T) (*httptest.Server, *Runtime) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 9)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "mlp",
		Batch: BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv.Add(rt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, rt
}

func postPredict(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, map[string]string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	return resp, payload
}

func TestPredictBadJSONIs400(t *testing.T) {
	ts, _ := newErrorTestServer(t)
	resp, payload := postPredict(t, ts, []byte(`{"model": "mlp", "features": [[1,2`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON: status %d, want 400", resp.StatusCode)
	}
	if payload["error"] == "" {
		t.Fatal("error body missing")
	}
	resp, _ = postPredict(t, ts, []byte(`not json at all`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-JSON body: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postPredict(t, ts, []byte(`{"model":"mlp","features":"oops"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-typed features: status %d, want 400", resp.StatusCode)
	}
}

func TestPredictOversizedBodyIs400(t *testing.T) {
	ts, _ := newErrorTestServer(t)
	// A syntactically valid body bigger than maxBodyBytes: the decoder hits
	// MaxBytesReader's limit mid-stream, which must surface as 400, not 500.
	var sb strings.Builder
	sb.WriteString(`{"model":"mlp","features":[[`)
	for sb.Len() < maxBodyBytes+1024 {
		sb.WriteString("1.2345678901234567,")
	}
	sb.WriteString(`1]]}`)
	resp, _ := postPredict(t, ts, []byte(sb.String()))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

func TestPredictWrongFeatureWidthIs400(t *testing.T) {
	ts, _ := newErrorTestServer(t)
	body, _ := json.Marshal(PredictRequest{Model: "mlp", Features: [][]float64{{1, 2}}})
	resp, payload := postPredict(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim mismatch: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(payload["error"], "features") {
		t.Fatalf("error should name the feature mismatch: %q", payload["error"])
	}
	// Empty feature list is also a client error.
	body, _ = json.Marshal(PredictRequest{Model: "mlp"})
	if resp, _ := postPredict(t, ts, body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no rows: status %d, want 400", resp.StatusCode)
	}
}

func TestPredictUnknownModelIs404(t *testing.T) {
	ts, _ := newErrorTestServer(t)
	body, _ := json.Marshal(PredictRequest{Model: "nope", Features: [][]float64{{1}}})
	resp, _ := postPredict(t, ts, body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}
}

func TestPredictUnknownVersionPinIs400(t *testing.T) {
	ts, _ := newErrorTestServer(t)
	row := [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}}
	body, _ := json.Marshal(PredictRequest{
		Model: "mlp", Features: row, Options: RequestOptions{Version: 42},
	})
	resp, payload := postPredict(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown version pin: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(payload["error"], "version") {
		t.Fatalf("error should name the version: %q", payload["error"])
	}
	// Negative options are client errors too.
	body, _ = json.Marshal(PredictRequest{
		Model: "mlp", Features: row, Options: RequestOptions{TopK: -3},
	})
	if resp, _ := postPredict(t, ts, body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative top_k: status %d, want 400", resp.StatusCode)
	}
}

func TestPredictAfterCloseIs503(t *testing.T) {
	leakcheck.Check(t)
	ts, rt := newErrorTestServer(t)
	rt.Close()
	body, _ := json.Marshal(PredictRequest{
		Model: "mlp", Features: [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}},
	})
	resp, _ := postPredict(t, ts, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict after Close: status %d, want 503", resp.StatusCode)
	}
}
