package serve

import (
	"context"
	"fmt"
	"time"

	"mobiledl/internal/mobile"
	"mobiledl/internal/tensor"
	"mobiledl/internal/trace"
)

// ExecutorConfig wires an executor to a model source and a simulated
// device/network environment.
type ExecutorConfig struct {
	// Source resolves the model version a batch runs against: version 0 is
	// the current one (hot swaps take effect at the next batch boundary),
	// anything else is a pin that must still be retained by the registry.
	Source func(version int) (*Loaded, error)
	// Device, Cloud, and Net parameterize the placement cost model
	// (defaults: midrange phone, cloud server, WiFi).
	Device mobile.Device
	Cloud  mobile.Device
	Net    mobile.Network
	// Seed seeds the perturbation RNG for offloaded split rows.
	Seed int64
	// SleepNet, when set, makes the executor actually sleep the modeled
	// transfer time instead of only reporting it — for demos that want
	// wall-clock realism. Benchmarks and tests leave it off.
	SleepNet bool
}

// Executor runs coalesced batches: it resolves the requested model version,
// hands the batch to that version's Backend under the shared ExecEnv, and
// stamps serving-level facts (model version, simulated sleep) onto the
// results. All model-family behavior — placement choice, early exits,
// perturbation — lives behind the Backend seam.
type Executor struct {
	cfg ExecutorConfig
	env *ExecEnv
}

// NewExecutor validates the config and applies environment defaults.
func NewExecutor(cfg ExecutorConfig) (*Executor, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("%w: executor needs a model source", ErrServe)
	}
	return &Executor{
		cfg: cfg,
		env: NewExecEnv(cfg.Device, cfg.Cloud, cfg.Net, cfg.Seed),
	}, nil
}

// Env exposes the executor's simulated environment (shared, read-only
// cost-model fields).
func (e *Executor) Env() *ExecEnv { return e.env }

// Execute implements ExecFunc: one coalesced batch, uniform options.
func (e *Executor) Execute(ctx context.Context, batch *tensor.Matrix, opts RequestOptions) ([]Result, error) {
	loaded, err := e.cfg.Source(opts.Version)
	if err != nil {
		return nil, err
	}
	// Traced batches carry a BatchLog in ctx; the exec record wraps the
	// backend call and parents whatever child records the backend emits.
	bl := trace.LogFrom(ctx)
	sp := bl.Begin("exec")
	br, err := loaded.Backend.RunBatch(ctx, e.env, batch, opts)
	bl.EndErr(sp, err,
		trace.Num("model_version", float64(loaded.Version)),
		trace.Num("rows", float64(batch.Rows())))
	if err != nil {
		return nil, err
	}
	var maxNet float64
	for i := range br.Results {
		br.Results[i].ModelVersion = loaded.Version
		if br.Results[i].SimNetMs > maxNet {
			maxNet = br.Results[i].SimNetMs
		}
	}
	if e.cfg.SleepNet && maxNet > 0 {
		time.Sleep(time.Duration(maxNet * float64(time.Millisecond)))
	}
	return br.Results, nil
}
