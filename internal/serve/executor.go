package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mobiledl/internal/mobile"
	"mobiledl/internal/split"
	"mobiledl/internal/tensor"
)

// ExecutorConfig wires an executor to a model source and a simulated
// device/network environment.
type ExecutorConfig struct {
	// Source yields the model version to run a batch against; hot swaps
	// take effect at the next batch boundary.
	Source func() (*Loaded, error)
	// Device, Cloud, and Net parameterize the placement cost model
	// (defaults: midrange phone, cloud server, WiFi).
	Device mobile.Device
	Cloud  mobile.Device
	Net    mobile.Network
	// Seed seeds the perturbation RNG for offloaded split rows.
	Seed int64
	// SleepNet, when set, makes the executor actually sleep the modeled
	// transfer time instead of only reporting it — for demos that want
	// wall-clock realism. Benchmarks and tests leave it off.
	SleepNet bool
}

// Executor runs coalesced batches. Per batch it re-reads the current model
// version, consults the placement cost model for the cheapest feasible
// strategy the servable supports, and executes that path:
//
//   - plain model, local placement: one forward pass, no traffic
//   - plain model, cloud placement: one forward pass plus the modeled
//     raw-input uplink and result downlink per row
//   - cascade, split placement: device-side transform + early-exit check;
//     rows that clear the confidence threshold short-circuit (no upload),
//     the rest are perturbed and finished by the cloud half
//   - cascade, local placement: the whole cascade runs on-device (offline
//     networks force this), so no perturbation and no traffic
type Executor struct {
	cfg ExecutorConfig

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewExecutor validates the config and applies environment defaults.
func NewExecutor(cfg ExecutorConfig) (*Executor, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("%w: executor needs a model source", ErrServe)
	}
	if cfg.Device.MACsPerSec == 0 {
		cfg.Device = mobile.MidrangePhone()
	}
	if cfg.Cloud.MACsPerSec == 0 {
		cfg.Cloud = mobile.CloudServer()
	}
	if cfg.Net.Kind == 0 {
		cfg.Net = mobile.WiFiNetwork()
	}
	return &Executor{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Execute implements ExecFunc.
func (e *Executor) Execute(batch *tensor.Matrix) ([]Result, error) {
	loaded, err := e.cfg.Source()
	if err != nil {
		return nil, err
	}
	s := loaded.Servable
	plan, err := e.choosePlacement(loaded)
	if err != nil {
		return nil, err
	}
	var results []Result
	if s.Net != nil {
		results, err = e.runPlain(s, plan, batch)
	} else {
		results, err = e.runCascade(s, plan, batch)
	}
	if err != nil {
		return nil, err
	}
	var maxNet float64
	for i := range results {
		results[i].Placement = plan.Placement
		results[i].ModelVersion = loaded.Version
		if results[i].SimNetMs > maxNet {
			maxNet = results[i].SimNetMs
		}
	}
	if e.cfg.SleepNet && maxNet > 0 {
		time.Sleep(time.Duration(maxNet * float64(time.Millisecond)))
	}
	return results, nil
}

// choosePlacement consults the placement cost model for the strategy the
// servable executes this batch under. Plain models take the cheaper feasible
// of local vs cloud. Cascades are split deployments by construction — the
// deep half lives in the cloud and the perturbation calibration assumes
// offloading — so they serve under the split placement whenever it is
// feasible and fall back to fully-local execution (e.g. offline) otherwise.
func (e *Executor) choosePlacement(loaded *Loaded) (mobile.PlanCost, error) {
	plans := mobile.ComparePlacements(e.cfg.Device, e.cfg.Cloud, e.cfg.Net, loaded.workload)
	if loaded.Servable.Cascade != nil {
		for _, want := range []mobile.Placement{mobile.PlaceSplit, mobile.PlaceLocal} {
			for _, p := range plans {
				if p.Feasible && p.Placement == want {
					return p, nil
				}
			}
		}
	} else {
		for _, p := range plans { // sorted feasible-first, cheapest-first
			if p.Feasible && (p.Placement == mobile.PlaceLocal || p.Placement == mobile.PlaceCloud) {
				return p, nil
			}
		}
	}
	return mobile.PlanCost{}, fmt.Errorf("%w: no feasible placement (network %s)", ErrServe, e.cfg.Net.Kind)
}

func (e *Executor) runPlain(s *Servable, plan mobile.PlanCost, batch *tensor.Matrix) ([]Result, error) {
	preds, err := s.Net.Predict(batch)
	if err != nil {
		return nil, err
	}
	var netMs float64
	if plan.Placement == mobile.PlaceCloud {
		netMs, err = e.transferMs(plan.UpBytes, plan.DownBytes)
		if err != nil {
			return nil, err
		}
	}
	results := make([]Result, len(preds))
	for i, c := range preds {
		results[i] = Result{Class: c, SimNetMs: netMs}
	}
	return results, nil
}

func (e *Executor) runCascade(s *Servable, plan mobile.PlanCost, batch *tensor.Matrix) ([]Result, error) {
	cascade := s.Cascade
	rep, err := cascade.Pipeline.TransformClean(batch)
	if err != nil {
		return nil, err
	}
	// rep is freshly produced per batch (TransformClean never aliases its
	// input) and consumed entirely below, so it feeds the pool afterwards —
	// each worker's next batch reuses it instead of allocating.
	defer tensor.Put(rep)
	preds, offload, err := cascade.ExitLocally(rep)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(preds))
	for i, c := range preds {
		results[i] = Result{Class: c, Local: true}
	}
	if len(offload) == 0 {
		return results, nil
	}

	// Unconfident rows go through the cloud half. Under the split placement
	// they pay the privacy perturbation and the modeled transfer; under the
	// local placement (e.g. offline) the cloud network runs on-device with
	// neither. Local is still "answered by the early exit", so these rows
	// report Local=false either way.
	perturb := plan.Placement != mobile.PlaceLocal
	cloudPreds, err := e.cloudFinish(cascade, rep, offload, perturb)
	if err != nil {
		return nil, err
	}
	var netMs float64
	if perturb {
		if netMs, err = e.transferMs(plan.UpBytes, plan.DownBytes); err != nil {
			return nil, err
		}
	}
	for k, i := range offload {
		results[i] = Result{Class: cloudPreds[k], Local: false, SimNetMs: netMs}
	}
	return results, nil
}

// cloudFinish gathers the offloaded rows of rep into a pooled buffer and
// classifies them with the cascade's cloud network — perturbed (the split
// upload path) or clean (fully-local execution). Only the perturbation's
// RNG draws are serialized; the deep cloud forward pass runs concurrently
// across workers (inference is stateless per the Layer contract).
func (e *Executor) cloudFinish(cascade *split.EarlyExit, rep *tensor.Matrix, offload []int, perturb bool) ([]int, error) {
	sub := tensor.Get(len(offload), rep.Cols())
	defer tensor.Put(sub)
	if err := rep.SelectRowsInto(sub, offload); err != nil {
		return nil, err
	}
	in := sub
	if perturb {
		e.rngMu.Lock()
		pert, err := cascade.Pipeline.Perturb(e.rng, sub)
		e.rngMu.Unlock()
		if err != nil {
			return nil, err
		}
		defer tensor.Put(pert)
		in = pert
	}
	return cascade.Pipeline.Cloud.Predict(in)
}

// transferMs models one row's round trip: upload upBytes, download
// downBytes on the configured network.
func (e *Executor) transferMs(upBytes, downBytes int64) (float64, error) {
	up, err := e.cfg.Net.TransferMillis(upBytes, true)
	if err != nil {
		return 0, err
	}
	down, err := e.cfg.Net.TransferMillis(downBytes, false)
	if err != nil {
		return 0, err
	}
	return up + down, nil
}
