// Package serve is the concurrent model-serving runtime over the paper's
// algorithmic pieces, organized around one seam: the Backend interface.
// A Backend is anything that can describe its serving interface and classify
// a coalesced tensor batch under a simulated mobile/cloud environment; the
// package ships three implementations —
//
//   - DenseBackend: any nn.Sequential served whole, including the
//     reconstructed networks the internal/compress Deep Compression
//     pipeline emits, placed local or cloud by the internal/mobile cost
//     model;
//   - CascadeBackend: a split/early-exit cascade (internal/split) whose
//     device-side layers answer confident rows at the on-device exit and
//     whose unconfident rows are perturbed and finished cloud-side over the
//     simulated uplink;
//   - BaselineBackend: any fitted internal/baselines classifier (tree,
//     forest, linear, boosting) behind the same batcher.
//
// Around the seam: a versioned Registry with lock-free hot swap (weight
// blobs move via internal/nn serialization into Param-bearing backends; a
// bounded version history keeps pinned versions resolvable), an adaptive
// Batcher that coalesces requests into tensor batches under a latency
// budget — grouping rows by execution-relevant RequestOptions — and an
// Executor that resolves the (possibly pinned) model version per batch and
// hands it to the backend. Per-request options (top_k probabilities,
// version pin, no_perturb) thread from the HTTP layer through the batcher
// into Backend.RunBatch.
//
// The predict path is deadline-aware and overload-safe: each request's
// context rides with it through the batcher, rows whose caller has already
// given up are pruned (at flush and at exec) instead of computed, a batch
// whose every submitter is gone cancels the backend's context, and bounded
// admission (QueueCap, MaxInflight) sheds with ErrOverloaded rather than
// queueing doomed work.
//
// A Runtime wires registry, batcher, and executor together for one
// registered model; Server exposes any number of runtimes over HTTP/JSON
// (POST /v1/predict, GET /v1/stats, GET /v1/models, GET /metrics) with
// p50/p99 latency, sliding-window throughput, shed/expired/error counts,
// and Prometheus exposition backed by internal/metrics.
package serve

import (
	"errors"

	"mobiledl/internal/mobile"
	"mobiledl/internal/trace"
)

// ErrServe reports invalid serving configurations or server-side faults.
var ErrServe = errors.New("serve: invalid configuration")

// ErrRequest reports a malformed client request (e.g. wrong feature width,
// unknown version pin); the HTTP layer maps it to 400 where ErrServe maps
// to 500.
var ErrRequest = errors.New("serve: invalid request")

// ErrClosed is returned by Submit/Predict after the runtime has shut down;
// the HTTP layer maps it to 503.
var ErrClosed = errors.New("serve: runtime closed")

// ErrOverloaded is returned by Submit/Predict when admission control sheds
// the request — the batcher's queue or inflight cap is full. It fails fast
// by design: under overload, queueing more work only manufactures stale
// requests whose callers time out before the answer computes. The HTTP
// layer maps it to 429 with a Retry-After hint.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ClassProb is one class's probability in a top-K breakdown.
type ClassProb struct {
	Class int     `json:"class"`
	Prob  float64 `json:"prob"`
}

// Result is the answer to one inference request.
type Result struct {
	// Class is the predicted label.
	Class int
	// Probs is the top-K class-probability breakdown, descending, when the
	// request asked for one (RequestOptions.TopK > 0); nil otherwise.
	Probs []ClassProb
	// Local reports whether the row was answered by the on-device early
	// exit (always false for plain models).
	Local bool
	// Placement is the execution strategy the batch ran under.
	Placement mobile.Placement
	// ModelVersion is the registry version that served the request.
	ModelVersion int
	// BatchSize is how many requests shared the tensor batch.
	BatchSize int
	// QueueMs is time spent waiting for the batch to form.
	QueueMs float64
	// ExecMs is compute time inside the executor.
	ExecMs float64
	// SimNetMs is the modeled device<->cloud transfer latency for this row
	// (zero for rows answered locally).
	SimNetMs float64

	// blog carries the batch's backend span records (shared, read-only) from
	// the executing worker back to each traced submitter, which materializes
	// them into its own trace. Nil for untraced batches.
	blog *trace.BatchLog
}
