// Package serve is the concurrent model-serving runtime over the paper's
// algorithmic pieces: a versioned model registry with lock-free hot swap
// (reusing internal/nn serialization and the internal/compress pipeline), an
// adaptive request batcher that coalesces inference requests into tensor
// batches under a latency budget, and a split-aware executor that consults
// internal/mobile placement costs per batch and — for split deployments —
// runs the device-side layers, checks the on-device early exit, and finishes
// only the unconfident rows cloud-side through internal/split, simulating
// the uplink in between. The registry -> batcher -> executor seam is where
// future scaling work (sharding, caching, alternate backends) plugs in.
//
// A Runtime wires the three together for one registered model; Server
// exposes any number of runtimes over HTTP/JSON (POST /v1/predict,
// GET /v1/stats, GET /v1/models) with p50/p99 latency, throughput, and
// batch-occupancy stats backed by internal/metrics.
package serve

import (
	"errors"
	"fmt"

	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/split"
)

// ErrServe reports invalid serving configurations or server-side faults.
var ErrServe = errors.New("serve: invalid configuration")

// ErrRequest reports a malformed client request (e.g. wrong feature width);
// the HTTP layer maps it to 400 where ErrServe maps to 500.
var ErrRequest = errors.New("serve: invalid request")

// ErrClosed is returned by Submit/Predict after the runtime has shut down.
var ErrClosed = errors.New("serve: runtime closed")

// Servable is one deployable model: either a plain network served whole
// (Net) or a split/early-exit cascade (Cascade) whose local half runs
// "on-device" and whose cloud half serves offloaded rows. Exactly one of
// the two must be set.
type Servable struct {
	Net     *nn.Sequential
	Cascade *split.EarlyExit
}

// Validate checks the exactly-one-of invariant.
func (s *Servable) Validate() error {
	if s == nil || (s.Net == nil) == (s.Cascade == nil) {
		return fmt.Errorf("%w: servable needs exactly one of Net or Cascade", ErrServe)
	}
	return nil
}

// Params returns the servable's full parameter list in a fixed order (for a
// cascade: local, cloud, exit) — the unit that SaveWeights/LoadWeights
// round-trips through the registry.
func (s *Servable) Params() []*nn.Param {
	if s.Net != nil {
		return s.Net.Params()
	}
	var ps []*nn.Param
	ps = append(ps, s.Cascade.Pipeline.Local.Params()...)
	ps = append(ps, s.Cascade.Pipeline.Cloud.Params()...)
	ps = append(ps, s.Cascade.Exit.Params()...)
	return ps
}

// InputDim returns the feature width the servable expects (the In of its
// first Dense layer), or an error for architectures without one.
func (s *Servable) InputDim() (int, error) {
	net := s.Net
	if net == nil {
		net = s.Cascade.Pipeline.Local
	}
	for _, l := range net.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			return d.In(), nil
		}
	}
	return 0, fmt.Errorf("%w: model has no dense layer to infer input width", ErrServe)
}

// Classes returns the output width (the Out of the last Dense layer of the
// cloud-side or whole network).
func (s *Servable) Classes() (int, error) {
	net := s.Net
	if net == nil {
		net = s.Cascade.Pipeline.Cloud
	}
	classes := 0
	for _, l := range net.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			classes = d.Out()
		}
	}
	if classes == 0 {
		return 0, fmt.Errorf("%w: model has no dense layer to infer class count", ErrServe)
	}
	return classes, nil
}

// workload derives the per-sample placement-planning workload for the
// servable (device share and upload payload filled in for cascades).
func (s *Servable) workload() (mobile.Workload, error) {
	in, err := s.InputDim()
	if err != nil {
		return mobile.Workload{}, err
	}
	classes, err := s.Classes()
	if err != nil {
		return mobile.Workload{}, err
	}
	if s.Net != nil {
		return mobile.WorkloadFor(s.Net, nil, in, classes, 0), nil
	}
	p := s.Cascade.Pipeline
	full := nn.NewSequential(append(append([]nn.Layer{}, p.Local.Layers()...), p.Cloud.Layers()...)...)
	return mobile.WorkloadFor(full, p.Local, in, classes, p.RepDim(in)), nil
}

// Result is the answer to one inference request.
type Result struct {
	// Class is the predicted label.
	Class int
	// Local reports whether the row was answered by the on-device early
	// exit (always false for plain models).
	Local bool
	// Placement is the execution strategy the batch ran under.
	Placement mobile.Placement
	// ModelVersion is the registry version that served the request.
	ModelVersion int
	// BatchSize is how many requests shared the tensor batch.
	BatchSize int
	// QueueMs is time spent waiting for the batch to form.
	QueueMs float64
	// ExecMs is compute time inside the executor.
	ExecMs float64
	// SimNetMs is the modeled device<->cloud transfer latency for this row
	// (zero for rows answered locally).
	SimNetMs float64
}
