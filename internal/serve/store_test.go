package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobiledl/internal/nn"
)

// stubStore is the in-package Store double: it records appends, replays
// canned publishes, streams canned backup bytes, and fails on demand. The
// real WAL store is exercised against the registry in internal/store's
// crash suite; these tests pin the registry/server side of the seam.
type stubStore struct {
	mu      sync.Mutex
	recs    []PublishRecord
	failing bool
	backup  []byte
}

var errStubStore = errors.New("stub store down")

func (s *stubStore) AppendPublish(rec PublishRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failing {
		return errStubStore
	}
	s.recs = append(s.recs, rec)
	return nil
}

func (s *stubStore) Publishes() []PublishRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]PublishRecord(nil), s.recs...)
}

func (s *stubStore) Backup(w io.Writer) (int64, error) {
	n, err := w.Write(s.backup)
	return int64(n), err
}

func (s *stubStore) setFailing(on bool) {
	s.mu.Lock()
	s.failing = on
	s.mu.Unlock()
}

func TestRegistryPersistsParamBearingPublishes(t *testing.T) {
	st := &stubStore{}
	reg := NewRegistry()
	reg.SetStore(st)
	if _, err := reg.Install("mlp", mustDense(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.InstallWithMeta("mlp", mustDense(t, 4), &VersionMeta{Source: "fedserve", Round: 7, Accuracy: 0.9}); err != nil {
		t.Fatal(err)
	}
	recs := st.Publishes()
	if len(recs) != 2 {
		t.Fatalf("store saw %d appends, want 2", len(recs))
	}
	if recs[0].Model != "mlp" || recs[0].Version != 1 || recs[1].Version != 2 {
		t.Fatalf("records misnumbered: %+v", recs)
	}
	if recs[1].Meta == nil || recs[1].Meta.Round != 7 {
		t.Fatalf("provenance not persisted: %+v", recs[1].Meta)
	}
	if len(recs[1].Weights) == 0 {
		t.Fatal("weights blob not persisted")
	}
	// The blob is the installed version's weights, loadable as-is.
	b := mustDense(t, 99)
	if err := nn.LoadWeights(bytes.NewReader(recs[1].Weights), b.Params()); err != nil {
		t.Fatalf("persisted weights do not load: %v", err)
	}
	if reg.StoreStatus() != StoreOK {
		t.Fatalf("StoreStatus = %q, want ok", reg.StoreStatus())
	}
}

func TestRegistryRecoverFromReplaysPublishes(t *testing.T) {
	// Fabricate a store holding two versions of a registered model plus one
	// record for a model with no factory (its architecture is not code here).
	mkBlob := func(t *testing.T, seed int64) []byte {
		t.Helper()
		blob, err := nn.EncodeWeights(mustDense(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	st := &stubStore{recs: []PublishRecord{
		{Model: "mlp", Version: 1, Kind: "dense", Weights: mkBlob(t, 1), At: time.Unix(100, 0)},
		{Model: "mlp", Version: 2, Kind: "dense", Meta: &VersionMeta{Source: "fedserve", Round: 5}, Weights: mkBlob(t, 2), At: time.Unix(200, 0)},
		{Model: "ghost", Version: 1, Kind: "dense", Weights: mkBlob(t, 3), At: time.Unix(300, 0)},
	}}
	reg := NewRegistry()
	if err := reg.Register("mlp", mlpFactory(50)); err != nil {
		t.Fatal(err)
	}
	reg.SetStore(st)
	restored, skipped, err := reg.RecoverFrom(st)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 || skipped != 1 {
		t.Fatalf("restored=%d skipped=%d, want 2 and 1", restored, skipped)
	}
	cur, err := reg.Get("mlp")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 2 || cur.Meta == nil || cur.Meta.Round != 5 {
		t.Fatalf("recovered current = v%d meta %+v, want v2 round 5", cur.Version, cur.Meta)
	}
	if _, err := reg.GetVersion("mlp", 1); err != nil {
		t.Fatalf("recovered history missing v1: %v", err)
	}
	if _, err := reg.Get("ghost"); err == nil {
		t.Fatal("factory-less model recovered anyway")
	}
	// The version counter continues past the recovered history: the next
	// install is v3, and it is appended to the store like any publish.
	v, err := reg.Install("mlp", mustDense(t, 51))
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("post-recovery install = v%d, want v3", v)
	}
	if recs := st.Publishes(); recs[len(recs)-1].Version != 3 {
		t.Fatalf("post-recovery publish not persisted: %+v", recs[len(recs)-1])
	}
}

// TestRecoverFromRejectsCorruptWeights: a record whose weights no longer
// fit the factory's architecture (here: a truncated blob) aborts recovery
// rather than serving a silently wrong model.
func TestRecoverFromRejectsCorruptWeights(t *testing.T) {
	blob, err := nn.EncodeWeights(mustDense(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := &stubStore{recs: []PublishRecord{
		{Model: "mlp", Version: 1, Kind: "dense", Weights: blob[:len(blob)/2], At: time.Unix(100, 0)},
	}}
	reg := NewRegistry()
	if err := reg.Register("mlp", mlpFactory(50)); err != nil {
		t.Fatal(err)
	}
	reg.SetStore(st)
	if _, _, err := reg.RecoverFrom(st); err == nil {
		t.Fatal("RecoverFrom accepted a truncated weights blob")
	}
}

// TestStoreFailureNeverFailsPredict is the graceful-degradation acceptance
// check at the HTTP layer: with the store persistently failing, publishes
// still succeed (RAM-only), predict traffic still flows, /healthz stays 200
// and reports the degradation, and /metrics counts the errors.
func TestStoreFailureNeverFailsPredict(t *testing.T) {
	st := &stubStore{}
	reg := NewRegistry()
	reg.SetStore(st)
	if _, err := reg.Install("mlp", mustDense(t, 9)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	rt := newPlainRuntime(t, reg, "mlp", BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond})
	srv.Add(rt)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	predict := func() int {
		body, _ := json.Marshal(PredictRequest{
			Model:    "mlp",
			Features: [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}},
		})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	healthz := func() (int, map[string]string) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if code, body := healthz(); code != http.StatusOK || body["store"] != StoreOK {
		t.Fatalf("healthy healthz = %d %v", code, body)
	}

	// Disk dies. A hot-publish mid-outage succeeds in RAM.
	st.setFailing(true)
	v, err := reg.Install("mlp", mustDense(t, 10))
	if err != nil {
		t.Fatalf("publish during store outage failed: %v", err)
	}
	if v != 2 {
		t.Fatalf("outage publish = v%d, want v2", v)
	}
	if code := predict(); code != http.StatusOK {
		t.Fatalf("predict during store outage = %d, want 200", code)
	}
	code, body := healthz()
	if code != http.StatusOK {
		t.Fatalf("healthz during store outage = %d, want 200 (degraded persistence is not unready)", code)
	}
	if body["store"] != StoreDegraded || body["status"] != "ok" {
		t.Fatalf("healthz body during outage = %v", body)
	}
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	mtext := string(mb)
	if !strings.Contains(mtext, "mobiledl_store_errors_total 1") {
		t.Fatalf("metrics missing store error count:\n%s", mtext)
	}
	if !strings.Contains(mtext, "mobiledl_store_degraded 1") {
		t.Fatalf("metrics missing degraded gauge:\n%s", mtext)
	}

	// Disk recovers; the next publish clears the flag.
	st.setFailing(false)
	if _, err := reg.Install("mlp", mustDense(t, 11)); err != nil {
		t.Fatal(err)
	}
	if _, body := healthz(); body["store"] != StoreOK {
		t.Fatalf("healthz after recovery = %v", body)
	}
}

func TestBackupEndpointStreamsStore(t *testing.T) {
	st := &stubStore{backup: []byte("snapshot-bytes")}
	reg := NewRegistry()
	reg.SetStore(st)
	srv := NewServer(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/backup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/backup = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("backup Content-Type = %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "snapshot-bytes" {
		t.Fatalf("backup body = %q", b)
	}

	// POST is not a backup.
	pr, err := http.Post(ts.URL+"/v1/backup", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/backup = %d, want 405", pr.StatusCode)
	}
}

func TestBackupEndpointWithoutStore404s(t *testing.T) {
	srv := NewServer(NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/backup")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/backup without store = %d, want 404", resp.StatusCode)
	}
	// And /healthz says persistence is off, not broken.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var body map[string]string
	json.NewDecoder(hz.Body).Decode(&body)
	if body["store"] != StoreDisabled {
		t.Fatalf(`healthz store = %q without a store, want "disabled"`, body["store"])
	}
}
